//! Message cost model (α–β with send/recv overheads).

use hsim_time::SimDuration;

/// Latency/bandwidth model for one transport.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCost {
    /// One-way message latency (α).
    pub latency: SimDuration,
    /// Transport bandwidth in GB/s (β is `1/bandwidth`).
    pub bandwidth_gbs: f64,
    /// CPU time the sender spends in the send path.
    pub send_overhead: SimDuration,
    /// CPU time the receiver spends in the receive path.
    pub recv_overhead: SimDuration,
}

impl CommCost {
    /// Shared-memory transport between ranks of one node (the paper's
    /// single-node experiments): sub-microsecond latency, memory-copy
    /// bandwidth.
    pub fn on_node() -> Self {
        CommCost {
            latency: SimDuration::from_nanos(600),
            bandwidth_gbs: 8.0,
            send_overhead: SimDuration::from_nanos(250),
            recv_overhead: SimDuration::from_nanos(250),
        }
    }

    /// EDR InfiniBand-class inter-node transport (for the multi-node
    /// extension experiments).
    pub fn infiniband() -> Self {
        CommCost {
            latency: SimDuration::from_micros(2),
            bandwidth_gbs: 12.0,
            send_overhead: SimDuration::from_nanos(400),
            recv_overhead: SimDuration::from_nanos(400),
        }
    }

    /// A zero-cost model for semantics-only tests.
    pub fn free() -> Self {
        CommCost {
            latency: SimDuration::ZERO,
            bandwidth_gbs: f64::INFINITY,
            send_overhead: SimDuration::ZERO,
            recv_overhead: SimDuration::ZERO,
        }
    }

    /// Virtual time of a re-split redistribution collective: at a
    /// rebalance (or rank-loss recovery) boundary every rank
    /// resynchronizes through a tree barrier of depth `⌈log2 ranks⌉`,
    /// then the zones whose owner changed stream through the transport
    /// once, host-staged, with the per-rank send/recv overheads. A
    /// single-rank world redistributes for free.
    pub fn redistribution_time(&self, bytes: u64, ranks: usize) -> SimDuration {
        if ranks <= 1 {
            return SimDuration::ZERO;
        }
        let depth = usize::BITS - (ranks - 1).leading_zeros();
        let barrier = SimDuration::from_nanos(self.latency.as_nanos() * u64::from(depth));
        barrier + self.send_overhead + self.recv_overhead + self.msg_time(bytes)
    }

    /// Wire time for `bytes`: `α + bytes/β`.
    pub fn msg_time(&self, bytes: u64) -> SimDuration {
        let bw = if self.bandwidth_gbs.is_finite() && self.bandwidth_gbs > 0.0 {
            SimDuration::from_secs_f64(bytes as f64 / (self.bandwidth_gbs * 1e9))
        } else {
            SimDuration::ZERO
        };
        self.latency + bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_time_is_affine_in_bytes() {
        let c = CommCost::on_node();
        let t0 = c.msg_time(0);
        let t1 = c.msg_time(8_000_000); // 8 MB at 8 GB/s = 1 ms
        assert_eq!(t0, c.latency);
        let wire = t1 - t0;
        assert!((wire.as_millis_f64() - 1.0).abs() < 0.01, "{wire}");
    }

    #[test]
    fn free_model_is_actually_free() {
        let c = CommCost::free();
        assert_eq!(c.msg_time(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn infiniband_has_higher_latency_than_shared_memory() {
        assert!(CommCost::infiniband().latency > CommCost::on_node().latency);
    }

    #[test]
    fn redistribution_grows_with_bytes_and_ranks_and_is_free_alone() {
        let c = CommCost::on_node();
        assert_eq!(c.redistribution_time(1 << 20, 1), SimDuration::ZERO);
        let small = c.redistribution_time(1 << 10, 16);
        let big = c.redistribution_time(1 << 24, 16);
        assert!(big > small, "{small} vs {big}");
        let few = c.redistribution_time(1 << 10, 2);
        let many = c.redistribution_time(1 << 10, 64);
        assert!(many > few, "deeper barrier: {few} vs {many}");
        // Even a zero-byte boundary still pays the barrier.
        assert!(c.redistribution_time(0, 16) > SimDuration::ZERO);
    }
}
