//! Error type for the in-process MPI runtime.

use std::fmt;

/// Communication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside `0..size`.
    RankOutOfRange { rank: usize, size: usize },
    /// The peer's thread has exited while a receive was pending.
    Disconnected { peer: usize },
    /// A typed receive got a payload of a different type.
    TypeMismatch { tag: u32 },
    /// Self-send without a buffered message (unsupported pattern).
    SelfMessage,
    /// A collective's internal tree/ring protocol broke its own
    /// invariant (e.g. a broadcast hop found no value to forward).
    /// Surfacing this as an error keeps collectives panic-free on the
    /// fallible rank paths.
    CollectiveProtocol { what: &'static str },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            MpiError::TypeMismatch { tag } => {
                write!(f, "receive type does not match sent payload (tag {tag})")
            }
            MpiError::SelfMessage => write!(f, "blocking self-send is a deadlock"),
            MpiError::CollectiveProtocol { what } => {
                write!(f, "collective protocol invariant broken: {what}")
            }
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = MpiError::RankOutOfRange { rank: 9, size: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        assert!(MpiError::Disconnected { peer: 3 }.to_string().contains('3'));
    }
}
