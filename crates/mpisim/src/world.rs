//! The world launcher: spawns one thread per rank and wires mailboxes.

use crossbeam::channel::unbounded;

use crate::comm::{Comm, Packet};
use crate::cost::CommCost;

/// Entry point for SPMD programs.
pub struct World;

impl World {
    /// Run `f` on `size` ranks (threads), returning each rank's result
    /// in rank order. Panics in any rank propagate after all threads
    /// join (std scoped threads re-raise on join).
    ///
    /// `f` receives the rank's [`Comm`], which owns its virtual clock.
    pub fn run<R, F>(size: usize, cost: CommCost, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        assert!(size > 0, "world needs at least one rank");
        // Channel matrix: chan[src][dst]. Receivers are built
        // destination-major so each rank's endpoint owns its column
        // outright — no placeholder slots to unwrap later.
        let mut txs: Vec<Vec<_>> = Vec::with_capacity(size);
        let mut rx_cols: Vec<Vec<_>> = (0..size).map(|_| Vec::with_capacity(size)).collect();
        for _src in 0..size {
            let mut row = Vec::with_capacity(size);
            for rx_col in rx_cols.iter_mut() {
                let (tx, rx) = unbounded::<Packet>();
                row.push(tx);
                rx_col.push(rx);
            }
            txs.push(row);
        }

        // Build each rank's endpoint: senders[dst] = tx[me][dst],
        // receivers[src] = rx side of chan[src][me] (column `me`,
        // pushed in ascending src order above).
        let mut comms: Vec<Comm> = Vec::with_capacity(size);
        for (rank, receivers) in rx_cols.into_iter().enumerate() {
            let senders: Vec<_> = (0..size).map(|dst| txs[rank][dst].clone()).collect();
            comms.push(Comm::new(rank, size, cost.clone(), senders, receivers));
        }
        drop(txs);

        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| scope.spawn(move || f(&mut comm)))
                .collect();
            handles
                .into_iter()
                // Re-raise a rank's panic payload verbatim on the
                // caller (the documented `run` contract) instead of
                // wrapping it in a fresh expect/panic.
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    }

    /// Like [`World::run`] but fault-tolerant: each rank body returns
    /// `Result`, and a *panic* in one rank (or a collateral panic in a
    /// peer blocked on the dead rank's mailbox, which observes
    /// [`crate::MpiError::Disconnected`] once the senders drop) is
    /// caught and converted into `Err` instead of tearing down the
    /// whole world at join time. No rank can hang: a dead peer's
    /// channel endpoints drop, so every blocking receive returns
    /// `Disconnected` rather than waiting forever.
    pub fn run_fallible<R, F>(size: usize, cost: CommCost, f: F) -> Vec<Result<R, String>>
    where
        R: Send,
        F: Fn(&mut Comm) -> Result<R, String> + Sync,
    {
        Self::run(size, cost, |comm| {
            let rank = comm.rank();
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm))) {
                Ok(r) => r,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "rank thread panicked".to_string());
                    Err(format!("rank {rank}: {msg}"))
                }
            }
        })
    }

    /// Like [`World::run`] but also returns each rank's final virtual
    /// time breakdown `(result, now_ns, comm_ns, wait_ns)`.
    pub fn run_timed<R, F>(size: usize, cost: CommCost, f: F) -> Vec<(R, u64, u64, u64)>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        use hsim_time::clock::ChargeKind;
        Self::run(size, cost, |comm| {
            let r = f(comm);
            let now = comm.now().as_nanos();
            let comm_ns = comm.clock().bucket(ChargeKind::Comm).as_nanos();
            let wait_ns = comm.clock().bucket(ChargeKind::Wait).as_nanos();
            (r, now, comm_ns, wait_ns)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_time::clock::ChargeKind;
    use hsim_time::SimDuration;

    #[test]
    fn single_rank_world_runs() {
        let out = World::run(1, CommCost::free(), |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ranks_see_their_ids_in_order() {
        let out = World::run(6, CommCost::free(), |comm| comm.rank());
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn ping_pong_roundtrip() {
        let out = World::run(2, CommCost::on_node(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]).unwrap();
                let back: Vec<f64> = comm.recv(1, 8).unwrap();
                back.iter().sum::<f64>()
            } else {
                let v: Vec<f64> = comm.recv(0, 7).unwrap();
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, doubled).unwrap();
                0.0
            }
        });
        assert_eq!(out[0], 12.0);
    }

    #[test]
    fn tag_matching_buffers_out_of_order_messages() {
        let out = World::run(2, CommCost::free(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, 1.0f64).unwrap();
                comm.send(1, 20, 2.0f64).unwrap();
                0.0
            } else {
                // Receive in reverse tag order.
                let b: f64 = comm.recv(0, 20).unwrap();
                let a: f64 = comm.recv(0, 10).unwrap();
                a + 10.0 * b
            }
        });
        assert_eq!(out[1], 21.0);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let out = World::run(2, CommCost::free(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1.0f64]).unwrap();
                true
            } else {
                comm.recv::<Vec<u8>>(0, 1).is_err()
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn self_send_is_an_error() {
        let out = World::run(1, CommCost::free(), |comm| comm.send(0, 1, 1.0f64).is_err());
        assert!(out[0]);
    }

    #[test]
    fn rank_out_of_range_is_an_error() {
        let out = World::run(2, CommCost::free(), |comm| {
            comm.send(5, 1, 1.0f64).unwrap_err()
        });
        assert!(matches!(
            out[0],
            crate::error::MpiError::RankOutOfRange { rank: 5, size: 2 }
        ));
    }

    #[test]
    fn allreduce_sum_and_min_and_max() {
        for size in [1, 2, 3, 4, 5, 8, 16] {
            let out = World::run(size, CommCost::on_node(), |comm| {
                let x = comm.rank() as f64 + 1.0;
                let s = comm.allreduce_sum(x).unwrap();
                let mn = comm.allreduce_min(x).unwrap();
                let mx = comm.allreduce_max(x).unwrap();
                (s, mn, mx)
            });
            let expect_sum = (size * (size + 1)) as f64 / 2.0;
            for (s, mn, mx) in out {
                assert_eq!(s, expect_sum, "size {size}");
                assert_eq!(mn, 1.0);
                assert_eq!(mx, size as f64);
            }
        }
    }

    #[test]
    fn bcast_delivers_root_value_everywhere() {
        for size in [1, 2, 3, 5, 7, 16] {
            let out = World::run(size, CommCost::free(), |comm| {
                let x = if comm.rank() == 0 { 42.0 } else { -1.0 };
                comm.bcast(x).unwrap()
            });
            assert!(out.iter().all(|&v| v == 42.0), "size {size}: {out:?}");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = World::run(5, CommCost::free(), |comm| {
            comm.gather_f64(comm.rank() as f64 * 2.0).unwrap()
        });
        assert_eq!(out[0], Some(vec![0.0, 2.0, 4.0, 6.0, 8.0]));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn allgather_collects_on_every_rank() {
        let out = World::run(4, CommCost::on_node(), |comm| {
            comm.allgather_f64((comm.rank() * comm.rank()) as f64)
                .unwrap()
        });
        for v in out {
            assert_eq!(v, vec![0.0, 1.0, 4.0, 9.0]);
        }
    }

    #[test]
    fn alltoallv_routes_payloads_and_charges_time() {
        for size in [1, 2, 3, 4, 8] {
            let out = World::run(size, CommCost::on_node(), |comm| {
                let rank = comm.rank();
                // parts[dst] = [rank*100 + dst]; self slot included.
                let parts: Vec<Vec<f64>> = (0..comm.size())
                    .map(|dst| vec![(rank * 100 + dst) as f64])
                    .collect();
                let inbound = comm.alltoallv_f64(parts).unwrap();
                let t = comm.now().as_nanos();
                (inbound, t)
            });
            for (rank, (inbound, t)) in out.iter().enumerate() {
                assert_eq!(inbound.len(), size);
                for (src, v) in inbound.iter().enumerate() {
                    assert_eq!(v, &vec![(src * 100 + rank) as f64], "size {size}");
                }
                if size > 1 {
                    assert!(*t > 0, "alltoall must charge virtual time");
                }
            }
        }
        // Wrong payload count is a typed protocol error.
        let out = World::run(2, CommCost::free(), |comm| {
            comm.alltoallv_f64(vec![Vec::new()]).is_err()
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn barrier_equalizes_virtual_clocks() {
        let out = World::run(4, CommCost::on_node(), |comm| {
            // Rank r does r milliseconds of work.
            let work = SimDuration::from_millis(comm.rank() as u64);
            comm.charge(ChargeKind::Compute, work);
            comm.barrier().unwrap();
            comm.now().as_nanos()
        });
        // All clocks must be at least the slowest rank's 3 ms.
        let min = *out.iter().min().unwrap();
        let max = *out.iter().max().unwrap();
        assert!(min >= 3_000_000, "clocks: {out:?}");
        // And tightly clustered (within the collective's own cost).
        assert!(max - min < 1_000_000, "clocks: {out:?}");
    }

    #[test]
    fn virtual_time_reflects_message_cost() {
        // 8 MB at 8 GB/s ≈ 1 ms wire time: the receiver's clock must
        // advance by about that much.
        let out = World::run(2, CommCost::on_node(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0.0f64; 1_000_000]).unwrap();
                0
            } else {
                let _: Vec<f64> = comm.recv(0, 1).unwrap();
                comm.now().as_nanos()
            }
        });
        let t = out[1];
        assert!(t > 900_000, "receiver clock {t} ns");
        assert!(t < 3_000_000, "receiver clock {t} ns");
    }

    #[test]
    fn sendrecv_exchanges_between_peers() {
        let out = World::run(2, CommCost::free(), |comm| {
            let peer = 1 - comm.rank();
            let got: f64 = comm.sendrecv(peer, 3, comm.rank() as f64).unwrap();
            got
        });
        assert_eq!(out, vec![1.0, 0.0]);
    }

    #[test]
    fn byte_and_message_counters_accumulate() {
        let out = World::run(2, CommCost::free(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0u8; 100]).unwrap();
                comm.send(1, 2, vec![0u8; 50]).unwrap();
                (comm.bytes_sent(), comm.msgs_sent())
            } else {
                let _: Vec<u8> = comm.recv(0, 1).unwrap();
                let _: Vec<u8> = comm.recv(0, 2).unwrap();
                (0, 0)
            }
        });
        assert_eq!(out[0], (150, 2));
    }

    #[test]
    fn run_timed_reports_breakdowns() {
        let out = World::run_timed(2, CommCost::on_node(), |comm| {
            comm.charge(ChargeKind::Compute, SimDuration::from_micros(5));
            comm.barrier().unwrap();
            comm.rank()
        });
        assert_eq!(out.len(), 2);
        for (rank, now, _comm_ns, _wait_ns) in out {
            assert!(now >= 5_000, "rank {rank} now {now}");
        }
    }

    #[test]
    fn irecv_wait_matches_blocking_recv() {
        let out = World::run(2, CommCost::on_node(), |comm| {
            if comm.rank() == 0 {
                comm.isend(1, 5, vec![1.0f64, 2.0]).unwrap();
                0.0
            } else {
                let req = comm.irecv(0, 5).unwrap();
                // Overlap: compute while the message is in flight.
                comm.charge(ChargeKind::Compute, SimDuration::from_micros(50));
                let v: Vec<f64> = comm.wait(req).unwrap();
                v.iter().sum()
            }
        });
        assert_eq!(out[1], 3.0);
    }

    #[test]
    fn irecv_overlap_hides_message_latency() {
        // With enough compute posted between irecv and wait, the
        // receiver's clock should show almost no Wait time.
        let out = World::run(2, CommCost::on_node(), |comm| {
            if comm.rank() == 0 {
                comm.isend(1, 1, vec![0.0f64; 100_000]).unwrap(); // ~0.1 ms wire
                0
            } else {
                let req = comm.irecv(0, 1).unwrap();
                comm.charge(ChargeKind::Compute, SimDuration::from_millis(5));
                let _: Vec<f64> = comm.wait(req).unwrap();
                comm.clock().bucket(ChargeKind::Wait).as_nanos()
            }
        });
        assert!(
            out[1] < 10_000,
            "overlapped wait should be tiny: {} ns",
            out[1]
        );
    }

    #[test]
    fn waitall_completes_posted_receives_in_order() {
        let out = World::run(2, CommCost::free(), |comm| {
            if comm.rank() == 0 {
                for t in 0..4u32 {
                    comm.isend(1, t, t as f64).unwrap();
                }
                vec![]
            } else {
                let reqs: Vec<_> = (0..4u32).map(|t| comm.irecv(0, t).unwrap()).collect();
                comm.waitall::<f64>(reqs).unwrap()
            }
        });
        assert_eq!(out[1], vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn test_reports_pending_and_arrived_messages() {
        let out = World::run(2, CommCost::free(), |comm| {
            if comm.rank() == 0 {
                // Let rank 1 poll emptiness first.
                let _: f64 = comm.recv(1, 9).unwrap();
                comm.isend(1, 2, 7.0f64).unwrap();
                0.0
            } else {
                let req = comm.irecv(0, 2).unwrap();
                let early: Option<f64> = comm.test(&req).unwrap();
                assert!(early.is_none(), "nothing sent yet");
                comm.send(0, 9, 0.0f64).unwrap();
                // Spin on test until the message lands.
                loop {
                    if let Some(v) = comm.test::<f64>(&req).unwrap() {
                        break v;
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(out[1], 7.0);
    }

    #[test]
    fn bcast_vec_delivers_whole_payload() {
        for size in [2, 3, 5, 8] {
            let out = World::run(size, CommCost::on_node(), |comm| {
                let x = if comm.rank() == 0 {
                    vec![1.0, 2.0, 3.0]
                } else {
                    vec![]
                };
                comm.bcast_vec(x).unwrap()
            });
            for v in out {
                assert_eq!(v, vec![1.0, 2.0, 3.0], "size {size}");
            }
        }
    }

    #[test]
    fn gather_vec_collects_rows_in_rank_order() {
        let out = World::run(3, CommCost::free(), |comm| {
            comm.gather_vec(vec![comm.rank() as f64; comm.rank() + 1])
                .unwrap()
        });
        let rows = out[0].as_ref().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![0.0]);
        assert_eq!(rows[2], vec![2.0, 2.0, 2.0]);
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn allreduce_vec_sum_adds_elementwise() {
        for size in [1, 2, 3, 4, 7] {
            let out = World::run(size, CommCost::on_node(), |comm| {
                comm.allreduce_vec_sum(vec![comm.rank() as f64, 1.0])
                    .unwrap()
            });
            let expect0 = (size * (size - 1)) as f64 / 2.0;
            for v in out {
                assert_eq!(v, vec![expect0, size as f64], "size {size}");
            }
        }
    }

    #[test]
    fn communication_matrix_rows_track_destinations() {
        let rows = World::run(3, CommCost::free(), |comm| {
            match comm.rank() {
                0 => {
                    comm.send(1, 1, vec![0u8; 100]).unwrap();
                    comm.send(2, 1, vec![0u8; 50]).unwrap();
                }
                1 => {
                    let _: Vec<u8> = comm.recv(0, 1).unwrap();
                }
                _ => {
                    let _: Vec<u8> = comm.recv(0, 1).unwrap();
                }
            }
            comm.bytes_per_dst().to_vec()
        });
        assert_eq!(rows[0], vec![0, 100, 50]);
        assert_eq!(rows[1], vec![0, 0, 0]);
        // Row sums equal bytes_sent.
        assert_eq!(rows[0].iter().sum::<u64>(), 150);
    }

    #[test]
    fn cartesian_ring_shift_with_virtual_time() {
        use crate::topology::CartComm;
        // A 2x2x2 process grid: every rank shifts a value to its +x
        // neighbor (periodic), so everyone receives its -x neighbor's
        // rank id.
        let out = World::run(8, CommCost::on_node(), |comm| {
            let cart = CartComm::new([2, 2, 2], [true, true, true]);
            let right = cart.neighbor(comm.rank(), 0, 1).unwrap().unwrap();
            let left = cart.neighbor(comm.rank(), 0, -1).unwrap().unwrap();
            comm.send(right, 1, comm.rank() as f64).unwrap();
            let got: f64 = comm.recv(left, 1).unwrap();
            (got as usize, left)
        });
        for (rank, (got, left)) in out.iter().enumerate() {
            assert_eq!(*got, *left, "rank {rank} received its left neighbor's id");
        }
    }

    #[test]
    fn run_fallible_turns_a_dead_rank_into_typed_errors_not_a_hang() {
        // Rank 1 dies before sending anything. Rank 0 blocks on its
        // message: the dropped senders surface as a Disconnected
        // error (here re-raised by unwrap and caught by run_fallible)
        // instead of a deadlock or a process abort.
        let out = World::run_fallible(2, CommCost::free(), |comm| {
            if comm.rank() == 1 {
                return Err("injected rank loss".to_string());
            }
            let v: f64 = comm.recv(1, 1).unwrap();
            Ok(v)
        });
        assert_eq!(out[1], Err("injected rank loss".to_string()));
        let msg = out[0].as_ref().unwrap_err();
        assert!(msg.contains("rank 0"), "{msg}");
        assert!(msg.to_lowercase().contains("disconnected"), "{msg}");
    }

    #[test]
    fn run_fallible_passes_through_clean_results() {
        let out = World::run_fallible(3, CommCost::on_node(), |comm| {
            comm.barrier().map_err(|e| e.to_string())?;
            Ok(comm.rank() * 10)
        });
        assert_eq!(out, vec![Ok(0), Ok(10), Ok(20)]);
    }

    #[test]
    fn many_ranks_heavy_traffic_terminates() {
        // Stress: 16 ranks, ring of messages, several rounds.
        let out = World::run(16, CommCost::on_node(), |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let mut acc = comm.rank() as f64;
            for round in 0..10u32 {
                comm.send(right, round, acc).unwrap();
                let got: f64 = comm.recv(left, round).unwrap();
                acc += got;
            }
            acc
        });
        assert_eq!(out.len(), 16);
    }
}
