//! Cartesian process topologies (MPI_Cart_create equivalents).
//!
//! ARES assigns spatially-decomposed domains to ranks; the Cartesian
//! communicator maps rank ids to 3D process-grid coordinates and finds
//! halo-exchange neighbors. The x coordinate varies fastest (row-major
//! with x innermost), matching the mesh's zone ordering.

use crate::error::MpiError;

/// A 3D Cartesian layout of `dims[0] * dims[1] * dims[2]` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartComm {
    dims: [usize; 3],
    periodic: [bool; 3],
}

impl CartComm {
    /// Create a topology with explicit dimensions.
    pub fn new(dims: [usize; 3], periodic: [bool; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "all dims must be positive");
        CartComm { dims, periodic }
    }

    /// Factor `n` ranks into a near-cubic 3D grid (MPI_Dims_create):
    /// the factorization minimizing the sum of dimensions (a proxy for
    /// halo surface area), with the largest factor in z.
    pub fn dims_create(n: usize) -> [usize; 3] {
        assert!(n > 0);
        let mut best = [1, 1, n];
        let mut best_score = usize::MAX;
        for a in 1..=n {
            if !n.is_multiple_of(a) {
                continue;
            }
            let m = n / a;
            for b in 1..=m {
                if !m.is_multiple_of(b) {
                    continue;
                }
                let c = m / b;
                let mut d = [a, b, c];
                d.sort_unstable();
                let score = d[0].abs_diff(d[2]) * n + (d[0] + d[1] + d[2]);
                if score < best_score {
                    best_score = score;
                    best = d;
                }
            }
        }
        best
    }

    /// The process-grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total ranks in the grid.
    pub fn size(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Rank → grid coordinates (x fastest).
    pub fn coords(&self, rank: usize) -> Result<[usize; 3], MpiError> {
        if rank >= self.size() {
            return Err(MpiError::RankOutOfRange {
                rank,
                size: self.size(),
            });
        }
        let x = rank % self.dims[0];
        let y = (rank / self.dims[0]) % self.dims[1];
        let z = rank / (self.dims[0] * self.dims[1]);
        Ok([x, y, z])
    }

    /// Grid coordinates → rank.
    pub fn rank_of(&self, coords: [usize; 3]) -> Result<usize, MpiError> {
        for (&c, &d) in coords.iter().zip(&self.dims) {
            if c >= d {
                return Err(MpiError::RankOutOfRange { rank: c, size: d });
            }
        }
        Ok((coords[2] * self.dims[1] + coords[1]) * self.dims[0] + coords[0])
    }

    /// The neighbor of `rank` one step along `axis` in direction `dir`
    /// (−1 or +1). `None` at a non-periodic boundary.
    pub fn neighbor(&self, rank: usize, axis: usize, dir: i32) -> Result<Option<usize>, MpiError> {
        assert!(axis < 3, "axis must be 0, 1, or 2");
        assert!(dir == 1 || dir == -1, "dir must be ±1");
        let mut c = self.coords(rank)?;
        let d = self.dims[axis];
        let cur = c[axis] as i64 + dir as i64;
        let next = if cur < 0 || cur >= d as i64 {
            if self.periodic[axis] {
                ((cur + d as i64) % d as i64) as usize
            } else {
                return Ok(None);
            }
        } else {
            cur as usize
        };
        c[axis] = next;
        Ok(Some(self.rank_of(c)?))
    }

    /// All face neighbors of `rank` (up to 6).
    pub fn face_neighbors(&self, rank: usize) -> Result<Vec<usize>, MpiError> {
        let mut out = Vec::with_capacity(6);
        for axis in 0..3 {
            for dir in [-1, 1] {
                if let Some(nb) = self.neighbor(rank, axis, dir)? {
                    out.push(nb);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_create_prefers_near_cubes() {
        assert_eq!(CartComm::dims_create(8), [2, 2, 2]);
        assert_eq!(CartComm::dims_create(27), [3, 3, 3]);
        assert_eq!(CartComm::dims_create(64), [4, 4, 4]);
        assert_eq!(CartComm::dims_create(4), [1, 2, 2]);
        assert_eq!(CartComm::dims_create(16), [2, 2, 4]);
        assert_eq!(CartComm::dims_create(1), [1, 1, 1]);
        // Prime counts degrade to slabs.
        assert_eq!(CartComm::dims_create(7), [1, 1, 7]);
    }

    #[test]
    fn coords_roundtrip() {
        let c = CartComm::new([2, 3, 4], [false; 3]);
        assert_eq!(c.size(), 24);
        for rank in 0..c.size() {
            let xyz = c.coords(rank).unwrap();
            assert_eq!(c.rank_of(xyz).unwrap(), rank);
        }
        assert!(c.coords(24).is_err());
        assert!(c.rank_of([2, 0, 0]).is_err());
    }

    #[test]
    fn x_varies_fastest() {
        let c = CartComm::new([4, 2, 1], [false; 3]);
        assert_eq!(c.coords(0).unwrap(), [0, 0, 0]);
        assert_eq!(c.coords(1).unwrap(), [1, 0, 0]);
        assert_eq!(c.coords(4).unwrap(), [0, 1, 0]);
    }

    #[test]
    fn boundary_neighbors_are_none_without_periodicity() {
        let c = CartComm::new([2, 2, 2], [false; 3]);
        assert_eq!(c.neighbor(0, 0, -1).unwrap(), None);
        assert_eq!(c.neighbor(0, 0, 1).unwrap(), Some(1));
        assert_eq!(c.neighbor(0, 1, 1).unwrap(), Some(2));
        assert_eq!(c.neighbor(0, 2, 1).unwrap(), Some(4));
    }

    #[test]
    fn periodic_axes_wrap() {
        let c = CartComm::new([3, 1, 1], [true, false, false]);
        assert_eq!(c.neighbor(0, 0, -1).unwrap(), Some(2));
        assert_eq!(c.neighbor(2, 0, 1).unwrap(), Some(0));
    }

    #[test]
    fn face_neighbor_counts_match_position() {
        let c = CartComm::new([4, 4, 1], [false; 3]);
        // Corner rank: 2 neighbors; interior rank of the 4x4 plane: 4.
        assert_eq!(c.face_neighbors(0).unwrap().len(), 2);
        assert_eq!(c.face_neighbors(5).unwrap().len(), 4);
    }

    #[test]
    fn interior_rank_in_3d_has_six_neighbors() {
        let c = CartComm::new([3, 3, 3], [false; 3]);
        let center = c.rank_of([1, 1, 1]).unwrap();
        assert_eq!(c.face_neighbors(center).unwrap().len(), 6);
    }
}
