//! The per-rank communicator: typed point-to-point plus tree-based
//! collectives, all carrying virtual time.

use std::any::Any;
use std::collections::VecDeque;

use crossbeam::channel::{Receiver, Sender};
use hsim_time::clock::ChargeKind;
use hsim_time::{RankClock, SimDuration, SimTime};

use crate::cost::CommCost;
use crate::error::MpiError;
use crate::payload::Payload;

/// Tag bit reserved for internal collective traffic; user tags must
/// stay below it.
const COLL_TAG_BASE: u32 = 0x8000_0000;

/// Telemetry category for a message tag: collective-space tags trace
/// as collective traffic, everything else as point-to-point.
fn tag_category(tag: u32) -> hsim_telemetry::Category {
    if tag >= COLL_TAG_BASE {
        hsim_telemetry::Category::Collective
    } else {
        hsim_telemetry::Category::MpiMessage
    }
}

/// Handle to a posted nonblocking receive (see [`Comm::irecv`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvRequest {
    src: usize,
    tag: u32,
}

pub(crate) struct Packet {
    tag: u32,
    data: Box<dyn Any + Send>,
    bytes: u64,
    departure: SimTime,
}

/// One rank's endpoint in the simulated MPI world.
///
/// A `Comm` owns the rank's [`RankClock`]; application code charges
/// compute time through [`Comm::charge`] and communication charges
/// itself.
pub struct Comm {
    rank: usize,
    size: usize,
    cost: CommCost,
    clock: RankClock,
    senders: Vec<Sender<Packet>>,
    receivers: Vec<Receiver<Packet>>,
    /// Messages received ahead of the tag the caller asked for, per
    /// source rank.
    pending: Vec<VecDeque<Packet>>,
    /// Per-rank collective sequence number (identical across ranks in
    /// SPMD execution) used to tag collective rounds uniquely.
    coll_seq: u32,
    /// Total bytes sent (reporting).
    bytes_sent: u64,
    /// Total messages sent (reporting).
    msgs_sent: u64,
    /// Bytes sent per destination rank (mpiP-style communication
    /// matrix row).
    bytes_per_dst: Vec<u64>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        cost: CommCost,
        senders: Vec<Sender<Packet>>,
        receivers: Vec<Receiver<Packet>>,
    ) -> Self {
        let pending = (0..size).map(|_| VecDeque::new()).collect();
        Comm {
            rank,
            size,
            cost,
            clock: RankClock::new(rank),
            senders,
            receivers,
            pending,
            coll_seq: 0,
            bytes_sent: 0,
            msgs_sent: 0,
            bytes_per_dst: vec![0; size],
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The communication cost model in force.
    pub fn cost_model(&self) -> &CommCost {
        &self.cost
    }

    /// Current virtual instant of this rank.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Charge local (non-communication) virtual time.
    pub fn charge(&mut self, kind: ChargeKind, d: SimDuration) {
        self.clock.charge(kind, d);
    }

    /// Immutable view of the rank's clock (bucket breakdowns).
    pub fn clock(&self) -> &RankClock {
        &self.clock
    }

    /// Mutable access for runners that need to merge external timelines
    /// (e.g. a GPU device completion time).
    pub fn clock_mut(&mut self) -> &mut RankClock {
        &mut self.clock
    }

    /// Total bytes this rank has sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages this rank has sent.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// This rank's row of the communication matrix: bytes sent to each
    /// destination (the mpiP-style profile the paper's §6.1 neighbor
    /// discussion is about).
    pub fn bytes_per_dst(&self) -> &[u64] {
        &self.bytes_per_dst
    }

    fn check_rank(&self, r: usize) -> Result<(), MpiError> {
        if r >= self.size {
            Err(MpiError::RankOutOfRange {
                rank: r,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// Blocking typed send. User tags must be below `0x8000_0000`.
    pub fn send<T: Payload>(&mut self, dst: usize, tag: u32, data: T) -> Result<(), MpiError> {
        self.check_rank(dst)?;
        if dst == self.rank {
            return Err(MpiError::SelfMessage);
        }
        debug_assert!(
            tag < COLL_TAG_BASE,
            "user tag collides with collective space"
        );
        self.send_internal(dst, tag, data)
    }

    fn send_internal<T: Payload>(&mut self, dst: usize, tag: u32, data: T) -> Result<(), MpiError> {
        let bytes = data.byte_len();
        let t0 = self.clock.now();
        self.clock.charge(ChargeKind::Comm, self.cost.send_overhead);
        let pkt = Packet {
            tag,
            data: Box::new(data),
            bytes,
            departure: self.clock.now(),
        };
        self.bytes_sent += bytes;
        self.msgs_sent += 1;
        self.bytes_per_dst[dst] += bytes;
        hsim_telemetry::count(hsim_telemetry::Counter::MpiSends, 1);
        hsim_telemetry::count(hsim_telemetry::Counter::MpiBytesSent, bytes);
        hsim_telemetry::span_args(
            self.rank as u32,
            0,
            tag_category(tag),
            "mpi_send",
            t0,
            self.clock.now(),
            &[("bytes", bytes), ("dst", dst as u64), ("tag", tag as u64)],
        );
        self.senders[dst]
            .send(pkt)
            .map_err(|_| MpiError::Disconnected { peer: dst })
    }

    /// Blocking typed receive from `src` with exact `tag` match.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: u32) -> Result<T, MpiError> {
        self.check_rank(src)?;
        if src == self.rank {
            return Err(MpiError::SelfMessage);
        }
        self.recv_internal(src, tag)
    }

    fn recv_internal<T: Payload>(&mut self, src: usize, tag: u32) -> Result<T, MpiError> {
        // First look in the out-of-order buffer.
        let buffered = self.pending[src]
            .iter()
            .position(|p| p.tag == tag)
            .and_then(|i| self.pending[src].remove(i));
        let pkt = match buffered {
            Some(p) => p,
            None => loop {
                let p = self.receivers[src]
                    .recv()
                    .map_err(|_| MpiError::Disconnected { peer: src })?;
                if p.tag == tag {
                    break p;
                }
                self.pending[src].push_back(p);
            },
        };
        // Virtual arrival: departure + wire time. Wait for it, then pay
        // the receive-path overhead.
        let t0 = self.clock.now();
        let arrival = pkt.departure + self.cost.msg_time(pkt.bytes);
        self.clock.wait_until(arrival);
        self.clock.charge(ChargeKind::Comm, self.cost.recv_overhead);
        self.note_recv(src, tag, pkt.bytes, t0, arrival);
        pkt.data
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| MpiError::TypeMismatch { tag })
    }

    /// Telemetry for one completed receive (shared by the blocking and
    /// nonblocking completion paths). No-op without a collector.
    fn note_recv(&mut self, src: usize, tag: u32, bytes: u64, t0: SimTime, arrival: SimTime) {
        hsim_telemetry::count(hsim_telemetry::Counter::MpiRecvs, 1);
        hsim_telemetry::count(hsim_telemetry::Counter::MpiBytesReceived, bytes);
        hsim_telemetry::time_stat(hsim_telemetry::TimeStat::MpiWait, arrival - t0);
        hsim_telemetry::time_stat(
            hsim_telemetry::TimeStat::MessageLatency,
            self.clock.now() - t0,
        );
        hsim_telemetry::span_args(
            self.rank as u32,
            0,
            tag_category(tag),
            "mpi_recv",
            t0,
            self.clock.now(),
            &[("bytes", bytes), ("src", src as u64), ("tag", tag as u64)],
        );
    }

    /// Combined exchange with one peer: send then receive (safe because
    /// transport is buffered).
    pub fn sendrecv<T: Payload, U: Payload>(
        &mut self,
        peer: usize,
        tag: u32,
        data: T,
    ) -> Result<U, MpiError> {
        self.send(peer, tag, data)?;
        self.recv(peer, tag)
    }

    /// Nonblocking send. Transport is buffered (eager protocol), so an
    /// isend completes locally at once — identical to [`Comm::send`];
    /// provided for source fidelity with MPI codes.
    pub fn isend<T: Payload>(&mut self, dst: usize, tag: u32, data: T) -> Result<(), MpiError> {
        self.send(dst, tag, data)
    }

    /// Post a nonblocking receive. No matching happens until
    /// [`Comm::wait`]; in virtual time this is what lets a rank
    /// overlap computation with an in-flight message (its clock keeps
    /// advancing on compute, and `wait` only blocks to the message's
    /// arrival instant).
    pub fn irecv(&mut self, src: usize, tag: u32) -> Result<RecvRequest, MpiError> {
        self.check_rank(src)?;
        if src == self.rank {
            return Err(MpiError::SelfMessage);
        }
        Ok(RecvRequest { src, tag })
    }

    /// Complete a posted receive.
    pub fn wait<T: Payload>(&mut self, req: RecvRequest) -> Result<T, MpiError> {
        self.recv_internal(req.src, req.tag)
    }

    /// Complete a batch of posted receives of one payload type, in
    /// posting order.
    pub fn waitall<T: Payload>(&mut self, reqs: Vec<RecvRequest>) -> Result<Vec<T>, MpiError> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Nonblocking completion test: `Some(value)` if a matching
    /// message has already been delivered to this endpoint (no virtual
    /// waiting beyond the message's arrival time), `None` otherwise.
    /// The request stays valid when `None` is returned.
    pub fn test<T: Payload>(&mut self, req: &RecvRequest) -> Result<Option<T>, MpiError> {
        // Drain anything already sitting in the channel into the
        // pending buffer, then look for a match.
        while let Ok(p) = self.receivers[req.src].try_recv() {
            self.pending[req.src].push_back(p);
        }
        let found = self.pending[req.src]
            .iter()
            .position(|p| p.tag == req.tag)
            .and_then(|i| self.pending[req.src].remove(i));
        match found {
            None => Ok(None),
            Some(pkt) => {
                let t0 = self.clock.now();
                let arrival = pkt.departure + self.cost.msg_time(pkt.bytes);
                self.clock.wait_until(arrival);
                self.clock.charge(ChargeKind::Comm, self.cost.recv_overhead);
                self.note_recv(req.src, req.tag, pkt.bytes, t0, arrival);
                pkt.data
                    .downcast::<T>()
                    .map(|b| Some(*b))
                    .map_err(|_| MpiError::TypeMismatch { tag: req.tag })
            }
        }
    }

    fn next_coll_tag(&mut self) -> u32 {
        let tag = COLL_TAG_BASE | (self.coll_seq & 0x0FFF_FFFF);
        self.coll_seq = self.coll_seq.wrapping_add(1);
        tag
    }

    /// Binomial-tree reduction of a scalar to rank 0. Returns
    /// `Some(result)` on rank 0, `None` elsewhere.
    fn reduce_scalar<T, F>(&mut self, x: T, tag: u32, op: F) -> Result<Option<T>, MpiError>
    where
        T: Payload + Copy,
        F: Fn(T, T) -> T,
    {
        let mut val = x;
        let mut offset = 1;
        while offset < self.size {
            let group = 2 * offset;
            if self.rank.is_multiple_of(group) {
                let peer = self.rank + offset;
                if peer < self.size {
                    let other: T = self.recv_internal(peer, tag)?;
                    val = op(val, other);
                }
            } else if self.rank % group == offset {
                self.send_internal(self.rank - offset, tag, val)?;
                return Ok(None);
            }
            offset = group;
        }
        if self.rank == 0 {
            Ok(Some(val))
        } else {
            Ok(None)
        }
    }

    /// Binomial-tree broadcast of a scalar from rank 0.
    fn bcast_scalar<T: Payload + Copy>(&mut self, x: Option<T>, tag: u32) -> Result<T, MpiError> {
        let mut offset = 1usize;
        while offset < self.size {
            offset <<= 1;
        }
        offset >>= 1;
        let mut val = x;
        while offset >= 1 {
            let group = 2 * offset;
            if self.rank.is_multiple_of(group) {
                let peer = self.rank + offset;
                if peer < self.size {
                    let Some(v) = val else {
                        return Err(MpiError::CollectiveProtocol {
                            what: "broadcast value missing on a sending hop",
                        });
                    };
                    self.send_internal(peer, tag, v)?;
                }
            } else if self.rank % group == offset {
                let v: T = self.recv_internal(self.rank - offset, tag)?;
                val = Some(v);
            }
            if offset == 1 {
                break;
            }
            offset /= 2;
        }
        val.ok_or(MpiError::CollectiveProtocol {
            what: "broadcast did not reach this rank",
        })
    }

    /// All-reduce a scalar with a commutative, associative operator.
    pub fn allreduce<T, F>(&mut self, x: T, op: F) -> Result<T, MpiError>
    where
        T: Payload + Copy,
        F: Fn(T, T) -> T,
    {
        if self.size == 1 {
            return Ok(x);
        }
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        let reduced = self.reduce_scalar(x, tag, op)?;
        self.bcast_scalar(reduced, tag)
    }

    /// Sum across all ranks.
    pub fn allreduce_sum(&mut self, x: f64) -> Result<f64, MpiError> {
        self.allreduce(x, |a, b| a + b)
    }

    /// Minimum across all ranks (the CFL timestep reduction).
    pub fn allreduce_min(&mut self, x: f64) -> Result<f64, MpiError> {
        self.allreduce(x, f64::min)
    }

    /// Maximum across all ranks.
    pub fn allreduce_max(&mut self, x: f64) -> Result<f64, MpiError> {
        self.allreduce(x, f64::max)
    }

    /// Maximum of a `u64` across all ranks (used for clock merging).
    pub fn allreduce_max_u64(&mut self, x: u64) -> Result<u64, MpiError> {
        self.allreduce(x, u64::max)
    }

    /// Synchronize all ranks in virtual time: every clock advances to
    /// the latest clock at entry (plus the collective's own cost). This
    /// is the bulk-synchronous step boundary.
    pub fn barrier(&mut self) -> Result<(), MpiError> {
        if self.size == 1 {
            return Ok(());
        }
        let t = self.allreduce_max_u64(self.clock.now().as_nanos())?;
        self.clock.wait_until(SimTime::from_nanos(t));
        Ok(())
    }

    /// Broadcast a scalar from rank 0 to everyone.
    pub fn bcast<T: Payload + Copy>(&mut self, x: T) -> Result<T, MpiError> {
        if self.size == 1 {
            return Ok(x);
        }
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        let val = if self.rank == 0 { Some(x) } else { None };
        self.bcast_scalar(val, tag)
    }

    /// Broadcast a vector from rank 0 (binomial tree; each hop pays
    /// wire time for the whole payload).
    pub fn bcast_vec(&mut self, x: Vec<f64>) -> Result<Vec<f64>, MpiError> {
        if self.size == 1 {
            return Ok(x);
        }
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        let mut offset = 1usize;
        while offset < self.size {
            offset <<= 1;
        }
        offset >>= 1;
        let mut val = if self.rank == 0 { Some(x) } else { None };
        while offset >= 1 {
            let group = 2 * offset;
            if self.rank.is_multiple_of(group) {
                let peer = self.rank + offset;
                if peer < self.size {
                    let Some(v) = val.as_ref() else {
                        return Err(MpiError::CollectiveProtocol {
                            what: "broadcast value missing on a sending hop",
                        });
                    };
                    self.send_internal(peer, tag, v.clone())?;
                }
            } else if self.rank % group == offset {
                let v: Vec<f64> = self.recv_internal(self.rank - offset, tag)?;
                val = Some(v);
            }
            if offset == 1 {
                break;
            }
            offset /= 2;
        }
        val.ok_or(MpiError::CollectiveProtocol {
            what: "broadcast did not reach this rank",
        })
    }

    /// Gather one vector per rank to rank 0 (rank order). Returns
    /// `Some(rows)` on rank 0, `None` elsewhere.
    pub fn gather_vec(&mut self, x: Vec<f64>) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        if self.rank == 0 {
            let mut out = Vec::with_capacity(self.size);
            out.push(x);
            for src in 1..self.size {
                out.push(self.recv_internal(src, tag)?);
            }
            Ok(Some(out))
        } else {
            self.send_internal(0, tag, x)?;
            Ok(None)
        }
    }

    /// Element-wise sum allreduce of equal-length vectors (binomial
    /// reduce to rank 0 + vector broadcast).
    pub fn allreduce_vec_sum(&mut self, mut x: Vec<f64>) -> Result<Vec<f64>, MpiError> {
        if self.size == 1 {
            return Ok(x);
        }
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        let mut offset = 1;
        let mut holds = true;
        while offset < self.size {
            let group = 2 * offset;
            if self.rank.is_multiple_of(group) {
                let peer = self.rank + offset;
                if peer < self.size {
                    let other: Vec<f64> = self.recv_internal(peer, tag)?;
                    if other.len() != x.len() {
                        return Err(MpiError::TypeMismatch { tag });
                    }
                    for (a, b) in x.iter_mut().zip(&other) {
                        *a += b;
                    }
                }
            } else if self.rank % group == offset {
                self.send_internal(self.rank - offset, tag, x.clone())?;
                holds = false;
                break;
            }
            offset = group;
        }
        let val = if holds && self.rank == 0 {
            Some(x)
        } else {
            None
        };
        // Reuse the vector broadcast for the down-sweep.
        let tag2 = self.next_coll_tag();
        let mut offset = 1usize;
        while offset < self.size {
            offset <<= 1;
        }
        offset >>= 1;
        let mut val = val;
        while offset >= 1 {
            let group = 2 * offset;
            if self.rank.is_multiple_of(group) {
                let peer = self.rank + offset;
                if peer < self.size {
                    let Some(v) = val.as_ref() else {
                        return Err(MpiError::CollectiveProtocol {
                            what: "reduced value missing on a down-sweep hop",
                        });
                    };
                    self.send_internal(peer, tag2, v.clone())?;
                }
            } else if self.rank % group == offset {
                let v: Vec<f64> = self.recv_internal(self.rank - offset, tag2)?;
                val = Some(v);
            }
            if offset == 1 {
                break;
            }
            offset /= 2;
        }
        val.ok_or(MpiError::CollectiveProtocol {
            what: "allreduce did not reach this rank",
        })
    }

    /// Gather one `f64` per rank to rank 0 (rank order). Returns
    /// `Some(values)` on rank 0, `None` elsewhere.
    pub fn gather_f64(&mut self, x: f64) -> Result<Option<Vec<f64>>, MpiError> {
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        if self.rank == 0 {
            let mut out = Vec::with_capacity(self.size);
            out.push(x);
            for src in 1..self.size {
                out.push(self.recv_internal(src, tag)?);
            }
            Ok(Some(out))
        } else {
            self.send_internal(0, tag, x)?;
            Ok(None)
        }
    }

    /// Personalized all-to-all of `f64` vectors: `parts[dst]` is this
    /// rank's payload for rank `dst` (`parts[rank]` stays local); the
    /// return value holds one inbound vector per source rank, in rank
    /// order. Transport is buffered (eager sends), so posting every
    /// send before the first receive cannot deadlock, and each leg
    /// pays the usual overhead + wire time — the collective that
    /// prices Lagrangian-particle migration.
    pub fn alltoallv_f64(&mut self, mut parts: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MpiError> {
        if parts.len() != self.size {
            return Err(MpiError::CollectiveProtocol {
                what: "alltoallv payload count differs from the world size",
            });
        }
        if self.size == 1 {
            return Ok(parts);
        }
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        // Post all sends first (even empty payloads, so every receive
        // has a matching message), then drain in rank order.
        for (dst, slot) in parts.iter_mut().enumerate() {
            if dst != self.rank {
                let payload = std::mem::take(slot);
                self.send_internal(dst, tag, payload)?;
            }
        }
        let mut inbound = Vec::with_capacity(self.size);
        for (src, slot) in parts.iter_mut().enumerate() {
            if src == self.rank {
                inbound.push(std::mem::take(slot));
            } else {
                inbound.push(self.recv_internal(src, tag)?);
            }
        }
        Ok(inbound)
    }

    /// Gather one `f64` per rank to every rank (gather + bcast of a
    /// vector would need vector bcast; with node-scale rank counts a
    /// linear exchange is fine).
    pub fn allgather_f64(&mut self, x: f64) -> Result<Vec<f64>, MpiError> {
        hsim_telemetry::count(hsim_telemetry::Counter::MpiCollectives, 1);
        let tag = self.next_coll_tag();
        let mut out = vec![0.0; self.size];
        out[self.rank] = x;
        // Ring exchange: send to the right, receive from the left,
        // size-1 times.
        let right = (self.rank + 1) % self.size;
        let left = (self.rank + self.size - 1) % self.size;
        let mut carry = (self.rank as u64, x);
        for _ in 0..self.size.saturating_sub(1) {
            self.send_internal(right, tag, vec![carry.0 as f64, carry.1])?;
            let got: Vec<f64> = self.recv_internal(left, tag)?;
            let (src, v) = (got[0] as usize, got[1]);
            out[src] = v;
            carry = (src as u64, v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    // Comm is only constructible through World; its behaviour is
    // exercised in `world.rs` tests and the crate's integration tests.
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn collective_tags_live_in_reserved_space() {
        assert!(COLL_TAG_BASE > u32::MAX / 2);
    }
}
