//! Typed message payloads.
//!
//! Anything sent through the simulated MPI must report its wire size so
//! the cost model can price it. Implementations exist for the types the
//! hydro code actually ships: field slices, byte buffers, and scalars.

/// A sendable message body.
pub trait Payload: Send + 'static {
    /// Size on the wire in bytes.
    fn byte_len(&self) -> u64;
}

impl Payload for Vec<f64> {
    fn byte_len(&self) -> u64 {
        (self.len() * std::mem::size_of::<f64>()) as u64
    }
}

impl Payload for Vec<u8> {
    fn byte_len(&self) -> u64 {
        self.len() as u64
    }
}

impl Payload for Vec<u64> {
    fn byte_len(&self) -> u64 {
        (self.len() * std::mem::size_of::<u64>()) as u64
    }
}

impl Payload for Vec<i64> {
    fn byte_len(&self) -> u64 {
        (self.len() * std::mem::size_of::<i64>()) as u64
    }
}

impl Payload for f64 {
    fn byte_len(&self) -> u64 {
        std::mem::size_of::<f64>() as u64
    }
}

impl Payload for u64 {
    fn byte_len(&self) -> u64 {
        std::mem::size_of::<u64>() as u64
    }
}

impl Payload for usize {
    fn byte_len(&self) -> u64 {
        std::mem::size_of::<usize>() as u64
    }
}

impl Payload for (f64, f64) {
    fn byte_len(&self) -> u64 {
        16
    }
}

impl Payload for () {
    fn byte_len(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lengths_match_memory_sizes() {
        assert_eq!(vec![1.0f64; 10].byte_len(), 80);
        assert_eq!(vec![0u8; 7].byte_len(), 7);
        assert_eq!(vec![0u64; 3].byte_len(), 24);
        assert_eq!(1.5f64.byte_len(), 8);
        assert_eq!(().byte_len(), 0);
        assert_eq!((1.0, 2.0).byte_len(), 16);
    }
}
