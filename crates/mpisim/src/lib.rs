//! # hsim-mpi
//!
//! An in-process MPI: the substrate standing in for the message-passing
//! runtime of the paper's testbed. Ranks are OS threads inside one
//! process; point-to-point messages travel over channels and carry the
//! sender's **virtual timestamp**, so simulated time propagates exactly
//! the way causality does in a real bulk-synchronous MPI code:
//!
//! * `send` charges the sender's clock a send overhead and stamps the
//!   message with its departure time;
//! * `recv` waits (in virtual time) until the message's arrival time
//!   `departure + α + bytes/β`, merging the two ranks' clocks
//!   Lamport-style;
//! * collectives are built from point-to-point trees, so their virtual
//!   cost scales `O(log p)` like real implementations.
//!
//! The paper's experiments all run on a single node (§7), so the
//! default [`CommCost`] models shared-memory MPI transport.
//!
//! ```
//! use hsim_mpi::{CommCost, World};
//!
//! let totals = World::run(4, CommCost::on_node(), |comm| {
//!     let rank_value = comm.rank() as f64;
//!     comm.allreduce_sum(rank_value).unwrap()
//! });
//! assert!(totals.iter().all(|&t| t == 6.0));
//! ```

#![forbid(unsafe_code)]

pub mod comm;
pub mod cost;
pub mod error;
pub mod payload;
pub mod topology;
pub mod world;

pub use comm::{Comm, RecvRequest};
pub use cost::CommCost;
pub use error::MpiError;
pub use payload::Payload;
pub use topology::CartComm;
pub use world::World;
