//! Deterministic fault injection for the simulated heterogeneous stack.
//!
//! A [`FaultPlan`] is a small, fully explicit list of failures to
//! provoke at named sites — GPU launch failure, device OOM, MPS client
//! rejection, transfer delay/corruption, rank loss, worker-pool panic.
//! Plans come from a textual spec (the CLI's `--faults` flag) or from a
//! seed, and everything downstream is deterministic: the same plan and
//! simulation seed must produce byte-identical recovery traces.
//!
//! # Spec grammar
//!
//! ```text
//! plan    := event (';' event)*
//! event   := site '@' 'rank' N '.' 'cycle' M (':' opt (',' opt)*)?
//! site    := 'gpu.launch' | 'gpu.oom' | 'mps.connect' | 'xfer.delay'
//!          | 'xfer.corrupt' | 'rank.loss' | 'pool.panic'
//! opt     := 'perm' | 'count=' N | 'ns=' N
//! ```
//!
//! Examples:
//!
//! ```text
//! xfer.delay@rank1.cycle2:ns=200000
//! gpu.launch@rank0.cycle3:count=2;rank.loss@rank5.cycle4
//! ```
//!
//! `rank.loss` is permanent by default; every other site defaults to a
//! single transient occurrence (recovered by bounded retry-with-backoff
//! charged to the *virtual* clocks). `perm` makes any site permanent,
//! which recovery must surface as a typed error or a degraded
//! decomposition — never a panic or hang.
//!
//! # Injection model
//!
//! Rank threads install a thread-local injector
//! ([`install`]/[`uninstall`], mirroring the telemetry collector
//! pattern) and advance it with [`set_cycle`]; instrumented sites call
//! [`check`], which consumes at most one matching event per call. Code
//! running on the coordinating thread (e.g. MPS connect during device
//! setup) queries the plan directly via [`FaultPlan::of_site`]. When no
//! injector is installed every check is a branch-and-return: fault-free
//! runs pay nothing and change no behavior.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::sync::Arc;

use hsim_time::{rng::SplitMix64, SimDuration};

/// Named injection sites, one per failure class the stack models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// GPU kernel launch failure (retried in the executor).
    GpuLaunch,
    /// Device out-of-memory during unified-memory setup.
    GpuOom,
    /// MPS client rejected at connect time.
    MpsConnect,
    /// Halo transfer stalls; recovery charges the delay and goes on.
    XferDelay,
    /// Halo transfer corrupted; recovery re-stages and re-sends.
    XferCorrupt,
    /// An MPI rank drops out of the job.
    RankLoss,
    /// A worker thread panics inside a parallel region.
    PoolPanic,
}

impl Site {
    /// Every site, in spec-name order (stable for seeded plans).
    pub const ALL: [Site; 7] = [
        Site::GpuLaunch,
        Site::GpuOom,
        Site::MpsConnect,
        Site::XferDelay,
        Site::XferCorrupt,
        Site::RankLoss,
        Site::PoolPanic,
    ];

    /// The dotted name used in fault specs.
    pub fn spec_name(&self) -> &'static str {
        match self {
            Site::GpuLaunch => "gpu.launch",
            Site::GpuOom => "gpu.oom",
            Site::MpsConnect => "mps.connect",
            Site::XferDelay => "xfer.delay",
            Site::XferCorrupt => "xfer.corrupt",
            Site::RankLoss => "rank.loss",
            Site::PoolPanic => "pool.panic",
        }
    }

    /// Parse a dotted spec name.
    pub fn from_spec(name: &str) -> Result<Site, String> {
        Site::ALL
            .iter()
            .copied()
            .find(|s| s.spec_name() == name)
            .ok_or_else(|| format!("unknown fault site {name:?}"))
    }
}

/// How long a fault lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails `count` attempts, then the operation succeeds; recovery
    /// is bounded retry-with-backoff charged to virtual time.
    Transient { count: u32 },
    /// Never succeeds; recovery must degrade or return a typed error.
    Permanent,
}

/// One planned failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: Site,
    /// MPI rank the fault targets.
    pub rank: usize,
    /// Cycle at which it fires (setup-time sites use cycle 0).
    pub cycle: u64,
    pub severity: Severity,
    /// Site-specific parameter (`ns=` in specs): the stall for
    /// `xfer.delay`, ignored elsewhere.
    pub param: u64,
}

/// Default `xfer.delay` stall when the spec omits `ns=`.
pub const DEFAULT_XFER_DELAY_NS: u64 = 200_000;

/// Retry budget for transient faults before they are escalated.
pub const MAX_RETRIES: u32 = 3;

/// First retry backoff; doubles per attempt (virtual time).
pub const BACKOFF_BASE_NS: u64 = 50_000;

/// Virtual-time backoff before retry `attempt` (0-based): exponential,
/// `BACKOFF_BASE_NS << attempt`.
pub fn backoff_delay(attempt: u32) -> SimDuration {
    SimDuration::from_nanos(BACKOFF_BASE_NS << attempt.min(MAX_RETRIES))
}

/// A deterministic list of failures to inject into one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with a single event using the site's default severity.
    pub fn single(site: Site, rank: usize, cycle: u64) -> FaultPlan {
        FaultPlan {
            events: vec![FaultEvent {
                site,
                rank,
                cycle,
                severity: default_severity(site),
                param: default_param(site),
            }],
        }
    }

    /// Parse the textual spec grammar (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (head, opts) = match part.split_once(':') {
                Some((h, o)) => (h, o),
                None => (part, ""),
            };
            let (site_s, at) = head
                .split_once('@')
                .ok_or_else(|| format!("fault {part:?}: missing '@rankN.cycleM'"))?;
            let site = Site::from_spec(site_s.trim())?;
            let (rank_s, cycle_s) = at
                .split_once('.')
                .ok_or_else(|| format!("fault {part:?}: expected rankN.cycleM, got {at:?}"))?;
            let rank: usize = rank_s
                .strip_prefix("rank")
                .ok_or_else(|| format!("fault {part:?}: expected rankN, got {rank_s:?}"))?
                .parse()
                .map_err(|e| format!("fault {part:?}: bad rank: {e}"))?;
            let cycle: u64 = cycle_s
                .strip_prefix("cycle")
                .ok_or_else(|| format!("fault {part:?}: expected cycleM, got {cycle_s:?}"))?
                .parse()
                .map_err(|e| format!("fault {part:?}: bad cycle: {e}"))?;
            let mut severity = default_severity(site);
            let mut param = default_param(site);
            for opt in opts.split(',').map(str::trim).filter(|o| !o.is_empty()) {
                if opt == "perm" {
                    severity = Severity::Permanent;
                } else if let Some(v) = opt.strip_prefix("count=") {
                    let count = v
                        .parse()
                        .map_err(|e| format!("fault {part:?}: bad count: {e}"))?;
                    severity = Severity::Transient { count };
                } else if let Some(v) = opt.strip_prefix("ns=") {
                    param = v
                        .parse()
                        .map_err(|e| format!("fault {part:?}: bad ns: {e}"))?;
                } else {
                    return Err(format!("fault {part:?}: unknown option {opt:?}"));
                }
            }
            events.push(FaultEvent {
                site,
                rank,
                cycle,
                severity,
                param,
            });
        }
        Ok(FaultPlan { events })
    }

    /// A single-event plan drawn deterministically from `seed`: equal
    /// seeds yield equal plans for equal `(ranks, cycles)` bounds.
    pub fn seeded(seed: u64, ranks: usize, cycles: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let site = Site::ALL[rng.next_below(Site::ALL.len() as u64) as usize];
        let rank = rng.next_below(ranks.max(1) as u64) as usize;
        let cycle = rng.next_below(cycles.max(1));
        FaultPlan::single(site, rank, cycle)
    }

    /// Round-trip the plan back to its textual spec.
    pub fn spec(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&format!(
                "{}@rank{}.cycle{}",
                e.site.spec_name(),
                e.rank,
                e.cycle
            ));
            let mut opts = Vec::new();
            if e.severity != default_severity(e.site) {
                match e.severity {
                    Severity::Permanent => opts.push("perm".to_string()),
                    Severity::Transient { count } => opts.push(format!("count={count}")),
                }
            }
            if e.param != default_param(e.site) {
                opts.push(format!("ns={}", e.param));
            }
            if !opts.is_empty() {
                out.push(':');
                out.push_str(&opts.join(","));
            }
        }
        out
    }

    /// Events targeting `site`, in plan order.
    pub fn of_site(&self, site: Site) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.site == site)
    }

    /// `(rank, cycle)` of every permanent rank loss, in plan order.
    pub fn rank_losses(&self) -> Vec<(usize, u64)> {
        self.of_site(Site::RankLoss)
            .filter(|e| e.severity == Severity::Permanent)
            .map(|e| (e.rank, e.cycle))
            .collect()
    }

    /// Cycle numbers at which a permanent rank loss interrupts a run
    /// of `cycles` total, sorted and deduplicated. These are the
    /// segment boundaries a controller-aware runner must break at, so
    /// rank-loss recovery and online re-splits compose on the same
    /// checkpoint/restart machinery.
    pub fn loss_boundaries(&self, cycles: u64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .rank_losses()
            .into_iter()
            .map(|(_, c)| c)
            .filter(|&c| c < cycles)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn default_severity(site: Site) -> Severity {
    match site {
        Site::RankLoss => Severity::Permanent,
        _ => Severity::Transient { count: 1 },
    }
}

fn default_param(site: Site) -> u64 {
    match site {
        Site::XferDelay => DEFAULT_XFER_DELAY_NS,
        _ => 0,
    }
}

/// What an instrumented site learns when a planned fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultHit {
    pub site: Site,
    pub severity: Severity,
    pub param: u64,
}

struct Injector {
    rank: usize,
    cycle: u64,
    plan: Arc<FaultPlan>,
    consumed: Vec<bool>,
}

thread_local! {
    static INJECTOR: RefCell<Option<Injector>> = const { RefCell::new(None) };
}

/// Arm fault injection on this thread for `rank`. Pairs with
/// [`uninstall`]; nested installs replace the previous injector.
pub fn install(rank: usize, plan: Arc<FaultPlan>) {
    INJECTOR.with(|inj| {
        let consumed = vec![false; plan.events.len()];
        *inj.borrow_mut() = Some(Injector {
            rank,
            cycle: 0,
            plan,
            consumed,
        });
    });
}

/// Disarm fault injection on this thread.
pub fn uninstall() {
    INJECTOR.with(|inj| *inj.borrow_mut() = None);
}

/// True when a fault plan is armed on this thread.
pub fn is_installed() -> bool {
    INJECTOR.with(|inj| inj.borrow().is_some())
}

/// Advance the injector to `cycle`; events fire only on their cycle.
pub fn set_cycle(cycle: u64) {
    INJECTOR.with(|inj| {
        if let Some(inj) = inj.borrow_mut().as_mut() {
            inj.cycle = cycle;
        }
    });
}

/// Consume and return the first unconsumed event matching `site` on
/// this thread's rank at the current cycle, if any. No injector → no
/// fault, no cost.
pub fn check(site: Site) -> Option<FaultHit> {
    INJECTOR.with(|inj| {
        let mut borrow = inj.borrow_mut();
        let inj = borrow.as_mut()?;
        for (i, e) in inj.plan.events.iter().enumerate() {
            if !inj.consumed[i] && e.site == site && e.rank == inj.rank && e.cycle == inj.cycle {
                inj.consumed[i] = true;
                return Some(FaultHit {
                    site,
                    severity: e.severity,
                    param: e.param,
                });
            }
        }
        None
    })
}

/// Marker payload for an injected worker panic: the pool's poison path
/// downcasts to this type to tell a planned chaos panic (retry the
/// region once) from a genuine bug (propagate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedWorkerPanic;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan =
            FaultPlan::parse("xfer.delay@rank1.cycle2:ns=123;rank.loss@rank5.cycle4").unwrap();
        assert_eq!(plan.events.len(), 2);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                site: Site::XferDelay,
                rank: 1,
                cycle: 2,
                severity: Severity::Transient { count: 1 },
                param: 123,
            }
        );
        assert_eq!(
            plan.events[1],
            FaultEvent {
                site: Site::RankLoss,
                rank: 5,
                cycle: 4,
                severity: Severity::Permanent,
                param: 0,
            }
        );
        assert_eq!(plan.rank_losses(), vec![(5, 4)]);
    }

    #[test]
    fn loss_boundaries_sort_dedup_and_clip_to_the_run() {
        let plan = FaultPlan::parse(
            "rank.loss@rank5.cycle4;xfer.delay@rank1.cycle2;rank.loss@rank6.cycle2;\
             rank.loss@rank7.cycle4;rank.loss@rank8.cycle99",
        )
        .unwrap();
        assert_eq!(plan.loss_boundaries(10), vec![2, 4]);
        assert_eq!(plan.loss_boundaries(3), vec![2]);
        // Transient losses are not boundaries.
        let transient = FaultPlan::parse("rank.loss@rank5.cycle4:count=1").unwrap();
        assert!(transient.loss_boundaries(10).is_empty());
    }

    #[test]
    fn parses_severity_options() {
        let plan = FaultPlan::parse("gpu.launch@rank0.cycle3:count=2").unwrap();
        assert_eq!(plan.events[0].severity, Severity::Transient { count: 2 });
        let plan = FaultPlan::parse("gpu.oom@rank2.cycle0:perm").unwrap();
        assert_eq!(plan.events[0].severity, Severity::Permanent);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "gpu.launch",
            "nosuch.site@rank0.cycle0",
            "gpu.launch@rank0",
            "gpu.launch@core0.cycle1",
            "gpu.launch@rank0.cycle1:bogus=3",
            "gpu.launch@rankX.cycle1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ").unwrap().is_empty());
    }

    #[test]
    fn spec_round_trips() {
        for spec in [
            "gpu.launch@rank0.cycle3",
            "xfer.delay@rank1.cycle2:ns=123",
            "gpu.launch@rank0.cycle3:count=2",
            "rank.loss@rank5.cycle4",
            "xfer.delay@rank1.cycle2:ns=123;rank.loss@rank5.cycle4",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan, "{spec}");
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_bounds() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 16, 10);
            let b = FaultPlan::seeded(seed, 16, 10);
            assert_eq!(a, b);
            assert_eq!(a.events.len(), 1);
            assert!(a.events[0].rank < 16);
            assert!(a.events[0].cycle < 10);
        }
        // Different seeds explore different sites eventually.
        let distinct: std::collections::HashSet<_> = (0..64)
            .map(|s| FaultPlan::seeded(s, 16, 10).events[0].site.spec_name())
            .collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn injector_fires_once_on_the_right_rank_and_cycle() {
        let plan = Arc::new(FaultPlan::parse("gpu.launch@rank3.cycle2").unwrap());
        install(3, plan.clone());
        assert!(is_installed());
        assert!(check(Site::GpuLaunch).is_none(), "cycle 0: nothing");
        set_cycle(2);
        assert!(check(Site::GpuOom).is_none(), "wrong site");
        let hit = check(Site::GpuLaunch).expect("fires at rank3.cycle2");
        assert_eq!(hit.severity, Severity::Transient { count: 1 });
        assert!(check(Site::GpuLaunch).is_none(), "consumed");
        uninstall();
        assert!(!is_installed());

        // The wrong rank never sees it.
        install(1, plan);
        set_cycle(2);
        assert!(check(Site::GpuLaunch).is_none());
        uninstall();
    }

    #[test]
    fn no_injector_means_no_faults() {
        uninstall();
        assert!(check(Site::XferDelay).is_none());
        assert!(!is_installed());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        assert_eq!(backoff_delay(0), SimDuration::from_nanos(BACKOFF_BASE_NS));
        assert_eq!(
            backoff_delay(1),
            SimDuration::from_nanos(BACKOFF_BASE_NS * 2)
        );
        assert_eq!(backoff_delay(MAX_RETRIES), backoff_delay(MAX_RETRIES + 9));
    }
}
