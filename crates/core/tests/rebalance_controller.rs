//! Property suite for the online rebalancing controller: the weights
//! are always a partition of the work, the `12/ny` granularity guard
//! is never violated, hysteresis keeps a steady machine from
//! oscillating, and the decision sequence is a pure function of the
//! measured timings (the byte-identical-replay contract the chaos CI
//! job checks end to end).

use hsim_core::balance::RebalanceDecision;
use hsim_core::{RebalanceConfig, Rebalancer};
use hsim_time::SimDuration;
use proptest::prelude::*;

fn controller(start: f64, hysteresis: f64, guard: f64) -> Rebalancer {
    let mut rb = Rebalancer::new(
        start,
        &RebalanceConfig {
            every: 2,
            hysteresis,
        },
    );
    rb.set_min_fraction(guard);
    rb
}

fn nanos(ns: u64) -> SimDuration {
    SimDuration::from_nanos(ns)
}

proptest! {
    /// After any sequence of observations and realized-split
    /// notifications, the CPU/GPU weights partition the work and the
    /// fraction stays inside `[max(12/ny, 1e-4), 0.5]`.
    #[test]
    fn weights_partition_and_never_break_the_guard(
        ny in 24usize..=480,
        start in 0.01f64..0.5,
        hysteresis in 0.0f64..0.2,
        timings in prop::collection::vec((1u64..2_000_000_000, 1u64..2_000_000_000), 1..24),
        realized in prop::collection::vec(0.0f64..1.0, 1..24),
    ) {
        let guard = 12.0 / ny as f64;
        let mut rb = controller(start, hysteresis, guard);
        let floor = guard.max(1e-4);
        for (i, &(t_cpu, t_gpu)) in timings.iter().enumerate() {
            let decision = rb.observe(nanos(t_cpu), nanos(t_gpu));
            if let RebalanceDecision::Resplit { fraction, .. } = decision {
                prop_assert!(fraction >= floor - 1e-12, "resplit below guard: {fraction} < {floor}");
                prop_assert!(fraction <= 0.5 + 1e-12);
                // Plane rounding may move the request anywhere; the
                // controller must clamp what it records.
                rb.note_realized(realized[i % realized.len()]);
            }
            let (w_cpu, w_gpu) = rb.weights();
            prop_assert!((w_cpu + w_gpu - 1.0).abs() < 1e-12, "weights {w_cpu} + {w_gpu} != 1");
            prop_assert!(rb.fraction >= floor - 1e-12, "fraction {} below guard {floor}", rb.fraction);
            prop_assert!(rb.fraction <= 0.5 + 1e-12);
        }
    }

    /// The analytic optimum itself respects the guard and the 0.5
    /// ceiling for every positive rate pair.
    #[test]
    fn analytic_optimum_respects_the_guard(
        r_cpu in 1e-6f64..1e6,
        r_gpu in 1e-6f64..1e6,
        ny in 24usize..=480,
    ) {
        let guard = 12.0 / ny as f64;
        let f = Rebalancer::analytic_optimum(r_cpu, r_gpu, 1.0, guard);
        prop_assert!(f >= guard.max(1e-4) - 1e-12);
        prop_assert!(f <= 0.5 + 1e-12);
    }

    /// On a steady machine (true rates fixed, measurements exact) the
    /// controller re-splits at most once and then holds: hysteresis
    /// prevents oscillation around the balance point.
    #[test]
    fn hysteresis_prevents_oscillation_on_a_steady_machine(
        r_cpu in 0.05f64..20.0,
        r_gpu in 0.05f64..20.0,
        start in 0.02f64..0.5,
        hysteresis in 0.01f64..0.2,
        boundaries in 4usize..30,
    ) {
        let mut rb = controller(start, hysteresis, 0.0);
        for _ in 0..boundaries {
            let f = rb.fraction;
            let t_cpu = SimDuration::from_secs_f64(f / r_cpu);
            let t_gpu = SimDuration::from_secs_f64((1.0 - f) / r_gpu);
            if let RebalanceDecision::Resplit { fraction, .. } = rb.observe(t_cpu, t_gpu) {
                rb.note_realized(fraction);
            }
        }
        prop_assert!(rb.resplits() <= 1, "oscillation: {} resplits ({:?})", rb.resplits(), rb.history);
        // Once it moved, it stayed: every post-resplit entry is the
        // same realized fraction.
        if let Some(first_resplit) = rb
            .decisions
            .iter()
            .position(|d| matches!(d, RebalanceDecision::Resplit { .. }))
        {
            let settled = rb.history[first_resplit + 1];
            for (i, &f) in rb.history.iter().enumerate().skip(first_resplit + 1) {
                prop_assert!(
                    (f - settled).abs() < 1e-12,
                    "drifted after the resplit at entry {i}: {f} vs {settled}"
                );
            }
        }
    }

    /// The decision sequence is a pure function of the timings: two
    /// controllers fed the same measurements produce identical
    /// histories and identical decisions — the unit-level face of the
    /// same-seed byte-identical replay the chaos job enforces.
    #[test]
    fn same_timings_produce_the_same_resplit_sequence(
        start in 0.01f64..0.5,
        hysteresis in 0.0f64..0.2,
        guard in 0.0f64..0.3,
        timings in prop::collection::vec((1u64..2_000_000_000, 1u64..2_000_000_000), 1..32),
    ) {
        let mut a = controller(start, hysteresis, guard);
        let mut b = controller(start, hysteresis, guard);
        for &(t_cpu, t_gpu) in &timings {
            let da = a.observe(nanos(t_cpu), nanos(t_gpu));
            let db = b.observe(nanos(t_cpu), nanos(t_gpu));
            prop_assert_eq!(da, db);
            if let RebalanceDecision::Resplit { fraction, .. } = da {
                a.note_realized(fraction);
                b.note_realized(fraction);
            }
        }
        prop_assert_eq!(&a.history, &b.history);
        prop_assert_eq!(&a.decisions, &b.decisions);
        prop_assert_eq!(a.rates(), b.rates());
    }
}
