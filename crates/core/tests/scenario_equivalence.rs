//! Scenario output is byte-identical across execution knobs that must
//! never touch physics: `--host-threads` (host-side parallelism of
//! the fused kernels) and `--tile` (the cache-blocking shape).
//!
//! Every first-class scenario runs at full fidelity with the particle
//! phase on, in both CpuOnly and Heterogeneous modes, and the
//! physical fingerprint — mass, the scenario's analytic-error metric,
//! end time, and the particle set — is compared bit for bit against
//! the serial untiled baseline. This is the in-process half of the
//! CI scenario×mode chaos matrix (which checks the same property
//! across whole processes via trace/metrics diffs).

use hsim_core::runner::{run, RunConfig};
use hsim_core::{ExecMode, Scenario};
use hsim_particles::ParticlesConfig;
use hsim_raja::Fidelity;

/// The physical output of a run, bit-exact. Virtual runtime is
/// deliberately excluded: host-thread count changes the simulated
/// node's kernel cost model, not the physics.
fn physics_fingerprint(cfg: &RunConfig) -> Vec<u64> {
    let r = run(cfg).expect("scenario run");
    let sc = r.scenario.expect("scenario problems carry an outcome");
    let p = r.particles.expect("particles were configured");
    vec![
        r.mass.expect("full fidelity reports mass").to_bits(),
        sc.t_end.to_bits(),
        sc.error.map_or(0, f64::to_bits),
        p.count,
        p.momentum[0].to_bits(),
        p.momentum[1].to_bits(),
        p.momentum[2].to_bits(),
        p.checksum,
    ]
}

fn scenario_cfg(s: Scenario, mode: ExecMode) -> RunConfig {
    let mut cfg = RunConfig::sweep((32, 24, 16), mode);
    cfg.problem = s.problem();
    cfg.fidelity = Fidelity::Full;
    cfg.cycles = 3;
    cfg.particles = Some(ParticlesConfig {
        count: 128,
        ..ParticlesConfig::default()
    });
    cfg
}

#[test]
fn every_scenario_is_bitwise_invariant_to_host_threads_and_tiles() {
    for s in Scenario::ALL {
        for mode in [ExecMode::CpuOnly, ExecMode::hetero()] {
            let base_cfg = scenario_cfg(s, mode);
            let base = physics_fingerprint(&base_cfg);

            type Tweak = Box<dyn Fn(&mut RunConfig)>;
            let variants: [(&str, Tweak); 3] = [
                ("host-threads 4", Box::new(|c| c.host_threads = 4)),
                ("ragged tile 3x5", Box::new(|c| c.tile = Some([3, 5]))),
                (
                    "host-threads 2 + tile 8x8",
                    Box::new(|c| {
                        c.host_threads = 2;
                        c.tile = Some([8, 8]);
                    }),
                ),
            ];
            for (label, tweak) in variants {
                let mut cfg = scenario_cfg(s, mode);
                tweak(&mut cfg);
                assert_eq!(
                    base,
                    physics_fingerprint(&cfg),
                    "{} / {:?}: {label} changed the physics",
                    s.name(),
                    mode,
                );
            }
        }
    }
}

#[test]
fn scenarios_report_their_metrics_at_full_fidelity() {
    for s in Scenario::ALL {
        let cfg = scenario_cfg(s, ExecMode::CpuOnly);
        let r = run(&cfg).expect("scenario run");
        let sc = r.scenario.expect("outcome present");
        assert_eq!(sc.name, s.name());
        match s {
            // Sedov has no pointwise reference.
            Scenario::Sedov => assert_eq!(sc.error, None),
            _ => {
                let e = sc.error.expect("analytic metric present");
                assert!(e.is_finite() && e >= 0.0, "{}: error {e}", s.name());
            }
        }
    }
}
