//! Property suite for the tracer-particle phase: particle totals
//! (count, momentum, content checksum) are conserved across online
//! re-splits and rank-loss foldback.
//!
//! The physics contract is stronger than "nothing got lost": because
//! the hydro field is decomposition-invariant and per-particle
//! advection is a pure function of (particle, field, cycle), the
//! *final particle set* must be bitwise identical whether the run
//! stayed on its static split, re-split every few cycles under the
//! online controller, or folded a lost rank's slab back mid-run.
//! Ownership moves; particles don't change.

use hsim_core::runner::{run, Problem, RunConfig};
use hsim_core::{ExecMode, RebalanceConfig, Scenario};
use hsim_particles::ParticlesConfig;
use proptest::prelude::*;

/// A hetero-mode config with the particle phase on. Cost-only
/// fidelity: the synthetic per-cycle drift keeps migration active
/// without paying for real hydro, exactly like the chaos CI legs.
fn particle_cfg(problem: Problem, count: u64, drag: f64, seed: u64, cycles: u64) -> RunConfig {
    let mut cfg = RunConfig::sweep((32, 96, 16), ExecMode::hetero());
    cfg.problem = problem;
    cfg.cycles = cycles;
    cfg.particles = Some(ParticlesConfig { count, drag, seed });
    cfg
}

/// The conserved fingerprint of a finished run's particle phase.
fn fingerprint(cfg: &RunConfig) -> (u64, [u64; 3], u64) {
    let r = run(cfg).expect("particle run");
    let p = r.particles.expect("particles were configured");
    (
        p.count,
        [
            p.momentum[0].to_bits(),
            p.momentum[1].to_bits(),
            p.momentum[2].to_bits(),
        ],
        p.checksum,
    )
}

proptest! {

    /// Intact vs controller-resplit vs rank-loss-foldback: all three
    /// end with the full particle count and bitwise-identical
    /// momentum and content checksums.
    #[test]
    fn totals_survive_resplits_and_foldback(
        which in 0usize..4,
        count in 16u64..128,
        drag in 0.5f64..8.0,
        seed in 0u64..u64::MAX,
        cycles in 4u64..7,
    ) {
        let problem = Scenario::ALL[which].problem();
        let intact = particle_cfg(problem.clone(), count, drag, seed, cycles);

        let mut resplit = intact.clone();
        resplit.rebalance = Some(RebalanceConfig {
            every: 2,
            hysteresis: 0.0,
        });

        let mut folded = intact.clone();
        folded.faults = Some(
            hsim_core::faults::FaultPlan::parse("rank.loss@rank5.cycle2").expect("plan parses"),
        );

        let a = fingerprint(&intact);
        let b = fingerprint(&resplit);
        let c = fingerprint(&folded);
        prop_assert_eq!(a.0, count, "intact run lost particles");
        prop_assert_eq!(&a, &b, "online re-splits changed the particle totals");
        prop_assert_eq!(&a, &c, "rank-loss foldback changed the particle totals");
    }
}

/// The synthetic drift actually crosses slab boundaries: a run with
/// enough particles must record cross-rank migrations, otherwise the
/// conservation assertions above are vacuous.
#[test]
fn migration_is_exercised_and_conserves() {
    let cfg = particle_cfg(Scenario::Sod.problem(), 512, 4.0, 2018, 6);
    let r = run(&cfg).expect("migration run");
    let p = r.particles.expect("particles were configured");
    assert_eq!(p.count, 512);
    assert!(
        p.migrated > 0,
        "no particle ever changed ranks; the drift or ownership test is broken"
    );
}

/// Full-fidelity spot check: the same three-way invariance holds when
/// particles ride the real hydro field (drag entrainment, CFL dt).
#[test]
fn full_fidelity_totals_survive_resplits_and_foldback() {
    use hsim_raja::Fidelity;
    let mut intact = particle_cfg(Scenario::Sod.problem(), 64, 4.0, 7, 4);
    intact.fidelity = Fidelity::Full;

    let mut resplit = intact.clone();
    resplit.rebalance = Some(RebalanceConfig {
        every: 2,
        hysteresis: 0.0,
    });

    let mut folded = intact.clone();
    folded.faults =
        Some(hsim_core::faults::FaultPlan::parse("rank.loss@rank5.cycle2").expect("plan parses"));

    let a = fingerprint(&intact);
    let b = fingerprint(&resplit);
    let c = fingerprint(&folded);
    assert_eq!(a.0, 64);
    assert_eq!(a, b, "full-fidelity re-splits changed the particle totals");
    assert_eq!(a, c, "full-fidelity foldback changed the particle totals");
}
