//! `calib::seed_tile` needs its own process: the tile cache is a
//! process-wide `OnceLock`, and the in-crate unit tests already claim
//! it via the `auto_tile` probe. Integration tests compile to a
//! separate binary, so this file observes a *fresh* cache.

use hsim_core::calib;

#[test]
fn seed_wins_when_first_and_probe_then_agrees() {
    // Seed a shape the wall-clock probe may well not pick; because we
    // get here before any probe, the seed must win...
    let seeded = calib::seed_tile([16, 16]);
    assert_eq!(seeded, [16, 16], "first seed populates the cache");
    // ...and every later calibration call sees the seeded value
    // instead of re-probing: calibrate-once-then-share. A pinned
    // shape applies to every worker count, not just the serial path.
    assert_eq!(calib::auto_tile(), [16, 16]);
    assert_eq!(calib::auto_tile_for(4), [16, 16]);
    // A conflicting later seed loses — first write is sticky, so
    // concurrent requests in a server always agree on one shape.
    assert_eq!(calib::seed_tile([4, 4]), [16, 16]);
}
