//! End-to-end telemetry contracts on a small Sedov run: output
//! determinism, Chrome trace shape, and profiler/report agreement.

use hsim_core::{run_balanced, runner, ExecMode, NodeConfig, RunConfig, RunResult};
use hsim_raja::Fidelity;

/// A small Heterogeneous Sedov problem with full telemetry on.
fn telemetry_cfg() -> RunConfig {
    RunConfig {
        grid: (48, 48, 32),
        mode: ExecMode::hetero(),
        node: NodeConfig::rzhasgpu(),
        cycles: 3,
        fidelity: Fidelity::CostOnly,
        gpu_direct: false,
        diffusion: None,
        multipolicy_threshold: 0,
        trace: false,
        telemetry: true,
        problem: runner::Problem::default(),
        faults: None,
        rebalance: None,
        host_threads: 1,
        tile: None,
        particles: None,
    }
}

fn run_summary(cfg: &RunConfig) -> (RunResult, hsim_telemetry::Summary) {
    let (result, _lb) = run_balanced(cfg).expect("telemetry run");
    let summary = result.telemetry.clone().expect("telemetry requested");
    (result, summary)
}

#[test]
fn same_config_produces_byte_identical_telemetry() {
    let cfg = telemetry_cfg();
    let (_, a) = run_summary(&cfg);
    let (_, b) = run_summary(&cfg);
    assert_eq!(
        a.to_metrics_json(),
        b.to_metrics_json(),
        "metrics JSON must be deterministic"
    );
    assert_eq!(
        a.to_chrome_json(),
        b.to_chrome_json(),
        "span stream must be deterministic"
    );
    assert_eq!(a.to_kernel_csv(), b.to_kernel_csv());
}

#[test]
fn chrome_trace_has_required_fields_and_categories() {
    let (_, summary) = run_summary(&telemetry_cfg());
    let json = summary.to_chrome_json();
    // Chrome trace-event envelope with complete events.
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    for field in [
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"pid\":",
        "\"tid\":",
        "\"dur\":",
    ] {
        assert!(json.contains(field), "missing {field}");
    }
    // Process-name metadata so Perfetto labels rank/device timelines.
    assert!(json.contains("\"ph\":\"M\""));
    let cats = summary.categories();
    assert!(
        cats.len() >= 4,
        "expected spans from >=4 categories, got {cats:?}"
    );
    for want in ["gpu_kernel", "cpu_kernel", "mpi_collective", "phase"] {
        assert!(cats.contains(want), "missing category {want} in {cats:?}");
    }
    // Balanced braces/brackets as a cheap well-formedness check.
    let balance = |open: char, close: char| {
        json.chars().filter(|&c| c == open).count() == json.chars().filter(|&c| c == close).count()
    };
    assert!(balance('{', '}') && balance('[', ']'));
}

#[test]
fn kernel_profiles_match_report_totals() {
    let (result, summary) = run_summary(&telemetry_cfg());
    // Every dispatch is profiled exactly once (host paths at launch,
    // device paths at sync drain), so the profiler, the metrics
    // counters, and the RankReport accounting must all agree.
    assert_eq!(summary.kernels.total_launches(), result.total_launches());
    assert_eq!(
        summary
            .metrics
            .counter(hsim_telemetry::Counter::KernelLaunches),
        result.total_launches()
    );
    assert_eq!(
        summary
            .metrics
            .counter(hsim_telemetry::Counter::MpiBytesSent),
        result.total_bytes_sent()
    );
    // Sends and receives pair up on a closed node.
    assert_eq!(
        summary.metrics.counter(hsim_telemetry::Counter::MpiSends),
        summary.metrics.counter(hsim_telemetry::Counter::MpiRecvs),
    );
    // Per-cycle bookkeeping: each rank counts every cycle.
    assert_eq!(
        summary.metrics.counter(hsim_telemetry::Counter::Cycles),
        result.cycles * result.ranks.len() as u64
    );
    // The metrics JSON carries its schema version for archives.
    assert!(summary.to_metrics_json().contains("\"schema_version\": 1"));
}

#[test]
fn telemetry_off_leaves_result_lean() {
    let cfg = RunConfig {
        telemetry: false,
        ..telemetry_cfg()
    };
    let (result, _lb) = run_balanced(&cfg).expect("plain run");
    assert!(result.telemetry.is_none());
    assert!(result.trace.is_none());
}

#[test]
fn telemetry_does_not_change_virtual_time() {
    let plain = RunConfig {
        telemetry: false,
        ..telemetry_cfg()
    };
    let (r0, _) = run_balanced(&plain).expect("plain run");
    let (r1, _) = run_balanced(&telemetry_cfg()).expect("telemetry run");
    assert_eq!(
        r0.runtime, r1.runtime,
        "observability must never charge virtual time"
    );
    assert_eq!(r0.total_launches(), r1.total_launches());
}
