//! Run results and CSV reporting.

use hsim_time::SimDuration;

use crate::binding::RankRole;

/// One rank's virtual-time accounting for a run.
#[derive(Debug, Clone)]
pub struct RankReport {
    pub rank: usize,
    pub role: RankRole,
    pub zones: u64,
    /// One-time setup cost (memory scheme fault-in etc.), excluded
    /// from `total`.
    pub setup: SimDuration,
    /// Cycle-loop runtime (post-setup).
    pub total: SimDuration,
    pub compute: SimDuration,
    pub launch: SimDuration,
    pub memory: SimDuration,
    pub comm: SimDuration,
    pub control: SimDuration,
    pub wait: SimDuration,
    pub launches: u64,
    pub bytes_sent: u64,
}

/// Summary of the tracer-particle phase at the end of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleReport {
    /// Live particles at the end of the run (conservation pins this
    /// to the configured count).
    pub count: u64,
    /// Σ velocity over the final particle set — the drag-phase
    /// momentum surrogate pinned across re-splits and foldbacks.
    pub momentum: [f64; 3],
    /// Cross-rank migrations over the whole run.
    pub migrated: u64,
    /// Order-independent FNV-1a digest of the final particle set
    /// (ids, positions, velocities bit-exact).
    pub checksum: u64,
}

/// Aggregate result of one cooperative run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub mode_key: String,
    pub mode_label: String,
    pub grid: (usize, usize, usize),
    pub zones: u64,
    /// End-to-end runtime: the slowest rank's clock.
    pub runtime: SimDuration,
    /// Fraction of zones computed by CPU workers.
    pub cpu_fraction: f64,
    pub cycles: u64,
    pub ranks: Vec<RankReport>,
    /// Per-device kernel busy time (GPU modes).
    pub device_busy: Vec<SimDuration>,
    /// Per-cycle rank spans when the run was traced.
    pub trace: Option<hsim_time::Trace>,
    /// Full telemetry (metrics, kernel profiles, structured spans)
    /// when [`crate::RunConfig::telemetry`] was set.
    pub telemetry: Option<hsim_telemetry::Summary>,
    /// Total mass Σ ρ·V over the final state (full fidelity only;
    /// None in cost-only runs, whose zone values carry no physics).
    /// Conservation makes this the end-to-end correctness observable,
    /// including across a fault-recovery restart.
    pub mass: Option<f64>,
    /// The online rebalance controller's CPU-fraction history, one
    /// entry per segment boundary (first entry = realized initial
    /// split). Empty when [`crate::RunConfig::rebalance`] is off.
    pub balance_history: Vec<f64>,
    /// Final tracer-particle phase summary (`None` when
    /// [`crate::RunConfig::particles`] is off).
    pub particles: Option<ParticleReport>,
    /// Scenario identity and analytic-solution error (`None` for the
    /// perturbed balancer workload, which has no reference solution).
    pub scenario: Option<crate::scenario::ScenarioOutcome>,
}

impl RunResult {
    /// Largest compute-bucket time among CPU-worker ranks.
    pub fn slowest_cpu_compute(&self) -> SimDuration {
        self.ranks
            .iter()
            .filter(|r| !r.role.is_gpu_driver())
            .map(|r| r.compute)
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Largest device busy time.
    pub fn slowest_device_busy(&self) -> SimDuration {
        self.device_busy
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Total kernel launches across ranks.
    pub fn total_launches(&self) -> u64 {
        self.ranks.iter().map(|r| r.launches).sum()
    }

    /// Total MPI bytes sent across ranks.
    pub fn total_bytes_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Version of the CSV schema emitted by [`RunResult::csv_row`].
    /// Bump when columns are added, removed, or reordered so archived
    /// sweep outputs stay distinguishable.
    pub const CSV_SCHEMA_VERSION: u32 = 2;

    /// CSV header matching [`RunResult::csv_row`].
    pub fn csv_header() -> &'static str {
        "schema,mode,nx,ny,nz,zones,cycles,runtime_s,cpu_fraction,launches,mpi_bytes"
    }

    /// One CSV line for this run.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.6},{:.4},{},{}",
            Self::CSV_SCHEMA_VERSION,
            self.mode_key,
            self.grid.0,
            self.grid.1,
            self.grid.2,
            self.zones,
            self.cycles,
            self.runtime.as_secs_f64(),
            self.cpu_fraction,
            self.total_launches(),
            self.total_bytes_sent(),
        )
    }

    /// Parse one [`RunResult::csv_row`] line back into its fields
    /// (schema checked). Returns
    /// `(mode, grid, zones, cycles, runtime_s, cpu_fraction, launches, mpi_bytes)`.
    #[allow(clippy::type_complexity)]
    pub fn parse_csv_row(
        line: &str,
    ) -> Result<(String, (usize, usize, usize), u64, u64, f64, f64, u64, u64), String> {
        let fields: Vec<&str> = line.trim().split(',').collect();
        let expect = Self::csv_header().split(',').count();
        if fields.len() != expect {
            return Err(format!("expected {expect} fields, got {}", fields.len()));
        }
        let schema: u32 = fields[0].parse().map_err(|e| format!("schema: {e}"))?;
        if schema != Self::CSV_SCHEMA_VERSION {
            return Err(format!(
                "schema {schema} != current {}",
                Self::CSV_SCHEMA_VERSION
            ));
        }
        let num = |i: usize, what: &str| -> Result<u64, String> {
            fields[i].parse().map_err(|e| format!("{what}: {e}"))
        };
        let fnum = |i: usize, what: &str| -> Result<f64, String> {
            fields[i].parse().map_err(|e| format!("{what}: {e}"))
        };
        Ok((
            fields[1].to_string(),
            (
                num(2, "nx")? as usize,
                num(3, "ny")? as usize,
                num(4, "nz")? as usize,
            ),
            num(5, "zones")?,
            num(6, "cycles")?,
            fnum(7, "runtime_s")?,
            fnum(8, "cpu_fraction")?,
            num(9, "launches")?,
            num(10, "mpi_bytes")?,
        ))
    }

    /// Human-readable per-rank breakdown table.
    pub fn breakdown_table(&self) -> String {
        let mut out = String::new();
        out.push_str("rank  role        zones      total      compute    launch     memory     comm       wait\n");
        for r in &self.ranks {
            let role = match r.role {
                RankRole::GpuDriver { gpu, .. } => format!("gpu{gpu}-drv"),
                RankRole::CpuWorker { .. } => "cpu-wrk".to_string(),
            };
            out.push_str(&format!(
                "{:>4}  {:<10} {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                r.rank,
                role,
                r.zones,
                format!("{}", r.total),
                format!("{}", r.compute),
                format!("{}", r.launch),
                format!("{}", r.memory),
                format!("{}", r.comm),
                format!("{}", r.wait),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rank: usize, gpu: bool, compute_us: u64) -> RankReport {
        RankReport {
            rank,
            role: if gpu {
                RankRole::GpuDriver { core: rank, gpu: 0 }
            } else {
                RankRole::CpuWorker { core: rank }
            },
            zones: 1000,
            setup: SimDuration::ZERO,
            total: SimDuration::from_micros(compute_us * 2),
            compute: SimDuration::from_micros(compute_us),
            launch: SimDuration::ZERO,
            memory: SimDuration::ZERO,
            comm: SimDuration::ZERO,
            control: SimDuration::ZERO,
            wait: SimDuration::ZERO,
            launches: 10,
            bytes_sent: 100,
        }
    }

    fn result() -> RunResult {
        RunResult {
            mode_key: "hetero".into(),
            mode_label: "Hetero (4 MPI/GPU)".into(),
            grid: (8, 8, 8),
            zones: 512,
            runtime: SimDuration::from_micros(40),
            cpu_fraction: 0.03,
            cycles: 10,
            ranks: vec![
                report(0, true, 20),
                report(1, false, 5),
                report(2, false, 9),
            ],
            device_busy: vec![SimDuration::from_micros(18)],
            trace: None,
            telemetry: None,
            mass: None,
            balance_history: Vec::new(),
            particles: None,
            scenario: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = result();
        assert_eq!(r.slowest_cpu_compute(), SimDuration::from_micros(9));
        assert_eq!(r.slowest_device_busy(), SimDuration::from_micros(18));
        assert_eq!(r.total_launches(), 30);
        assert_eq!(r.total_bytes_sent(), 300);
    }

    #[test]
    fn csv_row_matches_header_field_count() {
        let r = result();
        let header_fields = RunResult::csv_header().split(',').count();
        let row_fields = r.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
        assert!(r.csv_row().starts_with("2,hetero,8,8,8,512,10,"));
        assert_eq!(RunResult::csv_header().split(',').next(), Some("schema"));
    }

    #[test]
    fn csv_row_round_trips() {
        let r = result();
        let (mode, grid, zones, cycles, runtime_s, cpu_fraction, launches, mpi_bytes) =
            RunResult::parse_csv_row(&r.csv_row()).unwrap();
        assert_eq!(mode, r.mode_key);
        assert_eq!(grid, r.grid);
        assert_eq!(zones, r.zones);
        assert_eq!(cycles, r.cycles);
        assert!((runtime_s - r.runtime.as_secs_f64()).abs() < 1e-6);
        assert!((cpu_fraction - r.cpu_fraction).abs() < 1e-4);
        assert_eq!(launches, r.total_launches());
        assert_eq!(mpi_bytes, r.total_bytes_sent());
    }

    #[test]
    fn parse_rejects_wrong_schema_and_shape() {
        let r = result();
        let row = r.csv_row();
        let stale = row.replacen("2,", "1,", 1);
        assert!(RunResult::parse_csv_row(&stale).is_err());
        assert!(RunResult::parse_csv_row("2,hetero,8").is_err());
    }

    #[test]
    fn breakdown_table_has_one_line_per_rank_plus_header() {
        let r = result();
        assert_eq!(r.breakdown_table().lines().count(), 4);
    }
}
