//! # hsim-core
//!
//! The paper's contribution: **cooperative CPU+GPU execution of a
//! multi-physics simulation on a heterogeneous node**, reproduced on a
//! fully simulated node (devices, MPI, and time are all virtual — see
//! the substrate crates).
//!
//! The crate assembles everything below it:
//!
//! * [`node`] — the machine model: RZHasGPU (2× 8-core Haswell +
//!   4 K80s, the paper's testbed) and a Sierra-EA preset.
//! * [`mode`] — the four ways to use the node (paper Figures 1–4):
//!   CPU-only, Default (1 MPI/GPU), MPS (n MPI/GPU), Heterogeneous.
//! * [`binding`] — rank → core/GPU bindings and roles (GPU driver vs
//!   CPU worker); "the CPU core/GPU binding needs to be carefully set
//!   up to avoid performance degradation" (§5).
//! * [`memscheme`] — the Figure 8 allocation table (control / mesh /
//!   temporary × CPU / GPU process).
//! * [`balance`] — the §6.2 load balancer: FLOPS-based initial split,
//!   measured per-role times, granularity-constrained adjustment
//!   between iterations.
//! * [`coupler`] — halo exchange + reductions over simulated MPI, with
//!   host-staging charges for GPU ranks (and a GPU-direct toggle,
//!   §5.3's future work).
//! * [`runner`] — the cooperative runner: decompose per mode, bind,
//!   spawn ranks, run hydro cycles, apply the host-bandwidth model,
//!   report per-rank time breakdowns. With a [`faults`] plan it also
//!   retries transient device/transfer failures and folds a lost CPU
//!   rank's slab back into its parent GPU block (graceful
//!   degradation toward the Default mode).
//! * [`figures`] — sweep configurations for every evaluation figure
//!   (12–18).
//! * [`calib`] — every tunable constant of the cost model, documented.
//! * [`confhash`] — canonical byte encoding + FNV-1a content hash of
//!   a [`runner::RunConfig`], the exact cache key for served results.

#![forbid(unsafe_code)]

pub mod balance;
pub mod binding;
pub mod calib;
pub mod confhash;
pub mod coupler;
pub mod figures;
pub mod memscheme;
pub mod mode;
pub mod node;
pub mod report;
pub mod runner;
pub mod scenario;

/// Fault-injection plans and sites (re-exported so callers can build
/// [`runner::RunConfig::faults`] without a direct dependency).
pub use hsim_faults as faults;

pub use balance::{LoadBalancer, RebalanceConfig, Rebalancer};
pub use binding::{build_bindings, RankRole};
pub use figures::{FigureSpec, SweepPoint};
pub use mode::ExecMode;
pub use node::NodeConfig;
pub use report::{ParticleReport, RankReport, RunResult};
pub use runner::{run, run_balanced, RunConfig};
pub use scenario::{Scenario, ScenarioOutcome};
