//! The heterogeneous node model.

use hsim_gpu::DeviceSpec;
use hsim_mpi::CommCost;
use hsim_raja::CpuModel;

/// Static description of one heterogeneous node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    pub name: &'static str,
    /// Total CPU cores (across sockets).
    pub cores: usize,
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-GPU capability sheet.
    pub gpu_spec: DeviceSpec,
    /// Per-core CPU cost model (including the §5.1 lambda-bug state).
    pub cpu: CpuModel,
    /// On-node MPI transport.
    pub comm: CommCost,
}

impl NodeConfig {
    /// The paper's testbed (§7): one RZHasGPU node — two 8-core Intel
    /// Xeon E5-2667 v3 sockets, four NVIDIA Tesla K80 GPUs, 128 GB,
    /// TOSS 2.
    pub fn rzhasgpu() -> Self {
        NodeConfig {
            name: "rzhasgpu",
            cores: 16,
            gpus: 4,
            gpu_spec: DeviceSpec::tesla_k80(),
            cpu: CpuModel::haswell_e5_2667v3(),
            comm: CommCost::on_node(),
        }
    }

    /// RZHasGPU with the decorated-lambda compiler bug resolved — the
    /// paper's projection scenario ("once the compiler issue is
    /// resolved, we expect to be able to assign significantly more
    /// work to the CPU cores").
    pub fn rzhasgpu_fixed_compiler() -> Self {
        NodeConfig {
            cpu: CpuModel::haswell_fixed(),
            ..Self::rzhasgpu()
        }
    }

    /// A Sierra early-access node (§2): two POWER9 CPUs (22 usable
    /// cores each here modeled as 40 total) and four Volta GPUs.
    pub fn sierra_ea() -> Self {
        NodeConfig {
            name: "sierra-ea",
            cores: 40,
            gpus: 4,
            gpu_spec: DeviceSpec::volta_v100(),
            cpu: CpuModel {
                ghz: 3.45,
                flops_per_cycle: 4.0,
                bw_gbs_per_core: 8.0,
                ..CpuModel::haswell_e5_2667v3()
            },
            comm: CommCost::on_node(),
        }
    }

    /// Cores left for CPU workers in the Heterogeneous mode (one core
    /// drives each GPU).
    pub fn worker_cores(&self) -> usize {
        self.cores.saturating_sub(self.gpus)
    }

    /// CPU worker cores attached to each GPU block in the weighted
    /// decomposition.
    pub fn workers_per_gpu(&self) -> usize {
        self.worker_cores().checked_div(self.gpus).unwrap_or(0)
    }

    /// Aggregate GPU FP64 throughput in GFLOP/s.
    pub fn gpu_gflops(&self) -> f64 {
        self.gpus as f64 * self.gpu_spec.fp64_gflops
    }

    /// Aggregate worker-core FP64 throughput in GFLOP/s (no bug
    /// penalty — the balancer applies that separately per kernel mix).
    pub fn cpu_worker_gflops(&self) -> f64 {
        self.worker_cores() as f64 * self.cpu.ghz * self.cpu.flops_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rzhasgpu_matches_the_paper() {
        let n = NodeConfig::rzhasgpu();
        assert_eq!(n.cores, 16);
        assert_eq!(n.gpus, 4);
        assert_eq!(n.worker_cores(), 12);
        assert_eq!(n.workers_per_gpu(), 3);
        assert!(n.cpu.bug_active);
    }

    #[test]
    fn gpus_dominate_the_flops() {
        // §2: "GPUs comprising 95% of the FLOPs of the machine" (for
        // Sierra; RZHasGPU is similar in spirit).
        let n = NodeConfig::rzhasgpu();
        let gpu = n.gpu_gflops();
        let cpu = n.cpu_worker_gflops();
        let share = gpu / (gpu + cpu);
        assert!(share > 0.90, "GPU share {share}");
        let s = NodeConfig::sierra_ea();
        let share_s = s.gpu_gflops() / (s.gpu_gflops() + s.cpu_worker_gflops());
        assert!(share_s > 0.95, "Sierra GPU share {share_s}");
    }

    #[test]
    fn fixed_compiler_preset_differs_only_in_the_bug() {
        let a = NodeConfig::rzhasgpu();
        let b = NodeConfig::rzhasgpu_fixed_compiler();
        assert!(!b.cpu.bug_active);
        assert_eq!(a.cores, b.cores);
        assert_eq!(a.gpu_spec, b.gpu_spec);
    }
}
