//! Sweep configurations for every figure of the paper's evaluation
//! (§7, Figures 12–18), plus one sweep per first-class
//! [`Scenario`] probing the crossover economics in that scenario's
//! kernel-size regime.
//!
//! Each figure fixes two grid dimensions and sweeps the third; the
//! main x-axis of the plots is total zones, the top x-axis the swept
//! dimension. All figures compare three modes: Default (1 MPI/GPU),
//! MPS (4 MPI/GPU), and Heterogeneous.

use crate::scenario::Scenario;

/// One sweep point: a concrete grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl SweepPoint {
    pub fn zones(&self) -> u64 {
        self.nx as u64 * self.ny as u64 * self.nz as u64
    }

    pub fn grid(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }
}

/// Which axis a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    X,
    Y,
}

/// One evaluation figure's configuration.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Figure id, e.g. "fig12".
    pub id: &'static str,
    /// The paper's caption.
    pub caption: &'static str,
    pub sweep: SweepAxis,
    /// Values of the swept dimension.
    pub values: Vec<usize>,
    /// The two fixed dimensions `(x or y, z)`.
    pub fixed: (usize, usize),
    /// The problem the sweep initializes (the paper's Figs 12–18 are
    /// all Sedov; the per-scenario sweeps vary this).
    pub scenario: Scenario,
}

impl FigureSpec {
    /// Concrete grids for this figure's sweep.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.values
            .iter()
            .map(|&v| match self.sweep {
                SweepAxis::Y => SweepPoint {
                    nx: self.fixed.0,
                    ny: v,
                    nz: self.fixed.1,
                },
                SweepAxis::X => SweepPoint {
                    nx: v,
                    ny: self.fixed.0,
                    nz: self.fixed.1,
                },
            })
            .collect()
    }

    /// Largest total zone count in the sweep.
    pub fn max_zones(&self) -> u64 {
        self.points()
            .iter()
            .map(SweepPoint::zones)
            .max()
            .unwrap_or(0)
    }
}

fn steps(from: usize, to: usize, step: usize) -> Vec<usize> {
    (from..=to).step_by(step).collect()
}

/// Figure 12: vary y (x = 320, z = 320). Default kinks at ≈ 37 M.
pub fn fig12() -> FigureSpec {
    FigureSpec {
        id: "fig12",
        caption: "Varying the size of the y-dimension (x=320, z=320)",
        sweep: SweepAxis::Y,
        values: steps(40, 400, 40),
        fixed: (320, 320),
        scenario: Scenario::Sedov,
    }
}

/// Figure 13: vary x (y = 240, z = 320). Small x: MPS overlaps;
/// Hetero is CPU-bound (y too small).
pub fn fig13() -> FigureSpec {
    FigureSpec {
        id: "fig13",
        caption: "Varying the size of the x-dimension (y=240, z=320)",
        sweep: SweepAxis::X,
        values: steps(50, 500, 50),
        fixed: (240, 320),
        scenario: Scenario::Sedov,
    }
}

/// Figure 14: vary x (y = 240, z = 160). Hetero still CPU-bound;
/// Default ≈ MPS.
pub fn fig14() -> FigureSpec {
    FigureSpec {
        id: "fig14",
        caption: "Varying the size of the x-dimension (y=240, z=160)",
        sweep: SweepAxis::X,
        values: steps(100, 700, 75),
        fixed: (240, 160),
        scenario: Scenario::Sedov,
    }
}

/// Figure 15: vary x (y = 360, z = 320). MPS best at small x; Hetero
/// improves with the larger y.
pub fn fig15() -> FigureSpec {
    FigureSpec {
        id: "fig15",
        caption: "Varying the size of the x-dimension (y=360, z=320)",
        sweep: SweepAxis::X,
        values: steps(40, 400, 40),
        fixed: (360, 320),
        scenario: Scenario::Sedov,
    }
}

/// Figure 16: vary x (y = 360, z = 160). Large kernels: MPS gains
/// nothing and pays launch overhead.
pub fn fig16() -> FigureSpec {
    FigureSpec {
        id: "fig16",
        caption: "Varying the size of the x-dimension (y=360, z=160)",
        sweep: SweepAxis::X,
        values: steps(75, 600, 75),
        fixed: (360, 160),
        scenario: Scenario::Sedov,
    }
}

/// Figure 17: vary x (y = 480, z = 320). MPS best, Hetero close,
/// Default hampered.
pub fn fig17() -> FigureSpec {
    FigureSpec {
        id: "fig17",
        caption: "Varying the size of the x-dimension (y=480, z=320)",
        sweep: SweepAxis::X,
        values: steps(30, 300, 30),
        fixed: (480, 320),
        scenario: Scenario::Sedov,
    }
}

/// Figure 18: vary x (y = 480, z = 160). The Heterogeneous mode's best
/// case: up to ~18% over Default past the memory kink.
pub fn fig18() -> FigureSpec {
    FigureSpec {
        id: "fig18",
        caption: "Varying the size of the x-dimension (y=480, z=160)",
        sweep: SweepAxis::X,
        values: steps(75, 600, 75),
        fixed: (480, 160),
        scenario: Scenario::Sedov,
    }
}

/// Per-scenario crossover sweep: each first-class scenario probes the
/// Default/MPS/Heterogeneous economics in the kernel-size regime that
/// scenario stresses (the paper's Figs 15–17 only ever saw Sedov's
/// mid-size regime):
///
/// * `sedov` — the mid-size control sweep (a trimmed fig15 shape).
/// * `sod` — thin y–z slabs: tiny fused kernels, the launch-overhead
///   regime where MPS overlap pays.
/// * `noh` — axial implosion on a long x with moderate y–z: the
///   many-small-slabs regime where the carve granularity bound bites.
/// * `taylor-green` — fat y–z planes: large saturated kernels, the
///   regime where MPS buys nothing and Heterogeneous splits best.
pub fn fig_scenario(s: Scenario) -> FigureSpec {
    match s {
        Scenario::Sedov => FigureSpec {
            id: "fig-sedov",
            caption: "Sedov crossover sweep: mid-size kernels (y=360, z=320)",
            sweep: SweepAxis::X,
            values: steps(80, 400, 80),
            fixed: (360, 320),
            scenario: Scenario::Sedov,
        },
        Scenario::Sod => FigureSpec {
            id: "fig-sod",
            caption: "Sod crossover sweep: small kernels (y=64, z=32)",
            sweep: SweepAxis::X,
            values: steps(120, 600, 120),
            fixed: (64, 32),
            scenario: Scenario::Sod,
        },
        Scenario::Noh => FigureSpec {
            id: "fig-noh",
            caption: "Noh crossover sweep: long-axis implosion (y=160, z=160)",
            sweep: SweepAxis::X,
            values: steps(100, 500, 100),
            fixed: (160, 160),
            scenario: Scenario::Noh,
        },
        Scenario::TaylorGreen => FigureSpec {
            id: "fig-taylor-green",
            caption: "Taylor-Green crossover sweep: large smooth kernels (x=240, z=320)",
            sweep: SweepAxis::Y,
            values: steps(96, 480, 96),
            fixed: (240, 320),
            scenario: Scenario::TaylorGreen,
        },
    }
}

/// The rebalance-convergence figure's x-axis: per-core CPU speed
/// multipliers (clock, bandwidth, and the cycle-priced dispatch
/// penalty together) applied to the node, sweeping the CPU:GPU
/// speed ratio.
/// At each ratio the online controller starts from a deliberately
/// wrong split and must converge to the analytic optimum weight of
/// the measured rates (the companion figure to the §6.2 balance
/// study: Figs 13–14's granularity bound shows up as the clamped
/// tail). 1.0 is the stock RZHasGPU node; the spread covers a CPU
/// four times slower through one four times faster.
pub fn rebalance_speed_ratios() -> Vec<f64> {
    vec![0.25, 0.5, 1.0, 2.0, 4.0]
}

/// The figure id of the rebalance convergence sweep (not a paper
/// figure: the controller is this repo's extension of §6.2).
pub const REBALANCE_FIGURE_ID: &str = "fig-rebalance";

/// All evaluation figures: the paper's Figs 12–18 in paper order,
/// then one crossover sweep per scenario.
pub fn all_figures() -> Vec<FigureSpec> {
    let mut figs = vec![
        fig12(),
        fig13(),
        fig14(),
        fig15(),
        fig16(),
        fig17(),
        fig18(),
    ];
    figs.extend(Scenario::ALL.into_iter().map(fig_scenario));
    figs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_figures_with_unique_ids() {
        let figs = all_figures();
        assert_eq!(figs.len(), 11);
        let mut ids: Vec<_> = figs.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 11);
    }

    #[test]
    fn scenario_sweeps_cover_every_scenario_and_embed_its_name() {
        for s in Scenario::ALL {
            let f = fig_scenario(s);
            assert_eq!(f.scenario, s);
            assert_eq!(f.id, format!("fig-{}", s.name()));
            assert!(!f.points().is_empty());
        }
        // Paper figures stay on the Sedov workload.
        for f in [fig12(), fig18()] {
            assert_eq!(f.scenario, Scenario::Sedov);
        }
        // Regime spread: the Sod sweep's largest kernel is still
        // smaller than the Taylor-Green sweep's smallest.
        let yz = |p: &SweepPoint| p.ny * p.nz;
        let sod = fig_scenario(Scenario::Sod);
        let tg = fig_scenario(Scenario::TaylorGreen);
        let sod_max = sod.points().iter().map(yz).max().unwrap();
        let tg_min = tg.points().iter().map(yz).min().unwrap();
        assert!(sod_max < tg_min, "sod {sod_max} vs tg {tg_min}");
    }

    #[test]
    fn fig12_sweeps_y_and_reaches_41m_zones() {
        let f = fig12();
        let pts = f.points();
        assert_eq!(
            pts[0],
            SweepPoint {
                nx: 320,
                ny: 40,
                nz: 320
            }
        );
        // Paper: up to ≈ 4.1e7 zones at y=400.
        assert_eq!(f.max_zones(), 320 * 400 * 320);
        assert!(f.max_zones() > 37_000_000, "sweep crosses the kink");
    }

    #[test]
    fn x_sweep_figures_fix_y_and_z() {
        for f in [fig13(), fig14(), fig15(), fig16(), fig17(), fig18()] {
            for p in f.points() {
                assert_eq!(p.ny, f.fixed.0, "{}", f.id);
                assert_eq!(p.nz, f.fixed.1, "{}", f.id);
            }
        }
    }

    #[test]
    fn fig18_crosses_the_default_mode_kink() {
        assert!(fig18().max_zones() > 37_000_000);
    }

    #[test]
    fn fig14_stays_below_the_kink() {
        // Paper: "Because the z-dimension is smaller … the x-dimension
        // size goes to a larger value"; the sweep tops out below the
        // Default kink, so no crossover appears in Figure 14.
        assert!(fig14().max_zones() < 37_000_000);
    }

    #[test]
    fn points_scale_linearly_with_the_swept_value() {
        let f = fig13();
        let pts = f.points();
        let per = pts[0].zones() / pts[0].nx as u64;
        for p in &pts {
            assert_eq!(p.zones(), per * p.nx as u64);
        }
    }
}
