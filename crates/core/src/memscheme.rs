//! The memory-allocation scheme of the paper's Figure 8.
//!
//! | data class | CPU-core process | GPU-offloading process |
//! |------------|------------------|------------------------|
//! | control    | malloc           | malloc                 |
//! | mesh       | malloc           | cudaMallocManaged (UM) |
//! | temporary  | malloc           | cudaMalloc (cnmem pool)|
//!
//! "When the libraries are compiled to use CUDA, they often allocate
//! memory on the GPU. We had to break these assumptions to avoid
//! touching the GPU memory from the processes executing solely on the
//! CPU" (§5.2) — [`allocation`] encodes the corrected mapping, and
//! [`validate_cpu_process`] is the guard that failed before the fix.

use crate::calib;

/// The three data classes ARES distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClass {
    /// Control code and host-side bookkeeping.
    Control,
    /// Mesh fields (conserved variables, primitives).
    Mesh,
    /// Per-kernel scratch.
    Temporary,
}

/// Where an allocation lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// Plain host allocation.
    HostMalloc,
    /// CUDA unified memory (host+device addressable).
    UnifiedMemory,
    /// Device memory from a cnmem-style pool.
    DevicePool,
}

/// The Figure 8 mapping.
pub fn allocation(process_offloads_to_gpu: bool, class: DataClass) -> AllocKind {
    match (process_offloads_to_gpu, class) {
        (_, DataClass::Control) => AllocKind::HostMalloc,
        (false, _) => AllocKind::HostMalloc,
        (true, DataClass::Mesh) => AllocKind::UnifiedMemory,
        (true, DataClass::Temporary) => AllocKind::DevicePool,
    }
}

/// The §5.2 guard: a CPU-only process must never receive a device
/// allocation (the library-assumption bug the paper had to fix).
pub fn validate_cpu_process(kinds: &[AllocKind]) -> Result<(), String> {
    for k in kinds {
        if *k != AllocKind::HostMalloc {
            return Err(format!(
                "CPU-only process received a device allocation ({k:?}): \
                 touching GPU memory from CPU-only processes degrades performance"
            ));
        }
    }
    Ok(())
}

/// Bytes of persistent mesh data for `zones` zones (ghost-padded
/// fields approximated at owned size — sizing, not bookkeeping).
pub fn mesh_bytes(zones: u64) -> u64 {
    zones * 8 * calib::MESH_FIELDS
}

/// Bytes of pooled temporary data for `zones` zones.
pub fn temp_bytes(zones: u64) -> u64 {
    zones * 8 * calib::TEMP_FIELDS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_mapping() {
        // CPU-core process: everything on the host.
        for class in [DataClass::Control, DataClass::Mesh, DataClass::Temporary] {
            assert_eq!(allocation(false, class), AllocKind::HostMalloc);
        }
        // GPU process: control host, mesh UM, temporaries pooled.
        assert_eq!(allocation(true, DataClass::Control), AllocKind::HostMalloc);
        assert_eq!(allocation(true, DataClass::Mesh), AllocKind::UnifiedMemory);
        assert_eq!(
            allocation(true, DataClass::Temporary),
            AllocKind::DevicePool
        );
    }

    #[test]
    fn cpu_process_guard_fires_on_device_allocations() {
        assert!(validate_cpu_process(&[AllocKind::HostMalloc]).is_ok());
        assert!(validate_cpu_process(&[AllocKind::UnifiedMemory]).is_err());
        assert!(validate_cpu_process(&[AllocKind::DevicePool]).is_err());
    }

    #[test]
    fn sizing_scales_with_zones() {
        assert_eq!(mesh_bytes(1000), 1000 * 8 * calib::MESH_FIELDS);
        assert!(temp_bytes(1000) < mesh_bytes(1000));
    }

    #[test]
    fn default_mode_domains_fit_k80_memory() {
        // 9.25 M zones per rank (the kink point) in UM: must fit the
        // K80's 12 GB — the paper's kink is a bandwidth effect, not a
        // capacity one, and our sizing is consistent with that.
        let bytes = mesh_bytes(9_250_000);
        assert!(bytes < 12 * (1 << 30), "mesh {bytes} B exceeds device");
    }
}
