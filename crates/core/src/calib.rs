//! Calibration constants — the single source of truth for every
//! tunable in the cost model, with the figure each one drives.
//!
//! Absolute runtimes are not comparable to the paper's (its testbed is
//! gone and its compilers were pre-release); these constants are set
//! so the *shape* of every figure — who wins, by what factor, where
//! the crossovers and the memory kink fall — matches.

/// Courant factor for the hydro scheme (stability bound ≈ 0.45 for
/// first-order Rusanov + Heun in 3D).
pub const CFL: f64 = 0.3;

/// Timestep used in cost-only sweeps (the CFL reduction body is
/// skipped there; any positive value gives identical virtual time).
pub const COST_ONLY_DT: f64 = 1e-4;

/// Cycles per figure sweep point. The paper plots end-to-end runtime
/// for a fixed problem duration; 10 cycles keeps sweeps fast while
/// making per-cycle overheads visible at the paper's proportions.
pub const SWEEP_CYCLES: u64 = 10;

/// Host-side memory-bandwidth threshold (paper Figure 12): the
/// Default mode's runtime slope kinks at ≈ 37 M zones = 4 active
/// cores × this. "We speculate that this threshold may be due to CPU
/// memory bandwidth utilization, where more MPI ranks (and therefore
/// cores utilized) add additional capacity."
pub const HOST_ZONES_PER_CORE: f64 = 9.25e6;

/// Extra host-side nanoseconds per excess zone per cycle once the
/// node's aggregate host traffic exceeds the active cores' capacity.
/// Sized so the Default mode's slope visibly steepens past the kink
/// (Figures 12, 15, 17, 18) without dwarfing compute.
pub const HOST_PENALTY_NS_PER_ZONE: f64 = 18.0;

/// Persistent mesh fields a rank allocates (5 conserved + 5 RK
/// snapshot + 5 primitives ≈ the hydro state's footprint), used for
/// unified-memory sizing (Figure 8).
pub const MESH_FIELDS: u64 = 15;

/// Scratch/temporary fields routed through the device pool (Figure 8).
pub const TEMP_FIELDS: u64 = 2;

/// Conserved fields exchanged per halo pass.
pub const HALO_FIELDS: u64 = 5;

/// Serial host control-code nanoseconds per kernel launch (driver
/// bookkeeping between kernels, identical for all modes).
pub const CONTROL_NS_PER_LAUNCH: f64 = 1500.0;

/// Load-balancer smoothing gain (0 = frozen, 1 = jump to measured).
pub const BALANCE_GAIN: f64 = 0.7;

/// Conservatism on the balanced CPU share: the cycle's phase structure
/// means a whole-cycle-balanced slab still straggles inside phases
/// (see `balance::LoadBalancer::phase_derate`). 0.55 reproduces the
/// paper's observed 1–2% CPU share against a ~4% FLOPS share.
pub const PHASE_DERATE: f64 = 0.55;

/// Load-balancer iteration cap for `run_balanced`.
pub const BALANCE_MAX_ITERS: usize = 6;

/// Convergence tolerance on the CPU fraction between balance
/// iterations.
pub const BALANCE_TOL: f64 = 0.002;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kink_lands_at_thirty_seven_million_for_default_mode() {
        // 4 GPU-driving ranks on RZHasGPU.
        let kink = 4.0 * HOST_ZONES_PER_CORE;
        assert!((kink - 3.7e7).abs() < 3e5, "kink at {kink}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn sixteen_rank_modes_never_kink_in_the_sweeps() {
        // Largest sweep in the paper ≈ 5e7 zones.
        assert!(16.0 * HOST_ZONES_PER_CORE > 5.5e7);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_sane() {
        assert!(CFL > 0.0 && CFL < 0.5);
        assert!(BALANCE_GAIN > 0.0 && BALANCE_GAIN <= 1.0);
        assert!(MESH_FIELDS >= HALO_FIELDS);
    }
}
