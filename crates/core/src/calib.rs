//! Calibration constants — the single source of truth for every
//! tunable in the cost model, with the figure each one drives.
//!
//! Absolute runtimes are not comparable to the paper's (its testbed is
//! gone and its compilers were pre-release); these constants are set
//! so the *shape* of every figure — who wins, by what factor, where
//! the crossovers and the memory kink fall — matches.

/// Courant factor for the hydro scheme (stability bound ≈ 0.45 for
/// first-order Rusanov + Heun in 3D).
pub const CFL: f64 = 0.3;

/// Timestep used in cost-only sweeps (the CFL reduction body is
/// skipped there; any positive value gives identical virtual time).
pub const COST_ONLY_DT: f64 = 1e-4;

/// Cycles per figure sweep point. The paper plots end-to-end runtime
/// for a fixed problem duration; 10 cycles keeps sweeps fast while
/// making per-cycle overheads visible at the paper's proportions.
pub const SWEEP_CYCLES: u64 = 10;

/// Host-side memory-bandwidth threshold (paper Figure 12): the
/// Default mode's runtime slope kinks at ≈ 37 M zones = 4 active
/// cores × this. "We speculate that this threshold may be due to CPU
/// memory bandwidth utilization, where more MPI ranks (and therefore
/// cores utilized) add additional capacity."
pub const HOST_ZONES_PER_CORE: f64 = 9.25e6;

/// Extra host-side nanoseconds per excess zone per cycle once the
/// node's aggregate host traffic exceeds the active cores' capacity.
/// Sized so the Default mode's slope visibly steepens past the kink
/// (Figures 12, 15, 17, 18) without dwarfing compute.
pub const HOST_PENALTY_NS_PER_ZONE: f64 = 18.0;

/// Persistent mesh fields a rank allocates (5 conserved + 5 RK
/// snapshot + 5 primitives ≈ the hydro state's footprint), used for
/// unified-memory sizing (Figure 8).
pub const MESH_FIELDS: u64 = 15;

/// Scratch/temporary fields routed through the device pool (Figure 8).
pub const TEMP_FIELDS: u64 = 2;

/// Conserved fields exchanged per halo pass.
pub const HALO_FIELDS: u64 = 5;

/// Serial host control-code nanoseconds per kernel launch (driver
/// bookkeeping between kernels, identical for all modes).
pub const CONTROL_NS_PER_LAUNCH: f64 = 1500.0;

/// Load-balancer smoothing gain (0 = frozen, 1 = jump to measured).
pub const BALANCE_GAIN: f64 = 0.7;

/// Conservatism on the balanced CPU share: the cycle's phase structure
/// means a whole-cycle-balanced slab still straggles inside phases
/// (see `balance::LoadBalancer::phase_derate`). 0.55 reproduces the
/// paper's observed 1–2% CPU share against a ~4% FLOPS share.
pub const PHASE_DERATE: f64 = 0.55;

/// Tile shapes tried by the [`auto_tile`] probe, smallest first.
pub const TILE_CANDIDATES: [[usize; 2]; 3] = [[4, 4], [8, 8], [16, 16]];

/// Zones per edge of the auto-tune probe grid: big enough that the
/// fused sweep's working set exceeds L2 (so tile shape matters), small
/// enough that the one-shot probe costs a few milliseconds.
pub const TILE_PROBE_N: usize = 32;

/// Process-wide cache behind [`auto_tile`] / [`seed_tile`]: one probe
/// (or one seed) per process, shared by every subsequent run.
static TILE: std::sync::OnceLock<[usize; 2]> = std::sync::OnceLock::new();

/// Per-worker-count probe results for [`auto_tile_for`] beyond the
/// serial case: `(host threads, probed tile)` pairs. Each worker
/// count's shape is fixed at its first request, so repeated sweeps
/// at the same `--host-threads` always agree.
static TILE_BY_THREADS: std::sync::Mutex<Vec<(usize, [usize; 2])>> =
    std::sync::Mutex::new(Vec::new());

/// One-shot y–z tile auto-tune for the fused cache-blocked kernels:
/// time a fused first-order sweep on a small full-fidelity grid for
/// each of [`TILE_CANDIDATES`] and return the fastest. Cached for the
/// process lifetime — every run in a sweep shares one probe.
///
/// This is deliberately a *wall-clock* measurement, not virtual time:
/// the virtual cost model charges per logical kernel and cannot see
/// cache effects, which are exactly what the tile knob moves. Results
/// are bitwise-independent of the choice, so the probe can never
/// change physics or figures — only throughput.
pub fn auto_tile() -> [usize; 2] {
    *TILE.get_or_init(|| probe_tile(1))
}

/// Worker-count-aware variant of [`auto_tile`]: the best tile shape
/// for the *parallel* fused path need not match the serial one (small
/// tiles feed more workers; big tiles amortize per-tile scratch), so
/// the probe runs the fused sweep on the same shared pool the runner
/// will use at `threads` host threads.
///
/// Caching rules, in order:
/// * `threads <= 1` defers to [`auto_tile`] (the serial OnceLock).
/// * A worker count already probed reuses its cached shape — per
///   worker count, the first request's answer is sticky.
/// * A shape seeded via [`seed_tile`] *before* a worker count's first
///   request wins for that count (operators pin one shape for every
///   worker count; the probe never overrides a pin).
pub fn auto_tile_for(threads: usize) -> [usize; 2] {
    if threads <= 1 {
        return auto_tile();
    }
    let mut cache = TILE_BY_THREADS.lock().expect("tile cache poisoned");
    if let Some(&(_, tile)) = cache.iter().find(|(t, _)| *t == threads) {
        return tile;
    }
    let tile = match TILE.get() {
        Some(&seeded) => seeded,
        None => probe_tile(threads),
    };
    cache.push((threads, tile));
    tile
}

/// Seed the process-wide tile cache with an externally calibrated
/// shape (e.g. one carried over from a previous server process via
/// [`tile_spec`]), skipping the wall-clock probe entirely. Returns the
/// *effective* tile: if a probe or earlier seed already populated the
/// cache, that value wins and is returned — first write is sticky, so
/// concurrent runs always agree on one shape.
pub fn seed_tile(tile: [usize; 2]) -> [usize; 2] {
    *TILE.get_or_init(|| tile)
}

/// Serialize a tile shape as `"8x8"` — the stable textual form used
/// by `--tile`-style flags, the serve handshake, and log lines.
pub fn tile_spec(tile: [usize; 2]) -> String {
    format!("{}x{}", tile[0], tile[1])
}

/// Parse the [`tile_spec`] form back into a shape. Accepts any
/// positive dimensions (not just [`TILE_CANDIDATES`]) so operators can
/// pin shapes the probe would never pick.
pub fn parse_tile_spec(s: &str) -> Result<[usize; 2], String> {
    let (ty, tz) = s
        .split_once('x')
        .ok_or_else(|| format!("bad tile spec `{s}`: expected TYxTZ, e.g. 8x8"))?;
    let ty: usize = ty
        .trim()
        .parse()
        .map_err(|e| format!("bad tile spec `{s}`: {e}"))?;
    let tz: usize = tz
        .trim()
        .parse()
        .map_err(|e| format!("bad tile spec `{s}`: {e}"))?;
    if ty == 0 || tz == 0 {
        return Err(format!("bad tile spec `{s}`: dimensions must be positive"));
    }
    Ok([ty, tz])
}

fn probe_tile(threads: usize) -> [usize; 2] {
    use hsim_raja::{CpuModel, Executor, Fidelity, Target, WorkPool};
    let n = TILE_PROBE_N;
    let grid = hsim_mesh::GlobalGrid::new(n, n, n);
    let sub = hsim_mesh::Subdomain::new([0, 0, 0], [n, n, n], 1);
    let mut st = hsim_hydro::HydroState::new(grid, sub, Fidelity::Full);
    st.init_ambient(1.0, 0.4);
    let target = if threads > 1 {
        // Probe on the same process-wide shared pool the runner uses,
        // so the measurement sees the real scheduling overheads.
        Target::CpuParallel {
            pool: WorkPool::shared(threads - 1),
        }
    } else {
        Target::CpuSeq
    };
    let mut exec = Executor::new(target, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = hsim_time::RankClock::new(0);
    hsim_hydro::fused::primitives(&mut st, &mut exec, &mut clock).expect("probe primitives");
    let mut best = TILE_CANDIDATES[0];
    let mut best_ns = u128::MAX;
    for tile in TILE_CANDIDATES {
        st.tile = tile;
        // Warm-up rep so first-touch and allocator effects don't bias
        // the first candidate.
        hsim_hydro::fused::sweep(&mut st, &mut exec, &mut clock, 1e-6).expect("probe sweep");
        // tidy-allow: wall-clock -- the tile probe measures real cache behavior by design
        let t0 = std::time::Instant::now();
        for _ in 0..2 {
            hsim_hydro::fused::sweep(&mut st, &mut exec, &mut clock, 1e-6).expect("probe sweep");
        }
        let ns = t0.elapsed().as_nanos();
        if ns < best_ns {
            best_ns = ns;
            best = tile;
        }
    }
    best
}

/// Load-balancer iteration cap for `run_balanced`.
pub const BALANCE_MAX_ITERS: usize = 6;

/// Convergence tolerance on the CPU fraction between balance
/// iterations.
pub const BALANCE_TOL: f64 = 0.002;

/// EWMA smoothing factor for the online rebalancer's speed estimator
/// (1 = trust only the latest window, 0 = frozen). 0.5 filters
/// single-window noise while still converging in a handful of
/// boundaries.
pub const REBALANCE_EWMA_ALPHA: f64 = 0.5;

/// Default re-split interval, in cycles, for `--rebalance` when the
/// spec omits `every=`.
pub const REBALANCE_DEFAULT_EVERY: u64 = 2;

/// Default hysteresis threshold for `--rebalance` when the spec omits
/// `hysteresis=`: the predicted cycle-time improvement a re-split must
/// exceed before the controller pays for one.
pub const REBALANCE_DEFAULT_HYSTERESIS: f64 = 0.02;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kink_lands_at_thirty_seven_million_for_default_mode() {
        // 4 GPU-driving ranks on RZHasGPU.
        let kink = 4.0 * HOST_ZONES_PER_CORE;
        assert!((kink - 3.7e7).abs() < 3e5, "kink at {kink}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn sixteen_rank_modes_never_kink_in_the_sweeps() {
        // Largest sweep in the paper ≈ 5e7 zones.
        assert!(16.0 * HOST_ZONES_PER_CORE > 5.5e7);
    }

    #[test]
    fn auto_tile_returns_a_candidate_and_is_stable() {
        let t = auto_tile();
        assert!(TILE_CANDIDATES.contains(&t), "probe picked {t:?}");
        assert_eq!(t, auto_tile(), "probe result is cached");
    }

    #[test]
    fn auto_tile_for_is_per_worker_count_stable() {
        // Serial defers to the OnceLock path.
        assert_eq!(auto_tile_for(0), auto_tile());
        assert_eq!(auto_tile_for(1), auto_tile());
        // A parallel count gets its own probe (or inherits a shape
        // already pinned), and repeats reuse the cached answer.
        let t = auto_tile_for(3);
        assert!(TILE_CANDIDATES.contains(&t), "probe picked {t:?}");
        assert_eq!(t, auto_tile_for(3), "per-count result is cached");
    }

    // seed_tile itself is covered by `tests/calib_seed.rs`, which gets
    // its own process: the OnceLock here is already claimed by the
    // probe in `auto_tile_returns_a_candidate_and_is_stable`.

    #[test]
    fn tile_spec_round_trips() {
        for tile in TILE_CANDIDATES {
            assert_eq!(parse_tile_spec(&tile_spec(tile)), Ok(tile));
        }
        assert_eq!(parse_tile_spec(" 8 x 16 "), Ok([8, 16]));
        assert!(parse_tile_spec("8").is_err());
        assert!(parse_tile_spec("8x").is_err());
        assert!(parse_tile_spec("0x8").is_err());
        assert!(parse_tile_spec("8x0").is_err());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_sane() {
        assert!(CFL > 0.0 && CFL < 0.5);
        assert!(BALANCE_GAIN > 0.0 && BALANCE_GAIN <= 1.0);
        assert!(MESH_FIELDS >= HALO_FIELDS);
    }
}
