//! Execution modes (paper Figures 1–4 and §2).

use crate::node::NodeConfig;

/// The four ways to use a heterogeneous node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Figure 1: an MPI rank on every core, GPUs idle.
    CpuOnly,
    /// Figure 2: one MPI rank per GPU; remaining cores idle.
    Default,
    /// Figure 3: `per_gpu` MPI ranks drive each GPU through MPS.
    Mps { per_gpu: usize },
    /// Figure 4: one rank drives each GPU; the remaining cores run
    /// CPU-worker ranks on thin weighted slabs. `cpu_fraction` is the
    /// starting work share for the CPU workers (None = FLOPS-based
    /// initial guess, §6.2).
    Heterogeneous { cpu_fraction: Option<f64> },
}

impl ExecMode {
    /// The paper's MPS configuration: 4 ranks per GPU.
    pub fn mps4() -> Self {
        ExecMode::Mps { per_gpu: 4 }
    }

    /// Heterogeneous with the balancer's initial guess.
    pub fn hetero() -> Self {
        ExecMode::Heterogeneous { cpu_fraction: None }
    }

    /// Total MPI ranks this mode launches on `node`.
    pub fn total_ranks(&self, node: &NodeConfig) -> usize {
        match self {
            ExecMode::CpuOnly => node.cores,
            ExecMode::Default => node.gpus,
            ExecMode::Mps { per_gpu } => node.gpus * per_gpu,
            ExecMode::Heterogeneous { .. } => node.gpus + node.worker_cores(),
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> String {
        match self {
            ExecMode::CpuOnly => "CpuOnly".to_string(),
            ExecMode::Default => "Default (1 MPI/GPU)".to_string(),
            ExecMode::Mps { per_gpu } => format!("MPS ({per_gpu} MPI/GPU)"),
            ExecMode::Heterogeneous { .. } => "Hetero (4 MPI/GPU)".to_string(),
        }
    }

    /// Short machine-readable key for CSV.
    pub fn key(&self) -> String {
        match self {
            ExecMode::CpuOnly => "cpuonly".to_string(),
            ExecMode::Default => "default".to_string(),
            ExecMode::Mps { per_gpu } => format!("mps{per_gpu}"),
            ExecMode::Heterogeneous { .. } => "hetero".to_string(),
        }
    }

    pub fn uses_gpus(&self) -> bool {
        !matches!(self, ExecMode::CpuOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_on_rzhasgpu_match_the_paper() {
        let node = NodeConfig::rzhasgpu();
        assert_eq!(ExecMode::CpuOnly.total_ranks(&node), 16);
        assert_eq!(ExecMode::Default.total_ranks(&node), 4);
        assert_eq!(ExecMode::mps4().total_ranks(&node), 16);
        // "our heterogeneous approach … uses 4 MPI processes to drive
        // the GPU[s], and the remaining 12 cores" → 16 ranks.
        assert_eq!(ExecMode::hetero().total_ranks(&node), 16);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(ExecMode::Default.label(), "Default (1 MPI/GPU)");
        assert_eq!(ExecMode::mps4().label(), "MPS (4 MPI/GPU)");
        assert_eq!(ExecMode::hetero().label(), "Hetero (4 MPI/GPU)");
    }

    #[test]
    fn keys_are_distinct() {
        let keys = [
            ExecMode::CpuOnly.key(),
            ExecMode::Default.key(),
            ExecMode::mps4().key(),
            ExecMode::Mps { per_gpu: 2 }.key(),
            ExecMode::hetero().key(),
        ];
        let mut sorted = keys.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }
}
