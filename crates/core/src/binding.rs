//! Rank roles and core/GPU bindings.
//!
//! "Our experience indicates that the CPU core/GPU binding needs to be
//! carefully set up to avoid performance degradation." (§5.) The
//! binding table assigns every MPI rank a core and, for GPU drivers,
//! a device — and validates that no core is oversubscribed.

use crate::mode::ExecMode;
use crate::node::NodeConfig;

/// What one MPI rank does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankRole {
    /// Drives GPU `gpu` from core `core` (kernels offloaded).
    GpuDriver { core: usize, gpu: usize },
    /// Computes kernels directly on `core`.
    CpuWorker { core: usize },
}

impl RankRole {
    pub fn core(&self) -> usize {
        match *self {
            RankRole::GpuDriver { core, .. } => core,
            RankRole::CpuWorker { core } => core,
        }
    }

    pub fn gpu(&self) -> Option<usize> {
        match *self {
            RankRole::GpuDriver { gpu, .. } => Some(gpu),
            RankRole::CpuWorker { .. } => None,
        }
    }

    pub fn is_gpu_driver(&self) -> bool {
        matches!(self, RankRole::GpuDriver { .. })
    }
}

/// Build the rank → (core, device) binding for `mode` on `node`.
///
/// Conventions (matching the decompositions' rank order):
/// * `Default`: rank g drives GPU g from core g.
/// * `Mps`: ranks are GPU-major (`g·per_gpu + i` drives GPU g), cores
///   assigned round-robin so each GPU's clients spread across both
///   sockets' cores.
/// * `Heterogeneous`: ranks `0..gpus` drive the GPUs from the first
///   cores; ranks `gpus..` are workers on the remaining cores.
/// * `CpuOnly`: rank r computes on core r.
pub fn build_bindings(mode: &ExecMode, node: &NodeConfig) -> Vec<RankRole> {
    match mode {
        ExecMode::CpuOnly => (0..node.cores)
            .map(|core| RankRole::CpuWorker { core })
            .collect(),
        ExecMode::Default => (0..node.gpus)
            .map(|g| RankRole::GpuDriver { core: g, gpu: g })
            .collect(),
        ExecMode::Mps { per_gpu } => {
            let mut roles = Vec::with_capacity(node.gpus * per_gpu);
            for g in 0..node.gpus {
                for i in 0..*per_gpu {
                    roles.push(RankRole::GpuDriver {
                        core: g * per_gpu + i,
                        gpu: g,
                    });
                }
            }
            roles
        }
        ExecMode::Heterogeneous { .. } => {
            let mut roles = Vec::with_capacity(node.gpus + node.worker_cores());
            for g in 0..node.gpus {
                roles.push(RankRole::GpuDriver { core: g, gpu: g });
            }
            for w in 0..node.worker_cores() {
                roles.push(RankRole::CpuWorker {
                    core: node.gpus + w,
                });
            }
            roles
        }
    }
}

/// Validate a binding: every core used at most once, every GPU id in
/// range, cores in range.
pub fn validate_bindings(roles: &[RankRole], node: &NodeConfig) -> Result<(), String> {
    let mut used = vec![false; node.cores];
    for (rank, role) in roles.iter().enumerate() {
        let core = role.core();
        if core >= node.cores {
            return Err(format!("rank {rank} bound to nonexistent core {core}"));
        }
        if used[core] {
            return Err(format!("core {core} oversubscribed (rank {rank})"));
        }
        used[core] = true;
        if let Some(gpu) = role.gpu() {
            if gpu >= node.gpus {
                return Err(format!("rank {rank} bound to nonexistent GPU {gpu}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_produce_valid_bindings() {
        let node = NodeConfig::rzhasgpu();
        for mode in [
            ExecMode::CpuOnly,
            ExecMode::Default,
            ExecMode::mps4(),
            ExecMode::hetero(),
        ] {
            let roles = build_bindings(&mode, &node);
            assert_eq!(roles.len(), mode.total_ranks(&node));
            validate_bindings(&roles, &node).unwrap();
        }
    }

    #[test]
    fn default_mode_uses_one_core_per_gpu() {
        let node = NodeConfig::rzhasgpu();
        let roles = build_bindings(&ExecMode::Default, &node);
        assert!(roles.iter().all(RankRole::is_gpu_driver));
        let gpus: Vec<_> = roles.iter().filter_map(RankRole::gpu).collect();
        assert_eq!(gpus, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mps_groups_clients_gpu_major() {
        let node = NodeConfig::rzhasgpu();
        let roles = build_bindings(&ExecMode::mps4(), &node);
        assert_eq!(roles.len(), 16);
        for (rank, role) in roles.iter().enumerate() {
            assert_eq!(role.gpu(), Some(rank / 4));
        }
    }

    #[test]
    fn hetero_has_four_drivers_and_twelve_workers() {
        let node = NodeConfig::rzhasgpu();
        let roles = build_bindings(&ExecMode::hetero(), &node);
        let drivers = roles.iter().filter(|r| r.is_gpu_driver()).count();
        assert_eq!(drivers, 4);
        assert_eq!(roles.len() - drivers, 12);
    }

    #[test]
    fn oversubscription_is_detected() {
        let node = NodeConfig::rzhasgpu();
        let roles = vec![
            RankRole::CpuWorker { core: 3 },
            RankRole::CpuWorker { core: 3 },
        ];
        assert!(validate_bindings(&roles, &node).is_err());
        let bad_gpu = vec![RankRole::GpuDriver { core: 0, gpu: 9 }];
        assert!(validate_bindings(&bad_gpu, &node).is_err());
        let bad_core = vec![RankRole::CpuWorker { core: 99 }];
        assert!(validate_bindings(&bad_core, &node).is_err());
    }
}
