//! First-class problem scenarios: named setups spanning the
//! kernel-size regimes the evaluation sweeps, each with a
//! deterministic quality metric against its analytic reference.
//!
//! A [`Scenario`] is a *view* over [`Problem`]: the CLI, the serve
//! layer, and the CI gates select runs by scenario name, and the
//! runner derives per-scenario diagnostics (axial density profile,
//! kinetic energy) from the final state so the result can carry an
//! analytic-solution error:
//!
//! * `sedov` — the paper's 3D blast wave; similarity scaling only, no
//!   pointwise metric (`error = None`).
//! * `sod` — the shock tube; full-axis L1 density error against the
//!   exact Riemann solution.
//! * `noh` — the planar implosion; density L1 against the exact
//!   stagnation solution, windowed around the shocks (the hardest
//!   regime: infinite-strength shock, wall-clock dominated by tiny
//!   post-shock zones).
//! * `taylor-green` — the smooth vortex array; kinetic-energy decay
//!   `1 − KE/KE₀` measures pure numerical dissipation (no shocks
//!   anywhere — the regime the other three never touch).
//!
//! [`Problem::Perturbed`] (the balancer stress workload) is
//! deliberately *not* a scenario: it has no reference solution.

use hsim_hydro::noh::{self, NohConfig};
use hsim_hydro::sedov::SedovConfig;
use hsim_hydro::sod::{self, SodConfig};
use hsim_hydro::state::RHO;
use hsim_hydro::taylor_green::{self, TaylorGreenConfig};
use hsim_hydro::HydroState;
use hsim_mesh::GlobalGrid;

use crate::runner::Problem;

/// Density-error window (fraction of the x extent around the
/// midplane) for the Noh metric: wide enough to cover both shocks at
/// the standard end time, narrow enough to ignore inflow noise.
pub const NOH_WINDOW: f64 = 0.2;

/// The four named problem setups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    Sedov,
    Sod,
    Noh,
    TaylorGreen,
}

impl Scenario {
    pub const ALL: [Scenario; 4] = [
        Scenario::Sedov,
        Scenario::Sod,
        Scenario::Noh,
        Scenario::TaylorGreen,
    ];

    /// The CLI / serve / gate name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Sedov => "sedov",
            Scenario::Sod => "sod",
            Scenario::Noh => "noh",
            Scenario::TaylorGreen => "taylor-green",
        }
    }

    /// Parse a scenario name (the inverse of [`Scenario::name`]).
    pub fn parse(s: &str) -> Result<Scenario, String> {
        match s {
            "sedov" => Ok(Scenario::Sedov),
            "sod" => Ok(Scenario::Sod),
            "noh" => Ok(Scenario::Noh),
            "taylor-green" | "tg" => Ok(Scenario::TaylorGreen),
            other => Err(format!(
                "unknown scenario '{other}' (expected sedov, sod, noh, or taylor-green)"
            )),
        }
    }

    /// The default-configured [`Problem`] this scenario initializes.
    pub fn problem(self) -> Problem {
        match self {
            Scenario::Sedov => Problem::Sedov(SedovConfig::default()),
            Scenario::Sod => Problem::Sod(SodConfig::default()),
            Scenario::Noh => Problem::Noh(NohConfig::default()),
            Scenario::TaylorGreen => Problem::TaylorGreen(TaylorGreenConfig::default()),
        }
    }

    /// The scenario a problem belongs to (`None` for the perturbed
    /// balancer workload, which has no reference solution).
    pub fn of_problem(problem: &Problem) -> Option<Scenario> {
        match problem {
            Problem::Sedov(_) => Some(Scenario::Sedov),
            Problem::Sod(_) => Some(Scenario::Sod),
            Problem::Noh(_) => Some(Scenario::Noh),
            Problem::TaylorGreen(_) => Some(Scenario::TaylorGreen),
            Problem::Perturbed(_) => None,
        }
    }
}

/// One rank's contribution to the scenario diagnostics: partial sums
/// over its owned zones, indexed by *global* x where axial. Summed in
/// rank order by [`ScenarioDiag::merge`], so the merged profile is a
/// deterministic function of the decomposition.
#[derive(Debug, Clone)]
pub struct ScenarioDiag {
    /// Σ ρ over owned zones at each global x index (length nx).
    pub axial_rho_sum: Vec<f64>,
    /// Owned-zone count behind each axial sum (length nx).
    pub axial_count: Vec<u64>,
    /// Kinetic energy Σ ½|m|²/ρ·V over owned zones.
    pub kinetic: f64,
}

impl ScenarioDiag {
    /// Partial diagnostics for one rank's final state (full fidelity;
    /// cost-only states carry no physics to diagnose).
    pub fn of_rank(state: &HydroState) -> ScenarioDiag {
        let grid = state.grid;
        let sub = state.sub;
        let mut axial_rho_sum = vec![0.0; grid.nx];
        let mut axial_count = vec![0u64; grid.nx];
        for i in 0..sub.extent(0) {
            let gx = sub.lo[0] + i;
            for k in 0..sub.extent(2) {
                for j in 0..sub.extent(1) {
                    axial_rho_sum[gx] += state.u.get(RHO, i, j, k);
                }
            }
            axial_count[gx] += (sub.extent(1) * sub.extent(2)) as u64;
        }
        ScenarioDiag {
            axial_rho_sum,
            axial_count,
            kinetic: taylor_green::kinetic_energy(state),
        }
    }

    /// Elementwise sum of per-rank partials, in the order given.
    pub fn merge<'a>(nx: usize, parts: impl Iterator<Item = &'a ScenarioDiag>) -> ScenarioDiag {
        let mut out = ScenarioDiag {
            axial_rho_sum: vec![0.0; nx],
            axial_count: vec![0u64; nx],
            kinetic: 0.0,
        };
        for p in parts {
            for (a, b) in out.axial_rho_sum.iter_mut().zip(&p.axial_rho_sum) {
                *a += b;
            }
            for (a, b) in out.axial_count.iter_mut().zip(&p.axial_count) {
                *a += b;
            }
            out.kinetic += p.kinetic;
        }
        out
    }

    /// The y–z-averaged global density profile.
    pub fn axial_rho(&self) -> Vec<f64> {
        self.axial_rho_sum
            .iter()
            .zip(&self.axial_count)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }
}

/// The scenario block of a [`crate::report::RunResult`].
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// [`Scenario::name`] of the run's problem.
    pub name: &'static str,
    /// Simulation end time.
    pub t_end: f64,
    /// What `error` measures for this scenario.
    pub metric: &'static str,
    /// Analytic-solution error (full fidelity only; `None` in
    /// cost-only runs and for Sedov, which has no pointwise
    /// reference).
    pub error: Option<f64>,
}

/// Build the outcome block for a finished run. `diag` is the merged
/// final-state diagnostics (`None` under cost-only fidelity).
/// Returns `None` for non-scenario problems (Perturbed).
pub fn outcome(
    problem: &Problem,
    grid: &GlobalGrid,
    t_end: f64,
    diag: Option<&ScenarioDiag>,
) -> Option<ScenarioOutcome> {
    let scenario = Scenario::of_problem(problem)?;
    let (metric, error) = match (problem, diag) {
        (Problem::Sod(cfg), Some(d)) => ("sod_l1", Some(sod_l1(cfg, &d.axial_rho(), grid, t_end))),
        (Problem::Sod(_), None) => ("sod_l1", None),
        (Problem::Noh(cfg), Some(d)) => (
            "noh_windowed_l1",
            Some(noh::windowed_l1_error(
                cfg,
                &d.axial_rho(),
                grid.lx,
                t_end,
                NOH_WINDOW,
            )),
        ),
        (Problem::Noh(_), None) => ("noh_windowed_l1", None),
        (Problem::TaylorGreen(cfg), Some(d)) => (
            "tg_ke_decay",
            Some(taylor_green::ke_decay(
                cfg, d.kinetic, grid.lx, grid.ly, grid.lz,
            )),
        ),
        (Problem::TaylorGreen(_), None) => ("tg_ke_decay", None),
        (Problem::Sedov(_), _) => ("none", None),
        (Problem::Perturbed(_), _) => return None,
    };
    Some(ScenarioOutcome {
        name: scenario.name(),
        t_end,
        metric,
        error,
    })
}

/// Full-axis L1 density error of a y–z-averaged profile against the
/// exact Sod solution at time `t`.
pub fn sod_l1(cfg: &SodConfig, axial_rho: &[f64], grid: &GlobalGrid, t: f64) -> f64 {
    let n = axial_rho.len();
    if n == 0 || t <= 0.0 {
        return 0.0;
    }
    let dx = grid.lx / n as f64;
    let x0 = cfg.diaphragm * grid.lx;
    let mut l1 = 0.0;
    for (i, rho) in axial_rho.iter().enumerate() {
        let x = (i as f64 + 0.5) * dx;
        let exact = sod::exact_solution(&cfg.left, &cfg.right, (x - x0) / t);
        l1 += (rho - exact.rho).abs();
    }
    l1 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_mesh::Subdomain;
    use hsim_raja::Fidelity;

    #[test]
    fn names_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::parse(s.name()).unwrap(), s);
        }
        assert_eq!(Scenario::parse("tg").unwrap(), Scenario::TaylorGreen);
        assert!(Scenario::parse("vortex").is_err());
    }

    #[test]
    fn every_scenario_maps_to_its_problem_and_back() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::of_problem(&s.problem()), Some(s));
        }
        assert_eq!(
            Scenario::of_problem(&Problem::Perturbed(Default::default())),
            None
        );
    }

    #[test]
    fn split_diags_merge_to_the_solo_profile() {
        let grid = GlobalGrid::new(16, 8, 8);
        let cfg = SodConfig::default();
        let solo_sub = Subdomain::new([0, 0, 0], [16, 8, 8], 1);
        let mut solo = HydroState::new(grid, solo_sub, Fidelity::Full);
        sod::init(&mut solo, &cfg);
        let whole = ScenarioDiag::of_rank(&solo);

        let halves: Vec<ScenarioDiag> = [[0, 8], [8, 16]]
            .iter()
            .map(|&[lo, hi]| {
                let sub = Subdomain::new([lo, 0, 0], [hi, 8, 8], 1);
                let mut st = HydroState::new(grid, sub, Fidelity::Full);
                sod::init(&mut st, &cfg);
                ScenarioDiag::of_rank(&st)
            })
            .collect();
        let merged = ScenarioDiag::merge(16, halves.iter());
        assert_eq!(merged.axial_rho(), whole.axial_rho());
        assert_eq!(merged.axial_count, whole.axial_count);
        assert!((merged.kinetic - whole.kinetic).abs() < 1e-12);
    }

    #[test]
    fn sod_l1_vanishes_on_the_exact_profile() {
        let grid = GlobalGrid::new(64, 4, 4);
        let cfg = SodConfig::default();
        let t = 0.15;
        let dx = grid.lx / 64.0;
        let x0 = cfg.diaphragm * grid.lx;
        let exact: Vec<f64> = (0..64)
            .map(|i| {
                let x = (i as f64 + 0.5) * dx;
                sod::exact_solution(&cfg.left, &cfg.right, (x - x0) / t).rho
            })
            .collect();
        assert!(sod_l1(&cfg, &exact, &grid, t) < 1e-14);
        let flat = vec![1.0; 64];
        assert!(sod_l1(&cfg, &flat, &grid, t) > 0.1);
    }

    #[test]
    fn outcome_labels_match_the_problem() {
        let grid = GlobalGrid::new(8, 8, 8);
        let o = outcome(&Scenario::Noh.problem(), &grid, 0.1, None).unwrap();
        assert_eq!(o.name, "noh");
        assert_eq!(o.metric, "noh_windowed_l1");
        assert_eq!(o.error, None);
        assert!(outcome(&Problem::Perturbed(Default::default()), &grid, 0.1, None).is_none());
    }
}
