//! Heterogeneous load balancing (paper §6.2).
//!
//! "We started with an initial guess of work split between the
//! processors based on FLOPS. We measured the respective contributions
//! of CPU vs. GPU, and adjusted the split to achieve load balance. …
//! Our approach is static within an iteration, but the decomposition
//! can be adjusted between iterations."

use hsim_hydro::kernels;
use hsim_time::SimDuration;

use crate::calib;
use crate::node::NodeConfig;

/// The between-iterations load balancer for the Heterogeneous mode.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    /// Current CPU work fraction.
    pub fraction: f64,
    /// Minimum realizable fraction (decomposition granularity: one
    /// y-plane per CPU rank).
    pub min_fraction: f64,
    /// Smoothing gain toward the measured optimum.
    pub gain: f64,
    /// Conservatism applied to the balanced target. The cycle is a
    /// chain of bulk-synchronous *phases* (save → dt → sweep → …)
    /// whose cost distribution differs between processor kinds, so a
    /// CPU slab sized to match the GPU's whole-cycle time still
    /// straggles inside individual phases. Derating the target keeps
    /// the CPU off the critical path — this is why the paper could
    /// give the CPUs only 1–2% against a ~4% FLOPS share.
    pub phase_derate: f64,
    /// Fractions tried so far (first entry = initial guess).
    pub history: Vec<f64>,
}

impl LoadBalancer {
    /// FLOPS-based initial guess: the CPU workers' share of effective
    /// node throughput on the flux kernel (the cycle's workhorse),
    /// including the lambda-bug penalty the paper had to account for.
    pub fn initial_guess(node: &NodeConfig) -> f64 {
        let desc = &kernels::FLUX;
        let cpu_rate = node.worker_cores() as f64 * node.cpu.elems_per_sec(desc);
        // GPU per-element rate at high occupancy.
        let spec = &node.gpu_spec;
        let per_elem = (desc.flops_per_elem / (spec.fp64_gflops * 1e9))
            .max(desc.bytes_per_elem / (spec.mem_bandwidth_gbs * 1e9));
        let gpu_rate = node.gpus as f64 * 0.9 / per_elem;
        (cpu_rate / (cpu_rate + gpu_rate)).clamp(0.001, 0.5)
    }

    /// Start from the FLOPS guess.
    pub fn new(node: &NodeConfig) -> Self {
        let f = Self::initial_guess(node);
        let f = f * calib::PHASE_DERATE;
        LoadBalancer {
            fraction: f,
            min_fraction: 0.0,
            gain: calib::BALANCE_GAIN,
            phase_derate: calib::PHASE_DERATE,
            history: vec![f],
        }
    }

    /// Start from an explicit fraction (no derate applied: the caller
    /// states exactly what they want).
    pub fn with_fraction(fraction: f64) -> Self {
        LoadBalancer {
            fraction,
            min_fraction: 0.0,
            gain: calib::BALANCE_GAIN,
            phase_derate: 1.0,
            history: vec![fraction],
        }
    }

    /// Record the decomposition's granularity bound (`min_planes /
    /// carve_extent`): fractions below it are not realizable.
    pub fn set_min_fraction(&mut self, min_fraction: f64) {
        self.min_fraction = min_fraction.clamp(0.0, 0.5);
    }

    /// Feed back measured per-cycle busy times of the slowest CPU
    /// worker and the slowest GPU rank; returns the adjusted fraction.
    ///
    /// At fraction `f` the implied rates are `R_cpu = f / t_cpu` and
    /// `R_gpu = (1−f) / t_gpu`; the balanced split is
    /// `f* = R_cpu / (R_cpu + R_gpu)`, approached with smoothing gain.
    pub fn observe(&mut self, cpu_time: SimDuration, gpu_time: SimDuration) -> f64 {
        let f = self.fraction;
        let t_cpu = cpu_time.as_secs_f64();
        let t_gpu = gpu_time.as_secs_f64();
        if t_cpu > 0.0 && t_gpu > 0.0 && f > 0.0 && f < 1.0 {
            let r_cpu = f / t_cpu;
            let r_gpu = (1.0 - f) / t_gpu;
            let f_star = self.phase_derate * r_cpu / (r_cpu + r_gpu);
            self.fraction += self.gain * (f_star - f);
        }
        self.fraction = self.fraction.clamp(self.min_fraction.max(1e-4), 0.5);
        self.history.push(self.fraction);
        self.fraction
    }

    /// Whether the last adjustment moved less than `tol`.
    pub fn converged(&self, tol: f64) -> bool {
        match self.history.len() {
            0 | 1 => false,
            n => (self.history[n - 1] - self.history[n - 2]).abs() < tol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_guess_is_a_few_percent_with_the_bug() {
        // Paper: with the compiler bug, only 1–2% of zones can go to
        // the CPU; the effective-FLOPS guess should land in the low
        // single digits.
        let f = LoadBalancer::initial_guess(&NodeConfig::rzhasgpu());
        assert!(
            (0.005..0.08).contains(&f),
            "initial CPU fraction {f} should be a few percent"
        );
    }

    #[test]
    fn fixed_compiler_raises_the_guess() {
        let bug = LoadBalancer::initial_guess(&NodeConfig::rzhasgpu());
        let fixed = LoadBalancer::initial_guess(&NodeConfig::rzhasgpu_fixed_compiler());
        assert!(
            fixed > bug * 1.5,
            "fixing the compiler should raise the CPU share: {bug} → {fixed}"
        );
    }

    #[test]
    fn observe_converges_to_the_true_optimum() {
        // Synthetic processors: CPU rate 3 work/s, GPU rate 97 work/s
        // ⇒ optimal fraction 0.03.
        let mut lb = LoadBalancer::with_fraction(0.20);
        for _ in 0..25 {
            let f = lb.fraction;
            let cpu_time = SimDuration::from_secs_f64(f / 3.0);
            let gpu_time = SimDuration::from_secs_f64((1.0 - f) / 97.0);
            lb.observe(cpu_time, gpu_time);
        }
        assert!(
            (lb.fraction - 0.03).abs() < 0.003,
            "converged to {}",
            lb.fraction
        );
        assert!(lb.converged(1e-3));
    }

    #[test]
    fn min_fraction_is_respected() {
        let mut lb = LoadBalancer::with_fraction(0.10);
        lb.set_min_fraction(0.05);
        // Processors want ~1%: the floor binds.
        for _ in 0..10 {
            let f = lb.fraction;
            let cpu_time = SimDuration::from_secs_f64(f / 1.0);
            let gpu_time = SimDuration::from_secs_f64((1.0 - f) / 99.0);
            lb.observe(cpu_time, gpu_time);
        }
        assert!(
            (lb.fraction - 0.05).abs() < 1e-12,
            "floored at {}",
            lb.fraction
        );
    }

    #[test]
    fn degenerate_measurements_leave_fraction_stable() {
        let mut lb = LoadBalancer::with_fraction(0.05);
        lb.observe(SimDuration::ZERO, SimDuration::from_secs(1));
        assert!((lb.fraction - 0.05).abs() < 1e-12);
    }

    #[test]
    fn history_records_every_step() {
        let mut lb = LoadBalancer::with_fraction(0.1);
        lb.observe(SimDuration::from_secs(1), SimDuration::from_secs(1));
        lb.observe(SimDuration::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(lb.history.len(), 3);
    }
}
