//! Heterogeneous load balancing (paper §6.2).
//!
//! "We started with an initial guess of work split between the
//! processors based on FLOPS. We measured the respective contributions
//! of CPU vs. GPU, and adjusted the split to achieve load balance. …
//! Our approach is static within an iteration, but the decomposition
//! can be adjusted between iterations."

use hsim_hydro::kernels;
use hsim_time::SimDuration;

use crate::calib;
use crate::node::NodeConfig;

/// The between-iterations load balancer for the Heterogeneous mode.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    /// Current CPU work fraction.
    pub fraction: f64,
    /// Minimum realizable fraction (decomposition granularity: one
    /// y-plane per CPU rank).
    pub min_fraction: f64,
    /// Smoothing gain toward the measured optimum.
    pub gain: f64,
    /// Conservatism applied to the balanced target. The cycle is a
    /// chain of bulk-synchronous *phases* (save → dt → sweep → …)
    /// whose cost distribution differs between processor kinds, so a
    /// CPU slab sized to match the GPU's whole-cycle time still
    /// straggles inside individual phases. Derating the target keeps
    /// the CPU off the critical path — this is why the paper could
    /// give the CPUs only 1–2% against a ~4% FLOPS share.
    pub phase_derate: f64,
    /// Fractions tried so far (first entry = initial guess).
    pub history: Vec<f64>,
}

impl LoadBalancer {
    /// FLOPS-based initial guess: the CPU workers' share of effective
    /// node throughput on the flux kernel (the cycle's workhorse),
    /// including the lambda-bug penalty the paper had to account for.
    pub fn initial_guess(node: &NodeConfig) -> f64 {
        let desc = &kernels::FLUX;
        let cpu_rate = node.worker_cores() as f64 * node.cpu.elems_per_sec(desc);
        // GPU per-element rate at high occupancy.
        let spec = &node.gpu_spec;
        let per_elem = (desc.flops_per_elem / (spec.fp64_gflops * 1e9))
            .max(desc.bytes_per_elem / (spec.mem_bandwidth_gbs * 1e9));
        let gpu_rate = node.gpus as f64 * 0.9 / per_elem;
        (cpu_rate / (cpu_rate + gpu_rate)).clamp(0.001, 0.5)
    }

    /// Start from the FLOPS guess.
    pub fn new(node: &NodeConfig) -> Self {
        let f = Self::initial_guess(node);
        let f = f * calib::PHASE_DERATE;
        LoadBalancer {
            fraction: f,
            min_fraction: 0.0,
            gain: calib::BALANCE_GAIN,
            phase_derate: calib::PHASE_DERATE,
            history: vec![f],
        }
    }

    /// Start from an explicit fraction (no derate applied: the caller
    /// states exactly what they want).
    pub fn with_fraction(fraction: f64) -> Self {
        LoadBalancer {
            fraction,
            min_fraction: 0.0,
            gain: calib::BALANCE_GAIN,
            phase_derate: 1.0,
            history: vec![fraction],
        }
    }

    /// Record the decomposition's granularity bound (`min_planes /
    /// carve_extent`): fractions below it are not realizable.
    pub fn set_min_fraction(&mut self, min_fraction: f64) {
        self.min_fraction = min_fraction.clamp(0.0, 0.5);
    }

    /// Feed back measured per-cycle busy times of the slowest CPU
    /// worker and the slowest GPU rank; returns the adjusted fraction.
    ///
    /// At fraction `f` the implied rates are `R_cpu = f / t_cpu` and
    /// `R_gpu = (1−f) / t_gpu`; the balanced split is
    /// `f* = R_cpu / (R_cpu + R_gpu)`, approached with smoothing gain.
    pub fn observe(&mut self, cpu_time: SimDuration, gpu_time: SimDuration) -> f64 {
        let f = self.fraction;
        let t_cpu = cpu_time.as_secs_f64();
        let t_gpu = gpu_time.as_secs_f64();
        if t_cpu > 0.0 && t_gpu > 0.0 && f > 0.0 && f < 1.0 {
            let r_cpu = f / t_cpu;
            let r_gpu = (1.0 - f) / t_gpu;
            let f_star = self.phase_derate * r_cpu / (r_cpu + r_gpu);
            self.fraction += self.gain * (f_star - f);
        }
        self.fraction = self.fraction.clamp(self.min_fraction.max(1e-4), 0.5);
        self.history.push(self.fraction);
        self.fraction
    }

    /// Whether the last adjustment moved less than `tol`.
    pub fn converged(&self, tol: f64) -> bool {
        match self.history.len() {
            0 | 1 => false,
            n => (self.history[n - 1] - self.history[n - 2]).abs() < tol,
        }
    }
}

/// Configuration of the online rebalancing controller, parsed from the
/// CLI's `--rebalance every=N,hysteresis=X` spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Re-split decision interval in cycles (a boundary every `every`
    /// cycles; the decomposition is static between boundaries, exactly
    /// the paper's "static within an iteration" discipline at a finer
    /// grain).
    pub every: u64,
    /// Minimum predicted relative cycle-time improvement a re-split
    /// must exceed; below it the controller holds the current split.
    pub hysteresis: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            every: calib::REBALANCE_DEFAULT_EVERY,
            hysteresis: calib::REBALANCE_DEFAULT_HYSTERESIS,
        }
    }
}

impl RebalanceConfig {
    /// Parse `every=N,hysteresis=X` (either key optional, any order).
    pub fn parse(spec: &str) -> Result<RebalanceConfig, String> {
        let mut cfg = RebalanceConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(v) = part.strip_prefix("every=") {
                cfg.every = v
                    .parse()
                    .map_err(|e| format!("rebalance spec {spec:?}: bad every: {e}"))?;
                if cfg.every == 0 {
                    return Err(format!("rebalance spec {spec:?}: every must be positive"));
                }
            } else if let Some(v) = part.strip_prefix("hysteresis=") {
                cfg.hysteresis = v
                    .parse()
                    .map_err(|e| format!("rebalance spec {spec:?}: bad hysteresis: {e}"))?;
                if !(0.0..1.0).contains(&cfg.hysteresis) {
                    return Err(format!(
                        "rebalance spec {spec:?}: hysteresis must be in [0, 1)"
                    ));
                }
            } else {
                return Err(format!(
                    "rebalance spec {spec:?}: unknown key {part:?} (expected every=N,hysteresis=X)"
                ));
            }
        }
        Ok(cfg)
    }

    /// Round-trip the config back to its textual spec.
    pub fn spec(&self) -> String {
        format!("every={},hysteresis={}", self.every, self.hysteresis)
    }
}

/// What the controller decided at one rebalance boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebalanceDecision {
    /// Move to a new CPU fraction: the predicted relative cycle-time
    /// gain exceeded the hysteresis threshold.
    Resplit { fraction: f64, predicted_gain: f64 },
    /// Keep the current split (hysteresis held, or degenerate timings).
    Hold { predicted_gain: f64 },
    /// The controller is frozen (post-`rank.loss` recovery: the folded
    /// decomposition is no longer expressible as a uniform weighted
    /// re-split, so the world stays as recovery left it).
    Frozen,
}

/// The online measured-speed rebalancing controller (paper §6.1/§6.2
/// generalized from the whole-run [`LoadBalancer`] loop to in-run
/// re-splits every N cycles).
///
/// Per-boundary measured CPU/GPU busy times feed an EWMA speed
/// estimator; the analytic balance point of the smoothed rates is the
/// target, and a re-split happens only when its predicted cycle-time
/// improvement clears the hysteresis threshold. The minimum-granularity
/// guard (one carve-axis plane per CPU rank — the `12/ny` bottleneck of
/// Figs 13–14) clamps every target. All inputs are virtual-time
/// measurements, so the decision sequence is a pure function of the
/// timings: same seed, same re-splits, byte-identical runs.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    /// Current (realized) CPU work fraction.
    pub fraction: f64,
    /// Granularity guard: fractions below it are not realizable.
    pub min_fraction: f64,
    /// Hysteresis threshold on predicted relative improvement.
    pub hysteresis: f64,
    /// EWMA smoothing factor for the speed estimator.
    pub alpha: f64,
    /// Conservatism applied to the balance point (see
    /// [`LoadBalancer::phase_derate`]).
    pub phase_derate: f64,
    /// EWMA-smoothed CPU rate (work-fraction per second); 0 until the
    /// first observation.
    r_cpu: f64,
    /// EWMA-smoothed GPU rate.
    r_gpu: f64,
    observations: u64,
    frozen: bool,
    /// Fraction after every boundary decision (first entry = initial).
    pub history: Vec<f64>,
    /// Every boundary decision, in order.
    pub decisions: Vec<RebalanceDecision>,
}

impl Rebalancer {
    /// Start from an explicit fraction (the runner clamps it to the
    /// granularity guard before the first segment).
    pub fn new(fraction: f64, cfg: &RebalanceConfig) -> Self {
        Rebalancer {
            fraction,
            min_fraction: 0.0,
            hysteresis: cfg.hysteresis,
            alpha: calib::REBALANCE_EWMA_ALPHA,
            phase_derate: 1.0,
            r_cpu: 0.0,
            r_gpu: 0.0,
            observations: 0,
            frozen: false,
            history: vec![fraction],
            decisions: Vec::new(),
        }
    }

    /// Record the decomposition's granularity bound and clamp the
    /// current fraction to it.
    pub fn set_min_fraction(&mut self, min_fraction: f64) {
        self.min_fraction = min_fraction.clamp(0.0, 0.5);
        self.fraction = self.clamp(self.fraction);
        if let Some(first) = self.history.first_mut() {
            *first = self.fraction;
        }
    }

    fn clamp(&self, f: f64) -> f64 {
        f.clamp(self.min_fraction.max(1e-4), 0.5)
    }

    /// The CPU/GPU work weights; they always sum to 1.
    pub fn weights(&self) -> (f64, f64) {
        (self.fraction, 1.0 - self.fraction)
    }

    /// The smoothed `(R_cpu, R_gpu)` rate estimates.
    pub fn rates(&self) -> (f64, f64) {
        (self.r_cpu, self.r_gpu)
    }

    /// Whether the controller has been frozen by recovery.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Freeze the controller: every subsequent boundary returns
    /// [`RebalanceDecision::Frozen`]. Called by the runner after a
    /// `rank.loss` foldback, whose asymmetric decomposition a uniform
    /// weighted re-split can no longer express.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// The analytic optimum weight for rates `(r_cpu, r_gpu)` under
    /// derate `d` and granularity guard `min_fraction`: the fixed point
    /// of [`LoadBalancer::observe`]'s update,
    /// `clamp(d · R_cpu / (R_cpu + R_gpu))`.
    pub fn analytic_optimum(r_cpu: f64, r_gpu: f64, derate: f64, min_fraction: f64) -> f64 {
        if r_cpu <= 0.0 || r_gpu <= 0.0 {
            return min_fraction.max(1e-4);
        }
        (derate * r_cpu / (r_cpu + r_gpu)).clamp(min_fraction.max(1e-4), 0.5)
    }

    /// Predicted per-cycle time at fraction `f` under the smoothed
    /// rates: the slower of the CPU side and the GPU side.
    fn predicted_cycle_time(&self, f: f64) -> f64 {
        (f / self.r_cpu).max((1.0 - f) / self.r_gpu)
    }

    /// Feed back one boundary window's measured busy times (slowest
    /// CPU worker, slowest device) and decide. On
    /// [`RebalanceDecision::Resplit`] the runner rebuilds the
    /// decomposition at the returned fraction and reports the realized
    /// value back via [`Rebalancer::note_realized`].
    pub fn observe(&mut self, cpu_time: SimDuration, gpu_time: SimDuration) -> RebalanceDecision {
        let decision = self.decide(cpu_time, gpu_time);
        if let RebalanceDecision::Resplit { fraction, .. } = decision {
            self.fraction = fraction;
        }
        self.history.push(self.fraction);
        self.decisions.push(decision);
        decision
    }

    fn decide(&mut self, cpu_time: SimDuration, gpu_time: SimDuration) -> RebalanceDecision {
        if self.frozen {
            return RebalanceDecision::Frozen;
        }
        let f = self.fraction;
        let (t_cpu, t_gpu) = (cpu_time.as_secs_f64(), gpu_time.as_secs_f64());
        if !(t_cpu > 0.0 && t_gpu > 0.0 && f > 0.0 && f < 1.0) {
            return RebalanceDecision::Hold {
                predicted_gain: 0.0,
            };
        }
        // Instantaneous rates implied by this window, EWMA-folded into
        // the running estimates (first observation seeds them).
        let (r_cpu, r_gpu) = (f / t_cpu, (1.0 - f) / t_gpu);
        if self.observations == 0 {
            self.r_cpu = r_cpu;
            self.r_gpu = r_gpu;
        } else {
            self.r_cpu = self.alpha * r_cpu + (1.0 - self.alpha) * self.r_cpu;
            self.r_gpu = self.alpha * r_gpu + (1.0 - self.alpha) * self.r_gpu;
        }
        self.observations += 1;
        let target =
            Self::analytic_optimum(self.r_cpu, self.r_gpu, self.phase_derate, self.min_fraction);
        let now = self.predicted_cycle_time(f);
        let then = self.predicted_cycle_time(target);
        let predicted_gain = if now > 0.0 { 1.0 - then / now } else { 0.0 };
        if predicted_gain > self.hysteresis && (target - f).abs() > f64::EPSILON {
            RebalanceDecision::Resplit {
                fraction: target,
                predicted_gain,
            }
        } else {
            RebalanceDecision::Hold { predicted_gain }
        }
    }

    /// Record the fraction the decomposition actually realized after a
    /// re-split (plane rounding moves the request), so the next
    /// window's rate estimates use the true split.
    pub fn note_realized(&mut self, fraction: f64) {
        self.fraction = self.clamp(fraction);
        if let Some(last) = self.history.last_mut() {
            *last = self.fraction;
        }
    }

    /// Freeze the controller at a recovery-realized split, verbatim:
    /// the foldback hands the lost slab to a GPU block, so the
    /// resulting fraction may legitimately sit below the granularity
    /// guard — it is recorded unclamped, and every later boundary
    /// returns [`RebalanceDecision::Frozen`] at this value.
    pub fn freeze_at(&mut self, fraction: f64) {
        self.fraction = fraction;
        if let Some(last) = self.history.last_mut() {
            *last = self.fraction;
        }
        self.frozen = true;
    }

    /// Count of re-splits actually taken.
    pub fn resplits(&self) -> u64 {
        self.decisions
            .iter()
            .filter(|d| matches!(d, RebalanceDecision::Resplit { .. }))
            .count() as u64
    }

    /// Count of boundaries where hysteresis (or degenerate timings)
    /// held the split.
    pub fn holds(&self) -> u64 {
        self.decisions
            .iter()
            .filter(|d| matches!(d, RebalanceDecision::Hold { .. }))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_guess_is_a_few_percent_with_the_bug() {
        // Paper: with the compiler bug, only 1–2% of zones can go to
        // the CPU; the effective-FLOPS guess should land in the low
        // single digits.
        let f = LoadBalancer::initial_guess(&NodeConfig::rzhasgpu());
        assert!(
            (0.005..0.08).contains(&f),
            "initial CPU fraction {f} should be a few percent"
        );
    }

    #[test]
    fn fixed_compiler_raises_the_guess() {
        let bug = LoadBalancer::initial_guess(&NodeConfig::rzhasgpu());
        let fixed = LoadBalancer::initial_guess(&NodeConfig::rzhasgpu_fixed_compiler());
        assert!(
            fixed > bug * 1.5,
            "fixing the compiler should raise the CPU share: {bug} → {fixed}"
        );
    }

    #[test]
    fn observe_converges_to_the_true_optimum() {
        // Synthetic processors: CPU rate 3 work/s, GPU rate 97 work/s
        // ⇒ optimal fraction 0.03.
        let mut lb = LoadBalancer::with_fraction(0.20);
        for _ in 0..25 {
            let f = lb.fraction;
            let cpu_time = SimDuration::from_secs_f64(f / 3.0);
            let gpu_time = SimDuration::from_secs_f64((1.0 - f) / 97.0);
            lb.observe(cpu_time, gpu_time);
        }
        assert!(
            (lb.fraction - 0.03).abs() < 0.003,
            "converged to {}",
            lb.fraction
        );
        assert!(lb.converged(1e-3));
    }

    #[test]
    fn min_fraction_is_respected() {
        let mut lb = LoadBalancer::with_fraction(0.10);
        lb.set_min_fraction(0.05);
        // Processors want ~1%: the floor binds.
        for _ in 0..10 {
            let f = lb.fraction;
            let cpu_time = SimDuration::from_secs_f64(f / 1.0);
            let gpu_time = SimDuration::from_secs_f64((1.0 - f) / 99.0);
            lb.observe(cpu_time, gpu_time);
        }
        assert!(
            (lb.fraction - 0.05).abs() < 1e-12,
            "floored at {}",
            lb.fraction
        );
    }

    #[test]
    fn degenerate_measurements_leave_fraction_stable() {
        let mut lb = LoadBalancer::with_fraction(0.05);
        lb.observe(SimDuration::ZERO, SimDuration::from_secs(1));
        assert!((lb.fraction - 0.05).abs() < 1e-12);
    }

    #[test]
    fn history_records_every_step() {
        let mut lb = LoadBalancer::with_fraction(0.1);
        lb.observe(SimDuration::from_secs(1), SimDuration::from_secs(1));
        lb.observe(SimDuration::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(lb.history.len(), 3);
    }

    /// Drive a [`Rebalancer`] against synthetic constant-rate
    /// processors for `n` boundaries; returns it for inspection.
    fn drive(mut rb: Rebalancer, r_cpu: f64, r_gpu: f64, n: usize) -> Rebalancer {
        for _ in 0..n {
            let f = rb.fraction;
            rb.observe(
                SimDuration::from_secs_f64(f / r_cpu),
                SimDuration::from_secs_f64((1.0 - f) / r_gpu),
            );
        }
        rb
    }

    #[test]
    fn rebalance_spec_round_trips_and_rejects_garbage() {
        let cfg = RebalanceConfig::parse("every=5,hysteresis=0.1").unwrap();
        assert_eq!(cfg.every, 5);
        assert!((cfg.hysteresis - 0.1).abs() < 1e-12);
        assert_eq!(RebalanceConfig::parse(&cfg.spec()).unwrap(), cfg);
        // Either key may be omitted (defaults fill in).
        let d = RebalanceConfig::default();
        assert_eq!(RebalanceConfig::parse("").unwrap(), d);
        assert_eq!(
            RebalanceConfig::parse("every=3").unwrap().hysteresis,
            d.hysteresis
        );
        for bad in ["every=0", "hysteresis=1.5", "evry=2", "every=x"] {
            assert!(
                RebalanceConfig::parse(bad).is_err(),
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn rebalancer_converges_to_the_analytic_optimum() {
        // CPU 3 work/s, GPU 97 work/s ⇒ optimum fraction 0.03.
        let rb = drive(
            Rebalancer::new(0.40, &RebalanceConfig::default()),
            3.0,
            97.0,
            12,
        );
        let opt = Rebalancer::analytic_optimum(3.0, 97.0, 1.0, 0.0);
        assert!((opt - 0.03).abs() < 1e-12);
        assert!(
            (rb.fraction - opt).abs() / opt < 0.05,
            "converged to {} vs optimum {opt}",
            rb.fraction
        );
        assert!(rb.resplits() >= 1);
    }

    #[test]
    fn rebalancer_weights_always_sum_to_one() {
        let mut rb = Rebalancer::new(0.3, &RebalanceConfig::default());
        rb.set_min_fraction(0.02);
        for i in 0..20u64 {
            let f = rb.fraction;
            rb.observe(
                SimDuration::from_secs_f64(f / (1.0 + (i % 5) as f64)),
                SimDuration::from_secs_f64((1.0 - f) / 50.0),
            );
            let (c, g) = rb.weights();
            assert!((c + g - 1.0).abs() < 1e-15);
            assert!(c >= rb.min_fraction && c <= 0.5);
        }
    }

    #[test]
    fn rebalancer_never_splits_below_the_granularity_guard() {
        // Processors that want ~1% CPU against a 12/ny-style guard of
        // 25%: the clamp binds at every boundary.
        let mut rb = Rebalancer::new(0.4, &RebalanceConfig::default());
        rb.set_min_fraction(0.25);
        let rb = drive(rb, 1.0, 99.0, 10);
        assert!(
            (rb.fraction - 0.25).abs() < 1e-12,
            "guard must bind: {}",
            rb.fraction
        );
        for &f in &rb.history {
            assert!(f >= 0.25 - 1e-12);
        }
    }

    #[test]
    fn hysteresis_prevents_oscillation_on_noisy_timings() {
        // Multiplicative measurement noise around fixed true rates:
        // with hysteresis the controller settles and stops re-splitting;
        // with none it keeps chasing the noise.
        let noisy = |hysteresis: f64| {
            let mut rb = Rebalancer::new(
                0.30,
                &RebalanceConfig {
                    every: 2,
                    hysteresis,
                },
            );
            let mut rng = hsim_time::rng::SplitMix64::new(7);
            for _ in 0..40 {
                let f = rb.fraction;
                let (jc, jg) = (rng.next_range_f64(0.9, 1.1), rng.next_range_f64(0.9, 1.1));
                rb.observe(
                    SimDuration::from_secs_f64(f / 5.0 * jc),
                    SimDuration::from_secs_f64((1.0 - f) / 95.0 * jg),
                );
            }
            rb
        };
        let with = noisy(0.05);
        let without = noisy(0.0);
        assert!(
            with.resplits() < without.resplits(),
            "hysteresis must damp re-splits: {} vs {}",
            with.resplits(),
            without.resplits()
        );
        // Once converged, the tail is all holds.
        let tail = &with.decisions[with.decisions.len() - 10..];
        assert!(
            tail.iter()
                .all(|d| matches!(d, RebalanceDecision::Hold { .. })),
            "tail still re-splitting: {tail:?}"
        );
    }

    #[test]
    fn same_timings_give_a_deterministic_resplit_sequence() {
        let run = || {
            let mut rb = Rebalancer::new(0.25, &RebalanceConfig::default());
            rb.set_min_fraction(0.01);
            for i in 1..=15u64 {
                rb.observe(
                    SimDuration::from_nanos(1000 + 37 * (i % 4)),
                    SimDuration::from_nanos(9000 + 11 * (i % 3)),
                );
            }
            rb
        };
        let (a, b) = (run(), run());
        assert_eq!(a.history, b.history);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn frozen_rebalancer_holds_the_post_recovery_split() {
        let mut rb = drive(
            Rebalancer::new(0.3, &RebalanceConfig::default()),
            3.0,
            97.0,
            3,
        );
        rb.note_realized(0.02);
        rb.freeze();
        assert!(rb.is_frozen());
        let before = rb.fraction;
        let d = rb.observe(SimDuration::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(d, RebalanceDecision::Frozen);
        assert!((rb.fraction - before).abs() < 1e-15);
    }

    #[test]
    fn degenerate_timings_hold_without_poisoning_the_estimator() {
        let mut rb = Rebalancer::new(0.1, &RebalanceConfig::default());
        let d = rb.observe(SimDuration::ZERO, SimDuration::from_secs(1));
        assert!(matches!(d, RebalanceDecision::Hold { .. }));
        assert_eq!(rb.rates(), (0.0, 0.0), "no estimate from a zero time");
        assert!((rb.fraction - 0.1).abs() < 1e-15);
    }
}
