//! Halo exchange and global reductions over the simulated MPI,
//! including host-staging charges for GPU-resident data.
//!
//! "Currently in ARES, the communication happens through the host
//! (CPU) only. Future hardware and software will enable direct
//! communication between GPUs, called GPU direct." (§5.3.) The
//! `gpu_direct` flag implements that future-work toggle: it removes
//! the D2H/H2D staging legs from the halo path.

use hsim_gpu::{xfer, DeviceSpec};
use hsim_hydro::{CoupleError, Coupler, HydroState, NCONS};
use hsim_mesh::{Decomposition, Exchange, HaloPlan};
use hsim_mpi::{Comm, Payload};
use hsim_raja::Fidelity;
use hsim_time::clock::ChargeKind;
use hsim_time::RankClock;

/// A halo face message: real data in full fidelity, an empty vector
/// with the true wire size in cost-only fidelity.
pub struct FaceMsg {
    pub data: Vec<f64>,
    pub wire_bytes: u64,
}

impl Payload for FaceMsg {
    fn byte_len(&self) -> u64 {
        self.wire_bytes
    }
}

/// The cooperative runner's [`Coupler`]: ghost exchange + reductions.
pub struct MpiCoupler<'a> {
    pub comm: &'a mut Comm,
    pub plan: &'a HaloPlan,
    pub decomp: &'a Decomposition,
    /// `Some(spec)` when this rank's mesh data is GPU-resident (its
    /// halo faces must be staged through the host).
    pub gpu_spec: Option<DeviceSpec>,
    /// §5.3 future work: GPUs exchange halos directly.
    pub gpu_direct: bool,
}

impl MpiCoupler<'_> {
    /// The global box this rank sends for exchange `ex` (the owned
    /// strip adjacent to the shared plane) and the ghost box it
    /// receives into, as `(send_lo, send_hi, recv_lo, recv_hi)`.
    fn boxes(
        &self,
        rank: usize,
        ex: &Exchange,
        ghost: usize,
    ) -> ([i64; 3], [i64; 3], [i64; 3], [i64; 3]) {
        let axis = ex.axis;
        let g = ghost as i64;
        let plane = ex.plane as i64;
        let mut s_lo = [0i64; 3];
        let mut s_hi = [0i64; 3];
        let mut r_lo = [0i64; 3];
        let mut r_hi = [0i64; 3];
        for a in 0..3 {
            if a == axis {
                continue;
            }
            s_lo[a] = ex.lo[a] as i64;
            s_hi[a] = ex.hi[a] as i64;
            r_lo[a] = ex.lo[a] as i64;
            r_hi[a] = ex.hi[a] as i64;
        }
        if rank == ex.a {
            // Low side: own zones just below the plane; ghosts above.
            s_lo[axis] = plane - g;
            s_hi[axis] = plane;
            r_lo[axis] = plane;
            r_hi[axis] = plane + g;
        } else {
            s_lo[axis] = plane;
            s_hi[axis] = plane + g;
            r_lo[axis] = plane - g;
            r_hi[axis] = plane;
        }
        (s_lo, s_hi, r_lo, r_hi)
    }

    /// Convert a global zone box to allocated-local coordinates for
    /// this rank (`local = global − sub.lo + ghost`; ghost cells land
    /// at indices `< ghost` or `≥ ghost + extent`).
    fn to_local(&self, rank: usize, lo: [i64; 3], hi: [i64; 3]) -> ([usize; 3], [usize; 3]) {
        let sub = &self.decomp.domains[rank];
        let g = sub.ghost as i64;
        let mut llo = [0usize; 3];
        let mut lhi = [0usize; 3];
        for a in 0..3 {
            let base = sub.lo[a] as i64;
            let l = lo[a] - base + g;
            let h = hi[a] - base + g;
            debug_assert!(l >= 0, "box {lo:?} below rank {rank} domain");
            llo[a] = l as usize;
            lhi[a] = h as usize;
        }
        (llo, lhi)
    }

    /// The cost of one staging leg (device↔host) for `bytes` of halo
    /// data; zero when this rank's mesh is host-resident or there is
    /// nothing to move.
    fn staging_cost(&self, bytes: u64) -> hsim_time::SimDuration {
        match &self.gpu_spec {
            Some(spec) if bytes > 0 => xfer::halo_leg_time(spec, bytes, false),
            _ => hsim_time::SimDuration::ZERO,
        }
    }

    /// The cost of a peer-to-peer DMA for `bytes` (only nonzero with
    /// GPU-direct on a GPU-resident mesh; zero bytes are free).
    fn p2p_cost(&self, bytes: u64) -> hsim_time::SimDuration {
        match &self.gpu_spec {
            Some(spec) if self.gpu_direct && bytes > 0 => xfer::p2p_time(spec, bytes),
            _ => hsim_time::SimDuration::ZERO,
        }
    }

    /// Split this rank's halo bytes into (to/from GPU-rank peers,
    /// everything else).
    fn classify_bytes(
        &self,
        rank: usize,
        exchanges: &[(usize, Exchange)],
        ghost: usize,
    ) -> (u64, u64) {
        let mut gpu_peer = 0;
        let mut other = 0;
        for (_, ex) in exchanges {
            let peer = if ex.a == rank { ex.b } else { ex.a };
            let bytes = ex.bytes(ghost) * NCONS as u64;
            if self.decomp.owners[peer].is_gpu() {
                gpu_peer += bytes;
            } else {
                other += bytes;
            }
        }
        (gpu_peer, other)
    }
}

impl Coupler for MpiCoupler<'_> {
    fn exchange(
        &mut self,
        state: &mut HydroState,
        clock: &mut RankClock,
    ) -> Result<(), CoupleError> {
        let rank = self.comm.rank();
        let ghost = self.decomp.domains[rank].ghost;
        let exchanges: Vec<(usize, Exchange)> = self
            .plan
            .exchanges_for_indexed(rank)
            .map(|(i, e)| (i, e.clone()))
            .collect();
        if exchanges.is_empty() {
            return Ok(());
        }
        // Bring the communicator clock up to the rank's causal time.
        self.comm.clock_mut().merge(clock.now());

        // Injected link delay (hsim-faults): the slow link charges its
        // virtual latency before any staging leg; data is unaffected.
        if let Some(hit) = hsim_faults::check(hsim_faults::Site::XferDelay) {
            hsim_telemetry::count(hsim_telemetry::Counter::FaultsInjected, 1);
            let t0 = self.comm.now();
            self.comm.clock_mut().charge(
                ChargeKind::Comm,
                hsim_time::SimDuration::from_nanos(hit.param),
            );
            hsim_telemetry::count(hsim_telemetry::Counter::FaultsRecovered, 1);
            hsim_telemetry::rank_span(
                hsim_telemetry::Category::Transfer,
                "fault_xfer_delay",
                t0,
                self.comm.now(),
            );
        }

        // Outgoing transfer legs. Without GPU-direct every byte of a
        // GPU-resident mesh stages D2H; with it, faces bound for other
        // GPU ranks go peer-to-peer in a single DMA charged on the
        // sender (§5.3), while faces for CPU ranks still cross the
        // host both ways.
        let (gpu_peer_bytes, other_bytes) = self.classify_bytes(rank, &exchanges, ghost);
        let staged_out = other_bytes + if self.gpu_direct { 0 } else { gpu_peer_bytes };
        let p2p_out = if self.gpu_direct { gpu_peer_bytes } else { 0 };
        let t_stage = self.comm.now();
        let cost = self.staging_cost(staged_out) + self.p2p_cost(p2p_out);
        self.comm.clock_mut().charge(ChargeKind::Memory, cost);
        if cost > hsim_time::SimDuration::ZERO {
            hsim_telemetry::rank_span(
                hsim_telemetry::Category::Transfer,
                "halo_stage_out",
                t_stage,
                self.comm.now(),
            );
        }

        // Post all sends first (buffered transport: no deadlock).
        for (idx, ex) in &exchanges {
            let peer = if ex.a == rank { ex.b } else { ex.a };
            let (s_lo, s_hi, _, _) = self.boxes(rank, ex, ghost);
            for var in 0..NCONS {
                let tag = (*idx as u32) * 16 + var as u32 * 2 + u32::from(ex.a == rank);
                let data = if state.fidelity == Fidelity::Full {
                    let (llo, lhi) = self.to_local(rank, s_lo, s_hi);
                    state.u.pack_box(var, llo, lhi)
                } else {
                    Vec::new()
                };
                let msg = FaceMsg {
                    data,
                    wire_bytes: ex.bytes(ghost),
                };
                self.comm.send(peer, tag, msg).map_err(|e| CoupleError {
                    op: "halo_send",
                    detail: format!("rank {rank} -> {peer}: {e}"),
                })?;
            }
        }

        // Receive and unpack.
        let mut in_bytes = 0u64;
        for (idx, ex) in &exchanges {
            let peer = if ex.a == rank { ex.b } else { ex.a };
            let (_, _, r_lo, r_hi) = self.boxes(rank, ex, ghost);
            for var in 0..NCONS {
                // The peer's direction bit is the complement of ours.
                let tag = (*idx as u32) * 16 + var as u32 * 2 + u32::from(ex.a == peer);
                let msg: FaceMsg = self.comm.recv(peer, tag).map_err(|e| CoupleError {
                    op: "halo_recv",
                    detail: format!("rank {rank} <- {peer}: {e}"),
                })?;
                in_bytes += msg.wire_bytes;
                if state.fidelity == Fidelity::Full {
                    let (llo, lhi) = self.to_local(rank, r_lo, r_hi);
                    state.u.unpack_box(var, llo, lhi, &msg.data);
                }
            }
        }
        // Incoming staging: with GPU-direct the peer's DMA already
        // delivered GPU-peer faces into device memory (no charge
        // here); CPU-peer faces — and everything without GPU-direct —
        // pay the H2D leg.
        let _ = in_bytes;
        let t_stage = self.comm.now();
        let cost = self.staging_cost(staged_out);
        self.comm.clock_mut().charge(ChargeKind::Memory, cost);
        if cost > hsim_time::SimDuration::ZERO {
            hsim_telemetry::rank_span(
                hsim_telemetry::Category::Transfer,
                "halo_stage_in",
                t_stage,
                self.comm.now(),
            );
        }

        // Injected corruption (hsim-faults): the received faces fail
        // their checksum and the whole exchange is re-sent with
        // exponential backoff. The wire data is re-read from the
        // still-correct source fields, so physics is untouched; only
        // virtual time is lost. Corruption is inherently transient
        // here — a `perm` marking caps at the full retry budget.
        if let Some(hit) = hsim_faults::check(hsim_faults::Site::XferCorrupt) {
            hsim_telemetry::count(hsim_telemetry::Counter::FaultsInjected, 1);
            let t0 = self.comm.now();
            let retries = match hit.severity {
                hsim_faults::Severity::Permanent => hsim_faults::MAX_RETRIES,
                hsim_faults::Severity::Transient { count } => count.min(hsim_faults::MAX_RETRIES),
            };
            let resend = match &self.gpu_spec {
                Some(spec) if staged_out > 0 => {
                    xfer::retry_leg_time(spec, staged_out, self.gpu_direct)
                }
                _ => hsim_time::SimDuration::ZERO,
            };
            for attempt in 0..retries {
                self.comm.clock_mut().charge(ChargeKind::Memory, resend);
                self.comm
                    .clock_mut()
                    .charge(ChargeKind::Wait, hsim_faults::backoff_delay(attempt));
                hsim_telemetry::count(hsim_telemetry::Counter::FaultRetries, 1);
            }
            hsim_telemetry::count(hsim_telemetry::Counter::FaultsRecovered, 1);
            hsim_telemetry::rank_span(
                hsim_telemetry::Category::Transfer,
                "fault_xfer_retry",
                t0,
                self.comm.now(),
            );
        }

        // Propagate the communicator's advanced time back.
        clock.merge(self.comm.now());
        Ok(())
    }

    fn allreduce_min(&mut self, x: f64, clock: &mut RankClock) -> Result<f64, CoupleError> {
        self.comm.clock_mut().merge(clock.now());
        let r = self.comm.allreduce_min(x).map_err(|e| CoupleError {
            op: "allreduce_min",
            detail: e.to_string(),
        })?;
        clock.merge(self.comm.now());
        Ok(r)
    }

    fn migrate_particles(
        &mut self,
        outbound: Vec<Vec<f64>>,
        clock: &mut RankClock,
    ) -> Result<Vec<Vec<f64>>, CoupleError> {
        self.comm.clock_mut().merge(clock.now());
        let inbound = self.comm.alltoallv_f64(outbound).map_err(|e| CoupleError {
            op: "particle_migrate",
            detail: e.to_string(),
        })?;
        clock.merge(self.comm.now());
        Ok(inbound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_mesh::decomp::block::block_decomp;
    use hsim_mesh::GlobalGrid;
    use hsim_mpi::{CommCost, World};
    use hsim_raja::{CpuModel, Executor, Target};
    use hsim_time::SimDuration;

    /// Two ranks split along x; verify ghosts carry the neighbor's
    /// boundary values after an exchange.
    #[test]
    fn exchange_fills_ghosts_with_neighbor_data() {
        let grid = GlobalGrid::new(8, 4, 4);
        let decomp = block_decomp(grid, 2, 1);
        let plan = HaloPlan::build(&decomp);
        let decomp = &decomp;
        let plan = &plan;
        let ok = World::run(2, CommCost::on_node(), |comm| {
            let rank = comm.rank();
            let sub = decomp.domains[rank];
            let mut state = HydroState::new(grid, sub, Fidelity::Full);
            // Tag every owned zone of every field with rank*1000 + var.
            for var in 0..NCONS {
                state.u.fill_owned(var, (rank * 1000 + var) as f64);
            }
            let mut clock = RankClock::new(rank);
            let mut coupler = MpiCoupler {
                comm,
                plan,
                decomp,
                gpu_spec: None,
                gpu_direct: false,
            };
            coupler
                .exchange(&mut state, &mut clock)
                .expect("exchange on a live world");
            // Rank 0 owns x ∈ [0,4): its high-x ghosts (allocated x =
            // 5) must now hold rank 1's values; mirrored for rank 1.
            let expect = ((1 - rank) * 1000) as f64;
            let f = &state.u;
            let gx = if rank == 0 { 5 } else { 0 };
            let idx = f.idx(gx, 2, 2);
            (f.var(0)[idx] - expect).abs() < 1e-12
        });
        assert!(ok.iter().all(|&b| b), "{ok:?}");
    }

    #[test]
    fn exchange_charges_comm_time() {
        let grid = GlobalGrid::new(16, 16, 16);
        let decomp = block_decomp(grid, 2, 1);
        let plan = HaloPlan::build(&decomp);
        let (decomp, plan) = (&decomp, &plan);
        let times = World::run(2, CommCost::on_node(), |comm| {
            let rank = comm.rank();
            let sub = decomp.domains[rank];
            let mut state = HydroState::new(grid, sub, Fidelity::CostOnly);
            let mut clock = RankClock::new(rank);
            let mut coupler = MpiCoupler {
                comm,
                plan,
                decomp,
                gpu_spec: None,
                gpu_direct: false,
            };
            coupler
                .exchange(&mut state, &mut clock)
                .expect("exchange on a live world");
            clock.now().as_nanos()
        });
        // 16x16 face × 5 fields × 8 B ≈ 10 KB each way + latency.
        assert!(times.iter().all(|&t| t > 1_000), "{times:?}");
    }

    /// Injected transfer faults charge virtual time on the faulted
    /// rank only, recover without touching physics, and replay
    /// byte-identically for the same plan.
    #[test]
    fn injected_transfer_faults_charge_virtual_time_deterministically() {
        use std::sync::Arc;
        let grid = GlobalGrid::new(16, 16, 16);
        let decomp = block_decomp(grid, 2, 1);
        let plan = HaloPlan::build(&decomp);
        let (decomp, plan) = (&decomp, &plan);
        let run = |spec: &str| {
            let fp = Arc::new(hsim_faults::FaultPlan::parse(spec).unwrap());
            World::run(2, CommCost::on_node(), |comm| {
                let rank = comm.rank();
                hsim_faults::install(rank, fp.clone());
                hsim_faults::set_cycle(0);
                let sub = decomp.domains[rank];
                let mut state = HydroState::new(grid, sub, Fidelity::CostOnly);
                let mut clock = RankClock::new(rank);
                let mut coupler = MpiCoupler {
                    comm,
                    plan,
                    decomp,
                    gpu_spec: None,
                    gpu_direct: false,
                };
                coupler
                    .exchange(&mut state, &mut clock)
                    .expect("exchange on a live world");
                hsim_faults::uninstall();
                clock.now().as_nanos()
            })
        };
        let base = run("");
        let delayed = run("xfer.delay@rank0.cycle0:ns=200000");
        assert!(
            delayed[0] >= base[0] + 200_000,
            "delay not charged: {} vs {}",
            delayed[0],
            base[0]
        );
        // Same plan twice: byte-identical virtual times.
        assert_eq!(delayed, run("xfer.delay@rank0.cycle0:ns=200000"));
        let corrupted = run("xfer.corrupt@rank0.cycle0");
        assert!(
            corrupted[0] >= base[0] + hsim_faults::BACKOFF_BASE_NS,
            "retry backoff not charged: {} vs {}",
            corrupted[0],
            base[0]
        );
    }

    #[test]
    fn gpu_staging_adds_memory_charges_unless_gpu_direct() {
        let grid = GlobalGrid::new(16, 16, 16);
        let decomp = block_decomp(grid, 2, 1);
        let plan = HaloPlan::build(&decomp);
        let (decomp, plan) = (&decomp, &plan);
        let mut measured = Vec::new();
        for gpu_direct in [false, true] {
            let charges = World::run(2, CommCost::on_node(), |comm| {
                let rank = comm.rank();
                let sub = decomp.domains[rank];
                let mut state = HydroState::new(grid, sub, Fidelity::CostOnly);
                let mut clock = RankClock::new(rank);
                let mut coupler = MpiCoupler {
                    comm,
                    plan,
                    decomp,
                    gpu_spec: Some(DeviceSpec::tesla_k80()),
                    gpu_direct,
                };
                coupler
                    .exchange(&mut state, &mut clock)
                    .expect("exchange on a live world");
                coupler.comm.clock().bucket(ChargeKind::Memory).as_nanos()
            });
            assert!(charges.iter().all(|&c| c > 0), "{charges:?}");
            measured.push(charges[0]);
        }
        // GPU-direct (one peer DMA) must beat two staging legs.
        assert!(
            measured[1] < measured[0],
            "gpu-direct {} vs staged {}",
            measured[1],
            measured[0]
        );
    }

    #[test]
    fn allreduce_min_agrees_across_ranks_and_advances_clocks() {
        let grid = GlobalGrid::new(8, 8, 8);
        let decomp = block_decomp(grid, 4, 1);
        let plan = HaloPlan::build(&decomp);
        let (decomp, plan) = (&decomp, &plan);
        let out = World::run(4, CommCost::on_node(), |comm| {
            let rank = comm.rank();
            let mut clock = RankClock::new(rank);
            clock.charge(ChargeKind::Compute, SimDuration::from_micros(rank as u64));
            let mut coupler = MpiCoupler {
                comm,
                plan,
                decomp,
                gpu_spec: None,
                gpu_direct: false,
            };
            let m = coupler
                .allreduce_min(1.0 + rank as f64, &mut clock)
                .expect("allreduce on a live world");
            (m, clock.now().as_nanos())
        });
        for (m, t) in &out {
            assert_eq!(*m, 1.0);
            // Everyone waited for the slowest entrant (3 µs).
            assert!(*t >= 3_000, "clock {t}");
        }
    }

    /// The keystone correctness test: a 4-rank cooperative run must
    /// produce *bitwise* the same physics as a single-domain run
    /// (all reductions are exact-min, so no FP reordering exists).
    #[test]
    fn multirank_sedov_matches_solo_bitwise() {
        use hsim_hydro::sedov::{self, SedovConfig};
        use hsim_hydro::{step, SoloCoupler};

        let grid = GlobalGrid::new(16, 16, 16);
        // Solo reference.
        let solo_rho = {
            let sub = hsim_mesh::Subdomain::new([0, 0, 0], [16, 16, 16], 1);
            let mut st = HydroState::new(grid, sub, Fidelity::Full);
            sedov::init(&mut st, &SedovConfig::default());
            let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
            let mut clock = RankClock::new(0);
            let mut solo = SoloCoupler;
            for _ in 0..4 {
                step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
            }
            st
        };

        let decomp = block_decomp(grid, 4, 1);
        let plan = HaloPlan::build(&decomp);
        let (decomp, plan) = (&decomp, &plan);
        let pieces = World::run(4, CommCost::on_node(), |comm| {
            let rank = comm.rank();
            let sub = decomp.domains[rank];
            let mut st = HydroState::new(grid, sub, Fidelity::Full);
            sedov::init(&mut st, &SedovConfig::default());
            let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
            let mut clock = RankClock::new(rank);
            let mut coupler = MpiCoupler {
                comm,
                plan,
                decomp,
                gpu_spec: None,
                gpu_direct: false,
            };
            for _ in 0..4 {
                step(&mut st, &mut exec, &mut clock, &mut coupler, 0.3, 1.0).unwrap();
            }
            // Return owned density values with global coordinates.
            let mut out = Vec::new();
            for k in 0..sub.extent(2) {
                for j in 0..sub.extent(1) {
                    for i in 0..sub.extent(0) {
                        out.push((
                            [i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]],
                            st.u.get(0, i, j, k),
                        ));
                    }
                }
            }
            out
        });
        let mut checked = 0;
        for piece in pieces {
            for ([i, j, k], rho) in piece {
                let reference = solo_rho.u.get(0, i, j, k);
                assert_eq!(
                    rho.to_bits(),
                    reference.to_bits(),
                    "density mismatch at ({i},{j},{k}): {rho} vs {reference}"
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 16 * 16 * 16);
    }
}
