//! The cooperative runner: the paper's §5 control code.
//!
//! For a given [`ExecMode`] the runner decomposes the grid, binds
//! ranks to cores and GPUs, sets up the Figure 8 memory scheme, spawns
//! one simulated MPI rank per binding, runs the Sedov hydro for a
//! fixed number of cycles, applies the node-level host-bandwidth
//! model, and reports per-rank virtual-time breakdowns.

use std::sync::Arc;

use parking_lot::Mutex;

use hsim_gpu::memory::MemoryPool;
use hsim_gpu::Device;
use hsim_hydro::diffusion::{diffuse_step, DiffusionConfig};
use hsim_hydro::sedov::{self, SedovConfig};
use hsim_hydro::workload::{self, PerturbedConfig};
use hsim_hydro::{sod, step, HydroState};
use hsim_mesh::decomp::block::{block_decomp, block_decomp_yz};
use hsim_mesh::decomp::hierarchical::hierarchical_decomp_yz;
use hsim_mesh::decomp::weighted::{weighted_hetero_decomp, WeightedConfig};
use hsim_mesh::{Decomposition, GlobalGrid, HaloPlan, OwnerKind};
use hsim_mpi::World;
use hsim_raja::{Executor, Fidelity, GpuClient, SharedDevice, Target, WorkPool};
use hsim_telemetry::{Category, Collector, Counter, Gauge, Summary, TimeStat};
use hsim_time::clock::ChargeKind;
use hsim_time::{RankClock, SimDuration, SimTime};

use crate::balance::LoadBalancer;
use crate::binding::{build_bindings, validate_bindings};
use crate::calib;
use crate::coupler::MpiCoupler;
use crate::memscheme;
use crate::mode::ExecMode;
use crate::node::NodeConfig;
use crate::report::{RankReport, RunResult};

/// The physics problem a run initializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Problem {
    /// The paper's workload: the 3D Sedov blast wave (§7, Fig 11).
    Sedov(SedovConfig),
    /// The Sod shock tube (validation problem with an exact solution).
    Sod(sod::SodConfig),
    /// Seeded random multi-mode perturbations (balancer stress test).
    Perturbed(PerturbedConfig),
}

impl Default for Problem {
    fn default() -> Self {
        Problem::Sedov(SedovConfig::default())
    }
}

impl Problem {
    fn init(&self, state: &mut HydroState) {
        match self {
            Problem::Sedov(cfg) => sedov::init(state, cfg),
            Problem::Sod(cfg) => sod::init(state, cfg),
            Problem::Perturbed(cfg) => workload::init(state, cfg),
        }
    }
}

/// Everything one cooperative run needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Global grid zones (nx, ny, nz).
    pub grid: (usize, usize, usize),
    pub mode: ExecMode,
    pub node: NodeConfig,
    pub cycles: u64,
    pub fidelity: Fidelity,
    /// §5.3 future work: GPUs exchange halos without host staging.
    pub gpu_direct: bool,
    /// Run the thermal-diffusion package after each hydro cycle
    /// (multi-physics configuration; None = hydro only, as in the
    /// paper's Sedov study).
    pub diffusion: Option<DiffusionConfig>,
    /// MultiPolicy host threshold for GPU ranks (0 = disabled; the
    /// paper's future-work runtime policy selection).
    pub multipolicy_threshold: u64,
    /// Record per-cycle spans per rank (busy vs waiting) for Gantt
    /// rendering.
    pub trace: bool,
    /// Collect full telemetry (metrics, kernel profiles, structured
    /// spans) into [`RunResult::telemetry`]. Off by default: the
    /// per-launch hot path then stays allocation-free.
    pub telemetry: bool,
    /// The physics problem to initialize (default: Sedov).
    pub problem: Problem,
    /// Host threads per parallel region for CPU ranks. With the
    /// default of 1, CPU ranks execute (and are costed) sequentially
    /// exactly as the paper's study; > 1 builds **one** shared
    /// [`WorkPool`] for the whole run and hands it to every CPU rank's
    /// executor, so thread-safe kernels and reductions run on
    /// persistent workers and virtual time is charged by the OpenMP
    /// cost model at this width.
    pub host_threads: usize,
}

impl RunConfig {
    /// A figure-sweep configuration: RZHasGPU, cost-only fidelity,
    /// the standard cycle count.
    pub fn sweep(grid: (usize, usize, usize), mode: ExecMode) -> Self {
        RunConfig {
            grid,
            mode,
            node: NodeConfig::rzhasgpu(),
            cycles: calib::SWEEP_CYCLES,
            fidelity: Fidelity::CostOnly,
            gpu_direct: false,
            diffusion: None,
            multipolicy_threshold: 0,
            trace: false,
            telemetry: false,
            problem: Problem::default(),
            host_threads: 1,
        }
    }

    fn global_grid(&self) -> GlobalGrid {
        GlobalGrid::new(self.grid.0, self.grid.1, self.grid.2)
    }
}

/// Build the mode's decomposition (paper §6.1).
pub fn build_decomposition(cfg: &RunConfig, cpu_fraction: f64) -> Result<Decomposition, String> {
    let grid = cfg.global_grid();
    let node = &cfg.node;
    match cfg.mode {
        ExecMode::CpuOnly => {
            let mut d = block_decomp(grid, node.cores, 1);
            for o in &mut d.owners {
                *o = OwnerKind::Cpu;
            }
            Ok(d)
        }
        ExecMode::Default => Ok(block_decomp_yz(grid, node.gpus, 1)),
        ExecMode::Mps { per_gpu } => hierarchical_decomp_yz(grid, node.gpus, per_gpu, 2, 1),
        ExecMode::Heterogeneous { .. } => {
            let wc = WeightedConfig {
                n_gpus: node.gpus,
                cpu_per_gpu: node.workers_per_gpu(),
                cpu_fraction,
                carve_axis: 1,
                ghost: 1,
                pin_x: true,
            };
            weighted_hetero_decomp(grid, &wc)
        }
    }
}

/// The minimum realizable CPU fraction of the heterogeneous
/// decomposition (one carve-axis plane per CPU rank).
pub fn hetero_min_fraction(cfg: &RunConfig) -> f64 {
    let grid = cfg.global_grid();
    let node = &cfg.node;
    let top = block_decomp_yz(grid, node.gpus, 1);
    let ext = top.domains[0].extent(1).max(1);
    node.workers_per_gpu() as f64 / ext as f64
}

/// Execute one cooperative run.
pub fn run(cfg: &RunConfig) -> Result<RunResult, String> {
    let fraction_request = match cfg.mode {
        ExecMode::Heterogeneous { cpu_fraction } => {
            cpu_fraction.unwrap_or_else(|| LoadBalancer::initial_guess(&cfg.node))
        }
        _ => 0.0,
    };
    run_with_fraction(cfg, fraction_request)
}

/// Execute one run with an explicit heterogeneous CPU fraction
/// (ignored by the other modes).
pub fn run_with_fraction(cfg: &RunConfig, cpu_fraction: f64) -> Result<RunResult, String> {
    let grid = cfg.global_grid();
    let node = &cfg.node;
    let decomp = build_decomposition(cfg, cpu_fraction)?;
    decomp.validate()?;
    let plan = HaloPlan::build(&decomp);
    let roles = build_bindings(&cfg.mode, node);
    validate_bindings(&roles, node)?;
    if roles.len() != decomp.len() {
        return Err(format!(
            "binding count {} != decomposition count {}",
            roles.len(),
            decomp.len()
        ));
    }
    let n_ranks = roles.len();

    // Devices and clients per mode.
    let mut devices: Vec<Arc<SharedDevice>> = Vec::new();
    let mut slots: Vec<Option<(GpuClient, Arc<SharedDevice>)>> =
        (0..n_ranks).map(|_| None).collect();
    match cfg.mode {
        ExecMode::CpuOnly => {}
        ExecMode::Default | ExecMode::Heterogeneous { .. } => {
            for (g, slot) in slots.iter_mut().take(node.gpus).enumerate() {
                let device = Device::new(g, node.gpu_spec.clone());
                let (shared, client) =
                    SharedDevice::new_exclusive(device, g).map_err(|e| e.to_string())?;
                *slot = Some((client, Arc::clone(&shared)));
                devices.push(shared);
            }
        }
        ExecMode::Mps { per_gpu } => {
            for g in 0..node.gpus {
                let device = Device::new(g, node.gpu_spec.clone());
                let pids: Vec<usize> = (0..per_gpu).map(|i| g * per_gpu + i).collect();
                let (shared, clients) =
                    SharedDevice::new_mps(device, &pids).map_err(|e| e.to_string())?;
                for (i, client) in clients.into_iter().enumerate() {
                    slots[g * per_gpu + i] = Some((client, Arc::clone(&shared)));
                }
                devices.push(shared);
            }
        }
    }
    let slots = Mutex::new(slots);

    // One host work pool for the whole run (never per region, never
    // per rank): CPU ranks share its persistent workers for parallel
    // kernels and reductions. None = the paper's sequential CPU ranks.
    let host_pool: Option<Arc<WorkPool>> = if cfg.host_threads > 1 {
        Some(Arc::new(WorkPool::new(cfg.host_threads - 1)))
    } else {
        None
    };

    // Node-level host-bandwidth model (the Figure 12 kink): aggregate
    // host traffic beyond the active cores' capacity costs extra,
    // distributed over ranks in proportion to their zones.
    let total_zones = grid.zones() as f64;
    let capacity = n_ranks as f64 * calib::HOST_ZONES_PER_CORE;
    let excess = (total_zones - capacity).max(0.0);
    let penalty_per_cycle: Vec<SimDuration> = (0..n_ranks)
        .map(|r| {
            let share = decomp.domains[r].zones() as f64 / total_zones;
            SimDuration::from_nanos_f64(excess * calib::HOST_PENALTY_NS_PER_ZONE * share)
        })
        .collect();

    let decomp_ref = &decomp;
    let plan_ref = &plan;
    let roles_ref = &roles;
    let slots_ref = &slots;
    let penalty_ref = &penalty_per_cycle;
    let pool_ref = &host_pool;
    let cfg_ref = cfg;

    // One collector per rank thread serves both consumers: the full
    // telemetry summary and the legacy per-cycle Gantt trace (now a
    // projection of the same span store).
    let collect = cfg.telemetry || cfg.trace;

    let outputs: Vec<(RankReport, Option<Collector>)> =
        World::run(n_ranks, node.comm.clone(), |comm| {
            let rank = comm.rank();
            let sub = decomp_ref.domains[rank];
            let role = roles_ref[rank];
            let client = slots_ref.lock()[rank].take();
            let mut clock = RankClock::new(rank);
            if collect {
                hsim_telemetry::install(Collector::new(rank));
            }

            // Figure 8 memory scheme: GPU ranks put mesh data in unified
            // memory (paying the initial fault-in) and temporaries in a
            // device pool; CPU ranks host-allocate everything.
            let mut _pool: Option<MemoryPool> = None;
            let target = if let Some((client, shared)) = &client {
                let mesh = memscheme::mesh_bytes(sub.zones());
                let t_um = clock.now();
                let (_region, cost) = shared
                    .um_alloc_and_touch(mesh)
                    .expect("mesh fits device memory");
                clock.charge(ChargeKind::Memory, cost);
                hsim_telemetry::count(Counter::UmMigrations, 1);
                hsim_telemetry::count(Counter::UmBytesMigrated, mesh);
                hsim_telemetry::time_stat(TimeStat::MigrationTime, cost);
                hsim_telemetry::rank_span(Category::UmMigration, "um_fault_in", t_um, clock.now());
                _pool = Some(MemoryPool::new(
                    memscheme::temp_bytes(sub.zones()).max(4096),
                ));
                Target::Gpu(client.clone())
            } else {
                match pool_ref {
                    Some(pool) => Target::CpuParallel {
                        pool: Arc::clone(pool),
                    },
                    None => Target::CpuSeq,
                }
            };

            let mut exec = Executor::new(target, cfg_ref.node.cpu.clone(), cfg_ref.fidelity)
                .with_multipolicy(hsim_raja::MultiPolicy::with_threshold(
                    cfg_ref.multipolicy_threshold,
                ));
            let mut state = HydroState::new(grid, sub, cfg_ref.fidelity);
            cfg_ref.problem.init(&mut state);

            // Setup complete: synchronize and zero the runtime baseline.
            // The figures report cycle-loop time (setup — UM fault-in,
            // allocation — amortizes to noise over a real run's length).
            comm.clock_mut().merge(clock.now());
            comm.barrier().expect("setup barrier");
            clock.merge(comm.now());
            let t0 = clock.now();
            hsim_telemetry::rank_span(Category::Runtime, "setup", SimTime::ZERO, t0);

            let mut coupler = MpiCoupler {
                comm,
                plan: plan_ref,
                decomp: decomp_ref,
                gpu_spec: client.as_ref().map(|_| cfg_ref.node.gpu_spec.clone()),
                gpu_direct: cfg_ref.gpu_direct,
            };

            for _ in 0..cfg_ref.cycles {
                let cycle_start = clock.now();
                let wait_before = clock.bucket(ChargeKind::Wait);
                // Pooled temporaries are grabbed per cycle and released at
                // the cycle boundary (cnmem discipline).
                if let Some(pool) = _pool.as_mut() {
                    let a = pool.alloc(memscheme::temp_bytes(sub.zones()).max(256));
                    debug_assert!(a.is_ok());
                    pool.reset();
                }
                let stats = step(
                    &mut state,
                    &mut exec,
                    &mut clock,
                    &mut coupler,
                    calib::CFL,
                    calib::COST_ONLY_DT,
                )
                .expect("hydro cycle");
                if let Some(diff) = &cfg_ref.diffusion {
                    diffuse_step(
                        &mut state,
                        &mut exec,
                        &mut clock,
                        &mut coupler,
                        diff,
                        stats.dt,
                    )
                    .expect("diffusion package");
                }
                // Serial host control code between kernels.
                clock.charge(
                    ChargeKind::Control,
                    SimDuration::from_nanos_f64(
                        stats.launches as f64 * calib::CONTROL_NS_PER_LAUNCH,
                    ),
                );
                // Host-bandwidth saturation penalty.
                clock.charge(ChargeKind::Memory, penalty_ref[rank]);
                if collect {
                    // One busy span + one idle span per cycle: the idle
                    // share is the Wait-bucket growth (GPU sync + peers).
                    let wait_delta = clock.bucket(ChargeKind::Wait) - wait_before;
                    let cycle_end = clock.now();
                    let busy_end = SimTime::from_nanos(
                        cycle_end.as_nanos().saturating_sub(wait_delta.as_nanos()),
                    );
                    let cat = if role.is_gpu_driver() {
                        Category::GpuKernel
                    } else {
                        Category::CpuKernel
                    };
                    hsim_telemetry::rank_span(cat, "cycle", cycle_start, busy_end);
                    hsim_telemetry::rank_span(Category::Idle, "wait", busy_end, cycle_end);
                }
            }

            // Fold the communicator's clock into the rank clock and report.
            let comm_clock = coupler.comm.clock().clone();
            clock.merge(comm_clock.now());
            let bytes_sent = coupler.comm.bytes_sent();
            let report = RankReport {
                rank,
                role,
                zones: sub.zones(),
                setup: t0 - hsim_time::SimTime::ZERO,
                total: clock.now() - t0,
                compute: clock.bucket(ChargeKind::Compute),
                launch: clock.bucket(ChargeKind::Launch),
                memory: clock.bucket(ChargeKind::Memory) + comm_clock.bucket(ChargeKind::Memory),
                comm: comm_clock.bucket(ChargeKind::Comm),
                control: clock.bucket(ChargeKind::Control),
                wait: clock.bucket(ChargeKind::Wait) + comm_clock.bucket(ChargeKind::Wait),
                launches: exec.registry.total_launches(),
                bytes_sent,
            };
            (report, hsim_telemetry::uninstall())
        });

    let mut reports = Vec::with_capacity(outputs.len());
    let mut collectors = Vec::new();
    for (report, collector) in outputs {
        collectors.extend(collector);
        reports.push(report);
    }

    // Merge the rank collectors once; the legacy Gantt trace is a
    // filtered projection of the same span store.
    let summary = if collect {
        let mut s = Summary::from_collectors(collectors);
        s.metrics
            .gauge_set(Gauge::CpuFraction, decomp.cpu_zone_fraction());
        Some(s)
    } else {
        None
    };
    let trace = match (&summary, cfg.trace) {
        (Some(s), true) => Some(s.legacy_trace_where(|sp| sp.name == "cycle" || sp.name == "wait")),
        _ => None,
    };

    let runtime = reports
        .iter()
        .map(|r| r.total)
        .fold(SimDuration::ZERO, SimDuration::max);
    let device_busy = devices.iter().map(|d| d.busy()).collect();
    Ok(RunResult {
        mode_key: cfg.mode.key(),
        mode_label: cfg.mode.label(),
        grid: cfg.grid,
        zones: grid.zones(),
        runtime,
        cpu_fraction: decomp.cpu_zone_fraction(),
        cycles: cfg.cycles,
        ranks: reports,
        device_busy,
        trace,
        telemetry: if cfg.telemetry { summary } else { None },
    })
}

/// The §6.2 loop: run, measure CPU vs GPU busy time, adjust the split,
/// repeat until the fraction converges ("static within an iteration,
/// but the decomposition can be adjusted between iterations").
///
/// Returns the final run and the balancer with its history. For
/// non-heterogeneous modes this is a single plain run.
pub fn run_balanced(cfg: &RunConfig) -> Result<(RunResult, LoadBalancer), String> {
    if !matches!(cfg.mode, ExecMode::Heterogeneous { .. }) {
        let result = run(cfg)?;
        return Ok((result, LoadBalancer::with_fraction(0.0)));
    }
    let mut lb = match cfg.mode {
        ExecMode::Heterogeneous {
            cpu_fraction: Some(f),
        } => LoadBalancer::with_fraction(f),
        _ => LoadBalancer::new(&cfg.node),
    };
    lb.set_min_fraction(hetero_min_fraction(cfg));
    let mut result = run_with_fraction(cfg, lb.fraction)?;
    let mut rebalances = 0u64;
    for _ in 0..calib::BALANCE_MAX_ITERS {
        let cpu_time = result.slowest_cpu_compute();
        let gpu_time = result.slowest_device_busy();
        if cpu_time.is_zero() || gpu_time.is_zero() {
            break;
        }
        let before = lb.fraction;
        lb.observe(cpu_time, gpu_time);
        if (lb.fraction - before).abs() < calib::BALANCE_TOL {
            break;
        }
        rebalances += 1;
        result = run_with_fraction(cfg, lb.fraction)?;
    }
    if let Some(s) = result.telemetry.as_mut() {
        s.metrics.count(Counter::Rebalances, rebalances);
    }
    Ok((result, lb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_cfg(grid: (usize, usize, usize), mode: ExecMode) -> RunConfig {
        let mut cfg = RunConfig::sweep(grid, mode);
        cfg.cycles = 3;
        cfg
    }

    #[test]
    fn all_modes_run_cost_only() {
        for mode in [
            ExecMode::CpuOnly,
            ExecMode::Default,
            ExecMode::mps4(),
            ExecMode::hetero(),
        ] {
            let cfg = sweep_cfg((64, 48, 32), mode);
            let r = run(&cfg).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert!(r.runtime > SimDuration::ZERO, "{mode:?}");
            assert_eq!(r.zones, 64 * 48 * 32);
            assert_eq!(r.ranks.len(), mode.total_ranks(&cfg.node));
        }
    }

    #[test]
    fn decompositions_match_modes() {
        let node = NodeConfig::rzhasgpu();
        let cfg = sweep_cfg((64, 48, 32), ExecMode::hetero());
        let d = build_decomposition(&cfg, 0.05).unwrap();
        assert_eq!(d.len(), 16);
        assert_eq!(d.gpu_ranks().len(), node.gpus);
        let cfg2 = sweep_cfg((64, 48, 32), ExecMode::Default);
        assert_eq!(build_decomposition(&cfg2, 0.0).unwrap().len(), 4);
    }

    #[test]
    fn gpu_modes_report_device_busy_and_launch_overhead() {
        let cfg = sweep_cfg((64, 48, 32), ExecMode::Default);
        let r = run(&cfg).unwrap();
        assert_eq!(r.device_busy.len(), 4);
        assert!(r.slowest_device_busy() > SimDuration::ZERO);
        for rank in &r.ranks {
            assert!(rank.launch > SimDuration::ZERO, "launch overhead charged");
            assert!(rank.compute.is_zero(), "GPU rank computes on device");
        }
    }

    #[test]
    fn cpu_only_mode_computes_on_cores() {
        let cfg = sweep_cfg((32, 32, 32), ExecMode::CpuOnly);
        let r = run(&cfg).unwrap();
        assert!(r.device_busy.is_empty());
        for rank in &r.ranks {
            assert!(rank.compute > SimDuration::ZERO);
            assert!(rank.launch.is_zero());
        }
    }

    #[test]
    fn hetero_assigns_thin_slabs_to_cpu() {
        let cfg = sweep_cfg((320, 240, 160), ExecMode::hetero());
        let r = run(&cfg).unwrap();
        assert!(
            r.cpu_fraction > 0.0 && r.cpu_fraction < 0.2,
            "{}",
            r.cpu_fraction
        );
        let cpu_zones: u64 = r
            .ranks
            .iter()
            .filter(|x| !x.role.is_gpu_driver())
            .map(|x| x.zones)
            .sum();
        assert!(cpu_zones > 0);
    }

    #[test]
    fn mps_uses_elevated_launch_overhead() {
        let cfg_mps = sweep_cfg((64, 64, 64), ExecMode::mps4());
        let cfg_def = sweep_cfg((64, 64, 64), ExecMode::Default);
        let r_mps = run(&cfg_mps).unwrap();
        let r_def = run(&cfg_def).unwrap();
        // Per-rank launch counts are comparable; MPS pays more per
        // launch, so *total* launch time across the node is higher.
        let mps_launch: SimDuration = r_mps.ranks.iter().map(|r| r.launch).sum();
        let def_launch: SimDuration = r_def.ranks.iter().map(|r| r.launch).sum();
        assert!(
            mps_launch > def_launch,
            "MPS launch {mps_launch} vs Default {def_launch}"
        );
    }

    #[test]
    fn host_penalty_kinks_default_mode() {
        // Beyond 4 × 9.25 M zones the Default mode pays extra; the
        // other 16-rank modes do not. Compare per-zone cost below and
        // above the kink.
        let small = run(&sweep_cfg((320, 320, 240), ExecMode::Default)).unwrap(); // 24.6 M
        let large = run(&sweep_cfg((320, 320, 480), ExecMode::Default)).unwrap(); // 49 M
        let per_zone_small = small.runtime.as_secs_f64() / small.zones as f64;
        let per_zone_large = large.runtime.as_secs_f64() / large.zones as f64;
        assert!(
            per_zone_large > per_zone_small * 1.1,
            "kink missing: {per_zone_small} vs {per_zone_large}"
        );
        let mps_small = run(&sweep_cfg((320, 320, 240), ExecMode::mps4())).unwrap();
        let mps_large = run(&sweep_cfg((320, 320, 480), ExecMode::mps4())).unwrap();
        let ps = mps_small.runtime.as_secs_f64() / mps_small.zones as f64;
        let pl = mps_large.runtime.as_secs_f64() / mps_large.zones as f64;
        assert!(pl < ps * 1.08, "MPS should stay linear: {ps} vs {pl}");
    }

    #[test]
    fn run_balanced_converges_for_hetero() {
        let cfg = sweep_cfg((320, 480, 160), ExecMode::hetero());
        let (result, lb) = run_balanced(&cfg).unwrap();
        assert!(lb.history.len() >= 2, "balancer iterated");
        assert!(result.cpu_fraction > 0.0);
        // The balanced fraction should be small (the compiler bug caps
        // the CPU share at a few percent).
        assert!(result.cpu_fraction < 0.12, "{}", result.cpu_fraction);
    }

    #[test]
    fn full_fidelity_multirank_run_is_physical() {
        // A small functional run through the whole stack: mass is
        // conserved across a cooperative MPS-mode run.
        let mut cfg = sweep_cfg((16, 16, 16), ExecMode::mps4());
        cfg.fidelity = Fidelity::Full;
        cfg.cycles = 2;
        let r = run(&cfg).unwrap();
        assert_eq!(r.ranks.len(), 16);
        assert!(r.runtime > SimDuration::ZERO);
    }

    #[test]
    fn shared_host_pool_run_is_green_and_charged_parallel() {
        // Full-fidelity hetero run with one shared pool across all
        // CPU ranks: physics completes, and the OpenMP cost model
        // makes CPU compute cheaper than the sequential run.
        let mut cfg = sweep_cfg((32, 48, 32), ExecMode::hetero());
        cfg.fidelity = Fidelity::Full;
        cfg.cycles = 2;
        let serial = run(&cfg).unwrap();
        cfg.host_threads = 4;
        let pooled = run(&cfg).unwrap();
        assert_eq!(pooled.ranks.len(), serial.ranks.len());
        let cpu_compute = |r: &RunResult| {
            r.ranks
                .iter()
                .filter(|x| !x.role.is_gpu_driver())
                .map(|x| x.compute)
                .fold(SimDuration::ZERO, SimDuration::max)
        };
        assert!(
            cpu_compute(&pooled) < cpu_compute(&serial),
            "pooled CPU ranks must be charged parallel time: {} vs {}",
            cpu_compute(&pooled),
            cpu_compute(&serial)
        );
    }

    #[test]
    fn alternate_problems_run_through_the_cooperative_stack() {
        for problem in [
            Problem::Sod(hsim_hydro::SodConfig::default()),
            Problem::Perturbed(PerturbedConfig::default()),
        ] {
            let mut cfg = sweep_cfg((16, 16, 16), ExecMode::mps4());
            cfg.fidelity = Fidelity::Full;
            cfg.cycles = 2;
            cfg.problem = problem.clone();
            let r = run(&cfg).unwrap_or_else(|e| panic!("{problem:?}: {e}"));
            assert!(r.runtime > SimDuration::ZERO);
        }
    }

    #[test]
    fn diffusion_package_adds_cost_and_stays_green() {
        let mut cfg = sweep_cfg((64, 48, 32), ExecMode::Default);
        let base = run(&cfg).unwrap();
        cfg.diffusion = Some(hsim_hydro::DiffusionConfig::default());
        let multi = run(&cfg).unwrap();
        assert!(
            multi.runtime > base.runtime,
            "a second physics package must cost time: {} vs {}",
            multi.runtime,
            base.runtime
        );
        assert!(multi.total_launches() > base.total_launches());
    }

    #[test]
    fn multipolicy_helps_tiny_problems_on_gpu_ranks() {
        // A tiny problem: boundary/face kernels fall below the
        // break-even size, where launch overhead exceeds host
        // execution even on the bug-afflicted CPU. A *tuned* threshold
        // must help; a wildly oversized one (everything to the slow
        // host) must hurt — both directions are asserted.
        let node = NodeConfig::rzhasgpu();
        let tuned = hsim_raja::MultiPolicy::break_even(
            &node.gpu_spec,
            &node.cpu,
            &hsim_hydro::kernels::FLUX,
        );
        let mut cfg = sweep_cfg((16, 12, 12), ExecMode::Default);
        let naive = run(&cfg).unwrap();
        cfg.multipolicy_threshold = tuned;
        let multi = run(&cfg).unwrap();
        assert!(
            multi.runtime < naive.runtime,
            "tuned MultiPolicy should help tiny problems: {} vs {}",
            multi.runtime,
            naive.runtime
        );
        cfg.multipolicy_threshold = 1_000_000;
        let oversized = run(&cfg).unwrap();
        assert!(
            oversized.runtime > naive.runtime,
            "routing everything to the slow host must hurt: {} vs {}",
            oversized.runtime,
            naive.runtime
        );
    }

    #[test]
    fn traced_run_records_spans_for_every_rank_and_cycle() {
        let mut cfg = sweep_cfg((64, 48, 32), ExecMode::hetero());
        cfg.trace = true;
        let r = run(&cfg).unwrap();
        let trace = r.trace.as_ref().expect("trace requested");
        // Two spans (busy + wait) per rank per cycle.
        assert_eq!(
            trace.len() as u64,
            2 * cfg.cycles * r.ranks.len() as u64,
            "span count"
        );
        let gantt = trace.render_gantt(60);
        assert!(gantt.contains('G') && gantt.contains('C'), "{gantt}");
        // Untraced runs carry no trace.
        cfg.trace = false;
        assert!(run(&cfg).unwrap().trace.is_none());
    }

    #[test]
    fn gpu_direct_reduces_hetero_runtime() {
        let mut cfg = sweep_cfg((128, 128, 128), ExecMode::Default);
        let base = run(&cfg).unwrap();
        cfg.gpu_direct = true;
        let direct = run(&cfg).unwrap();
        assert!(
            direct.runtime <= base.runtime,
            "gpu-direct {} vs staged {}",
            direct.runtime,
            base.runtime
        );
    }
}
