//! The cooperative runner: the paper's §5 control code.
//!
//! For a given [`ExecMode`] the runner decomposes the grid, binds
//! ranks to cores and GPUs, sets up the Figure 8 memory scheme, spawns
//! one simulated MPI rank per binding, runs the Sedov hydro for a
//! fixed number of cycles, applies the node-level host-bandwidth
//! model, and reports per-rank virtual-time breakdowns.

use std::sync::Arc;

use parking_lot::Mutex;

use hsim_gpu::memory::MemoryPool;
use hsim_gpu::Device;
use hsim_hydro::diffusion::{diffuse_step, DiffusionConfig};
use hsim_hydro::noh::{self, NohConfig};
use hsim_hydro::sedov::{self, SedovConfig};
use hsim_hydro::taylor_green::{self, TaylorGreenConfig};
use hsim_hydro::workload::{self, PerturbedConfig};
use hsim_hydro::{sod, step, HydroState};
use hsim_mesh::decomp::block::{block_decomp, block_decomp_yz};
use hsim_mesh::decomp::hierarchical::hierarchical_decomp_yz;
use hsim_mesh::decomp::weighted::{fold_lost_rank, weighted_hetero_decomp, WeightedConfig};
use hsim_mesh::{Decomposition, GlobalGrid, HaloPlan, OwnerKind};
use hsim_mpi::World;
use hsim_particles::{Particle, ParticlesConfig, PhaseState};
use hsim_raja::{Executor, Fidelity, GpuClient, SharedDevice, Target, WorkPool};
use hsim_telemetry::{Category, Collector, Counter, Gauge, Summary, TimeStat};
use hsim_time::clock::ChargeKind;
use hsim_time::{RankClock, SimDuration, SimTime};

use crate::balance::{LoadBalancer, RebalanceConfig, RebalanceDecision, Rebalancer};
use crate::binding::{build_bindings, validate_bindings, RankRole};
use crate::calib;
use crate::coupler::MpiCoupler;
use crate::memscheme;
use crate::mode::ExecMode;
use crate::node::NodeConfig;
use crate::report::{ParticleReport, RankReport, RunResult};
use crate::scenario::{self, ScenarioDiag};

/// The physics problem a run initializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Problem {
    /// The paper's workload: the 3D Sedov blast wave (§7, Fig 11).
    Sedov(SedovConfig),
    /// The Sod shock tube (validation problem with an exact solution).
    Sod(sod::SodConfig),
    /// The planar Noh implosion: an infinite-strength stagnation shock
    /// with an exact solution (the hardest shock regime).
    Noh(NohConfig),
    /// The Taylor–Green vortex array: smooth shock-free flow whose
    /// kinetic-energy decay measures pure numerical dissipation.
    TaylorGreen(TaylorGreenConfig),
    /// Seeded random multi-mode perturbations (balancer stress test).
    Perturbed(PerturbedConfig),
}

impl Default for Problem {
    fn default() -> Self {
        Problem::Sedov(SedovConfig::default())
    }
}

impl Problem {
    fn init(&self, state: &mut HydroState) {
        match self {
            Problem::Sedov(cfg) => sedov::init(state, cfg),
            Problem::Sod(cfg) => sod::init(state, cfg),
            Problem::Noh(cfg) => noh::init(state, cfg),
            Problem::TaylorGreen(cfg) => taylor_green::init(state, cfg),
            Problem::Perturbed(cfg) => workload::init(state, cfg),
        }
    }
}

/// Everything one cooperative run needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Global grid zones (nx, ny, nz).
    pub grid: (usize, usize, usize),
    pub mode: ExecMode,
    pub node: NodeConfig,
    pub cycles: u64,
    pub fidelity: Fidelity,
    /// §5.3 future work: GPUs exchange halos without host staging.
    pub gpu_direct: bool,
    /// Run the thermal-diffusion package after each hydro cycle
    /// (multi-physics configuration; None = hydro only, as in the
    /// paper's Sedov study).
    pub diffusion: Option<DiffusionConfig>,
    /// MultiPolicy host threshold for GPU ranks (0 = disabled; the
    /// paper's future-work runtime policy selection).
    pub multipolicy_threshold: u64,
    /// Record per-cycle spans per rank (busy vs waiting) for Gantt
    /// rendering.
    pub trace: bool,
    /// Collect full telemetry (metrics, kernel profiles, structured
    /// spans) into [`RunResult::telemetry`]. Off by default: the
    /// per-launch hot path then stays allocation-free.
    pub telemetry: bool,
    /// The physics problem to initialize (default: Sedov).
    pub problem: Problem,
    /// Deterministic seeded fault plan (None = fault-free). Transient
    /// faults recover in virtual time (bounded retry with exponential
    /// backoff charged to the sim clocks); a permanent CPU-rank loss
    /// degrades gracefully: the run checkpoints at the loss cycle,
    /// folds the lost slab back into a box-mergeable neighbor
    /// (preferring its parent GPU block, so Heterogeneous degrades
    /// toward Default), and finishes on the smaller world. Permanent
    /// device-side faults are typed errors, never panics.
    pub faults: Option<hsim_faults::FaultPlan>,
    /// Host threads per parallel region for CPU ranks. With the
    /// default of 1, CPU ranks execute (and are costed) sequentially
    /// exactly as the paper's study; > 1 builds **one** shared
    /// [`WorkPool`] for the whole run and hands it to every CPU rank's
    /// executor, so thread-safe kernels and reductions run on
    /// persistent workers and virtual time is charged by the OpenMP
    /// cost model at this width.
    pub host_threads: usize,
    /// Online measured-speed rebalancing (paper §6.2 made in-run):
    /// every `every` cycles the run pauses at a segment boundary, the
    /// [`Rebalancer`] folds the segment's measured CPU and device busy
    /// times into its EWMA speed estimator, and — when the predicted
    /// cycle-time improvement clears the hysteresis threshold — the
    /// heterogeneous decomposition is re-split at the new fraction
    /// (state carried across through the host-staged checkpoint, the
    /// redistribution charged by the α–β collective model). Only
    /// meaningful for [`ExecMode::Heterogeneous`]; a permanent
    /// `rank.loss` freezes the controller at the foldback split.
    pub rebalance: Option<RebalanceConfig>,
    /// y–z tile shape for the fused cache-blocked hydro kernels
    /// (`None` = pick via the one-shot [`calib::auto_tile_for`] probe,
    /// which is keyed on `host_threads` — the best shape for the
    /// parallel-tile path need not match the serial one). Results are
    /// bitwise-independent of the tile shape; this only moves
    /// wall-clock throughput.
    pub tile: Option<[usize; 2]>,
    /// Lagrangian tracer/drag particle phase advected through the
    /// hydro field each cycle (`None` = hydro only). Particles are
    /// owned by the rank whose subdomain contains them and migrate
    /// through the coupler's all-to-all collective, so rebalance
    /// re-splits and loss foldbacks move particles with their zones.
    pub particles: Option<ParticlesConfig>,
}

impl RunConfig {
    /// A figure-sweep configuration: RZHasGPU, cost-only fidelity,
    /// the standard cycle count.
    pub fn sweep(grid: (usize, usize, usize), mode: ExecMode) -> Self {
        RunConfig {
            grid,
            mode,
            node: NodeConfig::rzhasgpu(),
            cycles: calib::SWEEP_CYCLES,
            fidelity: Fidelity::CostOnly,
            gpu_direct: false,
            diffusion: None,
            multipolicy_threshold: 0,
            trace: false,
            telemetry: false,
            problem: Problem::default(),
            faults: None,
            rebalance: None,
            host_threads: 1,
            tile: None,
            particles: None,
        }
    }

    fn global_grid(&self) -> GlobalGrid {
        GlobalGrid::new(self.grid.0, self.grid.1, self.grid.2)
    }
}

/// Build the mode's decomposition (paper §6.1).
pub fn build_decomposition(cfg: &RunConfig, cpu_fraction: f64) -> Result<Decomposition, String> {
    let grid = cfg.global_grid();
    let node = &cfg.node;
    match cfg.mode {
        ExecMode::CpuOnly => {
            let mut d = block_decomp(grid, node.cores, 1);
            for o in &mut d.owners {
                *o = OwnerKind::Cpu;
            }
            Ok(d)
        }
        ExecMode::Default => Ok(block_decomp_yz(grid, node.gpus, 1)),
        ExecMode::Mps { per_gpu } => hierarchical_decomp_yz(grid, node.gpus, per_gpu, 2, 1),
        ExecMode::Heterogeneous { .. } => {
            let wc = WeightedConfig {
                n_gpus: node.gpus,
                cpu_per_gpu: node.workers_per_gpu(),
                cpu_fraction,
                carve_axis: 1,
                ghost: 1,
                pin_x: true,
            };
            weighted_hetero_decomp(grid, &wc)
        }
    }
}

/// The minimum realizable CPU fraction of the heterogeneous
/// decomposition (one carve-axis plane per CPU rank).
pub fn hetero_min_fraction(cfg: &RunConfig) -> f64 {
    let grid = cfg.global_grid();
    let node = &cfg.node;
    let top = block_decomp_yz(grid, node.gpus, 1);
    let ext = top.domains[0].extent(1).max(1);
    node.workers_per_gpu() as f64 / ext as f64
}

/// Execute one cooperative run.
pub fn run(cfg: &RunConfig) -> Result<RunResult, String> {
    let fraction_request = match cfg.mode {
        ExecMode::Heterogeneous { cpu_fraction } => {
            cpu_fraction.unwrap_or_else(|| LoadBalancer::initial_guess(&cfg.node))
        }
        _ => 0.0,
    };
    run_with_fraction(cfg, fraction_request)
}

/// Execute one run with an explicit heterogeneous CPU fraction
/// (ignored by the other modes).
pub fn run_with_fraction(cfg: &RunConfig, cpu_fraction: f64) -> Result<RunResult, String> {
    let fault_plan = Arc::new(cfg.faults.clone().unwrap_or_default());
    let mut losses: Vec<(usize, u64)> = fault_plan
        .rank_losses()
        .into_iter()
        .filter(|&(_, cycle)| cycle < cfg.cycles)
        .collect();
    losses.sort_unstable();
    if losses.len() > 1 {
        return Err(
            "fault plan injects more than one permanent rank loss; graceful degradation \
             folds back a single lost rank per run"
                .to_string(),
        );
    }
    if let Some(rcfg) = &cfg.rebalance {
        if !matches!(cfg.mode, ExecMode::Heterogeneous { .. }) {
            return Err(format!(
                "the rebalance controller re-splits the weighted heterogeneous \
                 decomposition; mode {:?} has no CPU fraction to adjust",
                cfg.mode
            ));
        }
        return run_online(
            cfg,
            cpu_fraction,
            rcfg,
            &fault_plan,
            losses.first().copied(),
        );
    }
    match losses.first().copied() {
        None => run_intact(cfg, cpu_fraction, &fault_plan),
        Some((lost, at_cycle)) => run_degraded(cfg, cpu_fraction, &fault_plan, lost, at_cycle),
    }
}

/// Build and cross-check the decomposition and rank bindings.
fn build_world(
    cfg: &RunConfig,
    cpu_fraction: f64,
) -> Result<(Decomposition, Vec<RankRole>), String> {
    let decomp = build_decomposition(cfg, cpu_fraction)?;
    decomp.validate()?;
    let roles = build_bindings(&cfg.mode, &cfg.node);
    validate_bindings(&roles, &cfg.node)?;
    if roles.len() != decomp.len() {
        return Err(format!(
            "binding count {} != decomposition count {}",
            roles.len(),
            decomp.len()
        ));
    }
    Ok((decomp, roles))
}

/// Main-thread MPS client setup faults: a permanent rejection is a
/// typed error before any rank spawns; a transient one charges its
/// retry backoff to the rejected rank's setup clock (the MPS server
/// accepts the reconnect once the glitch clears).
fn mps_connect_charges(
    cfg: &RunConfig,
    plan: &hsim_faults::FaultPlan,
    n_ranks: usize,
) -> Result<(Vec<SimDuration>, u64, u64), String> {
    let mut extra = vec![SimDuration::ZERO; n_ranks];
    let (mut injected, mut retries) = (0u64, 0u64);
    if !matches!(cfg.mode, ExecMode::Mps { .. }) {
        return Ok((extra, injected, retries));
    }
    for ev in plan.of_site(hsim_faults::Site::MpsConnect) {
        if ev.rank >= n_ranks {
            continue;
        }
        match ev.severity {
            hsim_faults::Severity::Permanent => {
                return Err(format!(
                    "injected MPS rejection: the server permanently refused rank {}'s client",
                    ev.rank
                ));
            }
            hsim_faults::Severity::Transient { count } => {
                if count > hsim_faults::MAX_RETRIES {
                    return Err(format!(
                        "rank {}: injected MPS rejection exceeded the retry budget",
                        ev.rank
                    ));
                }
                injected += 1;
                for attempt in 0..count {
                    extra[ev.rank] += hsim_faults::backoff_delay(attempt);
                    retries += 1;
                }
            }
        }
    }
    Ok((extra, injected, retries))
}

fn slowest_total(reports: &[RankReport]) -> SimDuration {
    reports
        .iter()
        .map(|r| r.total)
        .fold(SimDuration::ZERO, SimDuration::max)
}

/// Assemble the [`RunResult`] shared by the intact and degraded paths.
fn finish_result(
    cfg: &RunConfig,
    decomp: &Decomposition,
    reports: Vec<RankReport>,
    device_busy: Vec<SimDuration>,
    summary: Option<Summary>,
    runtime: SimDuration,
    mass: Option<f64>,
) -> Result<RunResult, String> {
    let trace = match (&summary, cfg.trace) {
        (Some(s), true) => Some(s.legacy_trace_where(|sp| sp.name == "cycle" || sp.name == "wait")),
        _ => None,
    };
    Ok(RunResult {
        mode_key: cfg.mode.key(),
        mode_label: cfg.mode.label(),
        grid: cfg.grid,
        zones: cfg.global_grid().zones(),
        runtime,
        cpu_fraction: decomp.cpu_zone_fraction(),
        cycles: cfg.cycles,
        ranks: reports,
        device_busy,
        trace,
        telemetry: if cfg.telemetry { summary } else { None },
        mass,
        balance_history: Vec::new(),
        particles: None,
        scenario: None,
    })
}

/// The fault-free (or transient-fault-only) path: one segment over
/// the full cycle range.
fn run_intact(
    cfg: &RunConfig,
    cpu_fraction: f64,
    fault_plan: &Arc<hsim_faults::FaultPlan>,
) -> Result<RunResult, String> {
    let (decomp, roles) = build_world(cfg, cpu_fraction)?;
    let (setup_extra, mps_injected, mps_retries) =
        mps_connect_charges(cfg, fault_plan, decomp.len())?;
    let collect = cfg.telemetry || cfg.trace;
    let orig_ids: Vec<usize> = (0..decomp.len()).collect();
    let seg = run_segment(
        cfg,
        fault_plan,
        Segment {
            decomp: &decomp,
            roles: &roles,
            orig_ids: &orig_ids,
            first_cycle: 0,
            last_cycle: cfg.cycles,
            restore: None,
            take_checkpoint: false,
            setup_extra: &setup_extra,
        },
    )?;
    let runtime = slowest_total(&seg.reports);
    let summary = if collect {
        let mut s = Summary::from_collectors(seg.collectors);
        s.metrics
            .gauge_set(Gauge::CpuFraction, decomp.cpu_zone_fraction());
        s.metrics.count(Counter::FaultsInjected, mps_injected);
        s.metrics.count(Counter::FaultRetries, mps_retries);
        s.metrics.count(Counter::FaultsRecovered, mps_injected);
        Some(s)
    } else {
        None
    };
    let mass = seg.masses.as_ref().map(|m| m.iter().sum());
    let particles = particle_report(seg.particles.as_deref(), seg.migrated);
    let outcome = scenario::outcome(
        &cfg.problem,
        &cfg.global_grid(),
        seg.t_end,
        seg.diag.as_ref(),
    );
    let mut result = finish_result(
        cfg,
        &decomp,
        seg.reports,
        seg.device_busy,
        summary,
        runtime,
        mass,
    )?;
    result.particles = particles;
    result.scenario = outcome;
    Ok(result)
}

/// The graceful-degradation path: run to the loss cycle, checkpoint
/// the conserved fields through the host, fold the lost CPU rank's
/// slab back into a box-mergeable neighbor (preferring its parent GPU
/// block, so Heterogeneous degrades toward Default), and finish the
/// remaining cycles on the smaller world. A lost GPU driver is fatal:
/// its device block has nowhere to fold back to.
fn run_degraded(
    cfg: &RunConfig,
    cpu_fraction: f64,
    fault_plan: &Arc<hsim_faults::FaultPlan>,
    lost: usize,
    at_cycle: u64,
) -> Result<RunResult, String> {
    let (decomp, roles) = build_world(cfg, cpu_fraction)?;
    if lost >= decomp.len() {
        return Err(format!(
            "injected rank loss {lost} out of range ({} ranks)",
            decomp.len()
        ));
    }
    if decomp.owners[lost].is_gpu() {
        return Err(format!(
            "injected loss of rank {lost} is fatal: it drives a GPU and its device \
             block cannot be folded back onto the remaining ranks"
        ));
    }
    let collect = cfg.telemetry || cfg.trace;
    let (setup_extra, mps_injected, mps_retries) =
        mps_connect_charges(cfg, fault_plan, decomp.len())?;
    let orig_ids: Vec<usize> = (0..decomp.len()).collect();
    let seg1 = run_segment(
        cfg,
        fault_plan,
        Segment {
            decomp: &decomp,
            roles: &roles,
            orig_ids: &orig_ids,
            first_cycle: 0,
            last_cycle: at_cycle,
            restore: None,
            take_checkpoint: true,
            setup_extra: &setup_extra,
        },
    )?;
    let checkpoint = seg1
        .checkpoint
        .ok_or("degraded restart: segment 1 produced no checkpoint")?;

    // Weighted re-split over the survivors.
    let degraded = fold_lost_rank(&decomp, lost)?;
    let roles2: Vec<RankRole> = roles
        .iter()
        .enumerate()
        .filter(|&(r, _)| r != lost)
        .map(|(_, role)| *role)
        .collect();
    let orig_ids2: Vec<usize> = (0..decomp.len()).filter(|&r| r != lost).collect();
    let zeros = vec![SimDuration::ZERO; degraded.len()];
    let seg2 = run_segment(
        cfg,
        fault_plan,
        Segment {
            decomp: &degraded,
            roles: &roles2,
            orig_ids: &orig_ids2,
            first_cycle: at_cycle,
            last_cycle: cfg.cycles,
            restore: Some(&checkpoint),
            take_checkpoint: false,
            setup_extra: &zeros,
        },
    )?;

    // Merge: the run's wall-clock is segment 1 plus segment 2 (the
    // recovery is a collective that resynchronizes every survivor at
    // the loss boundary); per-rank buckets sum through the orig-id
    // map, and the lost rank's partial segment-1 work is dropped with
    // it.
    let runtime = slowest_total(&seg1.reports) + slowest_total(&seg2.reports);
    let mut reports = Vec::with_capacity(seg2.reports.len());
    for (new_rank, s2) in seg2.reports.into_iter().enumerate() {
        let s1 = &seg1.reports[orig_ids2[new_rank]];
        reports.push(RankReport {
            rank: new_rank,
            role: s2.role,
            zones: s2.zones,
            setup: s1.setup + s2.setup,
            total: s1.total + s2.total,
            compute: s1.compute + s2.compute,
            launch: s1.launch + s2.launch,
            memory: s1.memory + s2.memory,
            comm: s1.comm + s2.comm,
            control: s1.control + s2.control,
            wait: s1.wait + s2.wait,
            launches: s1.launches + s2.launches,
            bytes_sent: s1.bytes_sent + s2.bytes_sent,
        });
    }
    let device_busy: Vec<SimDuration> = seg1
        .device_busy
        .iter()
        .zip(&seg2.device_busy)
        .map(|(a, b)| *a + *b)
        .collect();
    let summary = if collect {
        let mut collectors = seg1.collectors;
        collectors.extend(seg2.collectors);
        let mut s = Summary::from_collectors(collectors);
        // Telemetry reports the *rebalanced foldback* decomposition:
        // the CPU-fraction gauge reflects the post-loss world.
        s.metrics
            .gauge_set(Gauge::CpuFraction, degraded.cpu_zone_fraction());
        s.metrics.count(Counter::FaultsInjected, 1 + mps_injected);
        s.metrics.count(Counter::FaultRankLosses, 1);
        s.metrics.count(Counter::FaultRetries, mps_retries);
        s.metrics.count(Counter::FaultsRecovered, mps_injected);
        Some(s)
    } else {
        None
    };
    // The final state lives on segment 2's survivors.
    let mass = seg2.masses.as_ref().map(|m| m.iter().sum());
    let particles = particle_report(seg2.particles.as_deref(), seg1.migrated + seg2.migrated);
    let outcome = scenario::outcome(
        &cfg.problem,
        &cfg.global_grid(),
        seg2.t_end,
        seg2.diag.as_ref(),
    );
    let mut result = finish_result(cfg, &degraded, reports, device_busy, summary, runtime, mass)?;
    result.particles = particles;
    result.scenario = outcome;
    Ok(result)
}

/// Zones whose owner changes between two decompositions, matched
/// through `old_index` (new rank → old rank; `None` = every zone of
/// the new rank's box migrates). A zone moves when it sits in the new
/// rank's box but not the same rank's old box.
fn zones_moved(
    old: &Decomposition,
    new: &Decomposition,
    old_index: impl Fn(usize) -> Option<usize>,
) -> u64 {
    let overlap = |a: &hsim_mesh::Subdomain, b: &hsim_mesh::Subdomain| -> u64 {
        (0..3)
            .map(|ax| {
                let lo = a.lo[ax].max(b.lo[ax]);
                let hi = a.hi[ax].min(b.hi[ax]);
                hi.saturating_sub(lo) as u64
            })
            .product()
    };
    new.domains
        .iter()
        .enumerate()
        .map(|(j, d)| match old_index(j) {
            Some(i) => d.zones() - overlap(d, &old.domains[i]),
            None => d.zones(),
        })
        .sum()
}

/// Bytes a re-split redistribution stages through the host: every
/// moved zone carries its conserved variables.
fn redistribution_bytes(moved_zones: u64) -> u64 {
    moved_zones * hsim_hydro::NCONS as u64 * std::mem::size_of::<f64>() as u64
}

/// Particles whose owning subdomain *box* changes between two
/// decompositions of the same grid — box identity (not rank index)
/// so the count is invariant to the foldback's rank renumbering.
fn particles_moved(old: &Decomposition, new: &Decomposition, parts: &[Particle]) -> u64 {
    let owner_box = |d: &Decomposition, zone: [usize; 3]| {
        d.domains
            .iter()
            .find(|s| hsim_particles::sub_contains(s, zone))
            .map(|s| (s.lo, s.hi))
    };
    parts
        .iter()
        .filter(|p| {
            let zone = hsim_particles::zone_of(&old.grid, p.pos);
            match (owner_box(old, zone), owner_box(new, zone)) {
                (Some(a), Some(b)) => a != b,
                _ => true,
            }
        })
        .count() as u64
}

/// The particle block of a result: the merged final set plus the
/// run-total migration count.
fn particle_report(parts: Option<&[Particle]>, migrated: u64) -> Option<ParticleReport> {
    parts.map(|p| ParticleReport {
        count: p.len() as u64,
        momentum: hsim_particles::momentum(p),
        migrated,
        checksum: hsim_particles::checksum(p),
    })
}

/// The online measured-speed rebalancing path (ROADMAP item 1): the
/// run is chopped into segments at every-`N`-cycle boundaries (plus
/// the loss cycle when the plan injects a permanent `rank.loss`); at
/// each rebalance boundary the [`Rebalancer`] folds the window's
/// measured busy times — slowest CPU worker compute vs slowest device
/// — into its EWMA speed estimator, and when the predicted cycle-time
/// improvement clears the hysteresis threshold the weighted
/// decomposition is rebuilt at the new fraction and the [`HaloPlan`]
/// with it. State crosses each boundary through the same host-staged
/// checkpoint the recovery path uses, and the redistribution is
/// charged as a tree-barrier collective plus the α–β wire time of the
/// moved zones. A loss boundary folds the lost slab back exactly as
/// [`run_degraded`] does and *freezes* the controller: the folded
/// decomposition is no longer expressible as a uniform weighted
/// re-split.
///
/// Every controller input is a virtual-time measurement, so the
/// decision sequence is a pure function of the seed and plan: two
/// same-seed runs re-split identically, byte for byte — the property
/// the chaos gate asserts.
fn run_online(
    cfg: &RunConfig,
    cpu_fraction: f64,
    rcfg: &RebalanceConfig,
    fault_plan: &Arc<hsim_faults::FaultPlan>,
    loss: Option<(usize, u64)>,
) -> Result<RunResult, String> {
    let collect = cfg.telemetry || cfg.trace;
    let mut rb = Rebalancer::new(cpu_fraction, rcfg);
    rb.set_min_fraction(hetero_min_fraction(cfg));

    // Segment boundaries: every `N` cycles, plus the loss cycle.
    let mut boundaries: Vec<u64> = (1..)
        .map(|k| k * rcfg.every)
        .take_while(|&c| c < cfg.cycles)
        .collect();
    boundaries.extend(fault_plan.loss_boundaries(cfg.cycles));
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries.push(cfg.cycles);

    let (mut decomp, mut roles) = build_world(cfg, rb.fraction)?;
    rb.note_realized(decomp.cpu_zone_fraction());
    if let Some((lost, _)) = loss {
        if lost >= decomp.len() {
            return Err(format!(
                "injected rank loss {lost} out of range ({} ranks)",
                decomp.len()
            ));
        }
        // Owner layout is invariant across re-splits, so the check
        // against the initial decomposition holds at the loss cycle.
        if decomp.owners[lost].is_gpu() {
            return Err(format!(
                "injected loss of rank {lost} is fatal: it drives a GPU and its device \
                 block cannot be folded back onto the remaining ranks"
            ));
        }
    }
    let n_orig = decomp.len();
    let mut orig_ids: Vec<usize> = (0..n_orig).collect();

    // Controller decisions happen on the coordinating thread between
    // segments; give them their own collector (rank id one past the
    // world) so `balance_*` spans land in the summary beside the rank
    // spans.
    if collect {
        hsim_telemetry::install(Collector::new(n_orig));
    }

    // Per-original-rank report accumulators; a re-split keeps the
    // rank count, the foldback drops the lost id from `orig_ids`.
    let mut acc: Vec<Option<RankReport>> = (0..n_orig).map(|_| None).collect();
    let mut device_busy = vec![SimDuration::ZERO; cfg.node.gpus];
    let mut collectors: Vec<Collector> = Vec::new();
    let mut runtime = SimDuration::ZERO;
    let mut checkpoint: Option<Checkpoint> = None;
    let mut masses: Option<Vec<f64>> = None;
    let (mut resplits, mut holds, mut frozen_count) = (0u64, 0u64, 0u64);
    let mut bytes_moved = 0u64;
    let mut loss_handled = false;
    let mut migrated_total = 0u64;
    let mut final_particles: Option<Vec<Particle>> = None;
    let mut final_diag: Option<ScenarioDiag> = None;
    let mut final_t = 0.0;

    let mut first = 0u64;
    for &last in &boundaries {
        let zeros = vec![SimDuration::ZERO; decomp.len()];
        let seg = run_segment(
            cfg,
            fault_plan,
            Segment {
                decomp: &decomp,
                roles: &roles,
                orig_ids: &orig_ids,
                first_cycle: first,
                last_cycle: last,
                restore: checkpoint.as_ref(),
                take_checkpoint: last < cfg.cycles,
                setup_extra: &zeros,
            },
        )?;
        runtime += slowest_total(&seg.reports);
        for (rank, rep) in seg.reports.iter().enumerate() {
            let slot = &mut acc[orig_ids[rank]];
            match slot {
                None => *slot = Some(rep.clone()),
                Some(a) => {
                    // Buckets sum across segments; identity fields
                    // (role, zones) track the latest world.
                    a.role = rep.role;
                    a.zones = rep.zones;
                    a.setup += rep.setup;
                    a.total += rep.total;
                    a.compute += rep.compute;
                    a.launch += rep.launch;
                    a.memory += rep.memory;
                    a.comm += rep.comm;
                    a.control += rep.control;
                    a.wait += rep.wait;
                    a.launches += rep.launches;
                    a.bytes_sent += rep.bytes_sent;
                }
            }
        }
        for (g, busy) in seg.device_busy.iter().enumerate() {
            device_busy[g] += *busy;
        }
        collectors.extend(seg.collectors);
        if seg.masses.is_some() {
            masses = seg.masses;
        }
        migrated_total += seg.migrated;
        final_particles = seg.particles;
        final_diag = seg.diag;
        final_t = seg.t_end;
        checkpoint = seg.checkpoint;
        if last >= cfg.cycles {
            break;
        }

        let boundary_loss = loss.filter(|&(_, at)| at == last && !loss_handled);
        if let Some((lost, _)) = boundary_loss {
            // Fold the lost slab back (same collective as the
            // degraded path) and freeze the controller: the folded
            // world is not a uniform weighted split any more.
            let pos = orig_ids
                .iter()
                .position(|&o| o == lost)
                .ok_or_else(|| format!("lost rank {lost} missing from the live world"))?;
            let folded = fold_lost_rank(&decomp, pos)?;
            let moved = zones_moved(&decomp, &folded, |j| Some(if j < pos { j } else { j + 1 }));
            let pmoved = checkpoint
                .as_ref()
                .map_or(0, |ck| particles_moved(&decomp, &folded, &ck.particles));
            let bytes = redistribution_bytes(moved) + pmoved * hsim_particles::WIRE_BYTES;
            let t0 = SimTime::from_nanos(runtime.as_nanos());
            runtime += cfg.node.comm.redistribution_time(bytes, folded.len());
            if collect {
                hsim_telemetry::rank_span(
                    Category::Runtime,
                    "balance_freeze",
                    t0,
                    SimTime::from_nanos(runtime.as_nanos()),
                );
            }
            bytes_moved += bytes;
            roles.remove(pos);
            orig_ids.remove(pos);
            decomp = folded;
            rb.freeze_at(decomp.cpu_zone_fraction());
            frozen_count += 1;
            loss_handled = true;
        } else {
            let cpu_time = seg
                .reports
                .iter()
                .zip(roles.iter())
                .filter(|(_, role)| !role.is_gpu_driver())
                .map(|(r, _)| r.compute)
                .fold(SimDuration::ZERO, SimDuration::max);
            let gpu_time = seg
                .device_busy
                .iter()
                .fold(SimDuration::ZERO, |a, &b| a.max(b));
            match rb.observe(cpu_time, gpu_time) {
                RebalanceDecision::Resplit { fraction, .. } => {
                    let next = build_decomposition(cfg, fraction)?;
                    next.validate()?;
                    let moved = zones_moved(&decomp, &next, Some);
                    let pmoved = checkpoint
                        .as_ref()
                        .map_or(0, |ck| particles_moved(&decomp, &next, &ck.particles));
                    let bytes = redistribution_bytes(moved) + pmoved * hsim_particles::WIRE_BYTES;
                    let t0 = SimTime::from_nanos(runtime.as_nanos());
                    runtime += cfg.node.comm.redistribution_time(bytes, next.len());
                    if collect {
                        hsim_telemetry::rank_span(
                            Category::Runtime,
                            "balance_resplit",
                            t0,
                            SimTime::from_nanos(runtime.as_nanos()),
                        );
                    }
                    bytes_moved += bytes;
                    decomp = next;
                    rb.note_realized(decomp.cpu_zone_fraction());
                    resplits += 1;
                }
                RebalanceDecision::Hold { .. } => holds += 1,
                RebalanceDecision::Frozen => {}
            }
        }
        first = last;
    }

    // Renumber the survivors into the final world's rank order.
    let mut reports = Vec::with_capacity(orig_ids.len());
    for (new_rank, &orig) in orig_ids.iter().enumerate() {
        let mut rep = acc[orig]
            .take()
            .ok_or_else(|| format!("online rebalance: rank {orig} produced no report"))?;
        rep.rank = new_rank;
        reports.push(rep);
    }

    let summary = if collect {
        collectors.extend(hsim_telemetry::uninstall());
        let mut s = Summary::from_collectors(collectors);
        s.metrics
            .gauge_set(Gauge::CpuFraction, decomp.cpu_zone_fraction());
        s.metrics.gauge_set(Gauge::BalanceFraction, rb.fraction);
        s.metrics.count(Counter::Rebalances, resplits);
        s.metrics.count(Counter::BalanceResplits, resplits);
        s.metrics.count(Counter::BalanceHolds, holds);
        s.metrics.count(Counter::BalanceFrozen, frozen_count);
        s.metrics.count(Counter::BalanceBytesMoved, bytes_moved);
        if loss_handled {
            s.metrics.count(Counter::FaultsInjected, 1);
            s.metrics.count(Counter::FaultRankLosses, 1);
        }
        Some(s)
    } else {
        None
    };
    let mass = masses.as_ref().map(|m| m.iter().sum());
    let particles = particle_report(final_particles.as_deref(), migrated_total);
    let outcome = scenario::outcome(
        &cfg.problem,
        &cfg.global_grid(),
        final_t,
        final_diag.as_ref(),
    );
    let mut result = finish_result(cfg, &decomp, reports, device_busy, summary, runtime, mass)?;
    result.balance_history = rb.history;
    result.particles = particles;
    result.scenario = outcome;
    Ok(result)
}

/// One contiguous span of cycles over a fixed decomposition: the
/// whole run in the fault-free case, the spans before/after the loss
/// in the degraded case.
struct Segment<'a> {
    decomp: &'a Decomposition,
    roles: &'a [RankRole],
    /// Pre-loss rank ids, keying fault-plan lookups and report merges.
    orig_ids: &'a [usize],
    /// Global cycle numbers `[first, last)`.
    first_cycle: u64,
    last_cycle: u64,
    restore: Option<&'a Checkpoint>,
    take_checkpoint: bool,
    /// Extra per-rank setup charge (MPS connect retry backoff).
    setup_extra: &'a [SimDuration],
}

struct SegmentOut {
    reports: Vec<RankReport>,
    collectors: Vec<Collector>,
    device_busy: Vec<SimDuration>,
    checkpoint: Option<Checkpoint>,
    /// Total owned mass per rank, in rank order (full fidelity only).
    masses: Option<Vec<f64>>,
    /// The live particle set at segment end, merged across ranks and
    /// sorted by id (`None` when the particle phase is off).
    particles: Option<Vec<Particle>>,
    /// Cross-rank particle migrations during this segment.
    migrated: u64,
    /// Merged final-state scenario diagnostics (full fidelity only).
    diag: Option<ScenarioDiag>,
    /// Simulation time at segment end.
    t_end: f64,
}

/// A host-staged snapshot of the conserved fields at a segment
/// boundary (the recovery path's checkpoint/restart; communication
/// goes through the host, consistent with the paper's §5.3 staging).
struct Checkpoint {
    /// One global x-major array per conserved variable; empty in
    /// cost-only fidelity, where zone values carry no state.
    vars: Vec<Vec<f64>>,
    /// The global particle set, sorted by id (empty when the particle
    /// phase is off). Restore re-filters by subdomain ownership, so a
    /// re-split or foldback re-homes particles for free.
    particles: Vec<Particle>,
    t: f64,
    cycle: u64,
}

/// Run one segment and collect per-rank reports, telemetry, device
/// busy time, and (when requested) the boundary checkpoint. Rank
/// failures surface as typed errors — never panics or hangs (a dead
/// rank's mailboxes disconnect its peers).
fn run_segment(
    cfg: &RunConfig,
    fault_plan: &Arc<hsim_faults::FaultPlan>,
    seg: Segment<'_>,
) -> Result<SegmentOut, String> {
    let grid = cfg.global_grid();
    let node = &cfg.node;
    let decomp = seg.decomp;
    let roles = seg.roles;
    let plan = HaloPlan::build(decomp);
    let n_ranks = roles.len();

    // Devices and clients per mode.
    let mut devices: Vec<Arc<SharedDevice>> = Vec::new();
    let mut slots: Vec<Option<(GpuClient, Arc<SharedDevice>)>> =
        (0..n_ranks).map(|_| None).collect();
    match cfg.mode {
        ExecMode::CpuOnly => {}
        ExecMode::Default | ExecMode::Heterogeneous { .. } => {
            for (g, slot) in slots.iter_mut().take(node.gpus).enumerate() {
                let device = Device::new(g, node.gpu_spec.clone());
                let (shared, client) =
                    SharedDevice::new_exclusive(device, g).map_err(|e| e.to_string())?;
                *slot = Some((client, Arc::clone(&shared)));
                devices.push(shared);
            }
        }
        ExecMode::Mps { per_gpu } => {
            for g in 0..node.gpus {
                let device = Device::new(g, node.gpu_spec.clone());
                let pids: Vec<usize> = (0..per_gpu).map(|i| g * per_gpu + i).collect();
                let (shared, clients) =
                    SharedDevice::new_mps(device, &pids).map_err(|e| e.to_string())?;
                for (i, client) in clients.into_iter().enumerate() {
                    slots[g * per_gpu + i] = Some((client, Arc::clone(&shared)));
                }
                devices.push(shared);
            }
        }
    }
    let slots = Mutex::new(slots);

    // One host work pool for the whole *process* (never per region,
    // never per rank, and since the serve layer shares runs it is not
    // even per run): CPU ranks share its persistent workers for
    // parallel kernels and reductions. None = the paper's sequential
    // CPU ranks. `WorkPool::shared` serializes concurrent regions via
    // its region lock, so simultaneous served runs are safe.
    let host_pool: Option<Arc<WorkPool>> = if cfg.host_threads > 1 {
        Some(WorkPool::shared(cfg.host_threads - 1))
    } else {
        None
    };

    // Node-level host-bandwidth model (the Figure 12 kink): aggregate
    // host traffic beyond the active cores' capacity costs extra,
    // distributed over ranks in proportion to their zones.
    let total_zones = grid.zones() as f64;
    let capacity = n_ranks as f64 * calib::HOST_ZONES_PER_CORE;
    let excess = (total_zones - capacity).max(0.0);
    let penalty_per_cycle: Vec<SimDuration> = (0..n_ranks)
        .map(|r| {
            let share = decomp.domains[r].zones() as f64 / total_zones;
            SimDuration::from_nanos_f64(excess * calib::HOST_PENALTY_NS_PER_ZONE * share)
        })
        .collect();

    let decomp_ref = &decomp;
    let plan_ref = &plan;
    let roles_ref = &roles;
    let slots_ref = &slots;
    let penalty_ref = &penalty_per_cycle;
    let pool_ref = &host_pool;
    let cfg_ref = cfg;
    let seg_ref = &seg;
    let fault_plan_ref = fault_plan;

    // One collector per rank thread serves both consumers: the full
    // telemetry summary and the legacy per-cycle Gantt trace (now a
    // projection of the same span store).
    let collect = cfg.telemetry || cfg.trace;

    struct RankOut {
        report: RankReport,
        collector: Option<Collector>,
        dump: Option<Vec<Vec<f64>>>,
        t: f64,
        cycle: u64,
        mass: f64,
        /// This rank's live particles at segment end.
        particles: Option<Vec<Particle>>,
        /// Particles this rank shipped to peers during the segment.
        migrated: u64,
        /// Final-state scenario diagnostics (full fidelity only).
        diag: Option<ScenarioDiag>,
    }
    let outputs: Vec<Result<RankOut, String>> = World::run_fallible(
        n_ranks,
        node.comm.clone(),
        |comm| {
            let rank = comm.rank();
            let orig = seg_ref.orig_ids[rank];
            let sub = decomp_ref.domains[rank];
            let role = roles_ref[rank];
            let client = slots_ref.lock()[rank].take();
            let mut clock = RankClock::new(rank);
            if collect {
                hsim_telemetry::install(Collector::new(rank));
            }
            // Arm the injector under this rank's *original* id, so the
            // plan keeps naming the same rank across the foldback.
            hsim_faults::install(orig, Arc::clone(fault_plan_ref));
            hsim_faults::set_cycle(seg_ref.first_cycle);

            // Figure 8 memory scheme: GPU ranks put mesh data in unified
            // memory (paying the initial fault-in) and temporaries in a
            // device pool; CPU ranks host-allocate everything.
            let mut _pool: Option<MemoryPool> = None;
            let target = if let Some((client, shared)) = &client {
                let mesh = memscheme::mesh_bytes(sub.zones());
                let t_um = clock.now();
                // Injected device OOM: a transient allocation failure
                // backs off and retries (the pool has drained by
                // then); a permanent one is a typed error.
                if let Some(hit) = hsim_faults::check(hsim_faults::Site::GpuOom) {
                    hsim_telemetry::count(Counter::FaultsInjected, 1);
                    match hit.severity {
                        hsim_faults::Severity::Permanent => {
                            return Err(format!(
                                "rank {orig}: injected device OOM: mesh allocation permanently refused"
                            ));
                        }
                        hsim_faults::Severity::Transient { count } => {
                            if count > hsim_faults::MAX_RETRIES {
                                return Err(format!(
                                    "rank {orig}: injected device OOM exceeded the retry budget"
                                ));
                            }
                            for attempt in 0..count {
                                clock.charge(ChargeKind::Wait, hsim_faults::backoff_delay(attempt));
                                hsim_telemetry::count(Counter::FaultRetries, 1);
                            }
                            hsim_telemetry::count(Counter::FaultsRecovered, 1);
                            hsim_telemetry::rank_span(
                                Category::Runtime,
                                "fault_oom_retry",
                                t_um,
                                clock.now(),
                            );
                        }
                    }
                }
                let (_region, cost) = shared
                    .um_alloc_and_touch(mesh)
                    .map_err(|e| format!("rank {orig}: {e}"))?;
                clock.charge(ChargeKind::Memory, cost);
                hsim_telemetry::count(Counter::UmMigrations, 1);
                hsim_telemetry::count(Counter::UmBytesMigrated, mesh);
                hsim_telemetry::time_stat(TimeStat::MigrationTime, cost);
                hsim_telemetry::rank_span(Category::UmMigration, "um_fault_in", t_um, clock.now());
                _pool = Some(MemoryPool::new(
                    memscheme::temp_bytes(sub.zones()).max(4096),
                ));
                Target::Gpu(client.clone())
            } else {
                match pool_ref {
                    Some(pool) => Target::CpuParallel {
                        pool: Arc::clone(pool),
                    },
                    None => Target::CpuSeq,
                }
            };

            let mut exec = Executor::new(target, cfg_ref.node.cpu.clone(), cfg_ref.fidelity)
                .with_multipolicy(hsim_raja::MultiPolicy::with_threshold(
                    cfg_ref.multipolicy_threshold,
                ));
            let mut state = HydroState::new(grid, sub, cfg_ref.fidelity);
            state.tile = cfg_ref
                .tile
                .unwrap_or_else(|| calib::auto_tile_for(cfg_ref.host_threads));
            cfg_ref.problem.init(&mut state);
            // Degraded restart: unpack this rank's owned box from the
            // host-staged checkpoint (ghosts refill on the first
            // exchange; scratch fields are recomputed every cycle).
            if let Some(ck) = seg_ref.restore {
                state.t = ck.t;
                state.cycle = ck.cycle;
                if cfg_ref.fidelity == Fidelity::Full {
                    for (var, global) in ck.vars.iter().enumerate() {
                        for k in 0..sub.extent(2) {
                            for j in 0..sub.extent(1) {
                                for i in 0..sub.extent(0) {
                                    let g = (sub.lo[0] + i)
                                        + grid.nx * ((sub.lo[1] + j) + grid.ny * (sub.lo[2] + k));
                                    state.u.set(var, i, j, k, global[g]);
                                }
                            }
                        }
                    }
                }
            }
            // The particle phase: fresh deterministic placement on a
            // cold start, ownership re-filter of the global snapshot
            // on a restore (re-splits and foldbacks re-home particles
            // through exactly this path).
            let mut phase = cfg_ref.particles.map(|pcfg| match seg_ref.restore {
                Some(ck) => PhaseState::from_global(pcfg, &ck.particles, &grid, &sub),
                None => PhaseState::init_owned(pcfg, &grid, &sub),
            });

            // Main-thread MPS connect retries land on the rejected
            // rank's setup clock.
            if seg_ref.setup_extra[rank] > SimDuration::ZERO {
                let t_f = clock.now();
                clock.charge(ChargeKind::Wait, seg_ref.setup_extra[rank]);
                hsim_telemetry::rank_span(Category::Runtime, "fault_mps_retry", t_f, clock.now());
            }

            // Setup complete: synchronize and zero the runtime baseline.
            // The figures report cycle-loop time (setup — UM fault-in,
            // allocation — amortizes to noise over a real run's length).
            comm.clock_mut().merge(clock.now());
            comm.barrier().map_err(|e| format!("rank {orig}: {e}"))?;
            clock.merge(comm.now());
            let t0 = clock.now();
            hsim_telemetry::rank_span(Category::Runtime, "setup", SimTime::ZERO, t0);

            let mut coupler = MpiCoupler {
                comm,
                plan: plan_ref,
                decomp: decomp_ref,
                gpu_spec: client.as_ref().map(|_| cfg_ref.node.gpu_spec.clone()),
                gpu_direct: cfg_ref.gpu_direct,
            };

            for cycle in seg_ref.first_cycle..seg_ref.last_cycle {
                hsim_faults::set_cycle(cycle);
                let cycle_start = clock.now();
                let wait_before = clock.bucket(ChargeKind::Wait);
                // Pooled temporaries are grabbed per cycle and released at
                // the cycle boundary (cnmem discipline).
                if let Some(pool) = _pool.as_mut() {
                    let a = pool.alloc(memscheme::temp_bytes(sub.zones()).max(256));
                    debug_assert!(a.is_ok());
                    pool.reset();
                }
                let stats = step(
                    &mut state,
                    &mut exec,
                    &mut clock,
                    &mut coupler,
                    calib::CFL,
                    calib::COST_ONLY_DT,
                )
                .map_err(|e| format!("rank {orig}: {e}"))?;
                if let Some(diff) = &cfg_ref.diffusion {
                    diffuse_step(
                        &mut state,
                        &mut exec,
                        &mut clock,
                        &mut coupler,
                        diff,
                        stats.dt,
                    )
                    .map_err(|e| format!("rank {orig}: {e}"))?;
                }
                if let Some(phase) = phase.as_mut() {
                    hsim_particles::advect(phase, &state, &mut exec, &mut clock, stats.dt, cycle)
                        .map_err(|e| format!("rank {orig}: {e}"))?;
                    hsim_particles::migrate(phase, decomp_ref, rank, &mut coupler, &mut clock)
                        .map_err(|e| format!("rank {orig}: {e}"))?;
                }
                // Serial host control code between kernels.
                clock.charge(
                    ChargeKind::Control,
                    SimDuration::from_nanos_f64(
                        stats.launches as f64 * calib::CONTROL_NS_PER_LAUNCH,
                    ),
                );
                // Host-bandwidth saturation penalty.
                clock.charge(ChargeKind::Memory, penalty_ref[rank]);
                if collect {
                    // One busy span + one idle span per cycle: the idle
                    // share is the Wait-bucket growth (GPU sync + peers).
                    let wait_delta = clock.bucket(ChargeKind::Wait) - wait_before;
                    let cycle_end = clock.now();
                    let busy_end = SimTime::from_nanos(
                        cycle_end.as_nanos().saturating_sub(wait_delta.as_nanos()),
                    );
                    let cat = if role.is_gpu_driver() {
                        Category::GpuKernel
                    } else {
                        Category::CpuKernel
                    };
                    hsim_telemetry::rank_span(cat, "cycle", cycle_start, busy_end);
                    hsim_telemetry::rank_span(Category::Idle, "wait", busy_end, cycle_end);
                }
            }

            // Boundary checkpoint for the degraded-restart path:
            // owned zone values per conserved variable, staged through
            // the host (data only matters in full fidelity).
            let dump = if seg_ref.take_checkpoint && cfg_ref.fidelity == Fidelity::Full {
                Some(
                    (0..hsim_hydro::NCONS)
                        .map(|var| {
                            let mut v = Vec::with_capacity(sub.zones() as usize);
                            for k in 0..sub.extent(2) {
                                for j in 0..sub.extent(1) {
                                    for i in 0..sub.extent(0) {
                                        v.push(state.u.get(var, i, j, k));
                                    }
                                }
                            }
                            v
                        })
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            };

            // Fold the communicator's clock into the rank clock and report.
            let comm_clock = coupler.comm.clock().clone();
            clock.merge(comm_clock.now());
            let bytes_sent = coupler.comm.bytes_sent();
            let report = RankReport {
                rank,
                role,
                zones: sub.zones(),
                setup: t0 - hsim_time::SimTime::ZERO,
                total: clock.now() - t0,
                compute: clock.bucket(ChargeKind::Compute),
                launch: clock.bucket(ChargeKind::Launch),
                memory: clock.bucket(ChargeKind::Memory) + comm_clock.bucket(ChargeKind::Memory),
                comm: comm_clock.bucket(ChargeKind::Comm),
                control: clock.bucket(ChargeKind::Control),
                wait: clock.bucket(ChargeKind::Wait) + comm_clock.bucket(ChargeKind::Wait),
                launches: exec.registry.total_launches(),
                bytes_sent,
            };
            hsim_faults::uninstall();
            let mass = if cfg_ref.fidelity == Fidelity::Full {
                state.total_mass()
            } else {
                0.0
            };
            let diag = (cfg_ref.fidelity == Fidelity::Full).then(|| ScenarioDiag::of_rank(&state));
            Ok(RankOut {
                report,
                collector: hsim_telemetry::uninstall(),
                dump,
                t: state.t,
                cycle: state.cycle,
                mass,
                migrated: phase.as_ref().map_or(0, |ph| ph.migrated),
                particles: phase.map(|ph| ph.parts),
                diag,
            })
        },
    );

    let mut reports = Vec::with_capacity(outputs.len());
    let mut collectors = Vec::new();
    let mut dumps = Vec::with_capacity(outputs.len());
    let mut errors: Vec<String> = Vec::new();
    let mut t_end = 0.0;
    let mut cycle_end = seg.last_cycle;
    let mut masses = Vec::with_capacity(n_ranks);
    let mut all_parts: Option<Vec<Particle>> = cfg.particles.map(|_| Vec::new());
    let mut migrated = 0u64;
    let mut diags: Vec<ScenarioDiag> = Vec::new();
    for res in outputs {
        match res {
            Ok(out) => {
                collectors.extend(out.collector);
                dumps.push(out.dump);
                masses.push(out.mass);
                // Identical on every rank: dt is an exact collective.
                t_end = out.t;
                cycle_end = out.cycle;
                if let (Some(all), Some(p)) = (all_parts.as_mut(), out.particles) {
                    all.extend(p);
                }
                migrated += out.migrated;
                diags.extend(out.diag);
                reports.push(out.report);
            }
            Err(e) => errors.push(e),
        }
    }
    if !errors.is_empty() {
        // Prefer the root cause (the injected fault's typed message)
        // over collateral peer-disconnect failures.
        let root = errors
            .iter()
            .find(|e| e.contains("injected"))
            .or_else(|| {
                errors
                    .iter()
                    .find(|e| !e.to_lowercase().contains("disconnected"))
            })
            .unwrap_or(&errors[0])
            .clone();
        return Err(root);
    }

    let checkpoint = if seg.take_checkpoint {
        let mut vars: Vec<Vec<f64>> = if cfg.fidelity == Fidelity::Full {
            vec![vec![0.0; grid.zones() as usize]; hsim_hydro::NCONS]
        } else {
            Vec::new()
        };
        for (rank, dump) in dumps.iter().enumerate() {
            if let Some(dump) = dump {
                let sub = decomp.domains[rank];
                for (var, vals) in dump.iter().enumerate() {
                    let mut it = vals.iter();
                    for k in 0..sub.extent(2) {
                        for j in 0..sub.extent(1) {
                            for i in 0..sub.extent(0) {
                                let g = (sub.lo[0] + i)
                                    + grid.nx * ((sub.lo[1] + j) + grid.ny * (sub.lo[2] + k));
                                vars[var][g] = *it.next().ok_or_else(|| {
                                    format!(
                                        "rank {rank} checkpoint dump smaller than its owned box"
                                    )
                                })?;
                            }
                        }
                    }
                }
            }
        }
        if let Some(all) = all_parts.as_mut() {
            all.sort_unstable_by_key(|p| p.id);
        }
        Some(Checkpoint {
            vars,
            particles: all_parts.clone().unwrap_or_default(),
            t: t_end,
            cycle: cycle_end,
        })
    } else {
        None
    };

    if let Some(all) = all_parts.as_mut() {
        all.sort_unstable_by_key(|p| p.id);
    }
    let diag = (!diags.is_empty()).then(|| ScenarioDiag::merge(grid.nx, diags.iter()));
    Ok(SegmentOut {
        reports,
        collectors,
        device_busy: devices.iter().map(|d| d.busy()).collect(),
        checkpoint,
        masses: (cfg.fidelity == Fidelity::Full).then_some(masses),
        particles: all_parts,
        migrated,
        diag,
        t_end,
    })
}

/// The §6.2 loop: run, measure CPU vs GPU busy time, adjust the split,
/// repeat until the fraction converges ("static within an iteration,
/// but the decomposition can be adjusted between iterations").
///
/// Returns the final run and the balancer with its history. For
/// non-heterogeneous modes this is a single plain run.
pub fn run_balanced(cfg: &RunConfig) -> Result<(RunResult, LoadBalancer), String> {
    if !matches!(cfg.mode, ExecMode::Heterogeneous { .. }) {
        let result = run(cfg)?;
        return Ok((result, LoadBalancer::with_fraction(0.0)));
    }
    let mut lb = match cfg.mode {
        ExecMode::Heterogeneous {
            cpu_fraction: Some(f),
        } => LoadBalancer::with_fraction(f),
        _ => LoadBalancer::new(&cfg.node),
    };
    lb.set_min_fraction(hetero_min_fraction(cfg));
    let mut result = run_with_fraction(cfg, lb.fraction)?;
    let mut rebalances = 0u64;
    for _ in 0..calib::BALANCE_MAX_ITERS {
        let cpu_time = result.slowest_cpu_compute();
        let gpu_time = result.slowest_device_busy();
        if cpu_time.is_zero() || gpu_time.is_zero() {
            break;
        }
        let before = lb.fraction;
        lb.observe(cpu_time, gpu_time);
        if (lb.fraction - before).abs() < calib::BALANCE_TOL {
            break;
        }
        rebalances += 1;
        result = run_with_fraction(cfg, lb.fraction)?;
    }
    if let Some(s) = result.telemetry.as_mut() {
        s.metrics.count(Counter::Rebalances, rebalances);
    }
    Ok((result, lb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_cfg(grid: (usize, usize, usize), mode: ExecMode) -> RunConfig {
        let mut cfg = RunConfig::sweep(grid, mode);
        cfg.cycles = 3;
        cfg
    }

    #[test]
    fn all_modes_run_cost_only() {
        for mode in [
            ExecMode::CpuOnly,
            ExecMode::Default,
            ExecMode::mps4(),
            ExecMode::hetero(),
        ] {
            let cfg = sweep_cfg((64, 48, 32), mode);
            let r = run(&cfg).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert!(r.runtime > SimDuration::ZERO, "{mode:?}");
            assert_eq!(r.zones, 64 * 48 * 32);
            assert_eq!(r.ranks.len(), mode.total_ranks(&cfg.node));
        }
    }

    #[test]
    fn decompositions_match_modes() {
        let node = NodeConfig::rzhasgpu();
        let cfg = sweep_cfg((64, 48, 32), ExecMode::hetero());
        let d = build_decomposition(&cfg, 0.05).unwrap();
        assert_eq!(d.len(), 16);
        assert_eq!(d.gpu_ranks().len(), node.gpus);
        let cfg2 = sweep_cfg((64, 48, 32), ExecMode::Default);
        assert_eq!(build_decomposition(&cfg2, 0.0).unwrap().len(), 4);
    }

    #[test]
    fn gpu_modes_report_device_busy_and_launch_overhead() {
        let cfg = sweep_cfg((64, 48, 32), ExecMode::Default);
        let r = run(&cfg).unwrap();
        assert_eq!(r.device_busy.len(), 4);
        assert!(r.slowest_device_busy() > SimDuration::ZERO);
        for rank in &r.ranks {
            assert!(rank.launch > SimDuration::ZERO, "launch overhead charged");
            assert!(rank.compute.is_zero(), "GPU rank computes on device");
        }
    }

    #[test]
    fn cpu_only_mode_computes_on_cores() {
        let cfg = sweep_cfg((32, 32, 32), ExecMode::CpuOnly);
        let r = run(&cfg).unwrap();
        assert!(r.device_busy.is_empty());
        for rank in &r.ranks {
            assert!(rank.compute > SimDuration::ZERO);
            assert!(rank.launch.is_zero());
        }
    }

    #[test]
    fn hetero_assigns_thin_slabs_to_cpu() {
        let cfg = sweep_cfg((320, 240, 160), ExecMode::hetero());
        let r = run(&cfg).unwrap();
        assert!(
            r.cpu_fraction > 0.0 && r.cpu_fraction < 0.2,
            "{}",
            r.cpu_fraction
        );
        let cpu_zones: u64 = r
            .ranks
            .iter()
            .filter(|x| !x.role.is_gpu_driver())
            .map(|x| x.zones)
            .sum();
        assert!(cpu_zones > 0);
    }

    #[test]
    fn mps_uses_elevated_launch_overhead() {
        let cfg_mps = sweep_cfg((64, 64, 64), ExecMode::mps4());
        let cfg_def = sweep_cfg((64, 64, 64), ExecMode::Default);
        let r_mps = run(&cfg_mps).unwrap();
        let r_def = run(&cfg_def).unwrap();
        // Per-rank launch counts are comparable; MPS pays more per
        // launch, so *total* launch time across the node is higher.
        let mps_launch: SimDuration = r_mps.ranks.iter().map(|r| r.launch).sum();
        let def_launch: SimDuration = r_def.ranks.iter().map(|r| r.launch).sum();
        assert!(
            mps_launch > def_launch,
            "MPS launch {mps_launch} vs Default {def_launch}"
        );
    }

    #[test]
    fn host_penalty_kinks_default_mode() {
        // Beyond 4 × 9.25 M zones the Default mode pays extra; the
        // other 16-rank modes do not. Compare per-zone cost below and
        // above the kink.
        let small = run(&sweep_cfg((320, 320, 240), ExecMode::Default)).unwrap(); // 24.6 M
        let large = run(&sweep_cfg((320, 320, 480), ExecMode::Default)).unwrap(); // 49 M
        let per_zone_small = small.runtime.as_secs_f64() / small.zones as f64;
        let per_zone_large = large.runtime.as_secs_f64() / large.zones as f64;
        assert!(
            per_zone_large > per_zone_small * 1.1,
            "kink missing: {per_zone_small} vs {per_zone_large}"
        );
        let mps_small = run(&sweep_cfg((320, 320, 240), ExecMode::mps4())).unwrap();
        let mps_large = run(&sweep_cfg((320, 320, 480), ExecMode::mps4())).unwrap();
        let ps = mps_small.runtime.as_secs_f64() / mps_small.zones as f64;
        let pl = mps_large.runtime.as_secs_f64() / mps_large.zones as f64;
        assert!(pl < ps * 1.08, "MPS should stay linear: {ps} vs {pl}");
    }

    #[test]
    fn run_balanced_converges_for_hetero() {
        let cfg = sweep_cfg((320, 480, 160), ExecMode::hetero());
        let (result, lb) = run_balanced(&cfg).unwrap();
        assert!(lb.history.len() >= 2, "balancer iterated");
        assert!(result.cpu_fraction > 0.0);
        // The balanced fraction should be small (the compiler bug caps
        // the CPU share at a few percent).
        assert!(result.cpu_fraction < 0.12, "{}", result.cpu_fraction);
    }

    #[test]
    fn full_fidelity_multirank_run_is_physical() {
        // A small functional run through the whole stack: mass is
        // conserved across a cooperative MPS-mode run.
        let mut cfg = sweep_cfg((16, 16, 16), ExecMode::mps4());
        cfg.fidelity = Fidelity::Full;
        cfg.cycles = 2;
        let r = run(&cfg).unwrap();
        assert_eq!(r.ranks.len(), 16);
        assert!(r.runtime > SimDuration::ZERO);
    }

    #[test]
    fn shared_host_pool_run_is_green_and_charged_parallel() {
        // Full-fidelity hetero run with one shared pool across all
        // CPU ranks: physics completes, and the OpenMP cost model
        // makes CPU compute cheaper than the sequential run.
        let mut cfg = sweep_cfg((32, 48, 32), ExecMode::hetero());
        cfg.fidelity = Fidelity::Full;
        cfg.cycles = 2;
        let serial = run(&cfg).unwrap();
        cfg.host_threads = 4;
        let pooled = run(&cfg).unwrap();
        assert_eq!(pooled.ranks.len(), serial.ranks.len());
        let cpu_compute = |r: &RunResult| {
            r.ranks
                .iter()
                .filter(|x| !x.role.is_gpu_driver())
                .map(|x| x.compute)
                .fold(SimDuration::ZERO, SimDuration::max)
        };
        assert!(
            cpu_compute(&pooled) < cpu_compute(&serial),
            "pooled CPU ranks must be charged parallel time: {} vs {}",
            cpu_compute(&pooled),
            cpu_compute(&serial)
        );
    }

    #[test]
    fn alternate_problems_run_through_the_cooperative_stack() {
        for problem in [
            Problem::Sod(hsim_hydro::SodConfig::default()),
            Problem::Perturbed(PerturbedConfig::default()),
            Problem::Noh(NohConfig::default()),
            Problem::TaylorGreen(TaylorGreenConfig::default()),
        ] {
            let mut cfg = sweep_cfg((16, 16, 16), ExecMode::mps4());
            cfg.fidelity = Fidelity::Full;
            cfg.cycles = 2;
            cfg.problem = problem.clone();
            let r = run(&cfg).unwrap_or_else(|e| panic!("{problem:?}: {e}"));
            assert!(r.runtime > SimDuration::ZERO);
        }
    }

    #[test]
    fn particle_phase_rides_the_run_and_costs_time() {
        let mut cfg = sweep_cfg((16, 16, 16), ExecMode::CpuOnly);
        cfg.cycles = 3;
        let bare = run(&cfg).unwrap();
        assert!(bare.particles.is_none());

        cfg.particles = Some(ParticlesConfig::default());
        let with = run(&cfg).unwrap();
        let p = with.particles.as_ref().expect("particle report present");
        assert_eq!(p.count, ParticlesConfig::default().count);
        assert!(
            with.runtime > bare.runtime,
            "the advect kernel must be charged: {} vs {}",
            with.runtime,
            bare.runtime
        );
    }

    #[test]
    fn diffusion_package_adds_cost_and_stays_green() {
        let mut cfg = sweep_cfg((64, 48, 32), ExecMode::Default);
        let base = run(&cfg).unwrap();
        cfg.diffusion = Some(hsim_hydro::DiffusionConfig::default());
        let multi = run(&cfg).unwrap();
        assert!(
            multi.runtime > base.runtime,
            "a second physics package must cost time: {} vs {}",
            multi.runtime,
            base.runtime
        );
        assert!(multi.total_launches() > base.total_launches());
    }

    #[test]
    fn multipolicy_helps_tiny_problems_on_gpu_ranks() {
        // A tiny problem: boundary/face kernels fall below the
        // break-even size, where launch overhead exceeds host
        // execution even on the bug-afflicted CPU. A *tuned* threshold
        // must help; a wildly oversized one (everything to the slow
        // host) must hurt — both directions are asserted.
        let node = NodeConfig::rzhasgpu();
        let tuned = hsim_raja::MultiPolicy::break_even(
            &node.gpu_spec,
            &node.cpu,
            &hsim_hydro::kernels::FLUX,
        );
        let mut cfg = sweep_cfg((16, 12, 12), ExecMode::Default);
        let naive = run(&cfg).unwrap();
        cfg.multipolicy_threshold = tuned;
        let multi = run(&cfg).unwrap();
        assert!(
            multi.runtime < naive.runtime,
            "tuned MultiPolicy should help tiny problems: {} vs {}",
            multi.runtime,
            naive.runtime
        );
        cfg.multipolicy_threshold = 1_000_000;
        let oversized = run(&cfg).unwrap();
        assert!(
            oversized.runtime > naive.runtime,
            "routing everything to the slow host must hurt: {} vs {}",
            oversized.runtime,
            naive.runtime
        );
    }

    #[test]
    fn traced_run_records_spans_for_every_rank_and_cycle() {
        let mut cfg = sweep_cfg((64, 48, 32), ExecMode::hetero());
        cfg.trace = true;
        let r = run(&cfg).unwrap();
        let trace = r.trace.as_ref().expect("trace requested");
        // Two spans (busy + wait) per rank per cycle.
        assert_eq!(
            trace.len() as u64,
            2 * cfg.cycles * r.ranks.len() as u64,
            "span count"
        );
        let gantt = trace.render_gantt(60);
        assert!(gantt.contains('G') && gantt.contains('C'), "{gantt}");
        // Untraced runs carry no trace.
        cfg.trace = false;
        assert!(run(&cfg).unwrap().trace.is_none());
    }

    #[test]
    fn gpu_direct_reduces_hetero_runtime() {
        let mut cfg = sweep_cfg((128, 128, 128), ExecMode::Default);
        let base = run(&cfg).unwrap();
        cfg.gpu_direct = true;
        let direct = run(&cfg).unwrap();
        assert!(
            direct.runtime <= base.runtime,
            "gpu-direct {} vs staged {}",
            direct.runtime,
            base.runtime
        );
    }

    /// A small full-fidelity Heterogeneous Sedov run with a fault plan.
    fn fault_cfg(spec: &str) -> RunConfig {
        let mut cfg = sweep_cfg((32, 48, 32), ExecMode::hetero());
        cfg.fidelity = Fidelity::Full;
        cfg.cycles = 4;
        cfg.faults = Some(hsim_faults::FaultPlan::parse(spec).expect(spec));
        cfg
    }

    #[test]
    fn rank_loss_folds_back_and_conserves_mass() {
        let mut intact_cfg = fault_cfg("rank.loss@rank4.cycle2");
        intact_cfg.faults = None;
        let intact = run(&intact_cfg).unwrap();
        let degraded = run(&fault_cfg("rank.loss@rank4.cycle2")).unwrap();
        assert_eq!(intact.ranks.len(), 16);
        assert_eq!(degraded.ranks.len(), 15, "lost rank folded away");
        assert!(
            degraded.cpu_fraction < intact.cpu_fraction,
            "foldback hands the slab back to the GPU: {} vs {}",
            degraded.cpu_fraction,
            intact.cpu_fraction
        );
        // Physics does not depend on the decomposition, so the
        // checkpoint/restart run conserves mass up to the changed
        // summation order of the per-rank reductions.
        let (mi, md) = (intact.mass.unwrap(), degraded.mass.unwrap());
        assert!(
            ((mi - md) / mi).abs() < 1e-12,
            "mass drift across recovery: {mi} vs {md}"
        );
        // The survivors pick up the lost rank's zones.
        let zones: u64 = degraded.ranks.iter().map(|r| r.zones).sum();
        assert_eq!(zones, degraded.zones);
        assert!(degraded.runtime > SimDuration::ZERO);
    }

    #[test]
    fn degraded_recovery_trace_is_deterministic_and_reports_the_loss() {
        let mut cfg = fault_cfg("xfer.delay@rank5.cycle1:ns=200000;rank.loss@rank4.cycle2");
        cfg.telemetry = true;
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        let (sa, sb) = (a.telemetry.unwrap(), b.telemetry.unwrap());
        assert_eq!(
            sa.to_metrics_json(),
            sb.to_metrics_json(),
            "same seed and plan must replay the same recovery"
        );
        assert_eq!(sa.metrics.counter(Counter::FaultRankLosses), 1);
        assert_eq!(sa.metrics.counter(Counter::FaultsInjected), 2);
        assert!(sa.metrics.counter(Counter::FaultsRecovered) >= 1);
        // The gauge reflects the *rebalanced* post-loss decomposition.
        let mut intact = fault_cfg("rank.loss@rank4.cycle2");
        intact.faults = None;
        intact.telemetry = true;
        let si = run(&intact).unwrap().telemetry.unwrap();
        assert!(
            sa.metrics.gauge(Gauge::CpuFraction) < si.metrics.gauge(Gauge::CpuFraction),
            "telemetry must report the foldback decomposition"
        );
    }

    #[test]
    fn losing_a_gpu_driver_is_a_typed_error() {
        let err = run(&fault_cfg("rank.loss@rank0.cycle1")).unwrap_err();
        assert!(err.contains("GPU"), "{err}");
    }

    #[test]
    fn more_than_one_rank_loss_is_rejected_up_front() {
        let err = run(&fault_cfg("rank.loss@rank4.cycle1;rank.loss@rank5.cycle2")).unwrap_err();
        assert!(err.contains("more than one"), "{err}");
    }

    #[test]
    fn transient_faults_recover_without_touching_physics() {
        let mut base_cfg = fault_cfg("rank.loss@rank4.cycle2");
        base_cfg.faults = None;
        let base = run(&base_cfg).unwrap();
        for spec in [
            "gpu.oom@rank0.cycle0:count=2",
            "gpu.launch@rank1.cycle1",
            "xfer.corrupt@rank4.cycle1",
            "pool.panic@rank5.cycle2",
        ] {
            let mut cfg = fault_cfg(spec);
            cfg.telemetry = true;
            // The pool-panic site only exists inside a parallel region.
            if spec.starts_with("pool.panic") {
                cfg.host_threads = 4;
            }
            let faulted = run(&cfg).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(faulted.ranks.len(), base.ranks.len(), "{spec}");
            assert_eq!(
                faulted.mass, base.mass,
                "{spec}: recovery must not perturb the solution"
            );
            let s = faulted.telemetry.unwrap();
            assert_eq!(s.metrics.counter(Counter::FaultsInjected), 1, "{spec}");
            assert_eq!(s.metrics.counter(Counter::FaultsRecovered), 1, "{spec}");
            assert!(s.metrics.counter(Counter::FaultRetries) >= 1, "{spec}");
        }
    }

    /// A cost-only heterogeneous run with the online controller on.
    fn online_cfg(grid: (usize, usize, usize), cycles: u64, every: u64) -> RunConfig {
        let mut cfg = RunConfig::sweep(grid, ExecMode::hetero());
        cfg.cycles = cycles;
        cfg.rebalance = Some(RebalanceConfig {
            every,
            hysteresis: calib::REBALANCE_DEFAULT_HYSTERESIS,
        });
        cfg
    }

    #[test]
    fn online_rebalance_converges_from_a_bad_start() {
        // Start at a deliberately oversized CPU share: the controller
        // must walk it down toward the measured balance point (the
        // compiler bug caps the converged share at a few percent, per
        // `run_balanced_converges_for_hetero`).
        let mut cfg = online_cfg((320, 480, 160), 12, 2);
        cfg.telemetry = true;
        let r = run_with_fraction(&cfg, 0.30).unwrap();
        assert!(
            r.balance_history.len() >= 6,
            "one entry per boundary: {:?}",
            r.balance_history
        );
        let start = r.balance_history[0];
        let last = *r.balance_history.last().unwrap();
        assert!(
            last < start / 2.0 && last < 0.12,
            "controller must shed CPU work: {:?}",
            r.balance_history
        );
        assert_eq!(last, r.cpu_fraction, "history tracks the realized split");
        let s = r.telemetry.unwrap();
        assert!(s.metrics.counter(Counter::BalanceResplits) >= 1);
        assert!(s.metrics.counter(Counter::BalanceBytesMoved) > 0);
        assert_eq!(s.metrics.counter(Counter::BalanceFrozen), 0);
        assert!((s.metrics.gauge(Gauge::BalanceFraction) - last).abs() < 1e-12);
    }

    #[test]
    fn online_rebalance_never_breaks_the_granularity_guard() {
        // ny = 24 → per-GPU-block y extent 12 → min fraction 3/12:
        // the Figs 13–14 bottleneck. The GPU-hungry optimum sits far
        // below it, so every boundary must clamp.
        let cfg = online_cfg((64, 24, 16), 8, 2);
        let guard = hetero_min_fraction(&cfg);
        assert!((guard - 0.25).abs() < 1e-12, "{guard}");
        let r = run_with_fraction(&cfg, 0.45).unwrap();
        for (i, f) in r.balance_history.iter().enumerate() {
            assert!(*f >= guard - 1e-12, "boundary {i} split below 12/ny: {f}");
        }
        assert!((r.cpu_fraction - guard).abs() < 1e-12, "{}", r.cpu_fraction);
    }

    #[test]
    fn online_rebalance_rejects_non_heterogeneous_modes() {
        let mut cfg = sweep_cfg((64, 48, 32), ExecMode::Default);
        cfg.rebalance = Some(RebalanceConfig::default());
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("CPU fraction"), "{err}");
    }

    #[test]
    fn online_rebalance_survives_a_rank_loss_frozen_and_deterministic() {
        // Boundaries: rebalance@2, loss@3 (freeze), frozen@4 — the
        // controller adjusts, recovery folds back, and the rest of the
        // run holds the post-loss split. All inputs are virtual-time
        // measurements, so same-seed reruns are byte-identical even
        // with the controller live (the property the chaos gate CI
        // job asserts end to end).
        let mut cfg = online_cfg((32, 48, 32), 6, 2);
        cfg.fidelity = Fidelity::Full;
        cfg.telemetry = true;
        // Pin the tile: the wall-clock auto-tune probe is one-shot per
        // process, so its kernel launches would land only in the first
        // run's telemetry and break the byte-compare.
        cfg.tile = Some([8, 8]);
        cfg.faults = Some(hsim_faults::FaultPlan::parse("rank.loss@rank4.cycle3").unwrap());
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.balance_history, b.balance_history);
        let (sa, sb) = (a.telemetry.clone().unwrap(), b.telemetry.clone().unwrap());
        assert_eq!(
            sa.to_metrics_json(),
            sb.to_metrics_json(),
            "same seed and plan must replay the same controlled recovery"
        );
        assert_eq!(a.ranks.len(), 15, "lost rank folded away");
        assert_eq!(sa.metrics.counter(Counter::BalanceFrozen), 1);
        assert_eq!(sa.metrics.counter(Counter::FaultRankLosses), 1);

        // Post-freeze boundaries hold: the last history entries equal
        // the post-loss split.
        let post_loss = *a.balance_history.last().unwrap();
        assert!((a.cpu_fraction - post_loss).abs() < 1e-12);

        // Physics does not depend on the decomposition: mass matches
        // the intact, uncontrolled run up to reduction order.
        let mut intact = cfg.clone();
        intact.faults = None;
        intact.rebalance = None;
        intact.telemetry = false;
        let mi = run(&intact).unwrap().mass.unwrap();
        let ma = a.mass.unwrap();
        assert!(
            ((mi - ma) / mi).abs() < 1e-12,
            "mass drift across controlled recovery: {mi} vs {ma}"
        );
    }

    #[test]
    fn permanent_mps_rejection_is_a_typed_error() {
        let mut cfg = sweep_cfg((16, 16, 16), ExecMode::mps4());
        cfg.fidelity = Fidelity::Full;
        cfg.cycles = 2;
        cfg.faults = Some(hsim_faults::FaultPlan::parse("mps.connect@rank1.cycle0:perm").unwrap());
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("MPS"), "{err}");
    }
}
