//! Canonical content hashing for [`RunConfig`].
//!
//! The serve layer caches completed results keyed by the *content* of
//! a run configuration: because runs are deterministic in virtual
//! time, two configs that hash equal produce byte-identical output,
//! so a cache hit is exact, not approximate.
//!
//! The hash is FNV-1a (64-bit) over a canonical byte encoding:
//! every field is folded in declaration order, each prefixed with a
//! one-byte field tag so adjacent fields can never alias (e.g. a grid
//! of `(1, 0, 0)` vs `(0, 1, 0)` or an absent option vs a zero).
//! Floats contribute their IEEE-754 bit patterns (`to_bits`), strings
//! are length-prefixed, enums contribute a discriminant tag plus
//! their payload, and the fault plan round-trips through its textual
//! [`spec`](hsim_faults::FaultPlan::spec) form, which is already
//! canonical.
//!
//! The encoding is pinned by a golden test below: any refactor that
//! silently changes the cache key breaks the pin, so stale-cache bugs
//! surface as a test failure, never as a wrong served result.

use crate::mode::ExecMode;
use crate::node::NodeConfig;
use crate::runner::{Problem, RunConfig};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over the canonical encoding.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    pub fn new() -> Self {
        ContentHasher { state: FNV_OFFSET }
    }

    pub fn finish(&self) -> u64 {
        self.state
    }

    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        for &x in b {
            self.state ^= u64::from(x);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// One-byte field/discriminant tag.
    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.bytes(&[t])
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.tag(u8::from(v))
    }

    /// Length-prefixed string bytes.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }
}

fn hash_mode(h: &mut ContentHasher, mode: &ExecMode) {
    match mode {
        ExecMode::CpuOnly => {
            h.tag(0);
        }
        ExecMode::Default => {
            h.tag(1);
        }
        ExecMode::Mps { per_gpu } => {
            h.tag(2).usize(*per_gpu);
        }
        ExecMode::Heterogeneous { cpu_fraction } => {
            h.tag(3);
            match cpu_fraction {
                None => h.tag(0),
                Some(f) => h.tag(1).f64(*f),
            };
        }
    }
}

fn hash_node(h: &mut ContentHasher, node: &NodeConfig) {
    h.str(node.name).usize(node.cores).usize(node.gpus);
    let g = &node.gpu_spec;
    h.str(g.name)
        .u64(u64::from(g.sm_count))
        .f64(g.fp64_gflops)
        .f64(g.mem_bandwidth_gbs)
        .u64(g.mem_capacity)
        .u64(g.launch_overhead.0)
        .f64(g.mps_launch_factor)
        .f64(g.pcie_bandwidth_gbs)
        .u64(g.pcie_latency.0)
        .u64(g.um_page_size)
        .u64(g.um_page_migration.0)
        .f64(g.saturation_elems)
        .f64(g.inner_half_extent)
        .f64(g.sharing_penalty);
    let c = &node.cpu;
    h.f64(c.ghz)
        .f64(c.flops_per_cycle)
        .f64(c.bw_gbs_per_core)
        .f64(c.dispatch_ns)
        .bool(c.bug_active);
    let m = &node.comm;
    h.u64(m.latency.0)
        .f64(m.bandwidth_gbs)
        .u64(m.send_overhead.0)
        .u64(m.recv_overhead.0);
}

fn hash_problem(h: &mut ContentHasher, p: &Problem) {
    match p {
        Problem::Sedov(s) => {
            h.tag(0)
                .f64(s.e0)
                .f64(s.rho0)
                .f64(s.p0)
                .f64(s.deposit_radius_zones);
        }
        Problem::Sod(s) => {
            h.tag(1);
            for gs in [&s.left, &s.right] {
                h.f64(gs.rho).f64(gs.u).f64(gs.p);
            }
            h.f64(s.diaphragm);
        }
        Problem::Perturbed(s) => {
            h.tag(2)
                .u64(s.seed)
                .f64(s.rho0)
                .f64(s.p0)
                .f64(s.amplitude)
                .usize(s.modes)
                .f64(s.mach);
        }
        Problem::Noh(s) => {
            h.tag(3).f64(s.rho0).f64(s.p0).f64(s.u0);
        }
        Problem::TaylorGreen(s) => {
            h.tag(4).f64(s.rho0).f64(s.v0).f64(s.mach);
        }
    }
}

impl RunConfig {
    /// Stable 64-bit content hash of this configuration (see module
    /// docs). Equal hashes ⇒ equal canonical encodings ⇒ the runs
    /// produce byte-identical reports, so the hash is a sound cache
    /// key for served results.
    ///
    /// Note that [`RunConfig::tile`] *is* hashed even though results
    /// are bitwise-independent of the tile shape: keeping the encoding
    /// total (every field folded in) is what the pinned-golden test
    /// guards, and collapsing "performance-equivalent" configs is a
    /// cache-sizing optimization the serve layer can do above this.
    pub fn content_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.tag(3) // encoding version (3: scenario problems + particle phase)
            .usize(self.grid.0)
            .usize(self.grid.1)
            .usize(self.grid.2);
        hash_mode(&mut h, &self.mode);
        hash_node(&mut h, &self.node);
        h.u64(self.cycles);
        h.tag(match self.fidelity {
            hsim_raja::Fidelity::Full => 0,
            hsim_raja::Fidelity::CostOnly => 1,
        });
        h.bool(self.gpu_direct);
        match &self.diffusion {
            None => h.tag(0),
            Some(d) => h.tag(1).f64(d.kappa),
        };
        h.u64(self.multipolicy_threshold);
        h.bool(self.trace).bool(self.telemetry);
        hash_problem(&mut h, &self.problem);
        match &self.faults {
            None => h.tag(0),
            Some(plan) => h.tag(1).str(&plan.spec()),
        };
        match &self.rebalance {
            None => h.tag(0),
            Some(r) => h.tag(1).u64(r.every).f64(r.hysteresis),
        };
        h.usize(self.host_threads);
        match &self.tile {
            None => h.tag(0),
            Some([ty, tz]) => h.tag(1).usize(*ty).usize(*tz),
        };
        match &self.particles {
            None => h.tag(0),
            Some(p) => h.tag(1).u64(p.count).f64(p.drag).u64(p.seed),
        };
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RunConfig {
        RunConfig::sweep((64, 48, 32), ExecMode::hetero())
    }

    /// Pinned golden hash: if this changes, the canonical encoding
    /// changed, and every persisted cache key is invalid. Bump the
    /// encoding-version tag in `content_hash` and re-pin deliberately;
    /// never let the key drift silently through a refactor.
    #[test]
    fn golden_hash_is_pinned() {
        assert_eq!(base().content_hash(), 0xe4b3_93af_4fb9_828e);
    }

    #[test]
    fn hash_is_deterministic_across_clones() {
        let a = base();
        let b = a.clone();
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn every_field_moves_the_hash() {
        let base_hash = base().content_hash();
        let variants: Vec<RunConfig> = vec![
            RunConfig {
                grid: (48, 64, 32),
                ..base()
            },
            RunConfig {
                mode: ExecMode::Default,
                ..base()
            },
            RunConfig {
                mode: ExecMode::Heterogeneous {
                    cpu_fraction: Some(0.0),
                },
                ..base()
            },
            RunConfig {
                node: crate::node::NodeConfig::sierra_ea(),
                ..base()
            },
            RunConfig {
                cycles: 11,
                ..base()
            },
            RunConfig {
                fidelity: hsim_raja::Fidelity::Full,
                ..base()
            },
            RunConfig {
                gpu_direct: true,
                ..base()
            },
            RunConfig {
                diffusion: Some(hsim_hydro::DiffusionConfig { kappa: 0.0 }),
                ..base()
            },
            RunConfig {
                multipolicy_threshold: 1,
                ..base()
            },
            RunConfig {
                trace: true,
                ..base()
            },
            RunConfig {
                telemetry: true,
                ..base()
            },
            RunConfig {
                problem: Problem::Sod(Default::default()),
                ..base()
            },
            RunConfig {
                problem: Problem::Noh(Default::default()),
                ..base()
            },
            RunConfig {
                problem: Problem::TaylorGreen(Default::default()),
                ..base()
            },
            RunConfig {
                faults: Some(
                    hsim_faults::FaultPlan::parse("xfer.delay@rank1.cycle2:ns=200000").unwrap(),
                ),
                ..base()
            },
            RunConfig {
                rebalance: Some(crate::balance::RebalanceConfig::default()),
                ..base()
            },
            RunConfig {
                host_threads: 2,
                ..base()
            },
            RunConfig {
                tile: Some([8, 8]),
                ..base()
            },
            RunConfig {
                particles: Some(Default::default()),
                ..base()
            },
        ];
        let mut seen = vec![base_hash];
        for (i, v) in variants.iter().enumerate() {
            let h = v.content_hash();
            assert!(
                !seen.contains(&h),
                "variant {i} collided with an earlier hash"
            );
            seen.push(h);
        }
    }

    #[test]
    fn option_none_differs_from_zero_payload() {
        // The tag byte keeps `tile: None` apart from `tile: Some([0,0])`
        // and a fraction of Some(0.0) apart from None (checked above).
        let none = base().content_hash();
        let zero = RunConfig {
            tile: Some([0, 0]),
            ..base()
        }
        .content_hash();
        assert_ne!(none, zero);
    }

    #[test]
    fn perturbed_seed_moves_the_hash() {
        let a = RunConfig {
            problem: Problem::Perturbed(hsim_hydro::workload::PerturbedConfig {
                seed: 1,
                ..Default::default()
            }),
            ..base()
        };
        let b = RunConfig {
            problem: Problem::Perturbed(hsim_hydro::workload::PerturbedConfig {
                seed: 2,
                ..Default::default()
            }),
            ..base()
        };
        assert_ne!(a.content_hash(), b.content_hash());
    }
}
