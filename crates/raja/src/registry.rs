//! Per-kernel launch statistics.
//!
//! The runner uses these to report the Figure 11 caption's claim ("a
//! hydrodynamics calculation with 80 kernels") and to feed the load
//! balancer's measured view of where time goes.

use std::collections::BTreeMap;

use hsim_time::{SimDuration, Welford};

/// Aggregate statistics for one kernel name.
#[derive(Debug, Clone)]
pub struct KernelStats {
    pub name: &'static str,
    pub launches: u64,
    pub elems: u64,
    pub time: Welford,
}

/// Registry of all kernels a rank has launched.
#[derive(Debug, Default)]
pub struct KernelRegistry {
    stats: BTreeMap<&'static str, KernelStats>,
}

impl KernelRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one launch of `name` over `elems` elements.
    pub fn record_launch(&mut self, name: &'static str, elems: u64) {
        let entry = self.stats.entry(name).or_insert_with(|| KernelStats {
            name,
            launches: 0,
            elems: 0,
            time: Welford::new(),
        });
        entry.launches += 1;
        entry.elems += elems;
    }

    /// Attribute measured time to `name`.
    pub fn record_time(&mut self, name: &'static str, d: SimDuration) {
        if let Some(entry) = self.stats.get_mut(name) {
            entry.time.push_duration(d);
        }
    }

    /// Number of distinct kernels seen.
    pub fn distinct_kernels(&self) -> usize {
        self.stats.len()
    }

    /// Total launches across kernels.
    pub fn total_launches(&self) -> u64 {
        self.stats.values().map(|s| s.launches).sum()
    }

    /// Stats sorted by launch count (descending), then name. The
    /// backing `BTreeMap` already iterates in name order, so the sort
    /// is a stable reorder with a deterministic tie-break built in.
    pub fn report(&self) -> Vec<KernelStats> {
        let mut v: Vec<KernelStats> = self.stats.values().cloned().collect();
        v.sort_by(|a, b| b.launches.cmp(&a.launches).then(a.name.cmp(b.name)));
        v
    }

    /// Reset all statistics (cycle boundary).
    pub fn clear(&mut self) {
        self.stats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launches_accumulate_per_kernel() {
        let mut r = KernelRegistry::new();
        r.record_launch("eos", 100);
        r.record_launch("eos", 100);
        r.record_launch("force", 50);
        assert_eq!(r.distinct_kernels(), 2);
        assert_eq!(r.total_launches(), 3);
        let report = r.report();
        assert_eq!(report[0].name, "eos");
        assert_eq!(report[0].elems, 200);
    }

    #[test]
    fn time_attribution_requires_prior_launch() {
        let mut r = KernelRegistry::new();
        r.record_time("ghost", SimDuration::from_micros(1));
        assert_eq!(r.distinct_kernels(), 0);
        r.record_launch("eos", 10);
        r.record_time("eos", SimDuration::from_micros(2));
        assert_eq!(r.report()[0].time.count(), 1);
    }

    #[test]
    fn report_breaks_ties_by_name() {
        let mut r = KernelRegistry::new();
        r.record_launch("b", 1);
        r.record_launch("a", 1);
        let names: Vec<_> = r.report().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn clear_resets() {
        let mut r = KernelRegistry::new();
        r.record_launch("x", 1);
        r.clear();
        assert_eq!(r.total_launches(), 0);
    }
}
