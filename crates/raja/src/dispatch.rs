//! Runtime policy selection (the paper's Figure 7).
//!
//! ARES "defines several execution policies, indicating whether the
//! loop is thread safe, not thread safe, has a significant amount of
//! work, etc. These execution policies can then be defined to use
//! different RAJA backends depending on the architecture." The control
//! code injects the architecture at runtime:
//! `AresArchPolicy = DynamicPolicy<AresPolicy, CPU|GPU>`.

/// Application-level loop intent (what ARES annotates on each loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AresPolicy {
    /// Iterations independent; safe on any parallel backend.
    ThreadSafe,
    /// Iterations carry dependencies; must run sequentially per rank.
    NotThreadSafe,
    /// Thread safe and heavy: worth a device launch even when small.
    HeavyCompute,
    /// Thread safe but tiny: launch overhead may dominate on a device.
    LightCompute,
    /// A reduction loop (min/max/sum).
    Reduction,
}

/// The architecture a rank executes on, decided by the control code at
/// runtime (GPU-driving rank vs CPU-only rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// A CPU-only MPI process (one core).
    CpuSequential,
    /// A CPU process owning several cores (OpenMP-style).
    CpuThreaded,
    /// A GPU-driving MPI process.
    Gpu,
}

/// The backend a loop actually uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Plain sequential loop.
    Seq,
    /// Vectorized sequential loop (SIMD hint).
    Simd,
    /// Work-shared across host threads.
    OpenMp,
    /// CUDA-style device launch on a stream.
    CudaStream,
}

/// The Figure 7 selection: map (intent, architecture) to a backend.
///
/// On GPU-driving processes every thread-safe loop goes to the device
/// (the paper's "CUDA-specific policies used on MPI processes driving
/// the GPU"); CPU-only processes get "sequential execution policies",
/// with SIMD for the safe loops.
pub fn select_policy(intent: AresPolicy, arch: Arch) -> PolicyKind {
    match (intent, arch) {
        (AresPolicy::NotThreadSafe, _) => PolicyKind::Seq,
        (_, Arch::CpuSequential) => PolicyKind::Simd,
        (AresPolicy::LightCompute, Arch::Gpu) => PolicyKind::CudaStream,
        (_, Arch::Gpu) => PolicyKind::CudaStream,
        (_, Arch::CpuThreaded) => PolicyKind::OpenMp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_ranks_offload_thread_safe_loops() {
        assert_eq!(
            select_policy(AresPolicy::ThreadSafe, Arch::Gpu),
            PolicyKind::CudaStream
        );
        assert_eq!(
            select_policy(AresPolicy::HeavyCompute, Arch::Gpu),
            PolicyKind::CudaStream
        );
        assert_eq!(
            select_policy(AresPolicy::Reduction, Arch::Gpu),
            PolicyKind::CudaStream
        );
    }

    #[test]
    fn unsafe_loops_are_sequential_everywhere() {
        for arch in [Arch::CpuSequential, Arch::CpuThreaded, Arch::Gpu] {
            assert_eq!(
                select_policy(AresPolicy::NotThreadSafe, arch),
                PolicyKind::Seq
            );
        }
    }

    #[test]
    fn cpu_only_ranks_get_host_policies() {
        assert_eq!(
            select_policy(AresPolicy::ThreadSafe, Arch::CpuSequential),
            PolicyKind::Simd
        );
        assert_eq!(
            select_policy(AresPolicy::ThreadSafe, Arch::CpuThreaded),
            PolicyKind::OpenMp
        );
    }
}
