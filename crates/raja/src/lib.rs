//! # hsim-raja
//!
//! A RAJA-style performance-portability layer (paper §4): single-source
//! loop bodies executed under interchangeable **execution policies**,
//! so the same kernel runs on a CPU core or is offloaded to the
//! (simulated) GPU — the mechanism that lets the paper's ARES use "the
//! same source code for both the CPU and the GPU".
//!
//! The pieces:
//!
//! * [`forall`] / [`Executor`] — the `RAJA::forall` equivalent: a loop
//!   body plus an execution target. Bodies always *run* on the host
//!   (they are plain Rust closures — single source); what the policy
//!   changes is **where the virtual time is charged**: a CPU policy
//!   charges the rank's clock by the CPU cost model, the `SimGpu`
//!   policy charges launch overhead and enqueues the kernel on the
//!   shared device timeline.
//! * [`cpu::CpuModel`] — per-core roofline cost (Haswell preset) plus
//!   the §5.1 **decorated-lambda dispatch penalty**: the nvcc bug that
//!   wraps `__host__ __device__` lambdas in `std::function` on the
//!   host, adding a virtual call per iteration. Light kernels suffer
//!   100–300×; heavier hydro kernels proportionally less.
//! * [`pool::WorkPool`] — a work-sharing thread pool (chunked dynamic
//!   scheduling over an atomic cursor) used for genuinely parallel
//!   host execution of `Sync` bodies, mirroring the OpenMP backend.
//!   Every region — including borrowed-closure regions — runs on the
//!   *persistent* workers through a lifetime-erased job slot with an
//!   acquire/release completion handoff; no region spawns threads.
//!   Pools are shared (one per run) and reductions are chunk-ordered,
//!   so results are bit-identical on any pool geometry.
//! * [`simgpu::SharedDevice`] — the CUDA-backend contact point: rank
//!   threads submit kernels and meet at a device sync, where the
//!   rate-sharing timeline resolves overlap (this is where MPS clients
//!   from different ranks overlap in virtual time).
//! * [`dispatch`] — the runtime policy selection of the paper's
//!   Figure 7: ARES-level execution-policy intents mapped to an
//!   architecture-appropriate backend at runtime.
//! * [`registry`] — per-kernel launch statistics.
//! * [`sched_model`] — exhaustive schedule model-checking of the
//!   pool's handoff protocol (a mini-loom over a small-step model).

pub mod cpu;
pub mod dispatch;
pub mod forall;
pub mod indexset;
pub mod multipolicy;
pub mod pool;
pub mod registry;
pub mod rows;
pub mod sched_model;
pub mod simgpu;

pub use cpu::CpuModel;
pub use dispatch::{select_policy, Arch, AresPolicy, PolicyKind};
pub use forall::{Executor, Fidelity, Target};
pub use indexset::{IndexSet, Segment, Tile2, TileSet2};
pub use multipolicy::{MultiPolicy, PolicyChoice};
pub use pool::{RegionSlots, WorkPool};
pub use registry::KernelRegistry;
pub use rows::{DisjointRowsMut, RowGuard};
pub use simgpu::{GpuClient, SharedDevice};
