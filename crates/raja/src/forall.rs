//! The `forall` executor: single-source loops under runtime-selected
//! execution targets.
//!
//! This is the Rust analogue of the paper's Figure 5/6: the
//! application writes one loop body; the executor decides where it
//! "runs" (which clock pays for it) based on the rank's role. Bodies
//! are plain closures and always execute on the host thread when
//! fidelity is [`Fidelity::Full`] — single source, exactly as RAJA
//! promises — while the *virtual cost* lands on the CPU core or the
//! GPU device according to the target.

use std::sync::Arc;

use hsim_gpu::{GpuError, KernelDesc, KernelShape};
use hsim_time::clock::ChargeKind;
use hsim_time::{RankClock, SimTime};

use crate::cpu::CpuModel;
use crate::indexset::{Tile2, TileSet2};
use crate::multipolicy::{MultiPolicy, PolicyChoice};
use crate::pool::{RegionSlots, WorkPool};
use crate::registry::KernelRegistry;
use crate::simgpu::GpuClient;

/// Fixed chunk size for pool-executed kernels and reductions. A pure
/// constant (not a function of worker count) so reduction results are
/// bit-identical on any pool geometry: partials are combined in chunk
/// order regardless of which worker produced them.
const PAR_CHUNK: usize = 1024;

/// Whether kernel bodies actually execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Run the arithmetic (tests, examples, small meshes).
    Full,
    /// Charge time only (large figure sweeps; timing never depends on
    /// field values, so results are identical).
    CostOnly,
}

/// Where a rank's kernels execute.
pub enum Target {
    /// Sequential on the rank's own core (the paper's CPU-only MPI
    /// processes).
    CpuSeq,
    /// OpenMP-like across the pool's cores (used where one rank may
    /// own several cores). The pool is shared — typically one per run,
    /// handed to every CPU rank's executor — so parallel regions reuse
    /// the same persistent workers instead of constructing per-region
    /// resources.
    CpuParallel { pool: Arc<WorkPool> },
    /// Offloaded to a (shared) simulated GPU.
    Gpu(GpuClient),
}

impl Target {
    /// An OpenMP-like target over `threads` total cores, backed by a
    /// freshly spawned pool (the caller participates, so `threads - 1`
    /// workers are spawned). To share one pool across executors, build
    /// the `Arc<WorkPool>` yourself and clone it into each target.
    pub fn cpu_parallel(threads: usize) -> Self {
        Target::CpuParallel {
            pool: Arc::new(WorkPool::new(threads.saturating_sub(1))),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Target::CpuSeq => "cpu-seq",
            Target::CpuParallel { .. } => "cpu-omp",
            Target::Gpu(_) => "gpu",
        }
    }

    pub fn is_gpu(&self) -> bool {
        matches!(self, Target::Gpu(_))
    }
}

/// The per-rank kernel executor.
pub struct Executor {
    pub target: Target,
    pub cpu: CpuModel,
    pub fidelity: Fidelity,
    pub registry: KernelRegistry,
    /// Runtime policy selection (paper §5.1 future work): when
    /// enabled, kernels below the threshold run on the host core even
    /// on GPU-driving ranks, avoiding launch overhead.
    pub multipolicy: MultiPolicy,
}

impl Executor {
    pub fn new(target: Target, cpu: CpuModel, fidelity: Fidelity) -> Self {
        Executor {
            target,
            cpu,
            fidelity,
            registry: KernelRegistry::new(),
            multipolicy: MultiPolicy::disabled(),
        }
    }

    /// Enable MultiPolicy with the given host threshold.
    pub fn with_multipolicy(mut self, policy: MultiPolicy) -> Self {
        self.multipolicy = policy;
        self
    }

    /// Execute a 1D kernel over `[0, n)`.
    ///
    /// `inner_extent` is the unit-stride extent the iteration space
    /// presents to the device (for 1D loops it is `n` itself, clamped
    /// to u32).
    ///
    /// The `FnMut` body always executes serially on the host thread —
    /// it may mutate captured state freely (the single-source
    /// contract). Bodies that are `Fn + Send + Sync` can use
    /// [`Executor::forall_par`] instead, which executes on the shared
    /// work pool when the target is [`Target::CpuParallel`].
    pub fn forall<F>(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        n: usize,
        inner_extent: u32,
        mut body: F,
    ) -> Result<(), GpuError>
    where
        F: FnMut(usize),
    {
        let shape = KernelShape::new(n as u64, inner_extent);
        self.charge_launch(clock, desc, shape)?;
        if self.fidelity == Fidelity::Full {
            for i in 0..n {
                body(i);
            }
        }
        self.registry.record_launch(desc.name, n as u64);
        Ok(())
    }

    /// Execute a 1D kernel over `[0, n)` with a thread-safe body.
    ///
    /// Identical virtual cost to [`Executor::forall`]; the difference
    /// is execution: under [`Fidelity::Full`] with a
    /// [`Target::CpuParallel`] target the body runs on the persistent
    /// work pool (chunked dynamic scheduling), not serially on the
    /// host thread. Disjoint-index writes therefore need interior
    /// mutability (atomics or cell-based views), exactly as on a real
    /// OpenMP backend.
    pub fn forall_par<F>(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        n: usize,
        inner_extent: u32,
        body: F,
    ) -> Result<(), GpuError>
    where
        F: Fn(usize) + Send + Sync,
    {
        let shape = KernelShape::new(n as u64, inner_extent);
        self.charge_launch(clock, desc, shape)?;
        if self.fidelity == Fidelity::Full {
            match &self.target {
                Target::CpuParallel { pool } => pool.for_each(0, n, PAR_CHUNK, body),
                _ => {
                    for i in 0..n {
                        body(i);
                    }
                }
            }
        }
        self.registry.record_launch(desc.name, n as u64);
        Ok(())
    }

    /// Execute a 3D kernel over `ext[0] × ext[1] × ext[2]` (i fastest).
    pub fn forall3<F>(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        ext: [usize; 3],
        mut body: F,
    ) -> Result<(), GpuError>
    where
        F: FnMut(usize, usize, usize),
    {
        let elems = (ext[0] * ext[1] * ext[2]) as u64;
        let shape = KernelShape::new(elems, ext[0].min(u32::MAX as usize) as u32);
        self.charge_launch(clock, desc, shape)?;
        if self.fidelity == Fidelity::Full {
            for k in 0..ext[2] {
                for j in 0..ext[1] {
                    for i in 0..ext[0] {
                        body(i, j, k);
                    }
                }
            }
        }
        self.registry.record_launch(desc.name, elems);
        Ok(())
    }

    /// 3D min-reduction (the CFL timestep). In [`Fidelity::CostOnly`]
    /// the body is skipped and `default` is returned.
    ///
    /// Under [`Target::CpuParallel`] the reduction executes on the
    /// work pool with chunk-ordered partials, so the result is
    /// bit-identical to any other pool geometry (and to the serial
    /// visit order, which the linear index decomposition preserves).
    pub fn forall3_min<F>(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        ext: [usize; 3],
        default: f64,
        body: F,
    ) -> Result<f64, GpuError>
    where
        F: Fn(usize, usize, usize) -> f64 + Send + Sync,
    {
        let elems = (ext[0] * ext[1] * ext[2]) as u64;
        let shape = KernelShape::new(elems, ext[0].min(u32::MAX as usize) as u32);
        self.charge_launch(clock, desc, shape)?;
        let mut acc = f64::INFINITY;
        if self.fidelity == Fidelity::Full {
            match &self.target {
                Target::CpuParallel { pool } => {
                    let (nx, ny) = (ext[0], ext[1]);
                    acc = pool.min(0, ext[0] * ext[1] * ext[2], PAR_CHUNK, |idx| {
                        body(idx % nx, (idx / nx) % ny, idx / (nx * ny))
                    });
                }
                _ => {
                    for k in 0..ext[2] {
                        for j in 0..ext[1] {
                            for i in 0..ext[0] {
                                acc = acc.min(body(i, j, k));
                            }
                        }
                    }
                }
            }
        } else {
            acc = default;
        }
        self.registry.record_launch(desc.name, elems);
        // Reductions on the GPU also stage the scalar result back.
        if let Target::Gpu(client) = &self.target {
            clock.charge(ChargeKind::Memory, client.spec().xfer_time(8));
        }
        Ok(acc)
    }

    /// 3D sum-reduction (diagnostics). Skipped body returns `default`.
    ///
    /// Chunk-ordered on the pool under [`Target::CpuParallel`], like
    /// [`Executor::forall3_min`]: bit-identical across pool
    /// geometries. The *grouping* differs from the serial single
    /// accumulator, so sums may differ from [`Target::CpuSeq`] in the
    /// last ulps (min is associative, so it matches exactly).
    pub fn forall3_sum<F>(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        ext: [usize; 3],
        default: f64,
        body: F,
    ) -> Result<f64, GpuError>
    where
        F: Fn(usize, usize, usize) -> f64 + Send + Sync,
    {
        let elems = (ext[0] * ext[1] * ext[2]) as u64;
        let shape = KernelShape::new(elems, ext[0].min(u32::MAX as usize) as u32);
        self.charge_launch(clock, desc, shape)?;
        let mut acc = 0.0;
        if self.fidelity == Fidelity::Full {
            match &self.target {
                Target::CpuParallel { pool } => {
                    let (nx, ny) = (ext[0], ext[1]);
                    acc = pool.sum(0, ext[0] * ext[1] * ext[2], PAR_CHUNK, |idx| {
                        body(idx % nx, (idx / nx) % ny, idx / (nx * ny))
                    });
                }
                _ => {
                    for k in 0..ext[2] {
                        for j in 0..ext[1] {
                            for i in 0..ext[0] {
                                acc += body(i, j, k);
                            }
                        }
                    }
                }
            }
        } else {
            acc = default;
        }
        self.registry.record_launch(desc.name, elems);
        if let Target::Gpu(client) = &self.target {
            clock.charge(ChargeKind::Memory, client.spec().xfer_time(8));
        }
        Ok(acc)
    }

    /// Charge the virtual cost and registry record of a 3D launch
    /// without running a body — byte-for-byte the accounting half of
    /// [`Executor::forall3`].
    ///
    /// Fused cache-blocked kernels use this to replay the *legacy*
    /// launch sequence (same descriptors, shapes, and order, so
    /// virtual time, launch counts, telemetry spans, and figure output
    /// are unchanged) while the arithmetic itself executes once via
    /// [`Executor::run_tiles`].
    pub fn charge3(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        ext: [usize; 3],
    ) -> Result<(), GpuError> {
        let elems = (ext[0] * ext[1] * ext[2]) as u64;
        let shape = KernelShape::new(elems, ext[0].min(u32::MAX as usize) as u32);
        self.charge_launch(clock, desc, shape)?;
        self.registry.record_launch(desc.name, elems);
        Ok(())
    }

    /// Execute a fused tile body over every tile of `tiles`, charging
    /// nothing (cost is accounted by the [`Executor::charge3`] calls
    /// that precede it).
    ///
    /// Under [`Fidelity::Full`] with [`Target::CpuParallel`], tiles are
    /// handed out whole to the persistent pool (chunk size 1), so each
    /// tile's rows are written by exactly one worker; every other
    /// target runs tiles serially in handout order on the host thread.
    /// Tile bodies write disjoint rows, so results are identical for
    /// any worker count. Under [`Fidelity::CostOnly`] bodies are
    /// skipped entirely.
    pub fn run_tiles<F>(&mut self, tiles: &TileSet2, body: F)
    where
        F: Fn(Tile2) + Send + Sync,
    {
        if self.fidelity != Fidelity::Full {
            return;
        }
        match &self.target {
            Target::CpuParallel { pool } => {
                pool.for_each(0, tiles.len(), 1, |t| body(tiles.tile(t)));
            }
            _ => {
                for t in tiles.iter() {
                    body(t);
                }
            }
        }
    }

    /// Like [`Executor::run_tiles`], but collect one result per tile,
    /// ordered by the tile set's deterministic enumeration — the 2-D
    /// tile-grid extension of the pool's write-once chunk slots
    /// ([`RegionSlots`]). Each tile writes exactly one slot, and slots
    /// are read only after the region's completion handoff, so the
    /// returned sequence is identical for any worker count and
    /// scheduling order. Under [`Fidelity::CostOnly`] bodies are
    /// skipped and the result is empty.
    pub fn run_tiles_collect<T, F>(&mut self, tiles: &TileSet2, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Tile2) -> T + Send + Sync,
    {
        if self.fidelity != Fidelity::Full {
            return Vec::new();
        }
        match &self.target {
            Target::CpuParallel { pool } => {
                let slots = RegionSlots::new(tiles.len());
                let slots_ref = &slots;
                pool.for_each(0, tiles.len(), 1, |t| {
                    // SAFETY: `for_each` hands out each tile index
                    // exactly once (write-once per slot), and the slots
                    // are read only after the region returns.
                    unsafe { slots_ref.set(t, body(tiles.tile(t))) };
                });
                slots
                    .into_values()
                    .into_iter()
                    .map(|v| v.expect("every tile writes its result slot"))
                    .collect()
            }
            _ => tiles.iter().map(body).collect(),
        }
    }

    /// Charge the virtual cost of one launch according to the target.
    ///
    /// Host-executed kernels feed the telemetry profiler here;
    /// device-executed kernels feed it at the sync that resolves them
    /// (see [`GpuClient::sync`]), so every dispatch is profiled exactly
    /// once.
    fn charge_launch(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        shape: KernelShape,
    ) -> Result<(), GpuError> {
        let t0 = clock.now();
        match &self.target {
            Target::CpuSeq => {
                let dur = self.cpu.kernel_time(desc, shape.elems);
                clock.charge(ChargeKind::Compute, dur);
                hsim_telemetry::kernel_launch(desc.name, shape.elems, 0, dur, false, 1.0);
                hsim_telemetry::rank_span(
                    hsim_telemetry::Category::CpuKernel,
                    desc.name,
                    t0,
                    clock.now(),
                );
            }
            Target::CpuParallel { pool } => {
                let dur = self
                    .cpu
                    .kernel_time_parallel(desc, shape.elems, pool.parallelism());
                if let Some(hit) = hsim_faults::check(hsim_faults::Site::PoolPanic) {
                    absorb_pool_panic(clock, pool, dur, hit, t0)?;
                }
                clock.charge(ChargeKind::Compute, dur);
                hsim_telemetry::kernel_launch(desc.name, shape.elems, 0, dur, false, 1.0);
                hsim_telemetry::rank_span(
                    hsim_telemetry::Category::CpuKernel,
                    desc.name,
                    t0,
                    clock.now(),
                );
            }
            Target::Gpu(client) => {
                if self.multipolicy.recommend(shape) == PolicyChoice::Host {
                    // MultiPolicy: tiny kernel — cheaper on the host
                    // core than paying the launch path.
                    let dur = self.cpu.kernel_time(desc, shape.elems);
                    clock.charge(ChargeKind::Compute, dur);
                    hsim_telemetry::kernel_launch(desc.name, shape.elems, 0, dur, false, 1.0);
                    hsim_telemetry::rank_span(
                        hsim_telemetry::Category::CpuKernel,
                        desc.name,
                        t0,
                        clock.now(),
                    );
                } else {
                    if let Some(hit) = hsim_faults::check(hsim_faults::Site::GpuLaunch) {
                        absorb_launch_fault(clock, hit, t0)?;
                    }
                    let overhead = client.launch(desc, shape, clock.now())?;
                    clock.charge(ChargeKind::Launch, overhead);
                    hsim_telemetry::time_stat(hsim_telemetry::TimeStat::LaunchTime, overhead);
                    hsim_telemetry::rank_span(
                        hsim_telemetry::Category::Launch,
                        desc.name,
                        t0,
                        clock.now(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Synchronize with the GPU (no-op for CPU targets): the rank's
    /// clock advances to its stream's completion time.
    pub fn sync(&mut self, clock: &mut RankClock) -> SimTime {
        if let Target::Gpu(client) = &self.target {
            let end = client.sync(clock.now());
            clock.wait_until(end);
        }
        clock.now()
    }
}

/// Recover from an injected GPU launch failure: each failed attempt
/// waits out an exponential virtual-time backoff before the executor
/// re-submits; a permanent fault (or a transient one past the retry
/// budget) escalates to [`GpuError::LaunchFailed`].
fn absorb_launch_fault(
    clock: &mut RankClock,
    hit: hsim_faults::FaultHit,
    t0: SimTime,
) -> Result<(), GpuError> {
    hsim_telemetry::count(hsim_telemetry::Counter::FaultsInjected, 1);
    match hit.severity {
        hsim_faults::Severity::Permanent => Err(GpuError::LaunchFailed {
            reason: "injected permanent launch fault",
        }),
        hsim_faults::Severity::Transient { count } => {
            if count > hsim_faults::MAX_RETRIES {
                return Err(GpuError::LaunchFailed {
                    reason: "launch retry budget exhausted",
                });
            }
            for attempt in 0..count {
                clock.charge(ChargeKind::Wait, hsim_faults::backoff_delay(attempt));
                hsim_telemetry::count(hsim_telemetry::Counter::FaultRetries, 1);
            }
            hsim_telemetry::count(hsim_telemetry::Counter::FaultsRecovered, 1);
            hsim_telemetry::rank_span(
                hsim_telemetry::Category::Launch,
                "fault_launch_retry",
                t0,
                clock.now(),
            );
            Ok(())
        }
    }
}

/// Recover from an injected worker panic in a parallel region: the
/// pool's poison path is exercised for real ([`WorkPool::
/// inject_worker_panic`]), then each wasted attempt is paid for in
/// virtual time (the poisoned region's compute plus backoff) before
/// the real region runs.
fn absorb_pool_panic(
    clock: &mut RankClock,
    pool: &WorkPool,
    region_cost: hsim_time::SimDuration,
    hit: hsim_faults::FaultHit,
    t0: SimTime,
) -> Result<(), GpuError> {
    hsim_telemetry::count(hsim_telemetry::Counter::FaultsInjected, 1);
    match hit.severity {
        hsim_faults::Severity::Permanent => Err(GpuError::LaunchFailed {
            reason: "injected permanent worker panic",
        }),
        hsim_faults::Severity::Transient { count } => {
            if count > hsim_faults::MAX_RETRIES {
                return Err(GpuError::LaunchFailed {
                    reason: "worker panic retry budget exhausted",
                });
            }
            pool.inject_worker_panic();
            for attempt in 0..count {
                clock.charge(ChargeKind::Compute, region_cost);
                clock.charge(ChargeKind::Wait, hsim_faults::backoff_delay(attempt));
                hsim_telemetry::count(hsim_telemetry::Counter::FaultRetries, 1);
            }
            hsim_telemetry::count(hsim_telemetry::Counter::FaultsRecovered, 1);
            hsim_telemetry::rank_span(
                hsim_telemetry::Category::Runtime,
                "fault_pool_retry",
                t0,
                clock.now(),
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simgpu::SharedDevice;
    use hsim_gpu::{Device, DeviceSpec};

    fn desc() -> KernelDesc {
        KernelDesc::new("axpy", 2.0, 24.0)
    }

    #[test]
    fn cpu_seq_runs_body_and_charges_compute() {
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut x = vec![1.0f64; 100];
        exec.forall(&mut clock, &desc(), 100, 100, |i| x[i] *= 2.0)
            .unwrap();
        assert!(x.iter().all(|&v| v == 2.0));
        assert!(clock.bucket(ChargeKind::Compute) > hsim_time::SimDuration::ZERO);
        assert_eq!(
            clock.bucket(ChargeKind::Launch),
            hsim_time::SimDuration::ZERO
        );
    }

    #[test]
    fn cost_only_skips_bodies_but_charges_time() {
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        let mut touched = false;
        exec.forall(&mut clock, &desc(), 1000, 1000, |_| touched = true)
            .unwrap();
        assert!(!touched);
        assert!(clock.now() > SimTime::ZERO);
    }

    #[test]
    fn parallel_cpu_is_faster_than_seq() {
        let mut seq = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut par = Executor::new(
            Target::cpu_parallel(8),
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut c1 = RankClock::new(0);
        let mut c2 = RankClock::new(1);
        seq.forall(&mut c1, &desc(), 1_000_000, 1000, |_| {})
            .unwrap();
        par.forall(&mut c2, &desc(), 1_000_000, 1000, |_| {})
            .unwrap();
        assert!(c2.now() < c1.now());
    }

    #[test]
    fn forall3_iterates_x_fastest() {
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut order = Vec::new();
        exec.forall3(&mut clock, &desc(), [2, 2, 1], |i, j, k| {
            order.push((i, j, k));
        })
        .unwrap();
        assert_eq!(order, vec![(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]);
    }

    #[test]
    fn min_reduction_matches_serial_and_default() {
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let m = exec
            .forall3_min(&mut clock, &desc(), [4, 4, 4], 99.0, |i, j, k| {
                (i + j + k) as f64 - 3.0
            })
            .unwrap();
        assert_eq!(m, -3.0);
        let mut cost_only = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let d = cost_only
            .forall3_min(&mut clock, &desc(), [4, 4, 4], 99.0, |_, _, _| 0.0)
            .unwrap();
        assert_eq!(d, 99.0);
    }

    #[test]
    fn sum_reduction_matches_serial() {
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let s = exec
            .forall3_sum(&mut clock, &desc(), [3, 3, 3], 0.0, |_, _, _| 1.0)
            .unwrap();
        assert_eq!(s, 27.0);
    }

    #[test]
    fn gpu_target_charges_launch_and_sync_waits() {
        let device = Device::new(0, DeviceSpec::tesla_k80());
        let (_dev, client) = SharedDevice::new_exclusive(device, 0).unwrap();
        let mut exec = Executor::new(
            Target::Gpu(client),
            CpuModel::haswell_e5_2667v3(),
            Fidelity::Full,
        );
        let mut clock = RankClock::new(0);
        let mut x = vec![0.0f64; 1000];
        exec.forall(&mut clock, &desc(), 1000, 10, |i| x[i] = i as f64)
            .unwrap();
        // Body ran on the host (single source) …
        assert_eq!(x[999], 999.0);
        // … launch overhead charged, compute not (it's on the device).
        assert!(clock.bucket(ChargeKind::Launch) > hsim_time::SimDuration::ZERO);
        assert_eq!(
            clock.bucket(ChargeKind::Compute),
            hsim_time::SimDuration::ZERO
        );
        let before = clock.now();
        exec.sync(&mut clock);
        assert!(clock.now() >= before);
        assert!(clock.bucket(ChargeKind::Wait) > hsim_time::SimDuration::ZERO);
    }

    #[test]
    fn registry_counts_launches() {
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        for _ in 0..3 {
            exec.forall(&mut clock, &desc(), 10, 10, |_| {}).unwrap();
        }
        let report = exec.registry.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].launches, 3);
        assert_eq!(report[0].elems, 30);
    }

    #[test]
    fn multipolicy_routes_tiny_kernels_to_the_host() {
        let device = Device::new(0, DeviceSpec::tesla_k80());
        let (_dev, client) = SharedDevice::new_exclusive(device, 0).unwrap();
        let mut exec = Executor::new(
            Target::Gpu(client),
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        )
        .with_multipolicy(crate::MultiPolicy::with_threshold(10_000));
        let mut clock = RankClock::new(0);
        // Tiny kernel: charged as host compute, no launch.
        exec.forall(&mut clock, &desc(), 100, 10, |_| {}).unwrap();
        assert!(clock.bucket(ChargeKind::Compute) > hsim_time::SimDuration::ZERO);
        assert_eq!(
            clock.bucket(ChargeKind::Launch),
            hsim_time::SimDuration::ZERO
        );
        // Big kernel: launched on the device.
        exec.forall(&mut clock, &desc(), 100_000, 100, |_| {})
            .unwrap();
        assert!(clock.bucket(ChargeKind::Launch) > hsim_time::SimDuration::ZERO);
        exec.sync(&mut clock);
    }

    #[test]
    fn multipolicy_beats_naive_offload_for_many_tiny_kernels() {
        let cpu = CpuModel::haswell_fixed();
        let run = |threshold: u64| -> u64 {
            let device = Device::new(0, DeviceSpec::tesla_k80());
            let (_dev, client) = SharedDevice::new_exclusive(device, 0).unwrap();
            let mut exec = Executor::new(Target::Gpu(client), cpu.clone(), Fidelity::CostOnly)
                .with_multipolicy(crate::MultiPolicy::with_threshold(threshold));
            let mut clock = RankClock::new(0);
            for _ in 0..200 {
                exec.forall(&mut clock, &desc(), 64, 8, |_| {}).unwrap();
            }
            exec.sync(&mut clock);
            clock.now().as_nanos()
        };
        let naive = run(0);
        let multi = run(1_000);
        assert!(
            multi < naive / 2,
            "MultiPolicy {multi}ns should beat naive offload {naive}ns for tiny kernels"
        );
    }

    #[test]
    fn injected_launch_fault_retries_then_recovers_or_escalates() {
        let run = |spec: &str| -> (Result<(), GpuError>, hsim_time::SimDuration) {
            let device = Device::new(0, DeviceSpec::tesla_k80());
            let (_dev, client) = SharedDevice::new_exclusive(device, 0).unwrap();
            let mut exec = Executor::new(
                Target::Gpu(client),
                CpuModel::haswell_e5_2667v3(),
                Fidelity::CostOnly,
            );
            let mut clock = RankClock::new(0);
            hsim_faults::install(0, Arc::new(hsim_faults::FaultPlan::parse(spec).unwrap()));
            let r = exec.forall(&mut clock, &desc(), 1000, 10, |_| {});
            hsim_faults::uninstall();
            if r.is_ok() {
                exec.sync(&mut clock);
            }
            (r, clock.bucket(ChargeKind::Wait))
        };
        // Transient: recovered, with the backoff charged as wait time.
        let (r, wait) = run("gpu.launch@rank0.cycle0");
        r.unwrap();
        assert!(wait >= hsim_faults::backoff_delay(0));
        // Determinism: the same plan charges the same virtual time.
        let (_, wait2) = run("gpu.launch@rank0.cycle0");
        assert_eq!(wait, wait2);
        // Permanent: a typed error, not a panic.
        let (r, _) = run("gpu.launch@rank0.cycle0:perm");
        assert!(matches!(r, Err(GpuError::LaunchFailed { .. })));
        // Transient beyond the retry budget escalates too.
        let (r, _) = run("gpu.launch@rank0.cycle0:count=99");
        assert!(matches!(r, Err(GpuError::LaunchFailed { .. })));
    }

    #[test]
    fn injected_pool_panic_recovers_and_charges_the_wasted_region() {
        let mut exec = Executor::new(
            Target::cpu_parallel(4),
            CpuModel::haswell_fixed(),
            Fidelity::Full,
        );
        let mut clock = RankClock::new(0);
        let baseline = {
            let mut c = RankClock::new(0);
            exec.forall_par(&mut c, &desc(), 10_000, 100, |_| {})
                .unwrap();
            c.bucket(ChargeKind::Compute)
        };
        hsim_faults::install(
            0,
            Arc::new(hsim_faults::FaultPlan::parse("pool.panic@rank0.cycle0").unwrap()),
        );
        let cells: Vec<std::sync::atomic::AtomicU64> = (0..10_000)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        exec.forall_par(&mut clock, &desc(), cells.len(), 100, |i| {
            cells[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        })
        .unwrap();
        hsim_faults::uninstall();
        // The real body still ran exactly once per index …
        assert!(cells
            .iter()
            .all(|c| c.load(std::sync::atomic::Ordering::Relaxed) == 1));
        // … and the poisoned attempt was paid for: double compute plus
        // a backoff wait.
        assert_eq!(clock.bucket(ChargeKind::Compute), baseline + baseline);
        assert!(clock.bucket(ChargeKind::Wait) >= hsim_faults::backoff_delay(0));
    }

    #[test]
    fn charge3_matches_forall3_accounting_exactly() {
        let ext = [24usize, 16, 8];
        let mut a = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut ca = RankClock::new(0);
        a.forall3(&mut ca, &desc(), ext, |_, _, _| {}).unwrap();
        let mut b = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut cb = RankClock::new(0);
        b.charge3(&mut cb, &desc(), ext).unwrap();
        assert_eq!(ca.now(), cb.now());
        assert_eq!(a.registry.report()[0].elems, b.registry.report()[0].elems);
        assert_eq!(a.registry.total_launches(), b.registry.total_launches());
    }

    #[test]
    fn run_tiles_covers_the_plane_once_and_charges_nothing() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let tiles = crate::indexset::TileSet2::new(13, 7, [4, 4]);
        for mut exec in [
            Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full),
            Executor::new(
                Target::cpu_parallel(4),
                CpuModel::haswell_fixed(),
                Fidelity::Full,
            ),
        ] {
            let clock = RankClock::new(0);
            let cells: Vec<AtomicU64> = (0..13 * 7).map(|_| AtomicU64::new(0)).collect();
            exec.run_tiles(&tiles, |t| {
                for k in t.k0..t.k1 {
                    for j in t.j0..t.j1 {
                        cells[k * 13 + j].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            // No virtual time moved and no launches were recorded.
            assert_eq!(clock.now(), SimTime::ZERO);
            assert_eq!(exec.registry.total_launches(), 0);
        }
    }

    #[test]
    fn run_tiles_skips_bodies_under_cost_only() {
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let tiles = crate::indexset::TileSet2::new(4, 4, [2, 2]);
        exec.run_tiles(&tiles, |_| panic!("body must not run under CostOnly"));
    }

    #[test]
    fn run_tiles_collect_orders_results_by_tile_for_any_worker_count() {
        let tiles = crate::indexset::TileSet2::new(13, 7, [4, 4]);
        let mut serial = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let expect = serial.run_tiles_collect(&tiles, |t| (t.j0, t.k0, t.j1 * t.k1));
        assert_eq!(expect.len(), tiles.len());
        for threads in [1, 2, 4] {
            let mut exec = Executor::new(
                Target::cpu_parallel(threads),
                CpuModel::haswell_fixed(),
                Fidelity::Full,
            );
            for _ in 0..3 {
                let got = exec.run_tiles_collect(&tiles, |t| (t.j0, t.k0, t.j1 * t.k1));
                assert_eq!(got, expect, "threads={threads}");
            }
        }
    }

    #[test]
    fn run_tiles_collect_is_empty_under_cost_only() {
        let mut exec = Executor::new(
            Target::cpu_parallel(2),
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let tiles = crate::indexset::TileSet2::new(4, 4, [2, 2]);
        let got: Vec<u32> = exec.run_tiles_collect(&tiles, |_| 1);
        assert!(got.is_empty());
    }

    #[test]
    fn target_labels() {
        assert_eq!(Target::CpuSeq.label(), "cpu-seq");
        assert_eq!(Target::cpu_parallel(4).label(), "cpu-omp");
        assert!(!Target::CpuSeq.is_gpu());
    }

    #[test]
    fn forall_par_executes_on_the_pool_under_cpu_parallel() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut exec = Executor::new(
            Target::cpu_parallel(4),
            CpuModel::haswell_fixed(),
            Fidelity::Full,
        );
        let mut clock = RankClock::new(0);
        let cells: Vec<AtomicU64> = (0..10_000).map(|_| AtomicU64::new(0)).collect();
        exec.forall_par(&mut clock, &desc(), cells.len(), 100, |i| {
            cells[i].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert!(clock.bucket(ChargeKind::Compute) > hsim_time::SimDuration::ZERO);
    }

    #[test]
    fn parallel_reductions_are_pool_geometry_invariant() {
        // Several chunks' worth of elements: min must match the serial
        // target bit-for-bit (associative), sums must be bit-identical
        // across every pool geometry (chunk partials combined in chunk
        // order) and ulp-close to serial.
        let ext = [40, 20, 9];
        let body = |i: usize, j: usize, k: usize| ((i * 31 + j * 7 + k) as f64 * 0.01).sin();
        let mut serial = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let m0 = serial
            .forall3_min(&mut clock, &desc(), ext, 9.9, body)
            .unwrap();
        let s0 = serial
            .forall3_sum(&mut clock, &desc(), ext, 0.0, body)
            .unwrap();
        let mut par_reference: Option<(f64, f64)> = None;
        for threads in [2usize, 4, 8] {
            let mut exec = Executor::new(
                Target::cpu_parallel(threads),
                CpuModel::haswell_fixed(),
                Fidelity::Full,
            );
            let m = exec
                .forall3_min(&mut clock, &desc(), ext, 9.9, body)
                .unwrap();
            let s = exec
                .forall3_sum(&mut clock, &desc(), ext, 0.0, body)
                .unwrap();
            assert_eq!(m.to_bits(), m0.to_bits(), "min @ {threads} threads");
            assert!(
                (s - s0).abs() <= 1e-9 * s0.abs().max(1.0),
                "sum @ {threads}"
            );
            match par_reference {
                None => par_reference = Some((m, s)),
                Some((mr, sr)) => {
                    assert_eq!(m.to_bits(), mr.to_bits());
                    assert_eq!(s.to_bits(), sr.to_bits(), "sum geometry-invariant");
                }
            }
        }
    }
}
