//! Index sets: RAJA's segmented iteration spaces.
//!
//! RAJA applications iterate over `IndexSet`s — ordered collections of
//! segments (contiguous ranges for the bulk of a mesh, explicit index
//! lists for irregular subsets like boundary or mixed-material zones).
//! Each segment launches as its own kernel, which is precisely why
//! real multi-physics codes have many *small* kernels and why launch
//! overhead matters on GPUs (paper §2).

use hsim_gpu::{GpuError, KernelDesc};
use hsim_time::RankClock;

use crate::forall::Executor;

/// One segment of an iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Contiguous `[begin, end)`.
    Range(usize, usize),
    /// Explicit indices (irregular subsets).
    List(Vec<usize>),
}

impl Segment {
    pub fn len(&self) -> usize {
        match self {
            Segment::Range(b, e) => e.saturating_sub(*b),
            Segment::List(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An ordered collection of segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexSet {
    segments: Vec<Segment>,
}

impl IndexSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a contiguous range segment (empty ranges are dropped).
    pub fn push_range(&mut self, begin: usize, end: usize) -> &mut Self {
        if end > begin {
            self.segments.push(Segment::Range(begin, end));
        }
        self
    }

    /// Append a list segment (empty lists are dropped).
    pub fn push_list(&mut self, indices: Vec<usize>) -> &mut Self {
        if !indices.is_empty() {
            self.segments.push(Segment::List(indices));
        }
        self
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total indices across segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate every index in segment order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.segments
            .iter()
            .flat_map(|s| -> Box<dyn Iterator<Item = usize>> {
                match s {
                    Segment::Range(b, e) => Box::new(*b..*e),
                    Segment::List(v) => Box::new(v.iter().copied()),
                }
            })
    }
}

/// One y–z tile of a 3D iteration space: the j/k half-open ranges a
/// cache-blocked kernel sweeps while the x runs inside stay whole rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile2 {
    pub j0: usize,
    pub j1: usize,
    pub k0: usize,
    pub k1: usize,
}

/// A y–z tiling of a `ny × nz` plane: the tiled iteration policy for
/// fused cache-blocked sweeps. Tiles are enumerated j-fastest (tile
/// row-major), matching the serial k-outer/j-inner visit order, and
/// partition the plane exactly — every (j, k) lands in one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSet2 {
    ty: usize,
    tz: usize,
    tiles_y: usize,
    tiles_z: usize,
    ny: usize,
    nz: usize,
}

impl TileSet2 {
    /// Tile a `ny × nz` plane with `tile = [ty, tz]` blocks (clamped
    /// to at least 1×1; edge tiles are trimmed to the plane).
    pub fn new(ny: usize, nz: usize, tile: [usize; 2]) -> Self {
        let ty = tile[0].max(1);
        let tz = tile[1].max(1);
        TileSet2 {
            ty,
            tz,
            tiles_y: ny.div_ceil(ty),
            tiles_z: nz.div_ceil(tz),
            ny,
            nz,
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles_y * self.tiles_z
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The requested (clamped) tile shape `[ty, tz]`.
    pub fn tile_shape(&self) -> [usize; 2] {
        [self.ty, self.tz]
    }

    /// The `idx`-th tile, j-fastest.
    pub fn tile(&self, idx: usize) -> Tile2 {
        debug_assert!(idx < self.len());
        let jt = idx % self.tiles_y;
        let kt = idx / self.tiles_y;
        let j0 = jt * self.ty;
        let k0 = kt * self.tz;
        Tile2 {
            j0,
            j1: (j0 + self.ty).min(self.ny),
            k0,
            k1: (k0 + self.tz).min(self.nz),
        }
    }

    /// Iterate tiles in handout order.
    pub fn iter(&self) -> impl Iterator<Item = Tile2> + '_ {
        (0..self.len()).map(|i| self.tile(i))
    }
}

impl Executor {
    /// Execute `body` over every index of `set`, launching one kernel
    /// per segment (RAJA's `forall(IndexSet, …)` semantics: segment
    /// boundaries are kernel boundaries).
    pub fn forall_set<F>(
        &mut self,
        clock: &mut RankClock,
        desc: &KernelDesc,
        set: &IndexSet,
        mut body: F,
    ) -> Result<(), GpuError>
    where
        F: FnMut(usize),
    {
        for seg in set.segments() {
            match seg {
                Segment::Range(b, e) => {
                    let n = e - b;
                    let base = *b;
                    self.forall(clock, desc, n, n.min(u32::MAX as usize) as u32, |i| {
                        body(base + i)
                    })?;
                }
                Segment::List(v) => {
                    // List segments are gather-indexed: unit-stride
                    // efficiency is poor regardless of size.
                    self.forall(clock, desc, v.len(), 1, |i| body(v[i]))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;
    use crate::forall::{Fidelity, Target};

    fn exec(fidelity: Fidelity) -> Executor {
        Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), fidelity)
    }

    #[test]
    fn construction_drops_empty_segments() {
        let mut set = IndexSet::new();
        set.push_range(5, 5)
            .push_range(0, 3)
            .push_list(vec![])
            .push_list(vec![9, 11]);
        assert_eq!(set.segments().len(), 2);
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
        let all: Vec<usize> = set.iter().collect();
        assert_eq!(all, vec![0, 1, 2, 9, 11]);
    }

    #[test]
    fn forall_set_visits_everything_once_in_order() {
        let mut set = IndexSet::new();
        set.push_range(0, 4)
            .push_list(vec![10, 12])
            .push_range(20, 22);
        let mut e = exec(Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut seen = Vec::new();
        e.forall_set(&mut clock, &KernelDesc::new("seg", 2.0, 16.0), &set, |i| {
            seen.push(i)
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 10, 12, 20, 21]);
    }

    #[test]
    fn one_launch_per_segment() {
        let mut set = IndexSet::new();
        set.push_range(0, 100)
            .push_list(vec![1, 2, 3])
            .push_range(200, 300);
        let mut e = exec(Fidelity::CostOnly);
        let mut clock = RankClock::new(0);
        e.forall_set(&mut clock, &KernelDesc::new("seg", 2.0, 16.0), &set, |_| {})
            .unwrap();
        assert_eq!(e.registry.total_launches(), 3);
        let report = e.registry.report();
        assert_eq!(report[0].elems, 203);
    }

    #[test]
    fn empty_set_launches_nothing() {
        let set = IndexSet::new();
        let mut e = exec(Fidelity::Full);
        let mut clock = RankClock::new(0);
        e.forall_set(
            &mut clock,
            &KernelDesc::new("seg", 2.0, 16.0),
            &set,
            |_| unreachable!(),
        )
        .unwrap();
        assert_eq!(e.registry.total_launches(), 0);
        assert_eq!(clock.now().as_nanos(), 0);
    }

    #[test]
    fn tileset_partitions_the_plane_exactly() {
        for (ny, nz, tile) in [
            (7usize, 5usize, [3usize, 2usize]),
            (8, 8, [8, 8]),
            (1, 9, [4, 4]),
            (6, 6, [16, 16]),
        ] {
            let tiles = TileSet2::new(ny, nz, tile);
            let mut hits = vec![0u32; ny * nz];
            for t in tiles.iter() {
                assert!(t.j0 < t.j1 && t.j1 <= ny, "{t:?}");
                assert!(t.k0 < t.k1 && t.k1 <= nz, "{t:?}");
                for k in t.k0..t.k1 {
                    for j in t.j0..t.j1 {
                        hits[k * ny + j] += 1;
                    }
                }
            }
            assert!(
                hits.iter().all(|&h| h == 1),
                "ny={ny} nz={nz} tile={tile:?}"
            );
        }
    }

    #[test]
    fn tileset_handout_order_is_j_fastest() {
        let tiles = TileSet2::new(4, 4, [2, 2]);
        assert_eq!(tiles.len(), 4);
        let order: Vec<(usize, usize)> = tiles.iter().map(|t| (t.j0, t.k0)).collect();
        assert_eq!(order, vec![(0, 0), (2, 0), (0, 2), (2, 2)]);
    }

    #[test]
    fn tileset_clamps_degenerate_shapes() {
        let tiles = TileSet2::new(3, 3, [0, 0]);
        assert_eq!(tiles.tile_shape(), [1, 1]);
        assert_eq!(tiles.len(), 9);
        assert!(TileSet2::new(0, 5, [4, 4]).is_empty());
    }

    #[test]
    fn list_segments_charge_gather_shaped_kernels() {
        // A list segment of n indices must not be cheaper than a range
        // segment of n contiguous indices (inner extent 1 vs n).
        let mut range_set = IndexSet::new();
        range_set.push_range(0, 10_000);
        let mut list_set = IndexSet::new();
        list_set.push_list((0..10_000).collect());

        let desc = KernelDesc::new("seg", 2.0, 16.0);
        let mut e1 = exec(Fidelity::CostOnly);
        let mut c1 = RankClock::new(0);
        e1.forall_set(&mut c1, &desc, &range_set, |_| {}).unwrap();
        let mut e2 = exec(Fidelity::CostOnly);
        let mut c2 = RankClock::new(0);
        e2.forall_set(&mut c2, &desc, &list_set, |_| {}).unwrap();
        assert!(c2.now() >= c1.now(), "gather must not be cheaper");
    }
}
