//! Disjoint mutable row views over one contiguous slab.
//!
//! Fused tile kernels run on the work pool with each tile writing its
//! own set of x-rows of the output slab. Rust cannot express "many
//! `&mut` rows of one slice, each owned by a different worker" without
//! interior mutability, so [`DisjointRowsMut`] provides exactly that:
//! a shared view over an exclusively borrowed slab that hands out
//! per-row `&mut [f64]` guards, with an atomic claim flag per row that
//! turns any aliasing bug into a deterministic panic instead of UB.
//!
//! This is the only `unsafe` the tentpole adds, and it is confined to
//! this module — `hsim-hydro` itself stays `#![forbid(unsafe_code)]`
//! and consumes rows through the safe guard API.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A shared view of a mutable slab, divided into fixed-length rows
/// that can each be claimed (exclusively) from any thread.
pub struct DisjointRowsMut<'a> {
    ptr: *mut f64,
    row_len: usize,
    claimed: Box<[AtomicBool]>,
    _slab: PhantomData<&'a mut [f64]>,
}

// SAFETY: the view is constructed from an exclusive `&mut [f64]`
// borrow held for 'a, so no other alias of the slab exists. Row
// access goes through `claim`, whose per-row atomic swap guarantees at
// most one live guard per row; distinct rows are disjoint memory.
unsafe impl Send for DisjointRowsMut<'_> {}
// SAFETY: see the `Send` impl — concurrent `claim` calls are
// serialized per row by the atomic flag, and disjoint rows never
// overlap.
unsafe impl Sync for DisjointRowsMut<'_> {}

impl<'a> DisjointRowsMut<'a> {
    /// Split `slab` into `slab.len() / row_len` claimable rows. The
    /// slab length must be a whole number of rows.
    pub fn new(slab: &'a mut [f64], row_len: usize) -> Self {
        assert!(row_len > 0, "rows must be non-empty");
        assert_eq!(
            slab.len() % row_len,
            0,
            "slab length {} is not a whole number of {row_len}-element rows",
            slab.len()
        );
        let rows = slab.len() / row_len;
        DisjointRowsMut {
            ptr: slab.as_mut_ptr(),
            row_len,
            claimed: (0..rows).map(|_| AtomicBool::new(false)).collect(),
            _slab: PhantomData,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.claimed.len()
    }

    /// Elements per row.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Claim exclusive access to row `r` until the guard drops.
    ///
    /// Panics if `r` is out of range or the row is already claimed —
    /// disjoint-tile schedules never claim a row twice concurrently,
    /// so a panic here means the tiling (not this view) is wrong.
    pub fn claim(&self, r: usize) -> RowGuard<'_> {
        let flag = &self.claimed[r];
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "row {r} claimed twice concurrently (overlapping tiles?)"
        );
        let start = r * self.row_len;
        // SAFETY: the slab outlives `self` (PhantomData borrow), `r`
        // is in range (checked by the indexing above), rows are
        // disjoint `row_len`-sized windows, and the Acquire swap just
        // made this thread the row's unique owner until the guard's
        // Release store in `Drop`.
        let slice = unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), self.row_len) };
        RowGuard { slice, flag }
    }
}

/// Exclusive access to one row; releases the claim on drop so
/// sequential phases can re-claim the same rows.
pub struct RowGuard<'a> {
    slice: &'a mut [f64],
    flag: &'a AtomicBool,
}

impl Deref for RowGuard<'_> {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.slice
    }
}

impl DerefMut for RowGuard<'_> {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.slice
    }
}

impl Drop for RowGuard<'_> {
    fn drop(&mut self) {
        // Release pairs with the Acquire swap in `claim`: a later
        // claimant (possibly on another thread) sees every write made
        // through this guard.
        self.flag.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkPool;

    #[test]
    fn rows_partition_the_slab() {
        let mut slab = vec![0.0f64; 12];
        let view = DisjointRowsMut::new(&mut slab, 4);
        assert_eq!(view.rows(), 3);
        assert_eq!(view.row_len(), 4);
        for r in 0..3 {
            let mut row = view.claim(r);
            row.fill(r as f64 + 1.0);
        }
        drop(view);
        assert_eq!(slab[..4], [1.0; 4]);
        assert_eq!(slab[4..8], [2.0; 4]);
        assert_eq!(slab[8..], [3.0; 4]);
    }

    #[test]
    fn rows_are_reclaimable_after_release() {
        let mut slab = vec![0.0f64; 8];
        let view = DisjointRowsMut::new(&mut slab, 4);
        {
            let mut row = view.claim(1);
            row[0] = 5.0;
        }
        let row = view.claim(1);
        assert_eq!(row[0], 5.0);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_panics() {
        let mut slab = vec![0.0f64; 8];
        let view = DisjointRowsMut::new(&mut slab, 4);
        let _a = view.claim(0);
        let _b = view.claim(0);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_slab_is_rejected() {
        let mut slab = vec![0.0f64; 10];
        let _ = DisjointRowsMut::new(&mut slab, 4);
    }

    #[test]
    fn parallel_disjoint_writes_land_exactly_once() {
        let pool = WorkPool::new(3);
        let mut slab = vec![0.0f64; 64 * 16];
        let view = DisjointRowsMut::new(&mut slab, 16);
        pool.for_each(0, 64, 1, |r| {
            let mut row = view.claim(r);
            for (i, v) in row.iter_mut().enumerate() {
                *v = (r * 16 + i) as f64;
            }
        });
        drop(view);
        for (i, v) in slab.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }
}
