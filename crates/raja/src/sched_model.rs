//! Exhaustive schedule model-checking of the [`WorkPool`] handoff
//! protocol (a mini-loom, pure `std`).
//!
//! The pool's correctness argument rests on a small protocol: the
//! coordinator publishes a job into the single slot, every
//! participant pulls disjoint chunks off an atomic cursor, workers
//! decrement `remaining` exactly once on the way out and then park
//! until the job is swapped out so they cannot double-count
//! themselves, and the coordinator re-raises the first panic payload
//! after the drain. `pool.rs` argues this in comments; this module
//! *checks* it, by enumerating every interleaving of a faithful
//! small-step model for small geometries (2–3 workers, a few chunks,
//! 1–2 back-to-back regions).
//!
//! Model shape:
//! - One thread per participant (coordinator + workers), each a small
//!   program counter over the protocol's atomic steps. Condvar waits
//!   become blocked-until-predicate states, which is equivalent to
//!   the real predicate-loop waits (no lost wakeups either way).
//! - A depth-first search over the interleaving tree, memoized per
//!   reached state, so the number of *paths* (interleavings) is
//!   counted exactly without enumerating them one by one:
//!   `paths(s) = Σ paths(step(s, t))` over runnable threads `t`, and
//!   a terminal state counts 1.
//! - Invariants are checked on every transition: no chunk executes
//!   twice, `remaining` never underflows, a finished clean region has
//!   executed every chunk exactly once, an injected panic is always
//!   observed by the coordinator, and a state with no runnable thread
//!   must be the final one (otherwise: deadlock).
//!
//! Two deliberately-buggy protocol variants are exposed as knobs so
//! the tests can prove the checker has teeth: dropping the
//! swap-wait (workers double-count on the same job) and splitting the
//! cursor claim into a non-atomic read/write pair (two threads claim
//! the same chunk).
//!
//! [`WorkPool`]: crate::WorkPool

use std::collections::HashMap;

/// Model geometry and fault/bug knobs.
#[derive(Debug, Clone)]
pub struct ModelCfg {
    /// Pool workers (the coordinator always participates too).
    pub workers: usize,
    /// Chunks in each region's iteration space (chunk size is fixed
    /// at one cursor step, matching `for_chunks` with `chunk = 1`).
    pub chunks: usize,
    /// Back-to-back regions through the same slot (pool reuse).
    pub regions: usize,
    /// Inject a body panic when (region, chunk) executes.
    pub panic_at: Option<(usize, usize)>,
    /// BUG KNOB: workers skip the job-swap wait and go straight back
    /// to the ready queue, re-entering the job they just left.
    pub skip_swap_wait: bool,
    /// BUG KNOB: the cursor claim is a non-atomic read/add pair, so
    /// two threads can read the same cursor value.
    pub split_claim: bool,
}

impl Default for ModelCfg {
    fn default() -> Self {
        ModelCfg {
            workers: 2,
            chunks: 3,
            regions: 1,
            panic_at: None,
            skip_swap_wait: false,
            split_claim: false,
        }
    }
}

/// Exploration result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Distinct reachable states.
    pub states: usize,
    /// Total interleavings (root-to-terminal schedules).
    pub interleavings: u128,
}

/// The job slot: `State` in `pool.rs`, with jobs named by region index.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Slot {
    Idle,
    Running(usize),
    Shutdown,
}

/// Coordinator program counter (`try_for_chunks` + `Drop`).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Coord {
    /// Publish the current region into the slot.
    Publish,
    /// Claim the next chunk off the cursor (fetch_add).
    Claim,
    /// Execute the claimed chunk.
    Exec(usize),
    /// Wait for `remaining == 0` (the work_done condvar loop).
    AwaitDrain,
    /// Swap the slot to Idle and check the region's postconditions.
    Finish,
    /// Set Shutdown so workers exit (the pool's `Drop`).
    Shutdown,
    Done,
}

/// Worker program counter (`worker_loop`).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Worker {
    /// Park until the slot is not Idle (the work_ready condvar loop).
    AwaitJob,
    /// Claim the next chunk of region `r` (fetch_add).
    Claim(usize),
    /// BUG VARIANT of Claim: cursor was read as `b`; the add is a
    /// separate later step, so the read/write pair is not atomic.
    ClaimSplit(usize, usize),
    /// Execute chunk `c` of region `r`.
    Exec(usize, usize),
    /// Decrement `remaining` (fetch_sub Release) for region `r`.
    Decr(usize),
    /// Park until region `r` is swapped out of the slot.
    AwaitSwap(usize),
    Done,
}

/// One interleaving-explored machine state. Everything a schedule can
/// branch on lives here; `Hash + Eq` make it the memo key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MState {
    slot: Slot,
    cursor: usize,
    remaining: usize,
    poisoned: bool,
    /// Per-chunk execution count for the current region.
    done: Vec<u8>,
    /// Coordinator's current region index.
    region: usize,
    coord: Coord,
    workers: Vec<Worker>,
}

impl MState {
    fn initial(cfg: &ModelCfg) -> Self {
        MState {
            slot: Slot::Idle,
            cursor: 0,
            remaining: 0,
            poisoned: false,
            done: vec![0; cfg.chunks],
            region: 0,
            coord: Coord::Publish,
            workers: vec![Worker::AwaitJob; cfg.workers],
        }
    }

    fn terminal(&self) -> bool {
        self.coord == Coord::Done && self.workers.iter().all(|w| *w == Worker::Done)
    }
}

/// Exhaustively explore every schedule of `cfg`'s geometry, checking
/// the protocol invariants on each transition. Returns the exact
/// interleaving count, or the first invariant violation found.
pub fn explore(cfg: &ModelCfg) -> Result<Stats, String> {
    let mut memo: HashMap<MState, u128> = HashMap::new();
    let interleavings = dfs(MState::initial(cfg), cfg, &mut memo)?;
    Ok(Stats {
        states: memo.len(),
        interleavings,
    })
}

fn dfs(s: MState, cfg: &ModelCfg, memo: &mut HashMap<MState, u128>) -> Result<u128, String> {
    if let Some(&n) = memo.get(&s) {
        return Ok(n);
    }
    if s.terminal() {
        memo.insert(s, 1);
        return Ok(1);
    }
    let mut total: u128 = 0;
    let mut any_runnable = false;
    for tid in 0..=cfg.workers {
        if !runnable(&s, tid) {
            continue;
        }
        any_runnable = true;
        let next = step(s.clone(), tid, cfg)?;
        total += dfs(next, cfg, memo)?;
    }
    if !any_runnable {
        return Err(format!("deadlock: no runnable thread in {}", describe(&s)));
    }
    memo.insert(s, total);
    Ok(total)
}

/// Can thread `tid` (0 = coordinator, 1.. = workers) take a step?
/// Blocked states encode the condvar predicates.
fn runnable(s: &MState, tid: usize) -> bool {
    if tid == 0 {
        match s.coord {
            Coord::AwaitDrain => s.remaining == 0,
            Coord::Done => false,
            _ => true,
        }
    } else {
        match &s.workers[tid - 1] {
            Worker::AwaitJob => s.slot != Slot::Idle,
            Worker::AwaitSwap(r) => s.slot != Slot::Running(*r),
            Worker::Done => false,
            _ => true,
        }
    }
}

/// Take thread `tid`'s next atomic step, checking invariants.
fn step(mut s: MState, tid: usize, cfg: &ModelCfg) -> Result<MState, String> {
    if tid == 0 {
        match s.coord {
            Coord::Publish => {
                s.slot = Slot::Running(s.region);
                s.cursor = 0;
                s.remaining = cfg.workers;
                s.poisoned = false;
                s.done = vec![0; cfg.chunks];
                s.coord = Coord::Claim;
            }
            Coord::Claim => {
                let b = s.cursor;
                s.cursor += 1;
                s.coord = if b >= cfg.chunks {
                    Coord::AwaitDrain
                } else {
                    Coord::Exec(b)
                };
            }
            Coord::Exec(c) => {
                let r = s.region;
                let poisons = exec_chunk(&mut s, r, c, cfg)?;
                s.coord = if poisons {
                    Coord::AwaitDrain
                } else {
                    Coord::Claim
                };
            }
            Coord::AwaitDrain => {
                debug_assert_eq!(s.remaining, 0);
                s.coord = Coord::Finish;
            }
            Coord::Finish => {
                check_region_end(&s, cfg)?;
                s.slot = Slot::Idle;
                s.region += 1;
                s.coord = if s.region < cfg.regions {
                    Coord::Publish
                } else {
                    Coord::Shutdown
                };
            }
            Coord::Shutdown => {
                s.slot = Slot::Shutdown;
                s.coord = Coord::Done;
            }
            Coord::Done => unreachable!("stepped a finished coordinator"),
        }
    } else {
        let w = s.workers[tid - 1].clone();
        match w {
            Worker::AwaitJob => {
                s.workers[tid - 1] = match s.slot {
                    Slot::Shutdown => Worker::Done,
                    Slot::Running(r) => Worker::Claim(r),
                    Slot::Idle => unreachable!("AwaitJob ran while Idle"),
                };
            }
            Worker::Claim(r) => {
                if cfg.split_claim {
                    // BUG: read now, add later — another thread can
                    // read the same cursor value in between.
                    s.workers[tid - 1] = Worker::ClaimSplit(r, s.cursor);
                } else {
                    let b = s.cursor;
                    s.cursor += 1;
                    s.workers[tid - 1] = if b >= cfg.chunks {
                        Worker::Decr(r)
                    } else {
                        Worker::Exec(r, b)
                    };
                }
            }
            Worker::ClaimSplit(r, b) => {
                s.cursor = b + 1; // lost-update write
                s.workers[tid - 1] = if b >= cfg.chunks {
                    Worker::Decr(r)
                } else {
                    Worker::Exec(r, b)
                };
            }
            Worker::Exec(r, c) => {
                let poisons = exec_chunk(&mut s, r, c, cfg)?;
                s.workers[tid - 1] = if poisons {
                    Worker::Decr(r)
                } else {
                    Worker::Claim(r)
                };
            }
            Worker::Decr(r) => {
                if s.remaining == 0 {
                    return Err(format!(
                        "remaining underflow: a worker left region {r} twice \
                         (completion handoff double-counted)"
                    ));
                }
                s.remaining -= 1;
                s.workers[tid - 1] = if cfg.skip_swap_wait {
                    Worker::AwaitJob
                } else {
                    Worker::AwaitSwap(r)
                };
            }
            Worker::AwaitSwap(_) => {
                s.workers[tid - 1] = Worker::AwaitJob;
            }
            Worker::Done => unreachable!("stepped a finished worker"),
        }
    }
    Ok(s)
}

/// Execute chunk `c` of region `r`: the body call between a claim and
/// the next claim. Returns true when the body panics (poisoning the
/// job: cursor slammed to the end, first payload kept).
fn exec_chunk(s: &mut MState, r: usize, c: usize, cfg: &ModelCfg) -> Result<bool, String> {
    s.done[c] += 1;
    if s.done[c] > 1 {
        return Err(format!(
            "chunk {c} of region {r} executed twice (cursor claim is not handing \
             out disjoint chunks)"
        ));
    }
    if cfg.panic_at == Some((r, c)) {
        s.cursor = cfg.chunks; // drain: nobody picks up new chunks
        s.poisoned = true;
        return Ok(true);
    }
    Ok(false)
}

/// Region postconditions, checked when the coordinator retires a job:
/// a clean region ran every chunk exactly once (no lost jobs), and an
/// injected panic was observed (propagation).
fn check_region_end(s: &MState, cfg: &ModelCfg) -> Result<(), String> {
    let injected = cfg.panic_at.is_some_and(|(r, _)| r == s.region);
    if injected && !s.poisoned {
        return Err(format!(
            "panic injected in region {} was not observed by the coordinator",
            s.region
        ));
    }
    if !injected && s.poisoned {
        return Err(format!(
            "region {} poisoned without an injected panic",
            s.region
        ));
    }
    if !s.poisoned {
        for (c, &n) in s.done.iter().enumerate() {
            if n != 1 {
                return Err(format!(
                    "lost job: chunk {c} of region {} executed {n} times",
                    s.region
                ));
            }
        }
    }
    Ok(())
}

fn describe(s: &MState) -> String {
    let slot = match s.slot {
        Slot::Idle => "Idle".to_string(),
        Slot::Running(r) => format!("Running({r})"),
        Slot::Shutdown => "Shutdown".to_string(),
    };
    format!(
        "state {{ slot: {slot}, cursor: {}, remaining: {}, region: {} }}",
        s.cursor, s.remaining, s.region
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_workers_three_chunks_hold_all_invariants() {
        let cfg = ModelCfg::default(); // 2 workers × 3 chunks
        let stats = explore(&cfg).expect("protocol holds on every schedule");
        // The full interleaving tree is enumerated, not sampled: for
        // this geometry that is thousands of distinct schedules.
        assert!(
            stats.interleavings > 1_000,
            "suspiciously few schedules: {}",
            stats.interleavings
        );
        assert!(
            stats.states > 100,
            "state space truncated: {}",
            stats.states
        );
        // Exploration is deterministic.
        assert_eq!(explore(&cfg).expect("re-run"), stats);
    }

    #[test]
    fn three_workers_two_chunks_hold_all_invariants() {
        let cfg = ModelCfg {
            workers: 3,
            chunks: 2,
            ..ModelCfg::default()
        };
        explore(&cfg).expect("protocol holds on every schedule");
    }

    #[test]
    fn back_to_back_regions_reuse_the_slot_safely() {
        // The swap-wait earns its keep here: the same workers go
        // around the loop twice without double-counting either job.
        let cfg = ModelCfg {
            workers: 2,
            chunks: 2,
            regions: 2,
            ..ModelCfg::default()
        };
        explore(&cfg).expect("pool reuse holds on every schedule");
    }

    #[test]
    fn zero_workers_degenerate_to_one_serial_schedule() {
        let cfg = ModelCfg {
            workers: 0,
            chunks: 3,
            ..ModelCfg::default()
        };
        let stats = explore(&cfg).expect("serial pool");
        assert_eq!(stats.interleavings, 1);
    }

    #[test]
    fn injected_panic_reaches_the_coordinator_on_every_schedule() {
        let cfg = ModelCfg {
            panic_at: Some((0, 1)),
            ..ModelCfg::default()
        };
        // check_region_end asserts propagation in every terminal path.
        explore(&cfg).expect("poison/drain/re-raise holds on every schedule");
    }

    #[test]
    fn panic_in_a_later_region_does_not_leak_backwards() {
        let cfg = ModelCfg {
            workers: 2,
            chunks: 2,
            regions: 2,
            panic_at: Some((1, 0)),
            ..ModelCfg::default()
        };
        explore(&cfg).expect("region 0 clean, region 1 poisoned, on every schedule");
    }

    #[test]
    fn dropping_the_swap_wait_is_caught() {
        // Without the park-until-swapped step a worker re-enters the
        // job it just left and decrements `remaining` a second time.
        let cfg = ModelCfg {
            workers: 1,
            chunks: 1,
            skip_swap_wait: true,
            ..ModelCfg::default()
        };
        let err = explore(&cfg).expect_err("checker must reject the buggy protocol");
        assert!(err.contains("underflow"), "unexpected diagnosis: {err}");
    }

    #[test]
    fn non_atomic_cursor_claim_is_caught() {
        // A split read/add claim lets two threads take the same chunk.
        let cfg = ModelCfg {
            workers: 2,
            chunks: 2,
            split_claim: true,
            ..ModelCfg::default()
        };
        let err = explore(&cfg).expect_err("checker must reject the racy claim");
        assert!(
            err.contains("executed twice"),
            "unexpected diagnosis: {err}"
        );
    }
}
