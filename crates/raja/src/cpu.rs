//! CPU cost model, including the decorated-lambda dispatch penalty.
//!
//! The paper (§5.1): "when running such code on the CPU ... the
//! performance is substantially worse ... (execution time can be 100x
//! to 300x slower). The issue is that nvcc passes the lambda back to
//! the host compiler wrapped in a std::function object. The effect is
//! that each time the lambda is invoked (e.g., at each loop iteration)
//! a virtual function dispatch is required."
//!
//! We model that as an *additive per-iteration* cost: a SAXPY-class
//! body (sub-nanosecond per element) slows by orders of magnitude,
//! while a 100-flop hydro kernel slows by a factor of ~2–3 — which is
//! consistent with the paper still being able to give 1–2 % of zones
//! to 12 CPU cores.

use hsim_gpu::KernelDesc;
use hsim_time::SimDuration;

/// Per-core roofline cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Core clock in GHz.
    pub ghz: f64,
    /// Sustained FP64 operations per cycle per core (FMA + vector
    /// issue, derated for real code).
    pub flops_per_cycle: f64,
    /// Sustained memory bandwidth per core in GB/s (a single Haswell
    /// core cannot saturate the socket).
    pub bw_gbs_per_core: f64,
    /// Per-iteration virtual-dispatch cost in ns while the nvcc
    /// decorated-lambda bug is active; 0 when "fixed".
    pub dispatch_ns: f64,
    /// Whether kernels are compiled with `__host__ __device__`
    /// decorations (single-source builds: yes).
    pub bug_active: bool,
}

impl CpuModel {
    /// One core of the Xeon E5-2667 v3 (Haswell, 3.2 GHz) in the
    /// paper's RZHasGPU node, with the CUDA 8.0 EA lambda bug active.
    pub fn haswell_e5_2667v3() -> Self {
        CpuModel {
            ghz: 3.2,
            flops_per_cycle: 4.0,
            bw_gbs_per_core: 6.0,
            dispatch_ns: 10.0,
            bug_active: true,
        }
    }

    /// The same core with the compiler issue resolved (the paper's
    /// projection scenario).
    pub fn haswell_fixed() -> Self {
        CpuModel {
            bug_active: false,
            ..Self::haswell_e5_2667v3()
        }
    }

    /// Seconds one core spends per element of `desc` (roofline of
    /// compute and memory, plus the dispatch penalty when active).
    pub fn elem_time_secs(&self, desc: &KernelDesc) -> f64 {
        let t_compute = desc.flops_per_elem / (self.ghz * 1e9 * self.flops_per_cycle);
        let t_memory = desc.bytes_per_elem / (self.bw_gbs_per_core * 1e9);
        let dispatch = if self.bug_active {
            self.dispatch_ns * 1e-9
        } else {
            0.0
        };
        t_compute.max(t_memory) + dispatch
    }

    /// Duration of one kernel over `elems` elements on one core.
    pub fn kernel_time(&self, desc: &KernelDesc, elems: u64) -> SimDuration {
        SimDuration::from_nanos_f64(self.elem_time_secs(desc) * 1e9 * elems as f64)
    }

    /// Duration with the loop split over `threads` cores at parallel
    /// efficiency `eff` (OpenMP-like backend).
    pub fn kernel_time_parallel(
        &self,
        desc: &KernelDesc,
        elems: u64,
        threads: usize,
    ) -> SimDuration {
        let threads = threads.max(1) as f64;
        // Parallel efficiency falls off mildly with thread count
        // (barrier + NUMA effects).
        let eff = 1.0 / (1.0 + 0.02 * (threads - 1.0));
        self.kernel_time(desc, elems).mul_f64(1.0 / (threads * eff))
    }

    /// The slowdown factor the lambda bug causes for `desc` (1.0 when
    /// inactive). SAXPY-class kernels report 100–300×; hydro kernels
    /// report single digits.
    pub fn bug_slowdown(&self, desc: &KernelDesc) -> f64 {
        if !self.bug_active {
            return 1.0;
        }
        let clean = CpuModel {
            bug_active: false,
            ..self.clone()
        };
        self.elem_time_secs(desc) / clean.elem_time_secs(desc)
    }

    /// Effective per-core throughput on `desc` in elements/second.
    pub fn elems_per_sec(&self, desc: &KernelDesc) -> f64 {
        1.0 / self.elem_time_secs(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saxpy() -> KernelDesc {
        // y[i] += a * x[i]: 2 flops, 24 bytes (2 loads + 1 store).
        KernelDesc::new("saxpy", 2.0, 24.0)
    }

    fn hydro_kernel() -> KernelDesc {
        KernelDesc::new("hydro", 80.0, 64.0)
    }

    #[test]
    fn saxpy_suffers_the_paper_slowdown_range() {
        let cpu = CpuModel::haswell_e5_2667v3();
        // Tight-register SAXPY variant: compute-bound body.
        let tight = KernelDesc::new("tight", 2.0, 0.0);
        let factor = cpu.bug_slowdown(&tight);
        assert!(
            (50.0..400.0).contains(&factor),
            "SAXPY-class slowdown {factor} should be ~100-300x"
        );
        // Memory-streaming SAXPY is less extreme but still severe.
        let f2 = cpu.bug_slowdown(&saxpy());
        assert!(f2 > 2.0, "{f2}");
    }

    #[test]
    fn hydro_kernels_suffer_modest_slowdown() {
        let cpu = CpuModel::haswell_e5_2667v3();
        let factor = cpu.bug_slowdown(&hydro_kernel());
        assert!(
            (1.3..4.0).contains(&factor),
            "hydro-class slowdown {factor} should be small multiples"
        );
    }

    #[test]
    fn fixed_compiler_has_no_penalty() {
        let cpu = CpuModel::haswell_fixed();
        assert_eq!(cpu.bug_slowdown(&saxpy()), 1.0);
        assert!(
            cpu.kernel_time(&saxpy(), 1000)
                < CpuModel::haswell_e5_2667v3().kernel_time(&saxpy(), 1000)
        );
    }

    #[test]
    fn kernel_time_scales_linearly() {
        let cpu = CpuModel::haswell_fixed();
        let t1 = cpu.kernel_time(&hydro_kernel(), 1_000_000);
        let t2 = cpu.kernel_time(&hydro_kernel(), 2_000_000);
        let r = t2.ratio(t1);
        assert!((r - 2.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn parallel_execution_scales_with_derating() {
        let cpu = CpuModel::haswell_fixed();
        let serial = cpu.kernel_time(&hydro_kernel(), 10_000_000);
        let p12 = cpu.kernel_time_parallel(&hydro_kernel(), 10_000_000, 12);
        let speedup = serial.ratio(p12);
        assert!(speedup > 8.0 && speedup < 12.0, "speedup {speedup}");
    }

    #[test]
    fn memory_bound_kernels_hit_the_bandwidth_roof() {
        let cpu = CpuModel::haswell_fixed();
        let memb = KernelDesc::new("memb", 1.0, 60.0);
        // 60 B / 6 GB/s = 10 ns per element.
        let t = cpu.kernel_time(&memb, 1_000_000);
        assert!((t.as_millis_f64() - 10.0).abs() < 0.1, "{t}");
    }
}
