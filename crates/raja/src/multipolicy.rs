//! MultiPolicy runtime selection.
//!
//! "In the future, we plan to use the MultiPolicy runtime policy
//! selection mechanism in RAJA." (Paper §5.1.) RAJA's `MultiPolicy`
//! picks an execution policy per `forall` call from a runtime
//! predicate — canonically the iteration count: tiny kernels are not
//! worth a device launch (the launch overhead exceeds the kernel), so
//! a GPU-driving rank runs them on its host core instead.
//!
//! [`MultiPolicy::recommend`] encodes that selector, and the
//! [`crate::Executor`] consults it on every launch when enabled. The
//! break-even threshold can be derived from the cost models via
//! [`MultiPolicy::break_even`].

use hsim_gpu::{DeviceSpec, KernelDesc, KernelShape};

use crate::cpu::CpuModel;

/// Where MultiPolicy decides one launch should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Submit to the device as usual.
    Device,
    /// Run on the rank's host core (tiny kernel: launch overhead
    /// would dominate).
    Host,
}

/// Iteration-count-based runtime policy selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiPolicy {
    /// Kernels with fewer elements than this run on the host. Zero
    /// disables the mechanism (every kernel goes to the device).
    pub host_threshold: u64,
}

impl MultiPolicy {
    /// Disabled selector (the paper's present-day behaviour).
    pub fn disabled() -> Self {
        MultiPolicy { host_threshold: 0 }
    }

    /// A selector with a fixed element threshold.
    pub fn with_threshold(host_threshold: u64) -> Self {
        MultiPolicy { host_threshold }
    }

    /// Derive the break-even element count for `desc`: the size at
    /// which one device launch (overhead + device execution) is as
    /// fast as running the loop on the host core. Below it, the host
    /// wins.
    pub fn break_even(spec: &DeviceSpec, cpu: &CpuModel, desc: &KernelDesc) -> u64 {
        // t_host(n) = n * cpu_elem
        // t_dev(n)  = launch + n * dev_elem / eff  (eff ≈ small-n floor)
        // Solve t_host = t_dev for n, with a conservative device
        // efficiency for tiny kernels.
        let cpu_elem = cpu.elem_time_secs(desc);
        let dev_elem_full = (desc.flops_per_elem / (spec.fp64_gflops * 1e9))
            .max(desc.bytes_per_elem / (spec.mem_bandwidth_gbs * 1e9));
        let tiny_eff = 0.05; // tiny kernels barely occupy the device
        let dev_elem = dev_elem_full / tiny_eff;
        let launch = spec.launch_overhead.as_secs_f64();
        if cpu_elem <= dev_elem {
            // The host is faster per element outright (rare): any size
            // below device-efficiency crossover; pick launch/cpu_elem
            // as a sane bound.
            return (launch / cpu_elem) as u64;
        }
        (launch / (cpu_elem - dev_elem)) as u64
    }

    /// A selector tuned to the break-even point of `desc`.
    pub fn tuned(spec: &DeviceSpec, cpu: &CpuModel, desc: &KernelDesc) -> Self {
        MultiPolicy {
            host_threshold: Self::break_even(spec, cpu, desc),
        }
    }

    /// The per-launch decision.
    pub fn recommend(&self, shape: KernelShape) -> PolicyChoice {
        if shape.elems < self.host_threshold {
            PolicyChoice::Host
        } else {
            PolicyChoice::Device
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.host_threshold > 0
    }
}

impl Default for MultiPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k80() -> DeviceSpec {
        DeviceSpec::tesla_k80()
    }

    #[test]
    fn disabled_policy_always_picks_the_device() {
        let mp = MultiPolicy::disabled();
        assert!(!mp.is_enabled());
        assert_eq!(mp.recommend(KernelShape::new(1, 1)), PolicyChoice::Device);
        assert_eq!(
            mp.recommend(KernelShape::new(1_000_000, 320)),
            PolicyChoice::Device
        );
    }

    #[test]
    fn threshold_splits_small_from_large() {
        let mp = MultiPolicy::with_threshold(1000);
        assert_eq!(mp.recommend(KernelShape::new(999, 10)), PolicyChoice::Host);
        assert_eq!(
            mp.recommend(KernelShape::new(1000, 10)),
            PolicyChoice::Device
        );
    }

    #[test]
    fn break_even_is_in_a_plausible_range() {
        // 8 µs launch overhead vs ~10 ns/elem host cost: break-even in
        // the hundreds-to-thousands of elements.
        let n = MultiPolicy::break_even(
            &k80(),
            &CpuModel::haswell_fixed(),
            &hsim_gpu::KernelDesc::new("k", 30.0, 40.0),
        );
        assert!(
            (100..100_000).contains(&n),
            "break-even {n} elements looks wrong"
        );
    }

    #[test]
    fn slower_host_lowers_the_break_even() {
        let desc = hsim_gpu::KernelDesc::new("k", 30.0, 40.0);
        let fast_host = MultiPolicy::break_even(&k80(), &CpuModel::haswell_fixed(), &desc);
        let slow_host = MultiPolicy::break_even(&k80(), &CpuModel::haswell_e5_2667v3(), &desc);
        assert!(
            slow_host <= fast_host,
            "buggy-compiler host must take fewer kernels: {slow_host} vs {fast_host}"
        );
    }

    #[test]
    fn tuned_policy_is_enabled() {
        let mp = MultiPolicy::tuned(
            &k80(),
            &CpuModel::haswell_fixed(),
            &hsim_gpu::KernelDesc::new("k", 30.0, 40.0),
        );
        assert!(mp.is_enabled());
    }
}
