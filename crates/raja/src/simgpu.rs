//! The CUDA-like backend: sharing one simulated device between rank
//! threads.
//!
//! Real CUDA resolves concurrency on the device itself; our simulated
//! device resolves it at a **sync rendezvous**: every client (rank)
//! submits its kernel launches with virtual arrival times, then all
//! clients of the device meet in [`GpuClient::sync`]. The last arrival
//! runs the rate-sharing timeline over the whole batch, publishes each
//! stream's completion time, and wakes the others. This mirrors the
//! bulk-synchronous structure of the application (every rank
//! synchronizes with its device at least once per cycle).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use hsim_gpu::mps::{MpsClient, MpsServer};
use hsim_gpu::{ContextId, Device, DeviceSpec, GpuError, KernelDesc, KernelShape, StreamId};
use hsim_time::{SimDuration, SimTime};

struct Inner {
    device: Device,
    mps: Option<MpsServer>,
    clients: usize,
    syncers: usize,
    epoch: u64,
    /// job id → stream key for the in-flight epoch.
    job_streams: HashMap<u64, u64>,
    /// stream key → completion time of the last kernel in the resolved
    /// epoch (cumulative across epochs).
    stream_end: HashMap<u64, SimTime>,
    /// Last job id submitted per stream in the in-flight epoch.
    stream_last_job: HashMap<u64, u64>,
    /// CUDA-style timing events: pending (recorded, not yet resolved
    /// by a sync) and resolved.
    next_event: u64,
    events_pending: HashMap<u64, EventMark>,
    events_resolved: HashMap<u64, SimTime>,
    /// job id → (kernel name, elements) for the in-flight epoch.
    /// Populated only when the submitting thread records telemetry, so
    /// the disabled path never allocates here.
    job_meta: HashMap<u64, (&'static str, u64)>,
    /// Kernels resolved at the last sync, keyed by stream, awaiting
    /// drain by each stream's owning client thread. Per-client drain
    /// keeps span/profile attribution independent of which thread
    /// happened to be the sync leader.
    resolved_kernels: HashMap<u64, Vec<ResolvedKernel>>,
}

/// One device-side kernel execution resolved at a sync, pending
/// telemetry drain by its stream's client.
#[derive(Debug, Clone)]
struct ResolvedKernel {
    name: &'static str,
    elems: u64,
    start: SimTime,
    end: SimTime,
    occupancy: f64,
}

/// What a recorded event points at: the last job on its stream at
/// record time (if any this epoch), plus the stream's prior completion
/// time as fallback.
#[derive(Debug, Clone, Copy)]
struct EventMark {
    job: Option<u64>,
    fallback: SimTime,
}

/// One simulated GPU shared by one or more rank threads.
pub struct SharedDevice {
    inner: Mutex<Inner>,
    resolved: Condvar,
    spec: DeviceSpec,
    id: usize,
}

/// A rank's connection to a [`SharedDevice`].
#[derive(Clone)]
pub struct GpuClient {
    dev: Arc<SharedDevice>,
    ctx: ContextId,
    stream: StreamId,
    mps_client: Option<MpsClient>,
}

impl SharedDevice {
    /// Exclusive arrangement: one rank owns the device directly (the
    /// Default mode). Returns the shared handle and the single client.
    pub fn new_exclusive(
        mut device: Device,
        pid: usize,
    ) -> Result<(Arc<Self>, GpuClient), GpuError> {
        let spec = device.spec().clone();
        let id = device.id();
        let ctx = device.create_context(pid)?;
        let stream = device.create_stream(ctx.id)?;
        let dev = Arc::new(SharedDevice {
            inner: Mutex::new(Inner {
                device,
                mps: None,
                clients: 1,
                syncers: 0,
                epoch: 0,
                job_streams: HashMap::new(),
                stream_end: HashMap::new(),
                stream_last_job: HashMap::new(),
                next_event: 0,
                events_pending: HashMap::new(),
                events_resolved: HashMap::new(),
                job_meta: HashMap::new(),
                resolved_kernels: HashMap::new(),
            }),
            resolved: Condvar::new(),
            spec,
            id,
        });
        let client = GpuClient {
            dev: Arc::clone(&dev),
            ctx: ctx.id,
            stream: stream.id,
            mps_client: None,
        };
        Ok((dev, client))
    }

    /// MPS arrangement: `pids` ranks share the device through the MPS
    /// server (the paper's "n MPI/GPU" mode).
    pub fn new_mps(
        mut device: Device,
        pids: &[usize],
    ) -> Result<(Arc<Self>, Vec<GpuClient>), GpuError> {
        let spec = device.spec().clone();
        let id = device.id();
        let mut server = MpsServer::start(&mut device, MpsServer::DEFAULT_MAX_CLIENTS)?;
        let mut mps_clients = Vec::with_capacity(pids.len());
        for &pid in pids {
            mps_clients.push(server.connect(&mut device, pid)?);
        }
        let ctx = device.active_context().ok_or(GpuError::InvalidContext)?.id;
        let dev = Arc::new(SharedDevice {
            inner: Mutex::new(Inner {
                device,
                mps: Some(server),
                clients: pids.len(),
                syncers: 0,
                epoch: 0,
                job_streams: HashMap::new(),
                stream_end: HashMap::new(),
                stream_last_job: HashMap::new(),
                next_event: 0,
                events_pending: HashMap::new(),
                events_resolved: HashMap::new(),
                job_meta: HashMap::new(),
                resolved_kernels: HashMap::new(),
            }),
            resolved: Condvar::new(),
            spec,
            id,
        });
        let clients = mps_clients
            .into_iter()
            .map(|mc| GpuClient {
                dev: Arc::clone(&dev),
                ctx,
                stream: mc.stream.id,
                mps_client: Some(mc),
            })
            .collect();
        Ok((dev, clients))
    }

    /// The device's capability sheet.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Device id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of resolved sync epochs so far.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Lifetime launch count.
    pub fn total_launches(&self) -> u64 {
        self.inner.lock().device.total_launches()
    }

    /// Cumulative per-job device busy time (the load balancer's view
    /// of how hard the GPU worked).
    pub fn busy(&self) -> SimDuration {
        self.inner.lock().device.busy()
    }

    /// Allocate a unified-memory region of `bytes` and fault it onto
    /// the device (ARES mesh data, Figure 8). Returns the region and
    /// the migration charge the caller must add to its clock.
    pub fn um_alloc_and_touch(
        &self,
        bytes: u64,
    ) -> Result<(hsim_gpu::memory::UnifiedRegionId, SimDuration), GpuError> {
        let mut inner = self.inner.lock();
        let region = inner.device.um_mut().alloc(bytes);
        let cost = inner.device.um_mut().touch_device(region)?;
        Ok((region, cost))
    }

    /// Touch `bytes` of a UM region from the host (halo staging of
    /// mesh data without GPU-direct). Returns the migration charge.
    pub fn um_touch_host_range(
        &self,
        region: hsim_gpu::memory::UnifiedRegionId,
        offset: u64,
        len: u64,
    ) -> Result<SimDuration, GpuError> {
        let mut inner = self.inner.lock();
        inner.device.um_mut().touch_host_range(region, offset, len)
    }

    /// Bytes currently resident on the device (UM accounting).
    pub fn um_resident_bytes(&self) -> u64 {
        self.inner.lock().device.um().device_resident_bytes()
    }
}

impl GpuClient {
    /// Device capability sheet.
    pub fn spec(&self) -> &DeviceSpec {
        self.dev.spec()
    }

    /// Whether launches go through the MPS server.
    pub fn is_mps(&self) -> bool {
        self.mps_client.is_some()
    }

    /// Submit one kernel launch at virtual instant `at`. Returns the
    /// host-side launch overhead the caller must charge to its clock.
    pub fn launch(
        &self,
        desc: &KernelDesc,
        shape: KernelShape,
        at: SimTime,
    ) -> Result<SimDuration, GpuError> {
        let mut inner = self.dev.inner.lock();
        let inner = &mut *inner;
        let ticket = match (&self.mps_client, &inner.mps) {
            (Some(mc), Some(server)) => server.launch(&mut inner.device, mc, desc, shape, at)?,
            (None, None) => inner
                .device
                .submit(self.ctx, self.stream, desc, shape, at, false)?,
            _ => return Err(GpuError::InvalidContext),
        };
        inner.job_streams.insert(ticket.job, self.stream.0);
        inner.stream_last_job.insert(self.stream.0, ticket.job);
        if hsim_telemetry::is_enabled() {
            inner.job_meta.insert(ticket.job, (desc.name, shape.elems));
        }
        Ok(ticket.overhead)
    }

    /// Rendezvous with the device's other clients; resolves all pending
    /// launches and returns the completion time of this client's
    /// stream (or `at` when the stream had no pending work).
    ///
    /// Every client of the device must call `sync` once per epoch
    /// (bulk-synchronous discipline); a client calling twice before
    /// the others once would deadlock, matching a real stream-sync
    /// against peers that never launch.
    pub fn sync(&self, at: SimTime) -> SimTime {
        let mut inner = self.dev.inner.lock();
        inner.syncers += 1;
        let my_epoch = inner.epoch;
        if inner.syncers == inner.clients {
            // Leader: resolve the batch. Snapshot the queued jobs'
            // work/occupancy caps first — the profiler needs them and
            // `run_pending` clears the queue.
            let job_caps: HashMap<u64, (f64, f64)> = if inner.job_meta.is_empty() {
                HashMap::new()
            } else {
                inner
                    .device
                    .pending_jobs()
                    .iter()
                    .map(|j| (j.id, (j.work, j.max_rate)))
                    .collect()
            };
            let outcomes = inner.device.run_pending();
            let mut job_ends: HashMap<u64, SimTime> = HashMap::new();
            for o in &outcomes {
                job_ends.insert(o.id, o.end);
                if let Some(&stream) = inner.job_streams.get(&o.id) {
                    let e = inner.stream_end.entry(stream).or_insert(SimTime::ZERO);
                    *e = e.merge(o.end);
                }
                // Stash the kernel for its own client to drain: which
                // thread led the sync must not change the telemetry.
                if let Some(&(name, elems)) = inner.job_meta.get(&o.id) {
                    let (work, max_rate) = job_caps.get(&o.id).copied().unwrap_or((0.0, 1.0));
                    let elapsed = (o.end - o.start).as_secs_f64();
                    let occupancy = if elapsed > 0.0 {
                        (work / elapsed).clamp(0.0, 1.0)
                    } else {
                        max_rate
                    };
                    if let Some(&stream) = inner.job_streams.get(&o.id) {
                        inner
                            .resolved_kernels
                            .entry(stream)
                            .or_default()
                            .push(ResolvedKernel {
                                name,
                                elems,
                                start: o.start,
                                end: o.end,
                                occupancy,
                            });
                    }
                }
            }
            inner.job_meta.clear();
            inner.job_streams.clear();
            inner.stream_last_job.clear();
            // Resolve recorded events: the completion of the last job
            // submitted to their stream before the record, or the
            // stream's prior end when nothing was in flight.
            let pending: Vec<(u64, EventMark)> = inner.events_pending.drain().collect();
            for (ev, mark) in pending {
                let t = mark
                    .job
                    .and_then(|j| job_ends.get(&j).copied())
                    .unwrap_or(mark.fallback);
                inner.events_resolved.insert(ev, t);
            }
            inner.syncers = 0;
            inner.epoch += 1;
            self.dev.resolved.notify_all();
        } else {
            while inner.epoch == my_epoch {
                self.dev.resolved.wait(&mut inner);
            }
        }
        // Drain this stream's resolved kernels into the calling
        // thread's collector (device-timeline spans + the per-kernel
        // profile — GPU kernels feed the profiler here, not at launch).
        hsim_telemetry::count(hsim_telemetry::Counter::DeviceSyncs, 1);
        if let Some(kernels) = inner.resolved_kernels.remove(&self.stream.0) {
            if hsim_telemetry::is_enabled() {
                let pid = hsim_telemetry::DEVICE_PID_BASE + self.dev.id as u32;
                let tid = self.stream.0 as u32;
                for k in kernels {
                    hsim_telemetry::span_args(
                        pid,
                        tid,
                        hsim_telemetry::Category::GpuKernel,
                        k.name,
                        k.start,
                        k.end,
                        &[("elems", k.elems)],
                    );
                    hsim_telemetry::kernel_launch(
                        k.name,
                        k.elems,
                        0,
                        k.end - k.start,
                        true,
                        k.occupancy,
                    );
                    hsim_telemetry::gauge_max(hsim_telemetry::Gauge::DeviceOccupancy, k.occupancy);
                }
            }
        }
        inner
            .stream_end
            .get(&self.stream.0)
            .copied()
            .unwrap_or(at)
            .merge(at)
    }
}

/// Handle to a recorded timing event (see [`GpuClient::record_event`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl GpuClient {
    /// Record a CUDA-style timing event on this client's stream: it
    /// resolves, at the next sync, to the completion time of the last
    /// kernel submitted to the stream before the record.
    pub fn record_event(&self) -> EventHandle {
        let mut inner = self.dev.inner.lock();
        let id = inner.next_event;
        inner.next_event += 1;
        let mark = EventMark {
            job: inner.stream_last_job.get(&self.stream.0).copied(),
            fallback: inner
                .stream_end
                .get(&self.stream.0)
                .copied()
                .unwrap_or(SimTime::ZERO),
        };
        inner.events_pending.insert(id, mark);
        EventHandle(id)
    }

    /// The resolved time of an event; `None` until a sync has resolved
    /// it (CUDA's `cudaEventQuery` returning not-ready).
    pub fn event_time(&self, ev: EventHandle) -> Option<SimTime> {
        self.dev.inner.lock().events_resolved.get(&ev.0).copied()
    }

    /// Elapsed virtual time between two resolved events (CUDA's
    /// `cudaEventElapsedTime`); `None` if either is unresolved.
    pub fn event_elapsed(&self, start: EventHandle, end: EventHandle) -> Option<SimDuration> {
        let inner = self.dev.inner.lock();
        let a = inner.events_resolved.get(&start.0)?;
        let b = inner.events_resolved.get(&end.0)?;
        Some(*b - *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k80() -> Device {
        Device::new(0, DeviceSpec::tesla_k80())
    }

    fn desc() -> KernelDesc {
        KernelDesc::new("k", 60.0, 16.0)
    }

    #[test]
    fn exclusive_client_launch_and_sync() {
        let (_dev, client) = SharedDevice::new_exclusive(k80(), 0).unwrap();
        let overhead = client
            .launch(&desc(), KernelShape::new(1_000_000, 320), SimTime::ZERO)
            .unwrap();
        assert_eq!(overhead, DeviceSpec::tesla_k80().launch_overhead);
        let end = client.sync(SimTime::ZERO);
        assert!(end > SimTime::ZERO);
    }

    #[test]
    fn sync_without_launches_returns_at() {
        let (_dev, client) = SharedDevice::new_exclusive(k80(), 0).unwrap();
        let at = SimTime::from_nanos(123);
        assert_eq!(client.sync(at), at);
    }

    #[test]
    fn epochs_advance_per_sync_round() {
        let (dev, client) = SharedDevice::new_exclusive(k80(), 0).unwrap();
        assert_eq!(dev.epoch(), 0);
        client.sync(SimTime::ZERO);
        client.sync(SimTime::ZERO);
        assert_eq!(dev.epoch(), 2);
    }

    #[test]
    fn mps_clients_rendezvous_across_threads() {
        let (dev, clients) = SharedDevice::new_mps(k80(), &[0, 1, 2, 3]).unwrap();
        let zones = 2_000_000u64;
        let ends: Vec<SimTime> = std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter()
                .map(|c| {
                    s.spawn(move || {
                        c.launch(&desc(), KernelShape::new(zones, 40), SimTime::ZERO)
                            .unwrap();
                        c.sync(SimTime::ZERO)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(ends.len(), 4);
        assert!(ends.iter().all(|&e| e > SimTime::ZERO));
        assert_eq!(dev.epoch(), 1);
        assert_eq!(dev.total_launches(), 4);
    }

    #[test]
    fn mps_small_kernels_beat_exclusive_serialization() {
        // The end-to-end MPS effect through the shared-device path:
        // 4 clients with small-x kernels finish sooner than one
        // exclusive client doing 4 kernels' worth of work.
        let zones_total = 8_000_000u64;
        let inner_dim = 40;

        let (_d1, solo) = SharedDevice::new_exclusive(k80(), 0).unwrap();
        solo.launch(
            &desc(),
            KernelShape::new(zones_total, inner_dim),
            SimTime::ZERO,
        )
        .unwrap();
        let solo_end = solo.sync(SimTime::ZERO);

        let (_d2, clients) =
            SharedDevice::new_mps(Device::new(1, DeviceSpec::tesla_k80()), &[0, 1, 2, 3]).unwrap();
        let ends: Vec<SimTime> = std::thread::scope(|s| {
            clients
                .iter()
                .map(|c| {
                    s.spawn(move || {
                        c.launch(
                            &desc(),
                            KernelShape::new(zones_total / 4, inner_dim),
                            SimTime::ZERO,
                        )
                        .unwrap();
                        c.sync(SimTime::ZERO)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mps_end = ends.into_iter().fold(SimTime::ZERO, SimTime::merge);
        assert!(
            mps_end < solo_end,
            "MPS {mps_end} should beat exclusive {solo_end}"
        );
    }

    #[test]
    fn mps_launch_overhead_is_elevated() {
        let (_dev, clients) = SharedDevice::new_mps(k80(), &[0, 1]).unwrap();
        let overhead = clients[0]
            .launch(&desc(), KernelShape::new(1000, 10), SimTime::ZERO)
            .unwrap();
        assert!(overhead > DeviceSpec::tesla_k80().launch_overhead);
    }

    #[test]
    fn events_resolve_to_stream_completion_times() {
        let (_dev, client) = SharedDevice::new_exclusive(k80(), 0).unwrap();
        let start = client.record_event();
        client
            .launch(&desc(), KernelShape::new(4_000_000, 320), SimTime::ZERO)
            .unwrap();
        let end = client.record_event();
        assert!(client.event_time(end).is_none(), "unresolved before sync");
        let sync_end = client.sync(SimTime::ZERO);
        // `start` was recorded on an empty stream: resolves to zero;
        // `end` resolves to the kernel's completion.
        assert_eq!(client.event_time(start), Some(SimTime::ZERO));
        assert_eq!(client.event_time(end), Some(sync_end));
        let elapsed = client.event_elapsed(start, end).unwrap();
        assert!(elapsed > hsim_time::SimDuration::ZERO);
    }

    #[test]
    fn events_measure_per_cycle_gpu_time() {
        // The load-balancer use case: bracket a batch of kernels with
        // events and read the GPU time back.
        let (_dev, client) = SharedDevice::new_exclusive(k80(), 0).unwrap();
        client
            .launch(&desc(), KernelShape::new(2_000_000, 320), SimTime::ZERO)
            .unwrap();
        client.sync(SimTime::ZERO);
        let before = client.record_event();
        for _ in 0..3 {
            client
                .launch(&desc(), KernelShape::new(2_000_000, 320), SimTime::ZERO)
                .unwrap();
        }
        let after = client.record_event();
        client.sync(SimTime::ZERO);
        let gpu_time = client.event_elapsed(before, after).unwrap();
        assert!(gpu_time > hsim_time::SimDuration::ZERO);
    }

    #[test]
    fn streams_keep_clients_ordered_within_themselves() {
        let (_dev, client) = SharedDevice::new_exclusive(k80(), 0).unwrap();
        // Two launches on the same client serialize: total ≈ 2x one.
        client
            .launch(&desc(), KernelShape::new(4_000_000, 320), SimTime::ZERO)
            .unwrap();
        let one = client.sync(SimTime::ZERO);
        client
            .launch(&desc(), KernelShape::new(4_000_000, 320), SimTime::ZERO)
            .unwrap();
        client
            .launch(&desc(), KernelShape::new(4_000_000, 320), SimTime::ZERO)
            .unwrap();
        let two = client.sync(SimTime::ZERO);
        let d_one = one - SimTime::ZERO;
        let d_two = two - SimTime::ZERO;
        let ratio = d_two.ratio(d_one);
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }
}
