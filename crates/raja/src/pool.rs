//! A work-sharing thread pool: the OpenMP-like host backend.
//!
//! Persistent worker threads pull fixed-size chunks of the iteration
//! space off an atomic cursor (dynamic scheduling). This is the
//! functional twin of the cost model's parallel path and is built the
//! way the project's concurrency guide prescribes: acquire/release
//! pairing on the job slot, an atomic cursor for the iteration space,
//! and a condition variable for idle parking.
//!
//! Every parallel region — including regions whose bodies borrow from
//! the caller's stack — runs on the *persistent* workers. Borrowed
//! closures are handed across via a lifetime-erased job slot: the
//! coordinator publishes a raw pointer to the body, and the
//! acquire/release handoff on the job's `remaining` counter guarantees every
//! worker has exited the body before `for_chunks` returns, so the
//! borrow is live for exactly as long as any thread can touch it.
//! No region ever spawns a thread.
//!
//! Panics inside a body poison the region: the remaining iteration
//! space is drained, the first payload is captured, and the
//! coordinator re-raises it on the calling thread once every worker
//! has left the region. Nested regions (a body submitting another
//! region to any pool) deadlock by construction on a single job slot
//! and are rejected with a panic instead.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

thread_local! {
    /// Set while this thread is executing a parallel-region body (as a
    /// worker or as the coordinating caller). Used to reject nested
    /// regions, which would deadlock on the single job slot.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Lifetime-erased borrowed closure: `call(data, b, e)` invokes the
/// original `Fn(usize, usize)` for `[b, e)`.
///
/// SAFETY: the pointee must outlive every call. [`WorkPool::for_chunks`]
/// upholds this by blocking until all workers have left the job before
/// the borrowed body goes out of scope.
struct RawBody {
    data: *const (),
    /// SAFETY: callers must pass a `data` pointer to the live closure
    /// this thunk was instantiated for.
    call: unsafe fn(*const (), usize, usize),
}

// SAFETY: `RawBody` is only a pointer-and-thunk pair; the pointee is a
// `Fn(usize, usize) + Send + Sync` closure (enforced by the only
// constructor site in `try_for_chunks`), so sharing and sending the
// pointer across worker threads is sound.
unsafe impl Send for RawBody {}
// SAFETY: see the `Send` impl above — the pointee is `Sync`.
unsafe impl Sync for RawBody {}

/// The unit of work handed to workers for one parallel region.
struct Job {
    body: RawBody,
    cursor: AtomicUsize,
    end: usize,
    chunk: usize,
    /// Workers still inside this job (for completion detection).
    remaining: AtomicUsize,
    /// A body panicked somewhere in the region.
    poisoned: AtomicBool,
    /// First panic payload, re-raised by the coordinator.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

enum State {
    Idle,
    Running(Arc<Job>),
    Shutdown,
}

/// A persistent pool of worker threads executing chunked parallel
/// loops.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    /// Serializes whole regions: the pool has one job slot, so
    /// concurrent submitters (e.g. rank threads sharing one run-wide
    /// pool) take turns rather than corrupting the slot.
    region_lock: Mutex<()>,
}

impl WorkPool {
    /// Spawn a pool with `threads` workers (the caller's thread also
    /// participates in loops, so total parallelism is `threads + 1`).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::Idle),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkPool {
            shared,
            workers,
            threads,
            region_lock: Mutex::new(()),
        }
    }

    /// Total participating threads (workers + the calling thread).
    pub fn parallelism(&self) -> usize {
        self.threads + 1
    }

    /// Process-wide shared pool with `threads` workers: the first call
    /// for a given width spawns it, every later call gets the same
    /// `Arc`. This is what lets a long-lived server (or a sweep of
    /// repeated runs) pay worker spawn/teardown once instead of per
    /// run — the `region_lock` already serializes concurrent
    /// submitters, and a poisoned region leaves the pool reusable, so
    /// sharing is safe even under fault injection.
    ///
    /// Shared pools live for the process lifetime (their workers park
    /// on a condvar when idle and cost nothing); they are deliberately
    /// never dropped.
    pub fn shared(threads: usize) -> Arc<WorkPool> {
        type PoolCache = Mutex<Vec<(usize, Arc<WorkPool>)>>;
        static POOLS: std::sync::OnceLock<PoolCache> = std::sync::OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(Vec::new()));
        let mut pools = pools.lock();
        if let Some((_, pool)) = pools.iter().find(|(w, _)| *w == threads) {
            return Arc::clone(pool);
        }
        let pool = Arc::new(WorkPool::new(threads));
        pools.push((threads, Arc::clone(&pool)));
        pool
    }

    /// Execute `body(i)` for every `i` in `[begin, end)` in parallel,
    /// dynamically scheduled in `chunk`-sized pieces. Blocks until the
    /// whole range is processed.
    pub fn for_each<F>(&self, begin: usize, end: usize, chunk: usize, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.for_chunks(begin, end, chunk, |b, e| {
            for i in b..e {
                body(i);
            }
        });
    }

    /// Chunked variant: `body(b, e)` processes `[b, e)`. Runs on the
    /// persistent workers with the calling thread participating; the
    /// borrowed body is published through the lifetime-erased job slot
    /// and reclaimed before return (see module docs).
    pub fn for_chunks<F>(&self, begin: usize, end: usize, chunk: usize, body: F)
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        if let Some(payload) = self.try_for_chunks(begin, end, chunk, body, true) {
            panic::resume_unwind(payload);
        }
    }

    /// [`WorkPool::for_chunks`] that hands a poisoned region's panic
    /// payload back instead of re-raising it, so chaos callers can
    /// absorb a planned worker panic. `count_host` gates the wall-clock
    /// `Host*` telemetry (chaos regions skip it to keep metrics output
    /// deterministic).
    fn try_for_chunks<F>(
        &self,
        begin: usize,
        end: usize,
        chunk: usize,
        body: F,
        count_host: bool,
    ) -> Option<Box<dyn Any + Send>>
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        if begin >= end {
            return None;
        }
        if IN_REGION.with(|c| c.get()) {
            // tidy-allow: panic-reach -- nested-region misuse is a programming error in the caller; the documented API contract is to abort the region loudly rather than deadlock on the single job slot
            panic!("nested WorkPool parallel regions are not supported (the pool has one job slot; restructure the outer region to do the inner work inline)");
        }
        let chunk = chunk.max(1);
        let host_t0 = (count_host && hsim_telemetry::is_enabled()).then(std::time::Instant::now);

        /// SAFETY: `data` must point to a live `F`.
        unsafe fn call_thunk<F: Fn(usize, usize)>(data: *const (), b: usize, e: usize) {
            // SAFETY: the caller contract guarantees `data` points to a
            // live `F`; the region handoff keeps the borrow alive until
            // every worker has exited the body.
            unsafe { (*data.cast::<F>())(b, e) }
        }
        let job = Arc::new(Job {
            body: RawBody {
                data: (&body as *const F).cast(),
                call: call_thunk::<F>,
            },
            cursor: AtomicUsize::new(begin),
            end,
            chunk,
            remaining: AtomicUsize::new(self.threads),
            poisoned: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        });

        // One region at a time: concurrent submitters queue here.
        let region = self.region_lock.lock();
        {
            let mut st = self.shared.state.lock();
            *st = State::Running(Arc::clone(&job));
            self.shared.work_ready.notify_all();
        }
        // The calling thread works too.
        run_job(&job);
        // Wait for the workers to drain the job. The Acquire pairs
        // with each worker's Release decrement, making every body
        // effect (and reduction-slot write) visible to the caller.
        let mut st = self.shared.state.lock();
        while job.remaining.load(Ordering::Acquire) != 0 {
            self.shared.work_done.wait(&mut st);
        }
        *st = State::Idle;
        // Wake workers parked on the job-swap wait so they return to
        // the ready queue.
        self.shared.work_done.notify_all();
        drop(st);
        drop(region);

        if let Some(t0) = host_t0 {
            hsim_telemetry::count(hsim_telemetry::Counter::HostPoolRegions, 1);
            hsim_telemetry::count(
                hsim_telemetry::Counter::HostPoolNanos,
                t0.elapsed().as_nanos() as u64,
            );
        }
        if job.poisoned.load(Ordering::Acquire) {
            let payload = job.panic_payload.lock().take();
            return Some(payload.unwrap_or_else(|| {
                Box::new("WorkPool parallel region body panicked".to_string())
            }));
        }
        None
    }

    /// Chaos hook for the `pool.panic` fault site: run a real parallel
    /// region whose body panics with the
    /// [`hsim_faults::InjectedWorkerPanic`] marker, exercising the
    /// poison/drain/re-raise machinery end to end, then absorb the
    /// marker so the caller can retry its region. Any non-marker panic
    /// propagates unchanged. Returns `true` when the marker made the
    /// round trip through the poison path.
    pub fn inject_worker_panic(&self) -> bool {
        let payload = self.try_for_chunks(
            0,
            self.parallelism(),
            1,
            |_b, _e| panic::panic_any(hsim_faults::InjectedWorkerPanic),
            false,
        );
        match payload {
            Some(p) if p.is::<hsim_faults::InjectedWorkerPanic>() => true,
            Some(p) => panic::resume_unwind(p),
            None => false,
        }
    }

    /// Parallel region for `'static` bodies. Since the lifetime-erased
    /// job slot handles borrowed bodies too, this is now a plain alias
    /// for [`WorkPool::for_each`], kept for API continuity.
    pub fn for_each_static<F>(&self, begin: usize, end: usize, chunk: usize, body: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        self.for_each(begin, end, chunk, body);
    }

    /// Parallel sum reduction: `Σ body(i)` over `[begin, end)` with a
    /// deterministic per-chunk partial order (chunk partials summed in
    /// chunk order), so the result is independent of worker count and
    /// scheduling.
    pub fn sum<F>(&self, begin: usize, end: usize, chunk: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Send + Sync,
    {
        if begin >= end {
            return 0.0;
        }
        let chunk = chunk.max(1);
        let slots = RegionSlots::new((end - begin).div_ceil(chunk));
        let slots_ref = &slots;
        self.for_chunks(begin, end, chunk, move |b, e| {
            let mut acc = 0.0;
            for i in b..e {
                acc += body(i);
            }
            // SAFETY: each chunk owns exactly one slot index (the
            // atomic cursor hands out disjoint chunks), and the slots
            // are only read after the region completes.
            unsafe { slots_ref.set((b - begin) / chunk, acc) };
        });
        slots
            .into_values()
            .into_iter()
            .map(|v| v.unwrap_or(0.0))
            .sum()
    }

    /// Parallel min reduction over `body(i)`, chunk-ordered like
    /// [`WorkPool::sum`].
    pub fn min<F>(&self, begin: usize, end: usize, chunk: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Send + Sync,
    {
        if begin >= end {
            return f64::INFINITY;
        }
        let chunk = chunk.max(1);
        let slots = RegionSlots::new((end - begin).div_ceil(chunk));
        let slots_ref = &slots;
        self.for_chunks(begin, end, chunk, move |b, e| {
            let mut acc = f64::INFINITY;
            for i in b..e {
                acc = acc.min(body(i));
            }
            // SAFETY: as in `sum` — one writer per slot, read only
            // after the region's completion handoff.
            unsafe { slots_ref.set((b - begin) / chunk, acc) };
        });
        slots
            .into_values()
            .into_iter()
            .map(|v| v.unwrap_or(f64::INFINITY))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Write-once result slots for one parallel region: the generic form
/// of the per-chunk reduction slots, reusable for any unit of work
/// with a dense index — 1-D chunks (the `sum`/`min` reductions) or 2-D
/// tile grids (`Executor::run_tiles_collect`), where slot `i` holds
/// the result of tile `i` in the tile set's deterministic enumeration
/// order. Each slot is written by exactly one chunk/tile (the atomic
/// cursor hands out disjoint units, and the slot index is a pure
/// function of the unit), so plain stores suffice; visibility to the
/// reading coordinator comes from the region's completion handoff.
pub struct RegionSlots<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
}

// SAFETY: each `UnsafeCell` slot is written by at most one thread (the
// chunk/tile that owns it) and read only after the region's
// acquire/release completion handoff, so shared references never race.
// `T: Send` because values produced on workers are read on the
// coordinating thread.
unsafe impl<T: Send> Sync for RegionSlots<T> {}

impl<T> RegionSlots<T> {
    /// `n` empty slots, one per unit of work.
    pub fn new(n: usize) -> Self {
        RegionSlots {
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Store the result of unit `i`.
    ///
    /// # Safety
    /// Each index must be written from at most one unit of work
    /// (write-once), and reads must happen only after the region
    /// completes.
    pub unsafe fn set(&self, i: usize, v: T) {
        // SAFETY: exclusive access per the function contract — no other
        // thread writes slot `i`, and no reads overlap the region.
        unsafe { *self.slots[i].get() = Some(v) };
    }

    /// Consume the slots in index order. Units that never wrote (only
    /// possible if the region was cut short) yield `None`.
    pub fn into_values(self) -> Vec<Option<T>> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|c| c.into_inner())
            .collect()
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            *st = State::Shutdown;
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Pull chunks until the cursor passes the end, with the thread-local
/// region flag set around body execution. A panicking body poisons the
/// job: the cursor is slammed to the end so every thread stops picking
/// up new chunks, and the first payload is kept for the coordinator.
fn run_job(job: &Job) {
    IN_REGION.with(|c| c.set(true));
    loop {
        let b = job.cursor.fetch_add(job.chunk, Ordering::Relaxed);
        if b >= job.end {
            break;
        }
        let e = (b + job.chunk).min(job.end);
        // SAFETY: `job.body.data` points to the coordinator's borrowed
        // closure, which stays alive until `remaining` drains to zero —
        // and this thread has not decremented yet.
        let r = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            (job.body.call)(job.body.data, b, e)
        }));
        if let Err(payload) = r {
            job.cursor.store(job.end, Ordering::Relaxed);
            let mut slot = job.panic_payload.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            job.poisoned.store(true, Ordering::Release);
            break;
        }
    }
    IN_REGION.with(|c| c.set(false));
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                match &*st {
                    State::Shutdown => return,
                    State::Running(job) => break Arc::clone(job),
                    State::Idle => shared.work_ready.wait(&mut st),
                }
            }
        };
        run_job(&job);
        // Release pairs with the Acquire in `for_chunks`'s wait.
        if job.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = shared.state.lock();
            shared.work_done.notify_all();
        }
        // Wait until the coordinator swaps the job out, so we don't
        // double-count ourselves on the same job.
        let mut st = shared.state.lock();
        while matches!(&*st, State::Running(j) if Arc::ptr_eq(j, &job)) {
            shared.work_done.wait(&mut st);
        }
        drop(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_every_index_once() {
        let pool = WorkPool::new(3);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.for_each(0, 1000, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_reversed_ranges_are_noops() {
        let pool = WorkPool::new(2);
        let count = AtomicU64::new(0);
        pool.for_each(5, 5, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        pool.for_each(9, 3, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shared_pool_is_one_instance_per_width() {
        let a = WorkPool::shared(2);
        let b = WorkPool::shared(2);
        assert!(Arc::ptr_eq(&a, &b), "same width must reuse one pool");
        let c = WorkPool::shared(3);
        assert!(!Arc::ptr_eq(&a, &c), "different widths get distinct pools");
        assert_eq!(a.parallelism(), 3);
        assert_eq!(c.parallelism(), 4);
        // The shared instance still runs regions correctly, including
        // from several submitters at once.
        let hits: Vec<AtomicU64> = (0..256).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let pool = WorkPool::shared(2);
                    pool.for_each(0, 256, 16, |i| {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
    }

    #[test]
    fn sum_matches_serial() {
        let pool = WorkPool::new(4);
        let total = pool.sum(0, 10_000, 64, |i| i as f64);
        let expect = (10_000f64 - 1.0) * 10_000.0 / 2.0;
        assert_eq!(total, expect);
    }

    #[test]
    fn sum_is_worker_count_invariant() {
        // Chunk-ordered partials: the same chunk size must give the
        // bit-identical result on any pool geometry.
        let body = |i: usize| ((i as f64) * 0.1).sin();
        let expect = WorkPool::new(0).sum(0, 5000, 37, body);
        for workers in [1, 2, 5] {
            let pool = WorkPool::new(workers);
            for _ in 0..3 {
                assert_eq!(pool.sum(0, 5000, 37, body).to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn min_matches_serial() {
        let pool = WorkPool::new(4);
        let m = pool.min(0, 1000, 32, |i| ((i as f64) - 500.0).abs());
        assert_eq!(m, 0.0);
        let empty = pool.min(3, 3, 8, |_| 0.0);
        assert_eq!(empty, f64::INFINITY);
    }

    #[test]
    fn for_each_static_runs_on_persistent_workers() {
        let pool = WorkPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let h = Arc::clone(&hits);
            pool.for_each_static(0, 100, 9, move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn borrowed_bodies_run_on_persistent_workers() {
        // The tentpole property: a region whose body borrows stack
        // data runs without spawning threads. Observable as: worker
        // thread ids stay within the fixed pool set across regions.
        let pool = WorkPool::new(3);
        let mut data = vec![0u64; 512];
        let cells: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
        pool.for_each(0, 512, 16, |i| {
            cells[i].store(i as u64 + 1, Ordering::Relaxed);
        });
        for (i, c) in cells.iter().enumerate() {
            data[i] = c.load(Ordering::Relaxed);
            assert_eq!(data[i], i as u64 + 1);
        }
    }

    #[test]
    fn many_tiny_regions_stress() {
        // The hot-kernel-path shape: thousands of small regions in a
        // row through the same persistent workers.
        let pool = WorkPool::new(3);
        let total = AtomicU64::new(0);
        for r in 0..2000 {
            let base = r as u64;
            pool.for_each(0, 10, 3, |i| {
                total.fetch_add(base + i as u64, Ordering::Relaxed);
            });
        }
        // Σ_r (10·r + 45) for r in 0..2000.
        let expect: u64 = (0..2000u64).map(|r| 10 * r + 45).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn zero_worker_pool_still_completes_on_caller() {
        let pool = WorkPool::new(0);
        let total = pool.sum(0, 100, 10, |i| i as f64);
        assert_eq!(total, 4950.0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.for_each_static(0, 10, 3, move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chunk_of_zero_is_clamped() {
        let pool = WorkPool::new(2);
        let count = AtomicU64::new(0);
        pool.for_each(0, 10, 0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn parallelism_reports_workers_plus_caller() {
        assert_eq!(WorkPool::new(3).parallelism(), 4);
        assert_eq!(WorkPool::new(0).parallelism(), 1);
    }

    #[test]
    fn pool_drops_cleanly_while_idle() {
        let pool = WorkPool::new(4);
        drop(pool);
    }

    #[test]
    fn body_panic_propagates_to_the_caller() {
        let pool = WorkPool::new(3);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(0, 100, 1, |i| {
                if i == 41 {
                    panic!("deliberate test panic at 41");
                }
            });
        }));
        let payload = r.expect_err("region must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("deliberate test panic"), "{msg}");
        // The pool survives a poisoned region and runs the next one.
        let count = AtomicU64::new(0);
        pool.for_each(0, 50, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn injected_worker_panic_is_absorbed_and_pool_survives() {
        let pool = WorkPool::new(3);
        assert!(pool.inject_worker_panic(), "marker must round-trip");
        // The pool is immediately usable for real regions afterwards.
        let count = AtomicU64::new(0);
        pool.for_each(0, 64, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
        // And the chaos path works repeatedly.
        assert!(pool.inject_worker_panic());
        assert_eq!(pool.sum(0, 10, 2, |i| i as f64), 45.0);
    }

    #[test]
    fn nested_regions_are_rejected() {
        let pool = WorkPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(0, 8, 1, |_| {
                pool.for_each(0, 4, 1, |_| {});
            });
        }));
        let payload = r.expect_err("nested region must be rejected");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("nested WorkPool parallel regions"), "{msg}");
        // Still usable afterwards.
        assert_eq!(pool.sum(0, 10, 2, |i| i as f64), 45.0);
    }

    #[test]
    fn region_slots_collect_per_unit_results_in_index_order() {
        // The generic write-once slot pattern: one non-Copy result per
        // unit, collected deterministically regardless of pool
        // geometry.
        for workers in [0, 1, 3] {
            let pool = WorkPool::new(workers);
            let slots = RegionSlots::new(64);
            let slots_ref = &slots;
            pool.for_each(0, 64, 1, |i| {
                // SAFETY: `for_each` visits each index exactly once,
                // and the slots are read only after the region returns.
                unsafe { slots_ref.set(i, format!("unit-{i}")) };
            });
            let vals = slots.into_values();
            assert_eq!(vals.len(), 64);
            for (i, v) in vals.into_iter().enumerate() {
                assert_eq!(v.as_deref(), Some(format!("unit-{i}").as_str()));
            }
        }
    }

    #[test]
    fn region_slots_report_len_and_unwritten_slots() {
        let slots: RegionSlots<u32> = RegionSlots::new(3);
        assert_eq!(slots.len(), 3);
        assert!(!slots.is_empty());
        // SAFETY: single-threaded write-once, read after.
        unsafe { slots.set(1, 7) };
        assert_eq!(slots.into_values(), vec![None, Some(7), None]);
        assert!(RegionSlots::<u32>::new(0).is_empty());
    }

    #[test]
    fn concurrent_submitters_serialize_on_the_region_lock() {
        // Several threads share one pool (the runner's per-run pool):
        // regions must queue, not corrupt each other.
        let pool = Arc::new(WorkPool::new(2));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..50 {
                        let local = pool.sum(0, 100, 7, |i| i as f64);
                        assert_eq!(local, 4950.0);
                        total.fetch_add(local as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 4950);
    }
}
