//! A work-sharing thread pool: the OpenMP-like host backend.
//!
//! Persistent worker threads pull fixed-size chunks of the iteration
//! space off an atomic cursor (dynamic scheduling). This is the
//! functional twin of the cost model's parallel path and is built the
//! way the project's concurrency guide prescribes: acquire/release
//! pairing on the job slot, an atomic cursor for the iteration space,
//! and a condition variable for idle parking.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// The unit of work handed to workers for one parallel region.
struct Job {
    /// Type-erased body: `body(begin, end)` processes `[begin, end)`.
    body: Box<dyn Fn(usize, usize) + Send + Sync>,
    cursor: AtomicUsize,
    end: usize,
    chunk: usize,
    /// Workers still inside this job (for completion detection).
    remaining: AtomicUsize,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

enum State {
    Idle,
    Running(Arc<Job>),
    Shutdown,
}

/// A persistent pool of worker threads executing chunked parallel
/// loops.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkPool {
    /// Spawn a pool with `threads` workers (the caller's thread also
    /// participates in loops, so total parallelism is `threads + 1`).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::Idle),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkPool {
            shared,
            workers,
            threads,
        }
    }

    /// Total participating threads (workers + the calling thread).
    pub fn parallelism(&self) -> usize {
        self.threads + 1
    }

    /// Execute `body(i)` for every `i` in `[begin, end)` in parallel,
    /// dynamically scheduled in `chunk`-sized pieces. Blocks until the
    /// whole range is processed.
    pub fn for_each<F>(&self, begin: usize, end: usize, chunk: usize, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.for_chunks(begin, end, chunk, |b, e| {
            for i in b..e {
                body(i);
            }
        });
    }

    /// Chunked variant: `body(b, e)` processes `[b, e)`.
    pub fn for_chunks<F>(&self, begin: usize, end: usize, chunk: usize, body: F)
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        if begin >= end {
            return;
        }
        let chunk = chunk.max(1);
        // Borrowed bodies cannot be handed to the persistent workers
        // (they require 'static), so regions with borrowed captures
        // run on scoped threads; `for_each_static` uses the persistent
        // workers for 'static bodies.
        let cursor = AtomicUsize::new(begin);
        std::thread::scope(|scope| {
            let body = &body;
            let cursor = &cursor;
            let n_workers = self.threads;
            let mut handles = Vec::with_capacity(n_workers);
            for _ in 0..n_workers {
                handles.push(scope.spawn(move || loop {
                    let b = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if b >= end {
                        break;
                    }
                    body(b, (b + chunk).min(end));
                }));
            }
            // The calling thread works too.
            loop {
                let b = cursor.fetch_add(chunk, Ordering::Relaxed);
                if b >= end {
                    break;
                }
                body(b, (b + chunk).min(end));
            }
        });
    }

    /// Parallel region for `'static` bodies, executed on the
    /// *persistent* workers (no per-region thread spawn).
    pub fn for_each_static<F>(&self, begin: usize, end: usize, chunk: usize, body: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        if begin >= end {
            return;
        }
        let chunk = chunk.max(1);
        let job = Arc::new(Job {
            body: Box::new(move |b, e| {
                for i in b..e {
                    body(i);
                }
            }),
            cursor: AtomicUsize::new(begin),
            end,
            chunk,
            remaining: AtomicUsize::new(self.threads),
        });
        {
            let mut st = self.shared.state.lock();
            *st = State::Running(Arc::clone(&job));
            self.shared.work_ready.notify_all();
        }
        // The caller participates as well.
        run_job(&job);
        // Wait for the workers to drain the job.
        let mut st = self.shared.state.lock();
        while job.remaining.load(Ordering::Acquire) != 0 {
            self.shared.work_done.wait(&mut st);
        }
        *st = State::Idle;
        // Wake workers parked on the job-swap wait so they return to
        // the ready queue.
        self.shared.work_done.notify_all();
    }

    /// Parallel sum reduction: `Σ body(i)` over `[begin, end)` with a
    /// deterministic per-chunk partial order (chunk partials summed in
    /// chunk order).
    pub fn sum<F>(&self, begin: usize, end: usize, chunk: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Send + Sync,
    {
        if begin >= end {
            return 0.0;
        }
        let chunk = chunk.max(1);
        let n_chunks = (end - begin).div_ceil(chunk);
        let partials: Vec<Mutex<f64>> = (0..n_chunks).map(|_| Mutex::new(0.0)).collect();
        let partials_ref = &partials;
        self.for_chunks(begin, end, chunk, move |b, e| {
            let mut acc = 0.0;
            for i in b..e {
                acc += body(i);
            }
            let idx = (b - begin) / chunk;
            *partials_ref[idx].lock() = acc;
        });
        partials.iter().map(|m| *m.lock()).sum()
    }

    /// Parallel min reduction over `body(i)`.
    pub fn min<F>(&self, begin: usize, end: usize, chunk: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Send + Sync,
    {
        if begin >= end {
            return f64::INFINITY;
        }
        let chunk = chunk.max(1);
        let n_chunks = (end - begin).div_ceil(chunk);
        let partials: Vec<Mutex<f64>> = (0..n_chunks).map(|_| Mutex::new(f64::INFINITY)).collect();
        let partials_ref = &partials;
        self.for_chunks(begin, end, chunk, move |b, e| {
            let mut acc = f64::INFINITY;
            for i in b..e {
                acc = acc.min(body(i));
            }
            let idx = (b - begin) / chunk;
            *partials_ref[idx].lock() = acc;
        });
        partials
            .iter()
            .map(|m| *m.lock())
            .fold(f64::INFINITY, f64::min)
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            *st = State::Shutdown;
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn run_job(job: &Job) {
    loop {
        let b = job.cursor.fetch_add(job.chunk, Ordering::Relaxed);
        if b >= job.end {
            break;
        }
        (job.body)(b, (b + job.chunk).min(job.end));
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                match &*st {
                    State::Shutdown => return,
                    State::Running(job) => break Arc::clone(job),
                    State::Idle => shared.work_ready.wait(&mut st),
                }
            }
        };
        run_job(&job);
        // Release pairs with the Acquire in `for_each_static`'s wait.
        if job.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = shared.state.lock();
            shared.work_done.notify_all();
        }
        // Wait until the coordinator swaps the job out, so we don't
        // double-count ourselves on the same job.
        let mut st = shared.state.lock();
        while matches!(&*st, State::Running(j) if Arc::ptr_eq(j, &job)) {
            shared.work_done.wait(&mut st);
        }
        drop(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_every_index_once() {
        let pool = WorkPool::new(3);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.for_each(0, 1000, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_reversed_ranges_are_noops() {
        let pool = WorkPool::new(2);
        let count = AtomicU64::new(0);
        pool.for_each(5, 5, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        pool.for_each(9, 3, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn sum_matches_serial() {
        let pool = WorkPool::new(4);
        let total = pool.sum(0, 10_000, 64, |i| i as f64);
        let expect = (10_000f64 - 1.0) * 10_000.0 / 2.0;
        assert_eq!(total, expect);
    }

    #[test]
    fn min_matches_serial() {
        let pool = WorkPool::new(4);
        let m = pool.min(0, 1000, 32, |i| ((i as f64) - 500.0).abs());
        assert_eq!(m, 0.0);
        let empty = pool.min(3, 3, 8, |_| 0.0);
        assert_eq!(empty, f64::INFINITY);
    }

    #[test]
    fn for_each_static_runs_on_persistent_workers() {
        let pool = WorkPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let h = Arc::clone(&hits);
            pool.for_each_static(0, 100, 9, move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn zero_worker_pool_still_completes_on_caller() {
        let pool = WorkPool::new(0);
        let total = pool.sum(0, 100, 10, |i| i as f64);
        assert_eq!(total, 4950.0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.for_each_static(0, 10, 3, move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chunk_of_zero_is_clamped() {
        let pool = WorkPool::new(2);
        let count = AtomicU64::new(0);
        pool.for_each(0, 10, 0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn parallelism_reports_workers_plus_caller() {
        assert_eq!(WorkPool::new(3).parallelism(), 4);
        assert_eq!(WorkPool::new(0).parallelism(), 1);
    }

    #[test]
    fn pool_drops_cleanly_while_idle() {
        let pool = WorkPool::new(4);
        drop(pool);
    }
}
