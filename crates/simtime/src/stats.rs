//! Streaming statistics for kernel and phase timings.
//!
//! The runner aggregates tens of thousands of kernel launches per sweep
//! point; these accumulators are O(1) per sample and allocation-free,
//! per the project's hot-loop discipline.

use crate::time::SimDuration;

/// Welford one-pass mean/variance with min/max tracking.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Add a duration sample in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); zero for fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction of
    /// per-thread statistics; Chan et al. update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n_total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `n` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            // Guard the edge where floating-point rounding lands exactly
            // on the upper bound.
            let i = i.min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The inclusive lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + w * i as f64
    }

    /// An approximate quantile (0.0..=1.0) from bucket midpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + w * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        b.push(3.0);
        a.merge(&b); // empty <- nonempty
        assert_eq!(a.count(), 1);
        let empty = Welford::new();
        a.merge(&empty); // nonempty <- empty
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(10.0);
        h.push(123.0);
        assert_eq!(h.count(), 13);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert!(h.bucket_counts().iter().all(|&c| c == 1));
        assert_eq!(h.bucket_lo(3), 3.0);
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for i in 0..1000 {
            h.push((i % 100) as f64);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.50);
        let q90 = h.quantile(0.90);
        assert!(q25 <= q50 && q50 <= q90);
        assert!((q50 - 50.0).abs() < 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[allow(clippy::excessive_precision)]
    fn histogram_edge_rounding_stays_in_range() {
        let mut h = Histogram::new(0.0, 0.3, 3);
        // 0.3 * (2/3) style values can round to the bucket count.
        h.push(0.29999999999999999);
        assert_eq!(h.count(), 1);
    }
}
