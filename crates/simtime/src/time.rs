//! Integer-nanosecond virtual time.
//!
//! Simulated time is kept in `u64` nanoseconds. At that resolution a
//! clock can represent ~584 years of simulated execution, far beyond any
//! sweep in the paper (whose longest run is ~80 seconds). All arithmetic
//! saturates rather than wrapping so that a mis-calibrated cost model
//! degrades into "very slow" instead of into undefined orderings.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on a simulated clock, in nanoseconds since the epoch
/// (the start of the simulated run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulated epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is later
    /// (clocks merged from different ranks may be briefly out of order).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants — the merge operation used when a
    /// message or a barrier synchronizes two ranks' clocks.
    #[inline]
    pub fn merge(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds. Negative and NaN inputs clamp
    /// to zero; values beyond the representable range (including +inf)
    /// saturate.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Construct from fractional nanoseconds, rounding to nearest.
    /// Negative and NaN inputs clamp to zero; +inf saturates.
    pub fn from_nanos_f64(ns: f64) -> Self {
        if ns.is_nan() || ns <= 0.0 {
            return SimDuration::ZERO;
        }
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration((ns + 0.5) as u64)
        }
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float factor, saturating.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_nanos_f64(self.0 as f64 * factor)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        SimDuration(self.0.min(other.0))
    }

    /// Ratio of `self` to `other`; `f64::INFINITY` when `other` is zero
    /// and `self` nonzero; 1.0 when both are zero.
    pub fn ratio(self, other: Self) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let early = SimTime::from_nanos(3);
        let late = SimTime::from_nanos(9);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(late - early, SimDuration::from_nanos(6));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::from_nanos(u64::MAX) + SimDuration::from_secs(1);
        assert_eq!(t.as_nanos(), u64::MAX);
        let d = SimDuration::from_nanos(u64::MAX) + SimDuration::from_nanos(1);
        assert_eq!(d.as_nanos(), u64::MAX);
    }

    #[test]
    fn merge_takes_the_max() {
        let a = SimTime::from_nanos(7);
        let b = SimTime::from_nanos(4);
        assert_eq!(a.merge(b), a);
        assert_eq!(b.merge(a), a);
    }

    #[test]
    fn from_secs_f64_handles_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn from_nanos_f64_rounds_to_nearest() {
        assert_eq!(SimDuration::from_nanos_f64(1.4).as_nanos(), 1);
        assert_eq!(SimDuration::from_nanos_f64(1.6).as_nanos(), 2);
        assert_eq!(SimDuration::from_nanos_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let z = SimDuration::ZERO;
        let one = SimDuration::from_nanos(1);
        assert_eq!(one.ratio(z), f64::INFINITY);
        assert_eq!(z.ratio(z), 1.0);
        assert!((SimDuration::from_secs(3).ratio(SimDuration::from_secs(2)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn division_by_zero_clamps_to_one() {
        assert_eq!(SimDuration::from_nanos(10) / 0, SimDuration::from_nanos(10));
        assert_eq!(SimDuration::from_nanos(10) / 2, SimDuration::from_nanos(5));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_folds_saturating() {
        let total: SimDuration = (0..5).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }
}
