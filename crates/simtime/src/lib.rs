//! # hsim-time
//!
//! Virtual-time foundation for the `heterosim` node simulator.
//!
//! Every simulated component — GPU kernels, host loops, MPI messages —
//! charges *simulated nanoseconds* to a clock rather than consuming wall
//! time. This keeps experiment sweeps deterministic and lets a laptop
//! reproduce the scheduling economics of a 16-core + 4-GPU node.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond newtypes with
//!   saturating arithmetic (no silent overflow in long sweeps),
//! * [`RankClock`] — the per-MPI-rank clock that the rest of the stack
//!   advances and merges (Lamport-style) on communication,
//! * [`stats`] — Welford mean/variance, min/max, and fixed-bucket
//!   histograms for kernel-time aggregation,
//! * [`trace`] — lightweight span traces with an ASCII Gantt renderer
//!   used by examples to show who computed when,
//! * [`rng`] — a SplitMix64 generator for deterministic workload
//!   perturbations without external dependencies.

#![forbid(unsafe_code)]

pub mod clock;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::RankClock;
pub use rng::SplitMix64;
pub use stats::{Histogram, Welford};
pub use time::{SimDuration, SimTime};
pub use trace::{Span, SpanCategory, Trace};
