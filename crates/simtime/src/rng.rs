//! SplitMix64: a tiny, fast, deterministic generator.
//!
//! Used wherever the simulator needs reproducible jitter (e.g. load
//! perturbations in the balancer tests) without pulling `rand` into the
//! foundation crate. SplitMix64 passes BigCrush and is the recommended
//! seeder for xoshiro-family generators.

/// SplitMix64 state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for simulation jitter purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the public SplitMix64
        // reference implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_f64_empty_range_returns_lo() {
        let mut r = SplitMix64::new(5);
        assert_eq!(r.next_range_f64(3.0, 3.0), 3.0);
        assert_eq!(r.next_range_f64(3.0, 2.0), 3.0);
        let x = r.next_range_f64(2.0, 4.0);
        assert!((2.0..4.0).contains(&x));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(2024);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
