//! Per-rank virtual clocks.
//!
//! Each simulated MPI rank owns a [`RankClock`]. Compute and
//! communication charge durations to it; synchronization points merge
//! clocks Lamport-style (`max`). Between synchronization points the
//! clock also accumulates per-category buckets so that the reporting
//! layer can attribute time to compute / communication / launch
//! overhead / memory traffic, which is how the paper's discussion
//! reasons about the modes.

use crate::time::{SimDuration, SimTime};

/// Broad attribution buckets for charged time.
///
/// These mirror the cost terms the paper identifies: kernel compute,
/// kernel-launch overhead, data transfer / memory traffic, MPI
/// communication, and host-side serial control code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChargeKind {
    /// Arithmetic inside a kernel (CPU or GPU).
    Compute,
    /// Kernel launch overhead (host → device submit path).
    Launch,
    /// Memory traffic: UM migration, host staging, pool operations.
    Memory,
    /// MPI point-to-point and collective time.
    Comm,
    /// Serial host control code between kernels.
    Control,
    /// Time spent waiting on another rank or on the device.
    Wait,
}

impl ChargeKind {
    /// All kinds, in reporting order.
    pub const ALL: [ChargeKind; 6] = [
        ChargeKind::Compute,
        ChargeKind::Launch,
        ChargeKind::Memory,
        ChargeKind::Comm,
        ChargeKind::Control,
        ChargeKind::Wait,
    ];

    fn index(self) -> usize {
        match self {
            ChargeKind::Compute => 0,
            ChargeKind::Launch => 1,
            ChargeKind::Memory => 2,
            ChargeKind::Comm => 3,
            ChargeKind::Control => 4,
            ChargeKind::Wait => 5,
        }
    }

    /// Short label used in CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            ChargeKind::Compute => "compute",
            ChargeKind::Launch => "launch",
            ChargeKind::Memory => "memory",
            ChargeKind::Comm => "comm",
            ChargeKind::Control => "control",
            ChargeKind::Wait => "wait",
        }
    }
}

/// The virtual clock owned by one simulated rank.
#[derive(Debug, Clone)]
pub struct RankClock {
    rank: usize,
    now: SimTime,
    buckets: [SimDuration; 6],
}

impl RankClock {
    /// A fresh clock at the simulated epoch.
    pub fn new(rank: usize) -> Self {
        RankClock {
            rank,
            now: SimTime::ZERO,
            buckets: [SimDuration::ZERO; 6],
        }
    }

    /// The rank this clock belongs to.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Charge `d` of kind `kind`, advancing the clock.
    #[inline]
    pub fn charge(&mut self, kind: ChargeKind, d: SimDuration) {
        self.now += d;
        self.buckets[kind.index()] += d;
    }

    /// Advance to `t` if it is in the future, attributing the gap to
    /// [`ChargeKind::Wait`]. Used when a receive or a device
    /// synchronization blocks until another timeline catches up.
    pub fn wait_until(&mut self, t: SimTime) {
        if t > self.now {
            let gap = t - self.now;
            self.now = t;
            self.buckets[ChargeKind::Wait.index()] += gap;
        }
    }

    /// Merge with another rank's announced instant (e.g. a message
    /// arrival time): identical to [`RankClock::wait_until`].
    #[inline]
    pub fn merge(&mut self, t: SimTime) {
        self.wait_until(t);
    }

    /// Time accumulated in one bucket.
    #[inline]
    pub fn bucket(&self, kind: ChargeKind) -> SimDuration {
        self.buckets[kind.index()]
    }

    /// Sum of all buckets (equals `now` for a clock that never merged
    /// forward past its own charges).
    pub fn total_charged(&self) -> SimDuration {
        self.buckets.iter().copied().sum()
    }

    /// Reset the attribution buckets but keep the current instant.
    /// Called by the runner at cycle boundaries so per-cycle breakdowns
    /// can be reported.
    pub fn reset_buckets(&mut self) {
        self.buckets = [SimDuration::ZERO; 6];
    }

    /// A snapshot of (kind, duration) pairs in reporting order.
    pub fn breakdown(&self) -> Vec<(ChargeKind, SimDuration)> {
        ChargeKind::ALL
            .iter()
            .map(|&k| (k, self.buckets[k.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_and_attributes() {
        let mut c = RankClock::new(3);
        c.charge(ChargeKind::Compute, SimDuration::from_nanos(100));
        c.charge(ChargeKind::Comm, SimDuration::from_nanos(40));
        assert_eq!(c.rank(), 3);
        assert_eq!(c.now(), SimTime::from_nanos(140));
        assert_eq!(c.bucket(ChargeKind::Compute), SimDuration::from_nanos(100));
        assert_eq!(c.bucket(ChargeKind::Comm), SimDuration::from_nanos(40));
        assert_eq!(c.bucket(ChargeKind::Launch), SimDuration::ZERO);
        assert_eq!(c.total_charged(), SimDuration::from_nanos(140));
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let mut c = RankClock::new(0);
        c.charge(ChargeKind::Compute, SimDuration::from_nanos(50));
        c.wait_until(SimTime::from_nanos(30)); // in the past: no-op
        assert_eq!(c.now(), SimTime::from_nanos(50));
        assert_eq!(c.bucket(ChargeKind::Wait), SimDuration::ZERO);
        c.wait_until(SimTime::from_nanos(80));
        assert_eq!(c.now(), SimTime::from_nanos(80));
        assert_eq!(c.bucket(ChargeKind::Wait), SimDuration::from_nanos(30));
    }

    #[test]
    fn merge_is_wait_until() {
        let mut a = RankClock::new(0);
        let mut b = RankClock::new(1);
        a.charge(ChargeKind::Compute, SimDuration::from_nanos(10));
        b.charge(ChargeKind::Compute, SimDuration::from_nanos(25));
        a.merge(b.now());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn reset_buckets_keeps_now() {
        let mut c = RankClock::new(0);
        c.charge(ChargeKind::Launch, SimDuration::from_micros(2));
        c.reset_buckets();
        assert_eq!(c.now(), SimTime::from_nanos(2_000));
        assert_eq!(c.total_charged(), SimDuration::ZERO);
    }

    #[test]
    fn breakdown_reports_all_kinds_in_order() {
        let mut c = RankClock::new(0);
        c.charge(ChargeKind::Memory, SimDuration::from_nanos(7));
        let bd = c.breakdown();
        assert_eq!(bd.len(), 6);
        assert_eq!(bd[2], (ChargeKind::Memory, SimDuration::from_nanos(7)));
        assert!(bd.iter().all(|(k, _)| ChargeKind::ALL.contains(k)));
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = ChargeKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
