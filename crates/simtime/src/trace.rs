//! Span traces and an ASCII Gantt renderer.
//!
//! The cooperative runner can record `(rank, category, start, end,
//! label)` spans. Examples render them as a terminal Gantt chart, which
//! makes the paper's Figures 1–4 (who computes when, on what resource)
//! directly observable from a run.

use crate::time::{SimDuration, SimTime};

/// Which resource a span occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanCategory {
    /// CPU-core kernel execution.
    CpuKernel,
    /// GPU kernel execution (charged on the device timeline).
    GpuKernel,
    /// Kernel launch / driver submit path.
    Launch,
    /// Halo exchange and collectives.
    Comm,
    /// Unified-memory or staging traffic.
    Memory,
    /// Waiting on a peer or device.
    Idle,
}

impl SpanCategory {
    /// One-character glyph for the Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            SpanCategory::CpuKernel => 'C',
            SpanCategory::GpuKernel => 'G',
            SpanCategory::Launch => 'l',
            SpanCategory::Comm => 'x',
            SpanCategory::Memory => 'm',
            SpanCategory::Idle => '.',
        }
    }
}

/// One recorded interval on a rank's timeline.
#[derive(Debug, Clone)]
pub struct Span {
    pub rank: usize,
    pub category: SpanCategory,
    pub start: SimTime,
    pub end: SimTime,
    pub label: &'static str,
}

impl Span {
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A collection of spans with rendering helpers.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    spans: Vec<Span>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace: `record` is a no-op. This is the default so hot
    /// paths pay one branch when tracing is off.
    pub fn disabled() -> Self {
        Trace {
            spans: Vec::new(),
            enabled: false,
        }
    }

    /// An enabled trace that stores every recorded span.
    pub fn enabled() -> Self {
        Trace {
            spans: Vec::new(),
            enabled: true,
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span if tracing is enabled. Spans with `end < start` are
    /// clamped to zero length rather than rejected.
    pub fn record(
        &mut self,
        rank: usize,
        category: SpanCategory,
        start: SimTime,
        end: SimTime,
        label: &'static str,
    ) {
        if !self.enabled {
            return;
        }
        let end = end.merge(start);
        self.spans.push(Span {
            rank,
            category,
            start,
            end,
            label,
        });
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Merge spans recorded by another trace (e.g. another rank thread).
    pub fn absorb(&mut self, other: Trace) {
        if self.enabled {
            self.spans.extend(other.spans);
        }
    }

    /// Total time attributed to `category` across all spans.
    pub fn total(&self, category: SpanCategory) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.category == category)
            .map(Span::duration)
            .sum()
    }

    /// The latest end time over all spans (the makespan).
    pub fn makespan(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::merge)
    }

    /// Serialize spans to CSV (`rank,category,start_ns,end_ns,label`)
    /// for external tooling.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,category,start_ns,end_ns,label\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                s.rank,
                s.category.glyph(),
                s.start.as_nanos(),
                s.end.as_nanos(),
                s.label
            ));
        }
        out
    }

    /// Render an ASCII Gantt chart, one row per rank, `width` columns
    /// covering `[0, makespan]`. Later spans overwrite earlier ones in
    /// the same cell; empty cells are spaces.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let makespan = self.makespan();
        if makespan == SimTime::ZERO || self.spans.is_empty() {
            return String::from("(empty trace)\n");
        }
        let max_rank = self.spans.iter().map(|s| s.rank).max().unwrap_or(0);
        let mut rows = vec![vec![' '; width]; max_rank + 1];
        let span_ns = makespan.as_nanos() as f64;
        for s in &self.spans {
            let c0 = ((s.start.as_nanos() as f64 / span_ns) * width as f64) as usize;
            let c1 = ((s.end.as_nanos() as f64 / span_ns) * width as f64).ceil() as usize;
            let c1 = c1.clamp(c0 + 1, width);
            for cell in &mut rows[s.rank][c0.min(width - 1)..c1] {
                *cell = s.category.glyph();
            }
        }
        let mut out = String::with_capacity((width + 16) * rows.len());
        for (rank, row) in rows.iter().enumerate() {
            out.push_str(&format!("r{rank:>3} |"));
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "      0{:>w$}\n",
            format!("{makespan}"),
            w = width
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(0, SpanCategory::CpuKernel, t(0), t(10), "k");
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn enabled_trace_records_and_totals() {
        let mut tr = Trace::enabled();
        tr.record(0, SpanCategory::GpuKernel, t(0), t(10), "a");
        tr.record(1, SpanCategory::GpuKernel, t(5), t(25), "b");
        tr.record(0, SpanCategory::Comm, t(10), t(14), "halo");
        assert_eq!(tr.len(), 3);
        assert_eq!(
            tr.total(SpanCategory::GpuKernel),
            SimDuration::from_nanos(30)
        );
        assert_eq!(tr.total(SpanCategory::Comm), SimDuration::from_nanos(4));
        assert_eq!(tr.makespan(), t(25));
    }

    #[test]
    fn inverted_spans_clamp_to_zero_length() {
        let mut tr = Trace::enabled();
        tr.record(0, SpanCategory::Idle, t(20), t(5), "bad");
        assert_eq!(tr.spans()[0].duration(), SimDuration::ZERO);
    }

    #[test]
    fn absorb_merges_spans() {
        let mut a = Trace::enabled();
        let mut b = Trace::enabled();
        a.record(0, SpanCategory::CpuKernel, t(0), t(5), "a");
        b.record(1, SpanCategory::CpuKernel, t(0), t(7), "b");
        a.absorb(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn gantt_renders_one_row_per_rank() {
        let mut tr = Trace::enabled();
        tr.record(0, SpanCategory::GpuKernel, t(0), t(100), "g");
        tr.record(1, SpanCategory::CpuKernel, t(0), t(50), "c");
        let chart = tr.render_gantt(40);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3); // two ranks + axis
        assert!(lines[0].contains('G'));
        assert!(lines[1].contains('C'));
        // Rank 1 busy only half the time: fewer glyphs than rank 0.
        let g = lines[0].matches('G').count();
        let c = lines[1].matches('C').count();
        assert!(c < g);
    }

    #[test]
    fn gantt_empty_trace_is_graceful() {
        let tr = Trace::enabled();
        assert_eq!(tr.render_gantt(40), "(empty trace)\n");
    }

    #[test]
    fn csv_has_one_line_per_span_plus_header() {
        let mut tr = Trace::enabled();
        tr.record(0, SpanCategory::GpuKernel, t(0), t(10), "a");
        tr.record(1, SpanCategory::Comm, t(5), t(9), "halo");
        let csv = tr.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("1,x,5,9,halo"));
    }
}
