//! Thin HTTP/1.1 front end over pure-std TCP — no external deps, no
//! async runtime. One connection is handled at a time (`Connection:
//! close`); concurrency lives in the server's worker pool behind
//! [`Server::submit`], not in the socket layer.
//!
//! Endpoints:
//!
//! * `GET /healthz` — liveness, `200 ok`.
//! * `GET /metrics` — the telemetry registry in Prometheus text
//!   format, including the `serve_*` counters and latency quantiles.
//! * `POST /run` — body is `key=value` pairs (`&`- or
//!   newline-separated): `mode=default|mps|hetero|cpuonly`,
//!   `grid=X,Y,Z`, `cycles=N`, `balanced=0|1` (default 1),
//!   `problem=sedov|sod|perturbed`,
//!   `scenario=sedov|sod|noh|taylor-green` (first-class setups; folds
//!   into the content hash through the selected problem),
//!   `particles=COUNT` (enable the tracer-particle phase),
//!   `deadline_ms=N`. Replies with the rendered run report;
//!   `X-Cache: hit|miss` and `X-Content-Key` carry the cache
//!   disposition and key.
//! * `GET /figure/<id>` — the figure sweep CSV (e.g. `/figure/fig14`).
//!
//! Typed failures map to statuses: queue full → 429, deadline → 504,
//! run failure → 422, bad request → 400, shutdown → 503.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use hsim_core::runner::{Problem, RunConfig};
use hsim_core::{ExecMode, Scenario};
use hsim_particles::ParticlesConfig;

use crate::server::{Request, ServeError, Server};

/// Socket read timeout: a stalled client must not wedge the accept
/// loop forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Serve HTTP requests from `listener` until `max_requests` have been
/// answered (`None` = forever). Bind the listener yourself (port 0
/// works for tests) so the address is known before serving starts.
pub fn serve(
    server: &Server,
    listener: TcpListener,
    max_requests: Option<usize>,
) -> std::io::Result<()> {
    for (served, stream) in listener.incoming().enumerate() {
        let stream = stream?;
        // A single misbehaving client should cost one connection, not
        // the server: IO errors are per-connection and non-fatal.
        let _ = handle_connection(server, stream);
        if max_requests.is_some_and(|m| served + 1 >= m) {
            break;
        }
    }
    Ok(())
}

fn handle_connection(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return respond(stream, 400, "malformed request line\n", &[]),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length.min(1 << 20)];
    if !body.is_empty() {
        reader.read_exact(&mut body)?;
    }
    let body = String::from_utf8_lossy(&body).into_owned();

    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => respond(stream, 200, "ok\n", &[]),
        ("GET", "/metrics") => respond(stream, 200, &server.metrics_text(), &[]),
        ("POST", "/run") => match parse_run_body(&body) {
            Ok(req) => match server.submit(req) {
                Ok(resp) => {
                    let headers = [
                        format!("X-Cache: {}", if resp.cached { "hit" } else { "miss" }),
                        format!("X-Content-Key: {:016x}", resp.key),
                    ];
                    respond_bytes(stream, 200, &resp.outcome.bytes, &headers)
                }
                Err(e) => respond(stream, e.http_status(), &format!("{e}\n"), &[]),
            },
            Err(e) => respond(stream, e.http_status(), &format!("{e}\n"), &[]),
        },
        ("GET", p) if p.starts_with("/figure/") => {
            let id = &p["/figure/".len()..];
            let modes = [ExecMode::Default, ExecMode::mps4(), ExecMode::hetero()];
            match server.figure_csv(id, &modes) {
                Ok(csv) => respond(stream, 200, &csv, &[]),
                Err(e) => respond(stream, e.http_status(), &format!("{e}\n"), &[]),
            }
        }
        _ => respond(stream, 404, "not found\n", &[]),
    }
}

/// Parse the `POST /run` body into a [`Request`].
fn parse_run_body(body: &str) -> Result<Request, ServeError> {
    let mut cfg = RunConfig::sweep((64, 48, 32), ExecMode::hetero());
    let mut balanced = true;
    let mut deadline = None;
    for pair in body.split(['&', '\n']) {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| ServeError::BadRequest(format!("expected key=value, got `{pair}`")))?;
        let bad = |what: &str| ServeError::BadRequest(format!("bad {what} `{v}`"));
        match k {
            "mode" => {
                cfg.mode = match v {
                    "default" => ExecMode::Default,
                    "mps" => ExecMode::mps4(),
                    "hetero" => ExecMode::hetero(),
                    "cpuonly" => ExecMode::CpuOnly,
                    _ => return Err(bad("mode")),
                }
            }
            "grid" => {
                let dims: Vec<usize> = v
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|_| bad("grid")))
                    .collect::<Result<_, _>>()?;
                cfg.grid = match dims.as_slice() {
                    [x, y, z] => (*x, *y, *z),
                    _ => return Err(bad("grid")),
                };
            }
            "cycles" => cfg.cycles = v.parse().map_err(|_| bad("cycles"))?,
            "problem" => {
                cfg.problem = match v {
                    "sedov" => Problem::default(),
                    "sod" => Problem::Sod(Default::default()),
                    "perturbed" => Problem::Perturbed(Default::default()),
                    _ => return Err(bad("problem")),
                }
            }
            "scenario" => cfg.problem = Scenario::parse(v).map_err(|_| bad("scenario"))?.problem(),
            "particles" => {
                cfg.particles = Some(ParticlesConfig {
                    count: v.parse().map_err(|_| bad("particles"))?,
                    ..ParticlesConfig::default()
                })
            }
            "balanced" => {
                balanced = match v {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    _ => return Err(bad("balanced")),
                }
            }
            "deadline_ms" => {
                deadline = Some(Duration::from_millis(
                    v.parse().map_err(|_| bad("deadline_ms"))?,
                ))
            }
            _ => return Err(ServeError::BadRequest(format!("unknown key `{k}`"))),
        }
    }
    Ok(Request {
        cfg,
        balanced,
        deadline,
    })
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn respond(
    stream: TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[String],
) -> std::io::Result<()> {
    respond_bytes(stream, status, body.as_bytes(), extra_headers)
}

fn respond_bytes(
    mut stream: TcpStream,
    status: u16,
    body: &[u8],
    extra_headers: &[String],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        status_reason(status),
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_body_parses_and_defaults() {
        let req = parse_run_body("mode=default&grid=24,16,8&cycles=3").expect("parses");
        assert_eq!(req.cfg.mode, ExecMode::Default);
        assert_eq!(req.cfg.grid, (24, 16, 8));
        assert_eq!(req.cfg.cycles, 3);
        assert!(req.balanced);
        assert!(req.deadline.is_none());

        let req = parse_run_body("balanced=0\ndeadline_ms=250").expect("parses");
        assert!(!req.balanced);
        assert_eq!(req.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn scenario_and_particles_keys_select_distinct_cache_keys() {
        let base = parse_run_body("grid=24,16,8&cycles=2").expect("parses");
        let mut seen = vec![base.cfg.content_hash()];
        for body in [
            "grid=24,16,8&cycles=2&scenario=sod",
            "grid=24,16,8&cycles=2&scenario=noh",
            "grid=24,16,8&cycles=2&scenario=taylor-green",
            "grid=24,16,8&cycles=2&particles=256",
        ] {
            let req = parse_run_body(body).expect("parses");
            let h = req.cfg.content_hash();
            assert!(!seen.contains(&h), "body `{body}` aliased a cache key");
            seen.push(h);
        }
        // `scenario=sedov` is the default problem: same content key.
        let sedov = parse_run_body("grid=24,16,8&cycles=2&scenario=sedov").expect("parses");
        assert_eq!(sedov.cfg.content_hash(), base.cfg.content_hash());
        let parts = parse_run_body("particles=512").expect("parses");
        assert_eq!(parts.cfg.particles.map(|p| p.count), Some(512));
    }

    #[test]
    fn run_body_rejections_are_typed() {
        for body in [
            "mode=warp",
            "grid=1,2",
            "cycles=ten",
            "balanced=maybe",
            "nonsense",
            "frobnicate=1",
            "scenario=vortex",
            "particles=lots",
        ] {
            let err = parse_run_body(body).unwrap_err();
            assert_eq!(err.http_status(), 400, "body `{body}` → {err:?}");
        }
    }

    #[test]
    fn status_reasons_cover_every_serve_error() {
        for e in [
            ServeError::QueueFull { capacity: 1 },
            ServeError::DeadlineExpired { waited_ms: 1 },
            ServeError::Run(String::new()),
            ServeError::BadRequest(String::new()),
            ServeError::ShuttingDown,
        ] {
            assert_ne!(status_reason(e.http_status()), "Error");
        }
    }
}
