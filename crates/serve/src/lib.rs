//! # hsim-serve
//!
//! Simulation-as-a-service: a long-lived server that amortizes
//! calibration (the `auto_tile` probe, the persistent host
//! [`hsim_raja::WorkPool`]) across many runs and caches completed
//! results keyed by [`hsim_core::runner::RunConfig::content_hash`].
//! Because runs are deterministic in virtual time, a cache hit returns
//! bytes *identical* to re-executing the request — hits are exact, not
//! approximate.
//!
//! The paper's heterogeneous decomposition only pays off once its
//! per-machine calibration is reused; a server that calibrates once
//! and serves many configurations is the production-scale shape of
//! that observation.
//!
//! Two front ends share one [`Server`]:
//!
//! * the in-process client API ([`Server::submit`],
//!   [`Server::figure_csv`]) — what the bench load driver and tests
//!   drive;
//! * a thin HTTP/1.1 interface over pure-std TCP ([`http`]) —
//!   `GET /healthz`, `GET /metrics` (Prometheus text),
//!   `POST /run`, `GET /figure/<id>` — behind `heterosim serve`.
//!
//! Admission control is a bounded queue with typed rejection
//! ([`ServeError::QueueFull`], HTTP 429) when full, LPT (longest
//! processing time first) ordering of queued work generalizing the
//! sweep engine's batching, and per-request deadlines with graceful
//! cancellation ([`ServeError::DeadlineExpired`], HTTP 504).
//! Everything the server does is visible in its `serve_*` telemetry
//! counters, exported live at `/metrics`.

#![forbid(unsafe_code)]

pub mod http;
pub mod server;

pub use server::{
    render_response, Request, Response, RunOutcome, ServeError, ServeStats, Server, ServerConfig,
};
