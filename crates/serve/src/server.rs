//! The long-lived simulation server: content-hash result cache,
//! single-flight execution, bounded LPT admission queue, deadlines,
//! and `serve_*` telemetry.
//!
//! ## Why sharing is sound
//!
//! Runs are deterministic in virtual time: a `RunConfig` fully
//! determines the report bytes, so the cache key is
//! [`RunConfig::content_hash`] (plus the balanced/direct flag) and a
//! hit is byte-exact. Calibration state is process-wide by design —
//! the `auto_tile` probe is a `OnceLock` and the host
//! [`hsim_raja::WorkPool`] is obtained via `WorkPool::shared`, whose
//! region lock serializes concurrent submitters — so any number of
//! worker threads can execute requests at once without re-probing or
//! re-spawning anything.
//!
//! ## Request lifecycle
//!
//! ```text
//! submit ── cache hit ──────────────────────────────► bytes (serve_hits)
//!    │
//!    ├── in flight (same key) ── join, wait ────────► bytes (serve_hits)
//!    │
//!    └── first flight ── queue full ────────────────► QueueFull (serve_rejected)
//!                   └── admitted (serve_admitted, serve_misses)
//!                         └── worker pops LPT-max ──► run → cache → bytes
//! ```
//!
//! A waiter whose deadline passes gets [`ServeError::DeadlineExpired`]
//! immediately; if *every* waiter on a queued task has given up by the
//! time a worker picks it up, the task is dropped without running
//! (`serve_deadline_drops`) — graceful cancellation, not a hang.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hsim_core::confhash::ContentHasher;
use hsim_core::runner::RunConfig;
use hsim_core::{calib, figures, ExecMode, RunResult};
use hsim_telemetry::{Counter, Gauge, Metrics};

/// Lock a mutex, recovering the data from a poisoned lock: server
/// state is plain data (maps, vectors, counters) that stays coherent
/// even if a panicking thread held the guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor threads. `0` accepts work but never runs it — only
    /// useful in admission tests.
    pub workers: usize,
    /// Bound on the admission queue; submissions beyond it are
    /// rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Pre-calibrated tile shape (e.g. from a previous process via
    /// [`calib::tile_spec`]); `None` runs the one-shot probe.
    pub tile: Option<[usize; 2]>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            default_deadline: None,
            tile: None,
        }
    }
}

/// Typed request failures; each maps onto an HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded admission queue is full (HTTP 429).
    QueueFull { capacity: usize },
    /// The caller's deadline passed before the result was ready
    /// (HTTP 504).
    DeadlineExpired { waited_ms: u64 },
    /// The run itself failed (HTTP 422).
    Run(String),
    /// The request could not be interpreted (HTTP 400).
    BadRequest(String),
    /// The server is shutting down (HTTP 503).
    ShuttingDown,
}

impl ServeError {
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::QueueFull { .. } => 429,
            ServeError::DeadlineExpired { .. } => 504,
            ServeError::Run(_) => 422,
            ServeError::BadRequest(_) => 400,
            ServeError::ShuttingDown => 503,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity}); retry later")
            }
            ServeError::DeadlineExpired { waited_ms } => {
                write!(f, "deadline expired after {waited_ms} ms")
            }
            ServeError::Run(e) => write!(f, "run failed: {e}"),
            ServeError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// One unit of client work.
#[derive(Debug, Clone)]
pub struct Request {
    pub cfg: RunConfig,
    /// `true` runs the §6.2 load balancer (`run_balanced`), `false`
    /// the static split (`runner::run`). Part of the cache key: the
    /// two produce different (each individually deterministic) bytes.
    pub balanced: bool,
    /// Per-request deadline; `None` falls back to the server default.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A balanced run of `cfg` with the server's default deadline.
    pub fn balanced(cfg: RunConfig) -> Self {
        Request {
            cfg,
            balanced: true,
            deadline: None,
        }
    }

    /// A static-split run of `cfg` (what chaos/fault plans require).
    pub fn direct(cfg: RunConfig) -> Self {
        Request {
            cfg,
            balanced: false,
            deadline: None,
        }
    }

    /// The cache key: the config's content hash folded with the
    /// balanced flag.
    pub fn key(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.u64(self.cfg.content_hash()).bool(self.balanced);
        h.finish()
    }
}

/// A completed, cached run: the rendered response plus the scalar
/// fields figure assembly needs.
#[derive(Debug)]
pub struct RunOutcome {
    /// The full rendered response (CSV header + row + breakdown
    /// table) — the bytes served to clients.
    pub bytes: Arc<Vec<u8>>,
    pub zones: u64,
    pub runtime_s: f64,
    pub cpu_fraction: f64,
}

/// Render a run result into the served byte format. Public so tests
/// and clients can compute the expected bytes of a cold run.
pub fn render_response(r: &RunResult) -> Vec<u8> {
    let mut s = String::with_capacity(512);
    s.push_str(RunResult::csv_header());
    s.push('\n');
    s.push_str(&r.csv_row());
    s.push_str("\n\n");
    s.push_str(&r.breakdown_table());
    s.into_bytes()
}

/// A successful submission.
#[derive(Debug)]
pub struct Response {
    pub key: u64,
    /// `true` when the bytes came from the cache or an already
    /// in-flight execution; `false` when this request ran the config.
    pub cached: bool,
    pub outcome: Arc<RunOutcome>,
}

/// Counter snapshot + latency quantiles, for the load driver and the
/// perf gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    pub hits: u64,
    pub misses: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub deadline_drops: u64,
    pub queue_depth_high_water: f64,
    /// Latency quantiles in microseconds (fractional). Recorded in
    /// nanoseconds end-to-end so sub-millisecond cache hits — the
    /// common case — report real numbers instead of truncating to 0.
    pub p50_us: f64,
    pub p99_us: f64,
}

impl ServeStats {
    /// Fraction of admitted requests answered without a fresh
    /// execution. 0 when nothing was admitted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A one-shot result slot: `None` until an execution (or a typed
/// failure) fills it.
type ResultSlot = Mutex<Option<Result<Arc<RunOutcome>, ServeError>>>;

/// Waiter rendezvous for one in-flight execution (single-flight: all
/// concurrent requests for a key share one of these).
struct Pending {
    slot: ResultSlot,
    cv: Condvar,
    /// Waiters still interested in the result; when it reaches zero
    /// before a worker picks the task up, the task is dropped.
    waiters: AtomicUsize,
}

impl Pending {
    fn new() -> Self {
        Pending {
            slot: Mutex::new(None),
            cv: Condvar::new(),
            waiters: AtomicUsize::new(1),
        }
    }

    fn complete(&self, r: Result<Arc<RunOutcome>, ServeError>) {
        let mut s = lock(&self.slot);
        if s.is_none() {
            *s = Some(r);
        }
        drop(s);
        self.cv.notify_all();
    }

    fn wait(&self, deadline: Option<Duration>) -> Result<Arc<RunOutcome>, ServeError> {
        let start = Instant::now();
        let mut s = lock(&self.slot);
        loop {
            if let Some(r) = s.as_ref() {
                return r.clone();
            }
            match deadline {
                None => s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner()),
                Some(d) => {
                    let elapsed = start.elapsed();
                    if elapsed >= d {
                        self.waiters.fetch_sub(1, Ordering::AcqRel);
                        return Err(ServeError::DeadlineExpired {
                            waited_ms: elapsed.as_millis() as u64,
                        });
                    }
                    s = self
                        .cv
                        .wait_timeout(s, d - elapsed)
                        .unwrap_or_else(|p| p.into_inner())
                        .0;
                }
            }
        }
    }
}

/// A queued execution.
struct Task {
    key: u64,
    /// Admission order, for deterministic LPT tie-breaking.
    seq: u64,
    /// LPT cost: zones, weighted up for heterogeneous runs the same
    /// way the sweep engine weights them.
    cost: u64,
    cfg: RunConfig,
    balanced: bool,
    pending: Arc<Pending>,
}

/// Heterogeneous runs do cooperative CPU work on top of the device
/// timeline, so they cost more wall-clock per zone — same weight the
/// sweep engine's LPT batching uses.
const HETERO_LPT_WEIGHT: u64 = 4;

fn lpt_cost(cfg: &RunConfig) -> u64 {
    let zones = (cfg.grid.0 * cfg.grid.1 * cfg.grid.2) as u64;
    match cfg.mode {
        ExecMode::Heterogeneous { .. } => zones * HETERO_LPT_WEIGHT,
        _ => zones,
    }
}

struct Inner {
    capacity: usize,
    tile: [usize; 2],
    default_deadline: Option<Duration>,
    queue: Mutex<Vec<Arc<Task>>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    seq: AtomicU64,
    cache: Mutex<BTreeMap<u64, Arc<RunOutcome>>>,
    inflight: Mutex<BTreeMap<u64, Arc<Pending>>>,
    metrics: Mutex<Metrics>,
    latencies_ns: Mutex<Vec<u64>>,
}

/// The long-lived simulation server. See the module docs for the
/// request lifecycle; construct with [`Server::new`], drive with
/// [`Server::submit`] / [`Server::figure_csv`], observe with
/// [`Server::stats`] / [`Server::metrics_text`].
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Calibrate (tile probe or seed) and spawn the worker threads.
    pub fn new(cfg: ServerConfig) -> Server {
        let tile = match cfg.tile {
            Some(t) => calib::seed_tile(t),
            None => calib::auto_tile(),
        };
        let inner = Arc::new(Inner {
            capacity: cfg.queue_capacity.max(1),
            tile,
            default_deadline: cfg.default_deadline,
            queue: Mutex::new(Vec::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            cache: Mutex::new(BTreeMap::new()),
            inflight: Mutex::new(BTreeMap::new()),
            metrics: Mutex::new(Metrics::new()),
            latencies_ns: Mutex::new(Vec::new()),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Server { inner, workers }
    }

    /// The tile shape every served run uses (calibrated once at
    /// construction). Export with [`calib::tile_spec`] to seed the
    /// next process.
    pub fn tile(&self) -> [usize; 2] {
        self.inner.tile
    }

    /// Current admission-queue length (tests; racy by nature).
    pub fn queue_len(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// Submit one request and block until bytes, rejection, or
    /// deadline.
    pub fn submit(&self, req: Request) -> Result<Response, ServeError> {
        let t0 = Instant::now();
        let inner = &*self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let key = req.key();
        let deadline = req.deadline.or(inner.default_deadline);

        // Fast path: an exact cached result.
        if let Some(out) = lock(&inner.cache).get(&key).cloned() {
            let mut m = lock(&inner.metrics);
            m.count(Counter::ServeAdmitted, 1);
            m.count(Counter::ServeHits, 1);
            drop(m);
            self.record_latency(t0);
            return Ok(Response {
                key,
                cached: true,
                outcome: out,
            });
        }

        // Single-flight: join an in-flight execution of the same key,
        // or become its first flight by enqueueing a task. The
        // inflight lock covers the whole decision so joiners can never
        // latch onto a pending that lost its queue slot.
        let (pending, first) = {
            let mut infl = lock(&inner.inflight);
            if let Some(p) = infl.get(&key) {
                p.waiters.fetch_add(1, Ordering::AcqRel);
                (Arc::clone(p), false)
            } else {
                // The execution may have completed between the cache
                // probe above and taking the inflight lock.
                if let Some(out) = lock(&inner.cache).get(&key).cloned() {
                    let mut m = lock(&inner.metrics);
                    m.count(Counter::ServeAdmitted, 1);
                    m.count(Counter::ServeHits, 1);
                    drop(m);
                    self.record_latency(t0);
                    return Ok(Response {
                        key,
                        cached: true,
                        outcome: out,
                    });
                }
                let mut q = lock(&inner.queue);
                // Re-check under the queue lock: shutdown() sets the
                // flag before draining, so a push that slips past the
                // entry check is either drained or stopped here.
                if inner.shutdown.load(Ordering::Acquire) {
                    return Err(ServeError::ShuttingDown);
                }
                if q.len() >= inner.capacity {
                    lock(&inner.metrics).count(Counter::ServeRejected, 1);
                    return Err(ServeError::QueueFull {
                        capacity: inner.capacity,
                    });
                }
                let p = Arc::new(Pending::new());
                infl.insert(key, Arc::clone(&p));
                q.push(Arc::new(Task {
                    key,
                    seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                    cost: lpt_cost(&req.cfg),
                    cfg: req.cfg,
                    balanced: req.balanced,
                    pending: Arc::clone(&p),
                }));
                let depth = q.len() as f64;
                drop(q);
                lock(&inner.metrics).gauge_max(Gauge::ServeQueueDepth, depth);
                inner.queue_cv.notify_one();
                (p, true)
            }
        };
        {
            let mut m = lock(&inner.metrics);
            m.count(Counter::ServeAdmitted, 1);
            m.count(
                if first {
                    Counter::ServeMisses
                } else {
                    Counter::ServeHits
                },
                1,
            );
        }

        let result = pending.wait(deadline);
        self.record_latency(t0);
        result.map(|outcome| Response {
            key,
            cached: !first,
            outcome,
        })
    }

    /// Serve a whole figure sweep: every (mode × sweep point) goes
    /// through the same queue/cache as any other request — concurrent
    /// figure requests share executions — and the CSV is assembled in
    /// fixed mode-major order, so the bytes are deterministic.
    pub fn figure_csv(&self, id: &str, modes: &[ExecMode]) -> Result<String, ServeError> {
        let spec = figures::all_figures()
            .into_iter()
            .find(|s| s.id == id)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown figure `{id}`")))?;
        if modes.is_empty() {
            return Err(ServeError::BadRequest("no modes requested".to_string()));
        }
        let points = spec.points();
        let jobs: Vec<(usize, usize)> = (0..modes.len())
            .flat_map(|mi| (0..points.len()).map(move |pi| (mi, pi)))
            .collect();
        let slots: Vec<ResultSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let clients = jobs.len().min((self.workers.len().max(1)) * 2);
        std::thread::scope(|s| {
            for _ in 0..clients.max(1) {
                s.spawn(|| loop {
                    let j = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(mi, pi)) = jobs.get(j) else { break };
                    let (Some(point), Some(&mode)) = (points.get(pi), modes.get(mi)) else {
                        break;
                    };
                    let cfg = RunConfig::sweep(point.grid(), mode);
                    let req = Request::balanced(cfg);
                    // Client-side backpressure: a full queue is not an
                    // error for a batch — retry while workers drain.
                    let mut res = self.submit(req.clone());
                    let mut tries = 0u32;
                    while matches!(res, Err(ServeError::QueueFull { .. })) && tries < 10_000 {
                        std::thread::sleep(Duration::from_millis(1));
                        res = self.submit(req.clone());
                        tries += 1;
                    }
                    if let Some(slot) = slots.get(j) {
                        *lock(slot) = Some(res.map(|r| r.outcome));
                    }
                });
            }
        });
        let mut out = String::from("figure,mode,zones,swept_dim,runtime_s,cpu_fraction\n");
        for (mi, mode) in modes.iter().enumerate() {
            for (pi, v) in spec.values.iter().enumerate() {
                let j = mi * points.len() + pi;
                match slots.get(j).and_then(|slot| lock(slot).take()) {
                    Some(Ok(o)) => {
                        out.push_str(&format!(
                            "{},{},{},{},{:.6},{:.4}\n",
                            spec.id,
                            mode.key(),
                            o.zones,
                            v,
                            o.runtime_s,
                            o.cpu_fraction
                        ));
                    }
                    Some(Err(e)) => return Err(e),
                    None => return Err(ServeError::Run("sweep point never ran".to_string())),
                }
            }
        }
        Ok(out)
    }

    fn record_latency(&self, t0: Instant) {
        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        lock(&self.inner.latencies_ns).push(ns);
    }

    /// The `q` latency quantile in (fractional) microseconds.
    fn latency_quantile_us(&self, q: f64) -> f64 {
        let mut lat = lock(&self.inner.latencies_ns).clone();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_unstable();
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat.get(idx).or_else(|| lat.last()).copied().unwrap_or(0) as f64 * 1e-3
    }

    /// Counter snapshot + latency quantiles.
    pub fn stats(&self) -> ServeStats {
        let m = lock(&self.inner.metrics);
        let stats = ServeStats {
            hits: m.counter(Counter::ServeHits),
            misses: m.counter(Counter::ServeMisses),
            admitted: m.counter(Counter::ServeAdmitted),
            rejected: m.counter(Counter::ServeRejected),
            deadline_drops: m.counter(Counter::ServeDeadlineDrops),
            queue_depth_high_water: m.gauge(Gauge::ServeQueueDepth),
            p50_us: 0.0,
            p99_us: 0.0,
        };
        drop(m);
        ServeStats {
            p50_us: self.latency_quantile_us(0.50),
            p99_us: self.latency_quantile_us(0.99),
            ..stats
        }
    }

    /// The live `/metrics` payload: the telemetry registry in
    /// Prometheus text format plus request-latency quantiles.
    pub fn metrics_text(&self) -> String {
        let mut out = lock(&self.inner.metrics).to_prometheus_text();
        out.push_str("# TYPE hsim_serve_latency_us summary\n");
        for (q, tag) in [(0.50, "0.5"), (0.99, "0.99")] {
            out.push_str(&format!(
                "hsim_serve_latency_us{{quantile=\"{tag}\"}} {}\n",
                self.latency_quantile_us(q)
            ));
        }
        out
    }

    /// Stop accepting work, fail all queued requests with
    /// [`ServeError::ShuttingDown`], and let in-flight runs finish.
    /// Idempotent; [`Drop`] calls it and then joins the workers.
    pub fn shutdown(&self) {
        let inner = &*self.inner;
        if inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        inner.queue_cv.notify_all();
        let drained: Vec<Arc<Task>> = {
            let mut q = lock(&inner.queue);
            std::mem::take(&mut *q)
        };
        for task in drained {
            lock(&inner.inflight).remove(&task.key);
            task.pending.complete(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let task = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(i) = pick_lpt(&q) {
                    break q.remove(i);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = inner.queue_cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        // Graceful cancellation: every waiter's deadline has passed,
        // so running the task serves nobody.
        if task.pending.waiters.load(Ordering::Acquire) == 0 {
            lock(&inner.inflight).remove(&task.key);
            task.pending
                .complete(Err(ServeError::DeadlineExpired { waited_ms: 0 }));
            lock(&inner.metrics).count(Counter::ServeDeadlineDrops, 1);
            continue;
        }
        match execute(inner, &task) {
            Ok(outcome) => {
                let outcome = Arc::new(outcome);
                lock(&inner.cache).insert(task.key, Arc::clone(&outcome));
                lock(&inner.inflight).remove(&task.key);
                task.pending.complete(Ok(outcome));
            }
            Err(e) => {
                lock(&inner.inflight).remove(&task.key);
                task.pending.complete(Err(e));
            }
        }
    }
}

/// Pick the queued task with the largest LPT cost (earliest admission
/// wins ties), mirroring the sweep engine's longest-processing-time
/// batching.
fn pick_lpt(q: &[Arc<Task>]) -> Option<usize> {
    q.iter()
        .enumerate()
        .max_by_key(|(_, t)| (t.cost, std::cmp::Reverse(t.seq)))
        .map(|(i, _)| i)
}

fn execute(inner: &Inner, task: &Task) -> Result<RunOutcome, ServeError> {
    let mut cfg = task.cfg.clone();
    if cfg.tile.is_none() {
        // Calibrate-once-then-share: every run reuses the server's
        // one-shot tile probe instead of racing on its own.
        cfg.tile = Some(inner.tile);
    }
    let balanced = task.balanced;
    // A panicking run (e.g. an injected chaos panic that escaped the
    // pool's absorption) must fail this request, not kill the worker:
    // the pool itself survives poisoned regions, so the server keeps
    // serving.
    let run = panic::catch_unwind(AssertUnwindSafe(|| {
        if balanced {
            hsim_core::run_balanced(&cfg).map(|(r, _)| r)
        } else {
            hsim_core::run(&cfg)
        }
    }));
    match run {
        Ok(Ok(r)) => Ok(RunOutcome {
            bytes: Arc::new(render_response(&r)),
            zones: r.zones,
            runtime_s: r.runtime.as_secs_f64(),
            cpu_fraction: r.cpu_fraction,
        }),
        Ok(Err(e)) => Err(ServeError::Run(e)),
        Err(_) => Err(ServeError::Run("run panicked".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig::sweep((24, 16, 8), ExecMode::Default)
    }

    #[test]
    fn request_key_separates_balanced_from_direct() {
        let a = Request::balanced(tiny());
        let b = Request::direct(tiny());
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key(), Request::balanced(tiny()).key());
    }

    #[test]
    fn lpt_prefers_heavy_then_earliest() {
        let mk = |seq, cost| {
            Arc::new(Task {
                key: seq,
                seq,
                cost,
                cfg: tiny(),
                balanced: false,
                pending: Arc::new(Pending::new()),
            })
        };
        let q = vec![mk(0, 10), mk(1, 40), mk(2, 40), mk(3, 5)];
        assert_eq!(pick_lpt(&q), Some(1), "heaviest, earliest-admitted wins");
        assert_eq!(pick_lpt(&[]), None);
    }

    #[test]
    fn submit_roundtrip_and_cache_hit() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let cold = server.submit(Request::direct(tiny())).expect("cold run");
        assert!(!cold.cached);
        let warm = server.submit(Request::direct(tiny())).expect("warm run");
        assert!(warm.cached);
        assert_eq!(cold.outcome.bytes, warm.outcome.bytes);
        let stats = server.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_errors_are_typed_not_cached() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // Zero-size grid fails inside the runner with a message.
        let bad = RunConfig::sweep((0, 0, 0), ExecMode::Default);
        let err = server.submit(Request::direct(bad)).unwrap_err();
        assert!(matches!(err, ServeError::Run(_)), "got {err:?}");
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        server.shutdown();
        let err = server.submit(Request::direct(tiny())).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }

    #[test]
    fn figure_csv_is_deterministic_and_mode_major() {
        let server = Server::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let modes = [ExecMode::Default, ExecMode::hetero()];
        let a = server.figure_csv("fig14", &modes).expect("figure serves");
        let b = server.figure_csv("fig14", &modes).expect("figure serves");
        assert_eq!(a, b, "second serving must be byte-identical");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(
            lines[0],
            "figure,mode,zones,swept_dim,runtime_s,cpu_fraction"
        );
        assert!(lines[1].starts_with("fig14,"));
        // Second serving came wholly from cache.
        let s = server.stats();
        assert!(s.hits >= s.misses, "stats: {s:?}");
        assert!(
            server.figure_csv("no-such-figure", &modes).is_err(),
            "unknown figure must be a typed BadRequest"
        );
    }
}
