//! Concurrent-client determinism: N parallel identical requests must
//! collapse to ONE execution (single-flight), and every client —
//! including later cache hits — must receive bytes identical to a
//! cold run of the same `RunConfig`. This is the acceptance criterion
//! that makes the content-hash cache *exact*: same config ⇒ same
//! bytes, always.

use std::sync::Mutex;

use hsim_core::runner::{self, RunConfig};
use hsim_core::ExecMode;
use hsim_serve::{render_response, Request, Server, ServerConfig};

fn cfg() -> RunConfig {
    RunConfig::sweep((32, 24, 16), ExecMode::hetero())
}

#[test]
fn n_parallel_identical_requests_one_execution_identical_bytes() {
    const CLIENTS: usize = 8;
    let server = Server::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let results: Vec<Mutex<Option<Vec<u8>>>> = (0..CLIENTS).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for slot in &results {
            s.spawn(|| {
                let resp = server
                    .submit(Request::direct(cfg()))
                    .expect("request serves");
                *slot.lock().unwrap() = Some(resp.outcome.bytes.as_ref().clone());
            });
        }
    });

    // Exactly one execution happened; every other client was a hit
    // (joined the in-flight run or read the cache).
    let stats = server.stats();
    assert_eq!(stats.misses, 1, "stats: {stats:?}");
    assert_eq!(stats.hits, (CLIENTS - 1) as u64, "stats: {stats:?}");
    assert_eq!(stats.admitted, CLIENTS as u64, "stats: {stats:?}");
    assert_eq!(stats.rejected, 0, "stats: {stats:?}");

    // All clients saw the same bytes...
    let first = results[0].lock().unwrap().clone().expect("client 0 ran");
    for slot in &results {
        assert_eq!(slot.lock().unwrap().as_ref(), Some(&first));
    }

    // ...and those bytes are identical to a cold, serverless run of
    // the exact same config. The serve cache is exact, not
    // approximate.
    let mut cold_cfg = cfg();
    cold_cfg.tile = Some(server.tile());
    let cold = runner::run(&cold_cfg).expect("cold run");
    assert_eq!(
        first,
        render_response(&cold),
        "cache hit bytes differ from a cold run"
    );

    // A fresh submission after the dust settles is a pure cache hit
    // with the same bytes again.
    let warm = server.submit(Request::direct(cfg())).expect("warm");
    assert!(warm.cached);
    assert_eq!(warm.outcome.bytes.as_ref(), &first);
}

#[test]
fn different_configs_never_share_cache_entries() {
    let server = Server::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let a = server.submit(Request::direct(cfg())).expect("a");
    let mut other = cfg();
    other.cycles += 1;
    let b = server.submit(Request::direct(other)).expect("b");
    assert_ne!(a.key, b.key);
    assert_ne!(a.outcome.bytes, b.outcome.bytes);
    assert_eq!(server.stats().misses, 2);
}
