//! Admission-control properties: the bounded queue never exceeds its
//! capacity, overflow is rejected with the *typed* `QueueFull` error
//! (never a panic, never a hang), expired deadlines surface as typed
//! `DeadlineExpired`, and shutdown unblocks every waiter. The server
//! under test has **zero workers**, so queued work never drains —
//! the worst case for admission control.

use std::time::Duration;

use hsim_core::runner::RunConfig;
use hsim_core::ExecMode;
use hsim_serve::{Request, ServeError, Server, ServerConfig};
use proptest::prelude::*;

fn distinct_cfg(i: usize) -> RunConfig {
    let mut cfg = RunConfig::sweep((16, 8, 8), ExecMode::Default);
    cfg.cycles = 1 + i as u64; // distinct content hash per i
    cfg
}

fn zero_deadline(i: usize) -> Request {
    Request {
        cfg: distinct_cfg(i),
        balanced: false,
        deadline: Some(Duration::ZERO),
    }
}

proptest! {
    #[test]
    fn queue_never_exceeds_bound_and_rejections_are_typed(
        capacity in 1usize..6,
        extra in 0usize..8,
    ) {
        let server = Server::new(ServerConfig {
            workers: 0,
            queue_capacity: capacity,
            default_deadline: None,
            tile: Some([8, 8]),
        });

        // Fill the queue exactly to capacity. Each zero-deadline
        // submit enqueues its task and then immediately expires —
        // typed, no hang.
        for i in 0..capacity {
            let err = server.submit(zero_deadline(i)).unwrap_err();
            prop_assert!(
                matches!(err, ServeError::DeadlineExpired { .. }),
                "fill {i}: {err:?}"
            );
            prop_assert!(server.queue_len() <= capacity);
        }
        prop_assert_eq!(server.queue_len(), capacity);

        // Everything beyond the bound is rejected with the typed
        // QueueFull carrying the configured capacity.
        for i in 0..extra {
            let err = server.submit(zero_deadline(capacity + i)).unwrap_err();
            prop_assert_eq!(err, ServeError::QueueFull { capacity });
            prop_assert_eq!(server.queue_len(), capacity);
        }

        let stats = server.stats();
        prop_assert_eq!(stats.admitted, capacity as u64);
        prop_assert_eq!(stats.misses, capacity as u64);
        prop_assert_eq!(stats.rejected, extra as u64);
        prop_assert!(stats.queue_depth_high_water <= capacity as f64);

        // Dropping the server (workers: 0, queue still full) must not
        // hang: shutdown drains the queue and completes every pending.
        drop(server);
    }
}

#[test]
fn joining_an_in_flight_key_does_not_consume_queue_slots() {
    let server = Server::new(ServerConfig {
        workers: 0,
        queue_capacity: 1,
        default_deadline: None,
        tile: Some([8, 8]),
    });
    // First flight occupies the single slot...
    let err = server.submit(zero_deadline(0)).unwrap_err();
    assert!(matches!(err, ServeError::DeadlineExpired { .. }));
    // ...and a second request for the SAME config joins it rather
    // than being rejected, even though the queue is full.
    let err = server.submit(zero_deadline(0)).unwrap_err();
    assert!(
        matches!(err, ServeError::DeadlineExpired { .. }),
        "join must not see QueueFull: {err:?}"
    );
    // A different config, however, is rejected.
    let err = server.submit(zero_deadline(1)).unwrap_err();
    assert_eq!(err, ServeError::QueueFull { capacity: 1 });
}

#[test]
fn shutdown_unblocks_indefinite_waiters_with_typed_error() {
    let server = Server::new(ServerConfig {
        workers: 0,
        queue_capacity: 4,
        default_deadline: None,
        tile: Some([8, 8]),
    });
    std::thread::scope(|s| {
        let waiter = s.spawn(|| {
            // No deadline, no workers: blocks until shutdown.
            server.submit(Request::direct(distinct_cfg(0)))
        });
        // Let the waiter enqueue, then pull the plug.
        while server.queue_len() == 0 {
            std::thread::yield_now();
        }
        server.shutdown();
        let err = waiter.join().expect("waiter thread").unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    });
    // After shutdown, new work is refused up front.
    let err = server.submit(Request::direct(distinct_cfg(1))).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
}
