//! End-to-end HTTP smoke over a real loopback socket: health, run
//! (miss then byte-identical hit), live metrics, and typed error
//! statuses.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use hsim_serve::{http, Server, ServerConfig};

/// Minimal HTTP/1.1 client: returns (status, headers, body).
fn request(
    addr: &std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("recv");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body split");
    let head = String::from_utf8_lossy(&raw[..split]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head, raw[split + 4..].to_vec())
}

#[test]
fn http_endpoints_end_to_end() {
    let server = Server::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        s.spawn(|| http::serve(&server, listener, Some(6)).expect("serve"));

        let (status, _, body) = request(&addr, "GET", "/healthz", "");
        assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

        let run_body = "mode=default&grid=24,16,8&cycles=2&balanced=0";
        let (status, head, cold) = request(&addr, "POST", "/run", run_body);
        assert_eq!(status, 200, "cold run head: {head}");
        assert!(head.contains("X-Cache: miss"), "head: {head}");
        assert!(head.contains("X-Content-Key: "), "head: {head}");
        assert!(cold.starts_with(b"schema,"), "body starts with CSV header");

        let (status, head, warm) = request(&addr, "POST", "/run", run_body);
        assert_eq!(status, 200);
        assert!(head.contains("X-Cache: hit"), "head: {head}");
        assert_eq!(cold, warm, "hit must be byte-identical to the miss");

        let (status, _, metrics) = request(&addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        let text = String::from_utf8(metrics).expect("utf8 metrics");
        assert!(text.contains("hsim_serve_hits 1"), "metrics:\n{text}");
        assert!(text.contains("hsim_serve_misses 1"), "metrics:\n{text}");
        assert!(text.contains("hsim_serve_latency_us{quantile=\"0.99\"}"));

        let (status, _, _) = request(&addr, "GET", "/no-such-endpoint", "");
        assert_eq!(status, 404);

        let (status, _, _) = request(&addr, "POST", "/run", "mode=warp");
        assert_eq!(status, 400);
    });
}
