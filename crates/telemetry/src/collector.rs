//! Thread-local collector and the free-function recording API.
//!
//! The runner installs one [`Collector`] per rank thread; instrumented
//! code anywhere below it calls the free functions in this module.
//! With no collector installed (the default), every function is a
//! thread-local load plus an `Option` check — no heap allocation, no
//! locks, no virtual-time charge. That property is asserted by the
//! `mode_overhead` bench with a counting allocator.

use std::cell::RefCell;

use hsim_time::{SimDuration, SimTime};

use crate::metrics::{Counter, Gauge, Metrics, TimeStat};
use crate::profile::KernelProfiles;
use crate::span::{Category, SpanEvent};

/// Everything one rank thread records.
#[derive(Debug, Clone)]
pub struct Collector {
    /// The rank this collector was installed for; used as the default
    /// `pid` for rank-timeline spans.
    pub rank: usize,
    /// When false, span recording is skipped (metrics still collected).
    pub spans_on: bool,
    pub spans: Vec<SpanEvent>,
    pub metrics: Metrics,
    pub kernels: KernelProfiles,
}

impl Collector {
    pub fn new(rank: usize) -> Self {
        Collector {
            rank,
            spans_on: true,
            spans: Vec::new(),
            metrics: Metrics::new(),
            kernels: KernelProfiles::new(),
        }
    }

    pub fn without_spans(mut self) -> Self {
        self.spans_on = false;
        self
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Install a collector in the calling thread, enabling recording.
pub fn install(c: Collector) {
    COLLECTOR.with(|slot| *slot.borrow_mut() = Some(c));
}

/// Remove and return the calling thread's collector, disabling
/// recording again.
pub fn uninstall() -> Option<Collector> {
    COLLECTOR.with(|slot| slot.borrow_mut().take())
}

/// Whether the calling thread currently records telemetry.
#[inline]
pub fn is_enabled() -> bool {
    COLLECTOR.with(|slot| slot.borrow().is_some())
}

#[inline]
fn with(f: impl FnOnce(&mut Collector)) {
    COLLECTOR.with(|slot| {
        if let Some(c) = slot.borrow_mut().as_mut() {
            f(c);
        }
    });
}

/// Bump a pre-registered counter.
#[inline]
pub fn count(c: Counter, n: u64) {
    with(|col| col.metrics.count(c, n));
}

/// Set a gauge to a value.
#[inline]
pub fn gauge_set(g: Gauge, v: f64) {
    with(|col| col.metrics.gauge_set(g, v));
}

/// Raise a gauge to a high-water value.
#[inline]
pub fn gauge_max(g: Gauge, v: f64) {
    with(|col| col.metrics.gauge_max(g, v));
}

/// Push a virtual duration into a pre-registered distribution.
#[inline]
pub fn time_stat(s: TimeStat, d: SimDuration) {
    with(|col| col.metrics.time_stat(s, d));
}

/// Record a span on an explicit timeline (`pid`/`tid`). Inverted
/// intervals clamp to zero length.
#[inline]
pub fn span(pid: u32, tid: u32, cat: Category, name: &'static str, start: SimTime, end: SimTime) {
    span_args(pid, tid, cat, name, start, end, &[]);
}

/// [`span`] with key/value attributes.
#[inline]
pub fn span_args(
    pid: u32,
    tid: u32,
    cat: Category,
    name: &'static str,
    start: SimTime,
    end: SimTime,
    args: &[(&'static str, u64)],
) {
    with(|col| {
        if !col.spans_on {
            return;
        }
        let end = end.merge(start);
        col.spans.push(SpanEvent {
            pid,
            tid,
            cat,
            name,
            ts: start,
            dur: end - start,
            args: args.to_vec(),
        });
    });
}

/// Record a span on the calling rank's own timeline (`pid = rank`,
/// `tid = 0`).
#[inline]
pub fn rank_span(cat: Category, name: &'static str, start: SimTime, end: SimTime) {
    with(|col| {
        if !col.spans_on {
            return;
        }
        let end = end.merge(start);
        let pid = col.rank as u32;
        col.spans.push(SpanEvent {
            pid,
            tid: 0,
            cat,
            name,
            ts: start,
            dur: end - start,
            args: Vec::new(),
        });
    });
}

/// Feed the per-kernel profiler and the kernel-wide counters in one
/// call — the single hook the dispatch layer uses.
#[inline]
pub fn kernel_launch(
    name: &'static str,
    elems: u64,
    bytes: u64,
    dur: SimDuration,
    on_gpu: bool,
    occupancy: f64,
) {
    with(|col| {
        col.kernels
            .record_launch(name, elems, bytes, dur, on_gpu, occupancy);
        col.metrics.count(Counter::KernelLaunches, 1);
        col.metrics.count(
            if on_gpu {
                Counter::GpuKernelLaunches
            } else {
                Counter::CpuKernelLaunches
            },
            1,
        );
        col.metrics.count(Counter::KernelElements, elems);
        col.metrics.time_stat(TimeStat::KernelTime, dur);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn no_collector_means_noop() {
        assert!(!is_enabled());
        count(Counter::MpiSends, 1);
        span(0, 0, Category::CpuKernel, "k", t(0), t(10));
        kernel_launch("k", 1, 0, SimDuration::from_nanos(1), false, 1.0);
        assert!(uninstall().is_none());
    }

    #[test]
    fn installed_collector_records_everything() {
        install(Collector::new(3));
        assert!(is_enabled());
        count(Counter::MpiSends, 2);
        time_stat(TimeStat::MpiWait, SimDuration::from_nanos(50));
        rank_span(Category::Idle, "idle", t(5), t(9));
        span_args(
            1000,
            2,
            Category::GpuKernel,
            "flux",
            t(0),
            t(7),
            &[("elems", 64)],
        );
        kernel_launch("flux", 64, 0, SimDuration::from_nanos(7), true, 0.5);
        let c = uninstall().unwrap();
        assert!(!is_enabled());
        assert_eq!(c.metrics.counter(Counter::MpiSends), 2);
        assert_eq!(c.metrics.counter(Counter::GpuKernelLaunches), 1);
        assert_eq!(c.spans.len(), 2);
        assert_eq!(c.spans[0].pid, 3);
        assert_eq!(c.spans[1].args, vec![("elems", 64)]);
        assert_eq!(c.kernels.get("flux").unwrap().total_ns(), 7);
    }

    #[test]
    fn spans_can_be_disabled_independently() {
        install(Collector::new(0).without_spans());
        rank_span(Category::Idle, "idle", t(0), t(5));
        count(Counter::Cycles, 1);
        let c = uninstall().unwrap();
        assert!(c.spans.is_empty());
        assert_eq!(c.metrics.counter(Counter::Cycles), 1);
    }

    #[test]
    fn inverted_spans_clamp() {
        install(Collector::new(0));
        span(0, 0, Category::Phase, "p", t(20), t(10));
        let c = uninstall().unwrap();
        assert_eq!(c.spans[0].dur, SimDuration::ZERO);
        assert_eq!(c.spans[0].ts, t(20));
    }
}
