//! Chrome trace-event JSON export (the "JSON Array Format" with a
//! `traceEvents` wrapper), loadable in `chrome://tracing` and
//! Perfetto.
//!
//! Hand-rolled writer: the workspace is offline and dependency-free,
//! and the event schema is small. Timestamps are microseconds (the
//! format's unit) printed as `ns/1000` with three decimals so no
//! virtual-time precision is lost.

use crate::span::SpanEvent;
use crate::DEVICE_PID_BASE;

/// Render virtual nanoseconds as a microsecond JSON number with
/// nanosecond precision (e.g. `1234` ns → `1.234`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Minimal JSON string escaping for span names (quotes, backslashes,
/// control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn process_name(pid: u32) -> String {
    if pid >= DEVICE_PID_BASE {
        format!("device {}", pid - DEVICE_PID_BASE)
    } else {
        format!("rank {pid}")
    }
}

/// Serialize sorted spans as Chrome trace-event JSON. Emits one
/// `ph:"M"` process-name metadata event per distinct pid, then one
/// `ph:"X"` complete event per span.
pub fn to_chrome_json(spans: &[SpanEvent]) -> String {
    let mut pids: Vec<u32> = spans.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for pid in &pids {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            process_name(*pid)
        ));
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{}",
            escape(s.name),
            s.cat.chrome_name(),
            us(s.ts.as_nanos()),
            us(s.dur.as_nanos()),
            s.pid,
            s.tid
        ));
        if !s.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape(k), v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Category;
    use hsim_time::{SimDuration, SimTime};

    fn ev(pid: u32, tid: u32, cat: Category, name: &'static str, ts: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            pid,
            tid,
            cat,
            name,
            ts: SimTime::from_nanos(ts),
            dur: SimDuration::from_nanos(dur),
            args: Vec::new(),
        }
    }

    #[test]
    fn emits_complete_events_with_required_fields() {
        let spans = vec![
            ev(0, 0, Category::CpuKernel, "eos", 0, 1500),
            ev(1002, 3, Category::GpuKernel, "flux_x", 500, 2750),
        ];
        let json = to_chrome_json(&spans);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1.500"));
        assert!(json.contains("\"ts\":0.500"));
        assert!(json.contains("\"dur\":2.750"));
        assert!(json.contains("\"pid\":1002,\"tid\":3"));
        assert!(json.contains("\"name\":\"device 2\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"cat\":\"gpu_kernel\""));
    }

    #[test]
    fn args_are_rendered_as_json_object() {
        let mut e = ev(0, 0, Category::MpiMessage, "send", 10, 20);
        e.args = vec![("bytes", 4096), ("tag", 7)];
        let json = to_chrome_json(&[e]);
        assert!(json.contains("\"args\":{\"bytes\":4096,\"tag\":7}"));
    }

    #[test]
    fn escaping_keeps_json_safe() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn sub_microsecond_durations_keep_precision() {
        assert_eq!(us(1), "0.001");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000_001), "1000.001");
    }
}
