//! Structured span events: who occupied which timeline, when, and why.

use hsim_time::{SimDuration, SimTime, SpanCategory};

/// What kind of activity a span represents. Richer than the legacy
/// [`hsim_time::SpanCategory`]; every variant maps onto one of the
/// legacy categories so the ASCII Gantt renderer keeps working.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Kernel body executing on host cores.
    CpuKernel,
    /// Kernel body executing on a device timeline.
    GpuKernel,
    /// Launch / driver-submit overhead on the host.
    Launch,
    /// A point-to-point MPI message (send or recv side).
    MpiMessage,
    /// An MPI collective (allreduce, barrier, bcast).
    Collective,
    /// Host/device staging transfer.
    Transfer,
    /// Unified-memory page migration.
    UmMigration,
    /// A named phase of the physics cycle (EOS, flux, update, halo, CFL).
    Phase,
    /// Runner-level bookkeeping: decompose, rebalance.
    Runtime,
    /// Waiting on a peer or device.
    Idle,
}

impl Category {
    pub const ALL: [Category; 10] = [
        Category::CpuKernel,
        Category::GpuKernel,
        Category::Launch,
        Category::MpiMessage,
        Category::Collective,
        Category::Transfer,
        Category::UmMigration,
        Category::Phase,
        Category::Runtime,
        Category::Idle,
    ];

    /// The `cat` string used in Chrome trace-event JSON.
    pub fn chrome_name(self) -> &'static str {
        match self {
            Category::CpuKernel => "cpu_kernel",
            Category::GpuKernel => "gpu_kernel",
            Category::Launch => "launch",
            Category::MpiMessage => "mpi_message",
            Category::Collective => "mpi_collective",
            Category::Transfer => "transfer",
            Category::UmMigration => "um_migration",
            Category::Phase => "phase",
            Category::Runtime => "runtime",
            Category::Idle => "rank_idle",
        }
    }

    /// Projection onto the legacy trace categories (and thus Gantt
    /// glyphs): comm-like variants collapse to `Comm`, memory-like to
    /// `Memory`, cycle phases render as CPU work.
    pub fn legacy(self) -> SpanCategory {
        match self {
            Category::CpuKernel | Category::Phase => SpanCategory::CpuKernel,
            Category::GpuKernel => SpanCategory::GpuKernel,
            Category::Launch | Category::Runtime => SpanCategory::Launch,
            Category::MpiMessage | Category::Collective => SpanCategory::Comm,
            Category::Transfer | Category::UmMigration => SpanCategory::Memory,
            Category::Idle => SpanCategory::Idle,
        }
    }
}

/// One complete (`ph: "X"`) interval on a timeline.
///
/// `pid` identifies the timeline process: rank timelines use the rank
/// index, device timelines use [`crate::DEVICE_PID_BASE`]` + device`.
/// `tid` is 0 for a rank's main thread and the stream index on a
/// device timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub pid: u32,
    pub tid: u32,
    pub cat: Category,
    pub name: &'static str,
    pub ts: SimTime,
    pub dur: SimDuration,
    /// Key/value attributes (bytes, tag, elems, …). Empty for most
    /// spans; an empty `Vec` does not allocate.
    pub args: Vec<(&'static str, u64)>,
}

impl SpanEvent {
    pub fn end(&self) -> SimTime {
        self.ts + self.dur
    }

    /// Total order used to make merged multi-thread span streams
    /// byte-deterministic regardless of which thread drained first.
    pub fn sort_key(&self) -> impl Ord + '_ {
        (self.ts, self.pid, self.tid, self.cat, self.name, self.dur)
    }
}

/// Sort spans into the canonical deterministic order.
pub fn sort_spans(spans: &mut [SpanEvent]) {
    spans.sort_by(|a, b| {
        a.sort_key()
            .cmp(&b.sort_key())
            .then_with(|| a.args.cmp(&b.args))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, pid: u32, name: &'static str) -> SpanEvent {
        SpanEvent {
            pid,
            tid: 0,
            cat: Category::CpuKernel,
            name,
            ts: SimTime::from_nanos(ts),
            dur: SimDuration::from_nanos(1),
            args: Vec::new(),
        }
    }

    #[test]
    fn sort_is_deterministic_under_permutation() {
        let mut a = vec![ev(5, 1, "b"), ev(5, 0, "a"), ev(1, 3, "c")];
        let mut b = vec![ev(1, 3, "c"), ev(5, 1, "b"), ev(5, 0, "a")];
        sort_spans(&mut a);
        sort_spans(&mut b);
        assert_eq!(a, b);
        assert_eq!(a[0].name, "c");
        assert_eq!(a[1].pid, 0);
    }

    #[test]
    fn every_category_maps_to_a_legacy_glyph() {
        for cat in Category::ALL {
            // Must not panic, and chrome names are unique.
            let _ = cat.legacy().glyph();
        }
        let names: std::collections::BTreeSet<_> =
            Category::ALL.iter().map(|c| c.chrome_name()).collect();
        assert_eq!(names.len(), Category::ALL.len());
    }
}
