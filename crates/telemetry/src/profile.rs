//! Per-kernel profiler keyed by the `hsim-raja` kernel-registry names.

use std::collections::BTreeMap;

use hsim_time::{SimDuration, Welford};

use crate::metrics::fmt_f64;

/// Aggregated statistics for one named kernel.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    pub name: &'static str,
    /// Total dispatches (host + device).
    pub launches: u64,
    /// Dispatches that ran on a device timeline.
    pub gpu_launches: u64,
    /// Total elements swept.
    pub elems: u64,
    /// Bytes moved on behalf of this kernel (staging + migration).
    pub bytes_moved: u64,
    /// Exact total virtual duration in nanoseconds.
    pub total_ns: u64,
    /// Per-launch virtual duration distribution (samples in seconds,
    /// as [`Welford::push_duration`] stores them).
    pub time_ns: Welford,
    /// Effective occupancy (share of device rate) when on-device;
    /// 1.0 recorded for host launches.
    pub occupancy: Welford,
}

impl KernelProfile {
    fn new(name: &'static str) -> Self {
        KernelProfile {
            name,
            launches: 0,
            gpu_launches: 0,
            elems: 0,
            bytes_moved: 0,
            total_ns: 0,
            time_ns: Welford::new(),
            occupancy: Welford::new(),
        }
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    pub fn mean_ns(&self) -> f64 {
        if self.time_ns.count() == 0 {
            0.0
        } else {
            // Welford samples are seconds; export in nanoseconds to
            // match `total_ns`.
            self.time_ns.mean() * 1e9
        }
    }

    fn merge(&mut self, other: &KernelProfile) {
        self.launches += other.launches;
        self.gpu_launches += other.gpu_launches;
        self.elems += other.elems;
        self.bytes_moved += other.bytes_moved;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.time_ns.merge(&other.time_ns);
        self.occupancy.merge(&other.occupancy);
    }
}

/// The profiler: one [`KernelProfile`] per kernel name.
#[derive(Debug, Clone, Default)]
pub struct KernelProfiles {
    map: BTreeMap<&'static str, KernelProfile>,
}

impl KernelProfiles {
    pub fn new() -> Self {
        KernelProfiles::default()
    }

    #[inline]
    pub fn record_launch(
        &mut self,
        name: &'static str,
        elems: u64,
        bytes: u64,
        dur: SimDuration,
        on_gpu: bool,
        occupancy: f64,
    ) {
        let p = self
            .map
            .entry(name)
            .or_insert_with(|| KernelProfile::new(name));
        p.launches += 1;
        if on_gpu {
            p.gpu_launches += 1;
        }
        p.elems += elems;
        p.bytes_moved += bytes;
        p.total_ns = p.total_ns.saturating_add(dur.as_nanos());
        p.time_ns.push_duration(dur);
        p.occupancy.push(occupancy);
    }

    /// Extra bytes attributed to a kernel after the fact (e.g. UM
    /// migration triggered by its access pattern).
    pub fn add_bytes(&mut self, name: &'static str, bytes: u64) {
        let p = self
            .map
            .entry(name)
            .or_insert_with(|| KernelProfile::new(name));
        p.bytes_moved += bytes;
    }

    pub fn get(&self, name: &str) -> Option<&KernelProfile> {
        self.map.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn total_launches(&self) -> u64 {
        self.map.values().map(|p| p.launches).sum()
    }

    pub fn merge(&mut self, other: &KernelProfiles) {
        for (name, p) in &other.map {
            self.map
                .entry(name)
                .or_insert_with(|| KernelProfile::new(name))
                .merge(p);
        }
    }

    /// Profiles sorted by name — the deterministic export order
    /// (free: the backing map is a `BTreeMap` keyed by name).
    pub fn sorted(&self) -> Vec<&KernelProfile> {
        self.map.values().collect()
    }

    /// Deterministic JSON array fragment.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, p) in self.sorted().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"launches\": {}, \"gpu_launches\": {}, \
                 \"elems\": {}, \"bytes_moved\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
                 \"occupancy_mean\": {}}}",
                p.name,
                p.launches,
                p.gpu_launches,
                p.elems,
                p.bytes_moved,
                p.total_ns(),
                fmt_f64(p.mean_ns()),
                fmt_f64(if p.occupancy.count() == 0 {
                    0.0
                } else {
                    p.occupancy.mean()
                }),
            ));
        }
        out.push_str("\n  ]");
        out
    }

    /// CSV export, one row per kernel.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("kernel,launches,gpu_launches,elems,bytes_moved,total_ns,mean_ns\n");
        for p in self.sorted() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                p.name,
                p.launches,
                p.gpu_launches,
                p.elems,
                p.bytes_moved,
                p.total_ns(),
                fmt_f64(p.mean_ns()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = KernelProfiles::new();
        let mut b = KernelProfiles::new();
        a.record_launch("flux_x", 100, 800, SimDuration::from_nanos(500), true, 0.9);
        b.record_launch("flux_x", 100, 800, SimDuration::from_nanos(700), false, 1.0);
        b.record_launch("eos", 50, 0, SimDuration::from_nanos(100), false, 1.0);
        a.merge(&b);
        let p = a.get("flux_x").unwrap();
        assert_eq!(p.launches, 2);
        assert_eq!(p.gpu_launches, 1);
        assert_eq!(p.elems, 200);
        assert_eq!(p.total_ns(), 1200);
        assert_eq!(a.total_launches(), 3);
    }

    #[test]
    fn export_is_sorted_by_name() {
        let mut k = KernelProfiles::new();
        k.record_launch("zeta", 1, 0, SimDuration::from_nanos(1), false, 1.0);
        k.record_launch("alpha", 1, 0, SimDuration::from_nanos(1), false, 1.0);
        let csv = k.to_csv();
        let alpha = csv.find("alpha").unwrap();
        let zeta = csv.find("zeta").unwrap();
        assert!(alpha < zeta);
        let json = k.to_json();
        assert!(json.find("alpha").unwrap() < json.find("zeta").unwrap());
    }
}
