//! Metrics registry: pre-registered counters, gauges, and virtual-time
//! distributions.
//!
//! Handles are enum variants that index fixed arrays, so recording is
//! an array store — no string hashing, no allocation, no locks. The
//! registry is per-rank (it lives inside a thread-local
//! [`crate::Collector`]) and merged once at end of run.

use hsim_time::{Histogram, SimDuration, Welford};

/// Monotonic event counters. Extend by adding a variant and a row in
/// `ALL`/`label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Every kernel dispatch through the portability layer.
    KernelLaunches,
    /// Dispatches that ran on a device timeline.
    GpuKernelLaunches,
    /// Dispatches that ran on host cores.
    CpuKernelLaunches,
    /// Total elements swept by kernels.
    KernelElements,
    /// Point-to-point sends posted.
    MpiSends,
    /// Point-to-point receives completed.
    MpiRecvs,
    /// Payload bytes sent point-to-point.
    MpiBytesSent,
    /// Payload bytes received point-to-point.
    MpiBytesReceived,
    /// Collective operations entered (allreduce, barrier, bcast).
    MpiCollectives,
    /// Unified-memory migration events.
    UmMigrations,
    /// Bytes moved by unified-memory migrations.
    UmBytesMigrated,
    /// Device sync rendezvous points.
    DeviceSyncs,
    /// Hydro cycles completed.
    Cycles,
    /// Rebalance decisions taken by the runner.
    Rebalances,
    /// Parallel regions executed on the persistent host work pool.
    ///
    /// This and the other `Host*` counters measure **wall-clock host
    /// time**, not simulated time: they let the perf harness account
    /// for real execution cost without ever touching a rank's virtual
    /// clock.
    HostPoolRegions,
    /// Wall-clock nanoseconds spent inside host pool regions.
    HostPoolNanos,
    /// Sweep points executed by the parallel sweep engine.
    HostSweepPoints,
    /// Wall-clock nanoseconds spent running sweep points.
    HostSweepNanos,
    /// Planned faults that actually fired at an instrumented site.
    FaultsInjected,
    /// Retry attempts taken while recovering from transient faults.
    FaultRetries,
    /// Transient faults that recovery fully absorbed.
    FaultsRecovered,
    /// Permanent rank losses absorbed by decomposition foldback.
    FaultRankLosses,
    /// Serve requests answered from the content-hash result cache.
    ServeHits,
    /// Serve requests that executed a run (cold cache / first flight).
    ServeMisses,
    /// Serve requests admitted into the bounded queue.
    ServeAdmitted,
    /// Serve requests rejected because the queue was full (429-style).
    ServeRejected,
    /// Queued serve requests dropped because their deadline expired
    /// before a worker picked them up.
    ServeDeadlineDrops,
    /// Online-rebalancer boundaries that re-split the decomposition.
    BalanceResplits,
    /// Online-rebalancer boundaries where hysteresis (or degenerate
    /// timings) held the current split.
    BalanceHolds,
    /// Controller freezes forced by recovery (post-`rank.loss`
    /// foldback: the degraded world is no longer uniformly
    /// re-splittable).
    BalanceFrozen,
    /// Bytes whose owner changed across re-split redistributions.
    BalanceBytesMoved,
    /// Tracer particles that crossed a rank boundary and were shipped
    /// through the particle-migration collective.
    ParticlesMigrated,
}

impl Counter {
    pub const ALL: [Counter; 32] = [
        Counter::KernelLaunches,
        Counter::GpuKernelLaunches,
        Counter::CpuKernelLaunches,
        Counter::KernelElements,
        Counter::MpiSends,
        Counter::MpiRecvs,
        Counter::MpiBytesSent,
        Counter::MpiBytesReceived,
        Counter::MpiCollectives,
        Counter::UmMigrations,
        Counter::UmBytesMigrated,
        Counter::DeviceSyncs,
        Counter::Cycles,
        Counter::Rebalances,
        Counter::HostPoolRegions,
        Counter::HostPoolNanos,
        Counter::HostSweepPoints,
        Counter::HostSweepNanos,
        Counter::FaultsInjected,
        Counter::FaultRetries,
        Counter::FaultsRecovered,
        Counter::FaultRankLosses,
        Counter::ServeHits,
        Counter::ServeMisses,
        Counter::ServeAdmitted,
        Counter::ServeRejected,
        Counter::ServeDeadlineDrops,
        Counter::BalanceResplits,
        Counter::BalanceHolds,
        Counter::BalanceFrozen,
        Counter::BalanceBytesMoved,
        Counter::ParticlesMigrated,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Counter::KernelLaunches => "kernel_launches",
            Counter::GpuKernelLaunches => "gpu_kernel_launches",
            Counter::CpuKernelLaunches => "cpu_kernel_launches",
            Counter::KernelElements => "kernel_elements",
            Counter::MpiSends => "mpi_sends",
            Counter::MpiRecvs => "mpi_recvs",
            Counter::MpiBytesSent => "mpi_bytes_sent",
            Counter::MpiBytesReceived => "mpi_bytes_received",
            Counter::MpiCollectives => "mpi_collectives",
            Counter::UmMigrations => "um_migrations",
            Counter::UmBytesMigrated => "um_bytes_migrated",
            Counter::DeviceSyncs => "device_syncs",
            Counter::Cycles => "cycles",
            Counter::Rebalances => "rebalances",
            Counter::HostPoolRegions => "host_pool_regions",
            Counter::HostPoolNanos => "host_pool_nanos",
            Counter::HostSweepPoints => "host_sweep_points",
            Counter::HostSweepNanos => "host_sweep_nanos",
            Counter::FaultsInjected => "fault_injected",
            Counter::FaultRetries => "fault_retries",
            Counter::FaultsRecovered => "fault_recovered",
            Counter::FaultRankLosses => "fault_rank_losses",
            Counter::ServeHits => "serve_hits",
            Counter::ServeMisses => "serve_misses",
            Counter::ServeAdmitted => "serve_admitted",
            Counter::ServeRejected => "serve_rejected",
            Counter::ServeDeadlineDrops => "serve_deadline_drops",
            Counter::BalanceResplits => "balance_resplits",
            Counter::BalanceHolds => "balance_holds",
            Counter::BalanceFrozen => "balance_frozen",
            Counter::BalanceBytesMoved => "balance_bytes_moved",
            Counter::ParticlesMigrated => "particles_migrated",
        }
    }
}

/// Last-value / high-water gauges. Merged across ranks by maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Realized CPU fraction of the decomposition.
    CpuFraction,
    /// Peak effective occupancy observed on any device timeline.
    DeviceOccupancy,
    /// High-water depth of the serve admission queue.
    ServeQueueDepth,
    /// The online rebalancer's final CPU work fraction.
    BalanceFraction,
}

impl Gauge {
    pub const ALL: [Gauge; 4] = [
        Gauge::CpuFraction,
        Gauge::DeviceOccupancy,
        Gauge::ServeQueueDepth,
        Gauge::BalanceFraction,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Gauge::CpuFraction => "cpu_fraction",
            Gauge::DeviceOccupancy => "device_occupancy",
            Gauge::ServeQueueDepth => "serve_queue_depth",
            Gauge::BalanceFraction => "balance_fraction",
        }
    }
}

/// Virtual-duration distributions, tracked with Welford statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum TimeStat {
    /// Per-launch kernel body duration (any target).
    KernelTime,
    /// Per-launch host-side launch overhead.
    LaunchTime,
    /// Time a rank spent blocked in recv/collective waits.
    MpiWait,
    /// End-to-end latency of point-to-point messages.
    MessageLatency,
    /// Duration of unified-memory migrations.
    MigrationTime,
    /// Wall-to-wall duration of each hydro cycle.
    CycleTime,
}

impl TimeStat {
    pub const ALL: [TimeStat; 6] = [
        TimeStat::KernelTime,
        TimeStat::LaunchTime,
        TimeStat::MpiWait,
        TimeStat::MessageLatency,
        TimeStat::MigrationTime,
        TimeStat::CycleTime,
    ];

    pub fn label(self) -> &'static str {
        match self {
            TimeStat::KernelTime => "kernel_time",
            TimeStat::LaunchTime => "launch_time",
            TimeStat::MpiWait => "mpi_wait",
            TimeStat::MessageLatency => "message_latency",
            TimeStat::MigrationTime => "migration_time",
            TimeStat::CycleTime => "cycle_time",
        }
    }
}

/// Bucket count for the kernel-time histogram.
const KERNEL_HIST_BUCKETS: usize = 64;
/// Kernel-time histogram range in microseconds.
const KERNEL_HIST_HI_US: f64 = 2000.0;

/// The per-rank metrics registry.
#[derive(Debug, Clone)]
pub struct Metrics {
    counters: [u64; Counter::ALL.len()],
    gauges: [f64; Gauge::ALL.len()],
    time_stats: Vec<Welford>,
    /// Fixed-bucket histogram of kernel durations, in microseconds,
    /// for quantile export.
    kernel_time_us: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            counters: [0; Counter::ALL.len()],
            gauges: [0.0; Gauge::ALL.len()],
            time_stats: vec![Welford::new(); TimeStat::ALL.len()],
            kernel_time_us: Histogram::new(0.0, KERNEL_HIST_HI_US, KERNEL_HIST_BUCKETS),
        }
    }

    #[inline]
    pub fn count(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] = self.counters[c as usize].saturating_add(n);
    }

    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    #[inline]
    pub fn gauge_set(&mut self, g: Gauge, v: f64) {
        self.gauges[g as usize] = v;
    }

    #[inline]
    pub fn gauge_max(&mut self, g: Gauge, v: f64) {
        if v > self.gauges[g as usize] {
            self.gauges[g as usize] = v;
        }
    }

    #[inline]
    pub fn gauge(&self, g: Gauge) -> f64 {
        self.gauges[g as usize]
    }

    #[inline]
    pub fn time_stat(&mut self, s: TimeStat, d: SimDuration) {
        self.time_stats[s as usize].push_duration(d);
        if s == TimeStat::KernelTime {
            self.kernel_time_us.push(d.as_nanos() as f64 * 1e-3);
        }
    }

    pub fn time_stats(&self, s: TimeStat) -> &Welford {
        &self.time_stats[s as usize]
    }

    pub fn kernel_time_quantile_us(&self, q: f64) -> f64 {
        if self.kernel_time_us.count() == 0 {
            0.0
        } else {
            self.kernel_time_us.quantile(q)
        }
    }

    /// Fold another rank's registry into this one. Counters add,
    /// gauges take the maximum, distributions Welford-merge.
    pub fn merge(&mut self, other: &Metrics) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            if *b > *a {
                *a = *b;
            }
        }
        for (a, b) in self.time_stats.iter_mut().zip(&other.time_stats) {
            a.merge(b);
        }
        // Histograms with identical bucketing merge by re-adding
        // counts at bucket midpoints; underflow/overflow re-add at the
        // range ends. Approximate but bucket-exact for quantiles.
        for (i, &n) in other.kernel_time_us.bucket_counts().iter().enumerate() {
            let mid = other.kernel_time_us.bucket_lo(i)
                + 0.5 * (KERNEL_HIST_HI_US / KERNEL_HIST_BUCKETS as f64);
            for _ in 0..n {
                self.kernel_time_us.push(mid);
            }
        }
        for _ in 0..other.kernel_time_us.underflow() {
            self.kernel_time_us.push(-1.0);
        }
        for _ in 0..other.kernel_time_us.overflow() {
            self.kernel_time_us.push(KERNEL_HIST_HI_US + 1.0);
        }
    }

    /// Deterministic JSON object fragment (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.label(), self.counter(*c)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {}",
                g.label(),
                fmt_f64(self.gauge(*g))
            ));
        }
        out.push_str("\n  },\n  \"time_stats\": {");
        for (i, s) in TimeStat::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let w = self.time_stats(*s);
            // Welford samples are seconds (`push_duration`); export in
            // nanoseconds to match the `_ns` keys.
            let ns = |v: f64| fmt_f64(guard(w.count(), v * 1e9));
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"mean_ns\": {}, \"stddev_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                s.label(),
                w.count(),
                ns(w.mean()),
                ns(w.stddev()),
                ns(w.min()),
                ns(w.max()),
            ));
        }
        out.push_str(&format!(
            "\n  }},\n  \"kernel_time_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}}\n}}",
            fmt_f64(self.kernel_time_quantile_us(0.50)),
            fmt_f64(self.kernel_time_quantile_us(0.90)),
            fmt_f64(self.kernel_time_quantile_us(0.99)),
        ));
        out
    }

    /// Prometheus text-exposition rendering of the registry: one
    /// `hsim_<label> <value>` sample per counter and gauge plus kernel
    /// latency quantiles, in fixed registration order (deterministic
    /// for a given state, exact-diffable in tests). Served live at the
    /// `/metrics` endpoint of `hsim-serve`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str("# TYPE hsim_");
            out.push_str(c.label());
            out.push_str(" counter\nhsim_");
            out.push_str(c.label());
            out.push(' ');
            out.push_str(&self.counter(c).to_string());
            out.push('\n');
        }
        for g in Gauge::ALL {
            out.push_str("# TYPE hsim_");
            out.push_str(g.label());
            out.push_str(" gauge\nhsim_");
            out.push_str(g.label());
            out.push(' ');
            out.push_str(&fmt_f64(self.gauge(g)));
            out.push('\n');
        }
        out.push_str("# TYPE hsim_kernel_time_us summary\n");
        for (q, tag) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!(
                "hsim_kernel_time_us{{quantile=\"{tag}\"}} {}\n",
                fmt_f64(self.kernel_time_quantile_us(q))
            ));
        }
        out
    }
}

fn guard(count: u64, v: f64) -> f64 {
    if count == 0 || !v.is_finite() {
        0.0
    } else {
        v
    }
}

/// Format an f64 so the output is valid JSON (no `NaN`/`inf`) and
/// stable across runs.
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // Bare integers are valid JSON numbers already.
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_merge() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.count(Counter::MpiSends, 3);
        b.count(Counter::MpiSends, 4);
        b.gauge_max(Gauge::DeviceOccupancy, 0.8);
        a.gauge_max(Gauge::DeviceOccupancy, 0.5);
        a.merge(&b);
        assert_eq!(a.counter(Counter::MpiSends), 7);
        assert_eq!(a.gauge(Gauge::DeviceOccupancy), 0.8);
    }

    #[test]
    fn time_stats_welford_merge_matches_single_stream() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        let mut whole = Metrics::new();
        for i in 0..10u64 {
            let d = SimDuration::from_nanos(100 + i * 10);
            whole.time_stat(TimeStat::MpiWait, d);
            if i < 5 {
                a.time_stat(TimeStat::MpiWait, d);
            } else {
                b.time_stat(TimeStat::MpiWait, d);
            }
        }
        a.merge(&b);
        let (m, w) = (
            a.time_stats(TimeStat::MpiWait),
            whole.time_stats(TimeStat::MpiWait),
        );
        assert_eq!(m.count(), w.count());
        assert!((m.mean() - w.mean()).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_has_all_labels() {
        let mut m = Metrics::new();
        m.count(Counter::Cycles, 2);
        m.time_stat(TimeStat::KernelTime, SimDuration::from_nanos(1500));
        let a = m.to_json();
        let b = m.clone().to_json();
        assert_eq!(a, b);
        for c in Counter::ALL {
            assert!(a.contains(c.label()));
        }
        for s in TimeStat::ALL {
            assert!(a.contains(s.label()));
        }
        assert!(!a.contains("NaN"));
        assert!(!a.contains("inf"));
    }

    #[test]
    fn empty_metrics_guard_nonfinite_stats() {
        let m = Metrics::new();
        let json = m.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn prometheus_text_is_deterministic_and_complete() {
        let mut m = Metrics::new();
        m.count(Counter::ServeHits, 9);
        m.count(Counter::ServeMisses, 3);
        m.gauge_max(Gauge::ServeQueueDepth, 4.0);
        let a = m.to_prometheus_text();
        assert_eq!(a, m.clone().to_prometheus_text());
        for c in Counter::ALL {
            assert!(a.contains(&format!("\nhsim_{} ", c.label())) || a.starts_with("# TYPE"));
            assert!(a.contains(&format!("hsim_{} ", c.label())));
        }
        for g in Gauge::ALL {
            assert!(a.contains(&format!("hsim_{} ", g.label())));
        }
        assert!(a.contains("hsim_serve_hits 9\n"));
        assert!(a.contains("hsim_serve_misses 3\n"));
        assert!(a.contains("hsim_serve_queue_depth 4\n"));
        assert!(a.contains("hsim_kernel_time_us{quantile=\"0.99\"}"));
        assert!(!a.contains("NaN") && !a.contains("inf"));
    }
}
