//! End-of-run merge of per-rank collectors into one deterministic
//! [`Summary`], plus its exports (Chrome JSON, metrics JSON, kernel
//! CSV, legacy ASCII Gantt).

use std::collections::BTreeSet;

use hsim_time::Trace;

use crate::chrome::to_chrome_json;
use crate::collector::Collector;
use crate::metrics::Metrics;
use crate::profile::KernelProfiles;
use crate::span::{sort_spans, SpanEvent};

/// Schema version stamped into the metrics JSON export.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Merged telemetry for a whole run.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// All spans, in canonical deterministic order.
    pub spans: Vec<SpanEvent>,
    pub metrics: Metrics,
    pub kernels: KernelProfiles,
}

impl Summary {
    /// Merge rank collectors. The input order does not matter: spans
    /// are re-sorted into a canonical order and metric merges are
    /// commutative in every exported field, so the exports are
    /// byte-identical however the rank threads finished.
    pub fn from_collectors(collectors: impl IntoIterator<Item = Collector>) -> Summary {
        let mut s = Summary::default();
        let mut parts: Vec<Collector> = collectors.into_iter().collect();
        // Merge in rank order so Welford accumulation (not exactly
        // associative in floating point) sees a fixed sequence.
        parts.sort_by_key(|c| c.rank);
        for c in parts {
            s.spans.extend(c.spans);
            s.metrics.merge(&c.metrics);
            s.kernels.merge(&c.kernels);
        }
        sort_spans(&mut s.spans);
        s
    }

    /// Chrome trace-event JSON (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        to_chrome_json(&self.spans)
    }

    /// Metrics + per-kernel profile as one JSON document.
    pub fn to_metrics_json(&self) -> String {
        let metrics = self.metrics.to_json();
        // Splice the kernels array into the metrics object: drop the
        // object's closing brace and append the extra fields.
        let body = metrics.trim_end().trim_end_matches('}');
        format!(
            "{body},\n  \"schema_version\": {METRICS_SCHEMA_VERSION},\n  \"kernels\": {}\n}}\n",
            self.kernels.to_json()
        )
    }

    /// Per-kernel CSV export.
    pub fn to_kernel_csv(&self) -> String {
        self.kernels.to_csv()
    }

    /// The distinct Chrome category names present in the span stream.
    pub fn categories(&self) -> BTreeSet<&'static str> {
        self.spans.iter().map(|s| s.cat.chrome_name()).collect()
    }

    /// Project spans onto the legacy `hsim-time` trace. Only
    /// rank-timeline spans survive (device timelines have no legacy
    /// rank row); `filter` selects which spans to keep.
    pub fn legacy_trace_where(&self, filter: impl Fn(&SpanEvent) -> bool) -> Trace {
        let mut trace = Trace::enabled();
        for s in &self.spans {
            if s.pid >= crate::DEVICE_PID_BASE || !filter(s) {
                continue;
            }
            trace.record(s.pid as usize, s.cat.legacy(), s.ts, s.end(), s.name);
        }
        trace
    }

    /// All rank-timeline spans as a legacy trace.
    pub fn legacy_trace(&self) -> Trace {
        self.legacy_trace_where(|_| true)
    }

    /// The ASCII Gantt, rendered over the span store via the legacy
    /// trace — the pre-existing renderer is now one view of this data.
    pub fn render_gantt(&self, width: usize) -> String {
        self.legacy_trace().render_gantt(width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;
    use crate::span::Category;
    use hsim_time::{SimDuration, SimTime};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn collector_with(rank: usize, spans: Vec<SpanEvent>) -> Collector {
        let mut c = Collector::new(rank);
        c.spans = spans;
        c.metrics.count(Counter::Cycles, 1);
        c
    }

    fn ev(pid: u32, cat: Category, name: &'static str, ts: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            pid,
            tid: 0,
            cat,
            name,
            ts: t(ts),
            dur: SimDuration::from_nanos(dur),
            args: Vec::new(),
        }
    }

    #[test]
    fn merge_is_order_independent_byte_for_byte() {
        let a = || collector_with(0, vec![ev(0, Category::CpuKernel, "busy", 0, 10)]);
        let b = || collector_with(1, vec![ev(1, Category::Idle, "idle", 0, 4)]);
        let s1 = Summary::from_collectors(vec![a(), b()]);
        let s2 = Summary::from_collectors(vec![b(), a()]);
        assert_eq!(s1.to_chrome_json(), s2.to_chrome_json());
        assert_eq!(s1.to_metrics_json(), s2.to_metrics_json());
        assert_eq!(s1.metrics.counter(Counter::Cycles), 2);
    }

    #[test]
    fn metrics_json_contains_schema_and_kernels() {
        let s = Summary::from_collectors(vec![collector_with(0, vec![])]);
        let json = s.to_metrics_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"kernels\": ["));
    }

    #[test]
    fn legacy_trace_skips_device_timelines() {
        let s = Summary::from_collectors(vec![collector_with(
            0,
            vec![
                ev(0, Category::CpuKernel, "busy", 0, 10),
                ev(crate::DEVICE_PID_BASE, Category::GpuKernel, "flux", 0, 5),
            ],
        )]);
        let trace = s.legacy_trace();
        assert_eq!(trace.len(), 1);
        let gantt = s.render_gantt(20);
        assert!(gantt.contains('C'));
        assert!(!gantt.contains('G'));
    }

    #[test]
    fn categories_lists_distinct_chrome_names() {
        let s = Summary::from_collectors(vec![collector_with(
            0,
            vec![
                ev(0, Category::CpuKernel, "a", 0, 1),
                ev(0, Category::MpiMessage, "b", 1, 1),
                ev(0, Category::MpiMessage, "c", 2, 1),
            ],
        )]);
        let cats = s.categories();
        assert_eq!(cats.len(), 2);
        assert!(cats.contains("mpi_message"));
    }
}
