//! # hsim-telemetry
//!
//! Observability for virtual-time simulations. Three pillars, all
//! charging **zero virtual time** and, when disabled, zero wall-clock
//! heap traffic on the hot path:
//!
//! * [`metrics`] — a registry of pre-registered counters, gauges, and
//!   virtual-time distributions (Welford + fixed-bucket histogram).
//!   Handles are enum variants indexing fixed arrays, so recording is
//!   an array store, never a hash lookup or allocation.
//! * [`mod@span`] / [`chrome`] — structured span tracing (rank, stream,
//!   kernel, and message spans with categories and key/value
//!   attributes) exporting Chrome trace-event JSON loadable in
//!   Perfetto or `chrome://tracing`. The pre-existing ASCII Gantt from
//!   `hsim-time` becomes one renderer over this span store.
//! * [`profile`] — a per-kernel profiler (launch count, total/mean
//!   virtual duration, occupancy, bytes moved) keyed by the kernel
//!   names the `hsim-raja` registry uses.
//!
//! Producers call the free functions in [`collector`]
//! (`telemetry::count`, `telemetry::span`, `telemetry::kernel_launch`,
//! …). They no-op unless a [`Collector`] has been installed in the
//! calling thread, so instrumented code needs no config plumbing and
//! pays one thread-local branch when telemetry is off.
//!
//! The runner installs one collector per rank thread, drains them at
//! the end of the run, and merges them into a [`Summary`] whose JSON
//! exports are byte-deterministic for a given seed.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod collector;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod summary;

pub use collector::{
    count, gauge_max, gauge_set, install, is_enabled, kernel_launch, rank_span, span, span_args,
    time_stat, uninstall, Collector,
};
pub use metrics::{Counter, Gauge, Metrics, TimeStat};
pub use profile::{KernelProfile, KernelProfiles};
pub use span::{Category, SpanEvent};
pub use summary::Summary;

/// Process-id offset for device timelines in exported traces: rank
/// timelines use `pid == rank`, device timelines use
/// `pid == DEVICE_PID_BASE + device_id` with `tid == stream`.
pub const DEVICE_PID_BASE: u32 = 1000;
