//! The Figure 8 memory subsystem: device heap, cnmem-style pool, and
//! unified-memory residency operations.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_gpu::memory::{DeviceHeap, MemoryPool, UnifiedMemory};
use hsim_gpu::DeviceSpec;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_k80();
    let mut group = c.benchmark_group("memory_scheme");

    group.bench_function("heap_alloc_free_64", |b| {
        let mut heap = DeviceHeap::new(1 << 30);
        b.iter(|| {
            let mut live = Vec::with_capacity(64);
            for i in 0..64u64 {
                live.push(heap.alloc(4096 * (1 + i % 7)).expect("fits"));
            }
            for a in live.into_iter().rev() {
                heap.free(a).expect("valid free");
            }
        });
    });

    group.bench_function("pool_cycle_discipline", |b| {
        let mut pool = MemoryPool::new(64 << 20);
        b.iter(|| {
            // A cycle's temporaries: grab, use, reset.
            for i in 0..32u64 {
                pool.alloc(64 * 1024 * (1 + i % 4)).expect("fits");
            }
            pool.reset();
        });
    });

    group.bench_function("um_pingpong_16mb", |b| {
        let mut um = UnifiedMemory::new(&spec);
        let region = um.alloc(16 << 20);
        b.iter(|| {
            let to_dev = um.touch_device(region).expect("live region");
            let to_host = um.touch_host(region).expect("live region");
            (to_dev, to_host)
        });
    });

    group.bench_function("um_halo_range_touch", |b| {
        let mut um = UnifiedMemory::new(&spec);
        let region = um.alloc(256 << 20);
        um.touch_device(region).expect("live region");
        b.iter(|| {
            um.touch_host_range(region, 0, 2 << 20)
                .expect("live region")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
