//! The §5.1 compiler-bug ablation: the paper projects that once the
//! nvcc decorated-lambda issue is fixed, "significantly more work"
//! goes to the CPU and the Heterogeneous mode improves further. This
//! bench runs the fig18 best case on RZHasGPU with the bug active vs
//! resolved and prints the CPU shares and runtimes.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_core::{run_balanced, ExecMode, NodeConfig, RunConfig};
use hsim_raja::Fidelity;

fn cfg_with(node: NodeConfig) -> RunConfig {
    RunConfig {
        grid: (600, 480, 160),
        mode: ExecMode::hetero(),
        node,
        cycles: 10,
        fidelity: Fidelity::CostOnly,
        gpu_direct: false,
        diffusion: None,
        multipolicy_threshold: 0,
        trace: false,
        telemetry: false,
        problem: Default::default(),
        faults: None,
        rebalance: None,
        host_threads: 1,
        tile: None,
        particles: None,
    }
}

fn bench(c: &mut Criterion) {
    let buggy = cfg_with(NodeConfig::rzhasgpu());
    let fixed = cfg_with(NodeConfig::rzhasgpu_fixed_compiler());
    let (rb, _) = run_balanced(&buggy).expect("buggy run");
    let (rf, _) = run_balanced(&fixed).expect("fixed run");
    eprintln!(
        "lambda bug active:   runtime={:.4}s cpu_fraction={:.4}",
        rb.runtime.as_secs_f64(),
        rb.cpu_fraction
    );
    eprintln!(
        "lambda bug resolved: runtime={:.4}s cpu_fraction={:.4}",
        rf.runtime.as_secs_f64(),
        rf.cpu_fraction
    );
    assert!(
        rf.cpu_fraction > rb.cpu_fraction,
        "fixing the compiler must raise the CPU share"
    );

    let mut group = c.benchmark_group("lambda_ablation");
    group.sample_size(10);
    group.bench_function("bug_active", |b| {
        b.iter(|| run_balanced(&buggy).expect("run"))
    });
    group.bench_function("bug_resolved", |b| {
        b.iter(|| run_balanced(&fixed).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
