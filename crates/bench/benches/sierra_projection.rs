//! The Sierra projection (paper §2 / §6.2): the same cooperative
//! approach on a Sierra-early-access node (2× POWER9 + 4 Volta). More
//! CPU cores and faster GPUs shift the balance; the paper expects the
//! heterogeneous approach to keep paying off as hardware and software
//! mature.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_core::{run_balanced, ExecMode, NodeConfig, RunConfig};
use hsim_raja::Fidelity;

fn cfg(node: NodeConfig, mode: ExecMode) -> RunConfig {
    RunConfig {
        grid: (600, 480, 160),
        mode,
        node,
        cycles: 10,
        fidelity: Fidelity::CostOnly,
        gpu_direct: false,
        diffusion: None,
        multipolicy_threshold: 0,
        trace: false,
        telemetry: false,
        problem: Default::default(),
        faults: None,
        rebalance: None,
        host_threads: 1,
        tile: None,
        particles: None,
    }
}

fn bench(c: &mut Criterion) {
    for (name, node) in [
        ("rzhasgpu", NodeConfig::rzhasgpu()),
        ("sierra_ea", NodeConfig::sierra_ea()),
    ] {
        let (d, _) = run_balanced(&cfg(node.clone(), ExecMode::Default)).expect("default");
        let (h, _) = run_balanced(&cfg(node.clone(), ExecMode::hetero())).expect("hetero");
        eprintln!(
            "{name}: Default {:.4}s | Hetero {:.4}s ({:+.1}%) cpu_share {:.2}%",
            d.runtime.as_secs_f64(),
            h.runtime.as_secs_f64(),
            (h.runtime.as_secs_f64() / d.runtime.as_secs_f64() - 1.0) * 100.0,
            h.cpu_fraction * 100.0
        );
    }

    let mut group = c.benchmark_group("sierra_projection");
    group.sample_size(10);
    for (name, node) in [
        ("rzhasgpu_hetero", NodeConfig::rzhasgpu()),
        ("sierra_hetero", NodeConfig::sierra_ea()),
    ] {
        let c_ = cfg(node, ExecMode::hetero());
        group.bench_function(name, |b| b.iter(|| run_balanced(&c_).expect("run")));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
