//! Load-balancer ablation (paper §6.2): the Heterogeneous mode with
//! the measured-feedback balancer vs naive fixed splits (too much /
//! too little CPU work).

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_core::runner::run_with_fraction;
use hsim_core::{run_balanced, ExecMode, RunConfig};

fn bench(c: &mut Criterion) {
    let grid = (450, 480, 160);
    let balanced_cfg = RunConfig::sweep(grid, ExecMode::hetero());
    let (balanced, lb) = run_balanced(&balanced_cfg).expect("balanced run");
    let naive_big = run_with_fraction(&balanced_cfg, 0.15).expect("15% run");
    let naive_small = run_with_fraction(&balanced_cfg, 0.005).expect("0.5% run");
    eprintln!(
        "balanced (f={:.4}): {:.4}s | naive 15%: {:.4}s | naive 0.5%: {:.4}s",
        lb.fraction,
        balanced.runtime.as_secs_f64(),
        naive_big.runtime.as_secs_f64(),
        naive_small.runtime.as_secs_f64()
    );
    assert!(
        balanced.runtime <= naive_big.runtime,
        "overloading the CPUs must not beat the balancer"
    );

    let mut group = c.benchmark_group("balance_ablation");
    group.sample_size(10);
    group.bench_function("balancer_loop", |b| {
        b.iter(|| run_balanced(&balanced_cfg).expect("run"))
    });
    group.bench_function("fixed_fraction_single_run", |b| {
        b.iter(|| run_with_fraction(&balanced_cfg, lb.fraction).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
