//! Portability-layer overhead (paper Figures 5–7): the cost of the
//! `forall` abstraction under each execution policy, the dynamic
//! policy selection, and the work-sharing pool.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_gpu::KernelDesc;
use hsim_raja::{select_policy, Arch, AresPolicy, CpuModel, Executor, Fidelity, Target, WorkPool};
use hsim_time::RankClock;

fn bench(c: &mut Criterion) {
    let desc = KernelDesc::new("axpy", 2.0, 24.0);
    let n = 100_000usize;

    let mut group = c.benchmark_group("raja");
    group.bench_function("forall_seq_full", |b| {
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut x = vec![1.0f64; n];
        b.iter(|| {
            exec.forall(&mut clock, &desc, n, n as u32, |i| {
                x[i] = x[i] * 1.0000001 + 0.5;
            })
            .expect("forall");
        });
    });
    group.bench_function("forall_seq_cost_only", |b| {
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        b.iter(|| {
            exec.forall(&mut clock, &desc, n, n as u32, |_| {})
                .expect("forall");
        });
    });
    group.bench_function("raw_loop_reference", |b| {
        let mut x = vec![1.0f64; n];
        b.iter(|| {
            for v in x.iter_mut() {
                *v = *v * 1.0000001 + 0.5;
            }
        });
    });
    group.bench_function("dynamic_policy_selection", |b| {
        b.iter(|| {
            let mut k = 0usize;
            for intent in [
                AresPolicy::ThreadSafe,
                AresPolicy::NotThreadSafe,
                AresPolicy::HeavyCompute,
                AresPolicy::LightCompute,
                AresPolicy::Reduction,
            ] {
                for arch in [Arch::CpuSequential, Arch::CpuThreaded, Arch::Gpu] {
                    k += select_policy(intent, arch) as usize;
                }
            }
            k
        });
    });
    let pool = WorkPool::new(3);
    group.bench_function("pool_sum_100k", |b| {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        b.iter(|| pool.sum(0, n, 1024, |i| x[i] * 2.0));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
