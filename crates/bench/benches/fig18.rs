//! Criterion bench regenerating the paper's Figure 18: varying the x-dimension (y=480, z=160).
//!
//! The full series comes from `cargo run -p hsim-bench --bin figures
//! -- fig18`; this bench times representative sweep points (one per
//! regime) for each mode and prints the simulated runtimes it found.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_bench::paper_modes;
use hsim_core::figures::fig18;
use hsim_core::{run_balanced, RunConfig};

fn bench(c: &mut Criterion) {
    let spec = fig18();
    let points = spec.points();
    // First and last sweep points bracket the figure's regimes.
    let picks = [points[0], *points.last().expect("nonempty sweep")];
    let mut group = c.benchmark_group("fig18");
    group.sample_size(10);
    for mode in paper_modes() {
        for p in picks {
            let cfg = RunConfig::sweep(p.grid(), mode);
            let label = format!("{}/{}z", mode.key(), p.zones());
            // Print the simulated runtime once for the record.
            if let Ok((r, _)) = run_balanced(&cfg) {
                eprintln!(
                    "fig18 {} zones={} simulated_runtime={:.4}s cpu_fraction={:.4}",
                    mode.key(),
                    r.zones,
                    r.runtime.as_secs_f64(),
                    r.cpu_fraction
                );
            }
            group.bench_function(&label, |b| {
                b.iter(|| run_balanced(&cfg).expect("figure point runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
