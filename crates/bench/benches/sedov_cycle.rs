//! The Figure 11 workload: full-fidelity Sedov hydro cycles ("a
//! hydrodynamics calculation with 80 kernels"), wall-clock per cycle
//! at several mesh sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_hydro::sedov::{self, SedovConfig};
use hsim_hydro::{step, HydroState, SoloCoupler};
use hsim_mesh::{GlobalGrid, Subdomain};
use hsim_raja::{CpuModel, Executor, Fidelity, Target};
use hsim_time::RankClock;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sedov_cycle");
    group.sample_size(10);
    for n in [16usize, 24, 32] {
        group.bench_function(format!("full_{n}cubed"), |b| {
            b.iter_batched(
                || {
                    let grid = GlobalGrid::new(n, n, n);
                    let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
                    let mut st = HydroState::new(grid, sub, Fidelity::Full);
                    sedov::init(&mut st, &SedovConfig::default());
                    st
                },
                |mut st| {
                    let mut exec =
                        Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
                    let mut clock = RankClock::new(0);
                    let mut solo = SoloCoupler;
                    let stats =
                        step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).expect("cycle");
                    assert!(stats.launches >= 80, "Figure 11: ~80 kernels per cycle");
                    st
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    // Cost-only cycle (what the sweeps pay per point).
    group.bench_function("cost_only_320x480x160", |b| {
        let grid = GlobalGrid::new(320, 480, 160);
        let sub = Subdomain::new([0, 0, 0], [320, 480, 160], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::CostOnly);
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        let mut solo = SoloCoupler;
        b.iter(|| step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1e-4).expect("cycle"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
