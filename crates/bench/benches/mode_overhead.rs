//! Modes side by side (paper Figures 1–4): one fixed problem run in
//! each of the four node-utilization modes, with the simulated
//! runtimes printed for the record.
//!
//! Also proves the telemetry contract: with no collector installed
//! (the default for every run here), the per-launch recording calls
//! perform zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_core::{run, ExecMode, RunConfig};
use hsim_time::{SimDuration, SimTime};

/// System allocator with an allocation counter, so the bench can
/// assert the disabled telemetry hot path never touches the heap.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the `System` allocator — layout and
// pointer contracts are forwarded unchanged; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — `layout` is passed
        // through to the system allocator untouched.
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded verbatim from
        // the caller, which owns the allocation.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` was produced by this same
        // pass-through allocator.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Drive every per-launch recording entry point with telemetry
/// disabled and assert the allocation counter did not move.
fn assert_disabled_telemetry_is_allocation_free() {
    use hsim_telemetry as tel;
    assert!(!tel::is_enabled(), "bench must start with telemetry off");
    const CALLS: u64 = 10_000;
    // One warm-up round so lazy thread-local init cannot be charged
    // to the measured window.
    tel::count(tel::Counter::KernelLaunches, 1);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..CALLS {
        let t0 = SimTime::ZERO;
        let t1 = SimTime::ZERO + SimDuration::from_nanos(i);
        tel::count(tel::Counter::KernelLaunches, 1);
        tel::time_stat(tel::TimeStat::KernelTime, SimDuration::from_nanos(i));
        tel::gauge_max(tel::Gauge::DeviceOccupancy, 0.5);
        tel::rank_span(tel::Category::CpuKernel, "probe", t0, t1);
        tel::span_args(
            0,
            0,
            tel::Category::GpuKernel,
            "probe",
            t0,
            t1,
            &[("elems", i)],
        );
        tel::kernel_launch("probe", 64, 0, SimDuration::from_nanos(i), false, 1.0);
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "disabled telemetry hot path allocated {allocated} times"
    );
    eprintln!(
        "telemetry disabled-path: 0 heap allocations across {} record calls",
        CALLS * 6
    );
}

fn bench(c: &mut Criterion) {
    assert_disabled_telemetry_is_allocation_free();
    let grid = (320, 240, 160);
    let mut group = c.benchmark_group("mode_overhead");
    group.sample_size(10);
    for mode in [
        ExecMode::CpuOnly,
        ExecMode::Default,
        ExecMode::mps4(),
        ExecMode::hetero(),
    ] {
        let cfg = RunConfig::sweep(grid, mode);
        let r = run(&cfg).expect("mode runs");
        eprintln!(
            "{:24} simulated_runtime={:.4}s ranks={} launches={}",
            mode.label(),
            r.runtime.as_secs_f64(),
            r.ranks.len(),
            r.total_launches()
        );
        group.bench_function(mode.key(), |b| b.iter(|| run(&cfg).expect("run")));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
