//! Modes side by side (paper Figures 1–4): one fixed problem run in
//! each of the four node-utilization modes, with the simulated
//! runtimes printed for the record.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_core::{run, ExecMode, RunConfig};

fn bench(c: &mut Criterion) {
    let grid = (320, 240, 160);
    let mut group = c.benchmark_group("mode_overhead");
    group.sample_size(10);
    for mode in [
        ExecMode::CpuOnly,
        ExecMode::Default,
        ExecMode::mps4(),
        ExecMode::hetero(),
    ] {
        let cfg = RunConfig::sweep(grid, mode);
        let r = run(&cfg).expect("mode runs");
        eprintln!(
            "{:24} simulated_runtime={:.4}s ranks={} launches={}",
            mode.label(),
            r.runtime.as_secs_f64(),
            r.ranks.len(),
            r.total_launches()
        );
        group.bench_function(mode.key(), |b| b.iter(|| run(&cfg).expect("run")));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
