//! MPS client-count ablation: how many ranks per GPU pay off?
//!
//! The paper fixes 4 MPI/GPU; this ablation sweeps residents ∈
//! {1, 2, 4, 8} at a small-x (overlap-friendly) and a large-x
//! (device-filling) problem, showing the launch-overhead/overlap
//! trade-off from both sides.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_core::{run, ExecMode, RunConfig};

fn bench(c: &mut Criterion) {
    let cases = [
        ("small_x", (80, 240, 320)),  // overlap helps
        ("large_x", (600, 240, 320)), // kernels fill the device
    ];
    for (label, grid) in cases {
        for per_gpu in [1usize, 2, 4, 8] {
            let mode = if per_gpu == 1 {
                ExecMode::Default
            } else {
                ExecMode::Mps { per_gpu }
            };
            let cfg = RunConfig::sweep(grid, mode);
            match run(&cfg) {
                Ok(r) => eprintln!(
                    "{label} {per_gpu} rank(s)/GPU: simulated {:.4}s",
                    r.runtime.as_secs_f64()
                ),
                Err(e) => eprintln!("{label} {per_gpu}/GPU infeasible: {e}"),
            }
        }
    }

    let mut group = c.benchmark_group("mps_residents");
    group.sample_size(10);
    // 8 ranks/GPU would need 32 cores — the node has 16, so the run
    // reports it as infeasible above; bench the feasible counts.
    for per_gpu in [2usize, 4] {
        let cfg = RunConfig::sweep((80, 240, 320), ExecMode::Mps { per_gpu });
        group.bench_function(format!("small_x_{per_gpu}per_gpu"), |b| {
            b.iter(|| run(&cfg).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
