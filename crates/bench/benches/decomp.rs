//! Decomposition ablation (paper §6.1, Figures 9–10): build cost and
//! communication metrics of the square, hierarchical, and weighted
//! schemes at node scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hsim_mesh::decomp::weighted::{weighted_hetero_decomp, WeightedConfig};
use hsim_mesh::decomp::{block_decomp, block_decomp_yz, hierarchical_decomp_yz};
use hsim_mesh::metrics::measure;
use hsim_mesh::{GlobalGrid, HaloPlan};

fn bench(c: &mut Criterion) {
    let grid = GlobalGrid::new(320, 480, 160);

    // Print the Figure 9/10 comparison once.
    let square16 = block_decomp(grid, 16, 1);
    let hier = hierarchical_decomp_yz(grid, 4, 4, 2, 1).expect("hierarchical");
    let weighted = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.02)).expect("weighted");
    for (name, d) in [
        ("square-4", &block_decomp_yz(grid, 4, 1)),
        ("square-16", &square16),
        ("hierarchical-4x4", &hier),
        ("weighted-hetero", &weighted),
    ] {
        let m = measure(d);
        eprintln!(
            "{name}: ranks={} max_neighbors={} total_halo_area={} imbalance={:.3}",
            m.ranks, m.max_neighbors, m.total_halo_area, m.imbalance
        );
    }

    let mut group = c.benchmark_group("decomp");
    group.bench_function("block_16", |b| b.iter(|| block_decomp(grid, 16, 1)));
    group.bench_function("block_yz_4", |b| b.iter(|| block_decomp_yz(grid, 4, 1)));
    group.bench_function("hierarchical_4x4", |b| {
        b.iter(|| hierarchical_decomp_yz(grid, 4, 4, 2, 1).expect("ok"))
    });
    group.bench_function("weighted_hetero", |b| {
        b.iter(|| weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.02)).expect("ok"))
    });
    group.bench_function("halo_plan_16", |b| b.iter(|| HaloPlan::build(&square16)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
