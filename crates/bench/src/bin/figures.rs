//! Regenerate every evaluation figure of the paper (12–18): write CSV
//! series into `target/figures/` and print ASCII charts.
//!
//! Usage: `cargo run -p hsim-bench --bin figures [--release] [fig12 ...]`

use std::fs;
use std::path::Path;

use hsim_bench::{ascii_chart, paper_modes, run_figure};
use hsim_core::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");
    let modes = paper_modes();
    for spec in figures::all_figures() {
        if !args.is_empty() && !args.iter().any(|a| a == spec.id) {
            continue;
        }
        eprintln!("running {} ({})...", spec.id, spec.caption);
        let data = run_figure(&spec, &modes);
        let csv_path = out_dir.join(format!("{}.csv", spec.id));
        fs::write(&csv_path, data.to_csv()).expect("write csv");
        let md_path = out_dir.join(format!("{}.md", spec.id));
        fs::write(&md_path, data.to_markdown()).expect("write markdown");
        println!("\n=== {} — {} ===", spec.id, spec.caption);
        println!("{}", ascii_chart(&data.chart_series(), 72, 20));
        println!("(series written to {})", csv_path.display());
    }
}
