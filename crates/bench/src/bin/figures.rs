//! Regenerate every evaluation figure of the paper (12–18): write CSV
//! series into `target/figures/` and print ASCII charts.
//!
//! Usage: `cargo run -p hsim-bench --bin figures [--release] [fig12 ...]
//!         [--jobs N] [--trace-json PATH] [--metrics-json PATH]`
//!
//! `--jobs N` bounds how many sweep simulations run concurrently
//! (default: the host's available parallelism). Every job count
//! produces byte-identical CSV/markdown output — the simulations are
//! deterministic virtual-time runs and results are assembled in a
//! fixed order.
//!
//! The telemetry flags instrument one Fig-18 Heterogeneous reference
//! run (x=300, y=480, z=160) and write its Chrome trace / metrics
//! JSON alongside the sweeps.

use std::fs;
use std::path::Path;

use hsim_bench::{ascii_chart, paper_modes, run_figure_jobs};
use hsim_core::figures;
use hsim_core::{run_balanced, ExecMode, RunConfig};

/// Run the instrumented Fig-18 Heterogeneous reference point and
/// write whichever telemetry outputs were requested.
fn reference_run(trace_json: Option<&str>, metrics_json: Option<&str>) {
    let cfg = RunConfig {
        telemetry: true,
        ..RunConfig::sweep((300, 480, 160), ExecMode::hetero())
    };
    eprintln!("running instrumented fig18 reference point (hetero, 300x480x160)...");
    let (result, _lb) = run_balanced(&cfg).expect("fig18 reference run");
    let summary = result.telemetry.as_ref().expect("telemetry enabled");
    if let Some(path) = trace_json {
        fs::write(path, summary.to_chrome_json()).expect("write trace json");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = metrics_json {
        fs::write(path, summary.to_metrics_json()).expect("write metrics json");
        eprintln!("wrote metrics to {path}");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a PATH argument");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let trace_json = take_flag("--trace-json");
    let metrics_json = take_flag("--metrics-json");
    let jobs = match take_flag("--jobs") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs needs a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    if trace_json.is_some() || metrics_json.is_some() {
        reference_run(trace_json.as_deref(), metrics_json.as_deref());
        if args.is_empty() {
            return;
        }
    }
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");
    let modes = paper_modes();
    for spec in figures::all_figures() {
        if !args.is_empty() && !args.iter().any(|a| a == spec.id) {
            continue;
        }
        eprintln!("running {} ({}, {jobs} job(s))...", spec.id, spec.caption);
        let data = run_figure_jobs(&spec, &modes, jobs);
        let csv_path = out_dir.join(format!("{}.csv", spec.id));
        fs::write(&csv_path, data.to_csv()).expect("write csv");
        let md_path = out_dir.join(format!("{}.md", spec.id));
        fs::write(&md_path, data.to_markdown()).expect("write markdown");
        println!("\n=== {} — {} ===", spec.id, spec.caption);
        println!("{}", ascii_chart(&data.chart_series(), 72, 20));
        let footer = data.skip_footer();
        if !footer.is_empty() {
            print!("{footer}");
        }
        println!("(series written to {})", csv_path.display());
    }
}
