//! Wall-clock performance harness for the host-side parallel layers.
//!
//! Usage: `cargo run --release -p hsim-bench --bin perf
//!         [--quick] [--jobs N] [--out PATH]`
//!
//! The `ci-gate` subcommand turns the harness into a regression gate:
//! `perf ci-gate [--fresh PATH] [--baseline PATH] [--section all|serve]`
//! compares a freshly written results file against the checked-in
//! `ci/perf-baseline.json`
//! and exits nonzero when the persistent pool regresses past 2× the
//! baseline dispatch latency, loses to the spawn-per-region baseline,
//! a sweep's parallel output diverged from serial, or (on hosts that
//! actually have cores to fan out over) a sweep speedup falls below
//! 0.9. Single-core runners can only bound the fan-out *overhead*, so
//! there the speedup floor relaxes to 0.5.
//!
//! Schema v2 adds a `kernels` block: fused cache-blocked hydro sweeps
//! vs the legacy per-pass kernels, in million zones per wall-clock
//! second, for each tile candidate plus a whole-plane "tile" that
//! ablates the cache blocking. The gate enforces machine-independent
//! *ratio* floors (fused must beat legacy at every cache-blocked tile,
//! and the best blocked tile must clear [`BEST_KERNEL_RATIO_FLOOR`]),
//! requires fused output to be bitwise-identical to legacy, and
//! rejects results files whose `schema_version` it does not recognize.
//!
//! Schema v3 adds a `serve` block fed by the synthetic many-client
//! load driver ([`hsim_bench::serveload`]): cache hit rate, request
//! latency quantiles, and the overflow probe's typed-rejection count
//! against a live `hsim-serve` server. The `serve-slo` subcommand
//! (`perf serve-slo [--out PATH]`) runs only that driver and writes a
//! serve-only results file; `ci-gate --section serve` gates it on the
//! SLO floors (hit rate >= [`SERVE_HIT_RATE_FLOOR`], p50/p99 latency
//! ceilings, and at least one typed queue-overflow rejection) without
//! demanding the sweep/kernel/pool blocks a full run carries.
//!
//! Everything else in this repo measures *virtual* time — the cost
//! model's simulated seconds, which are deterministic and identical
//! on every machine. This harness is the one place that measures
//! *host* wall-clock instead: how fast the simulator itself runs when
//! the figure sweeps fan out over a job pool and when parallel
//! regions go through the persistent [`WorkPool`] workers. Virtual
//! clocks are never touched; the serial and parallel sweeps are
//! asserted byte-identical before any number is reported.
//!
//! Results are written as deterministic-schema JSON (default
//! `BENCH_figures.json`): sweep serial/parallel seconds and speedup,
//! pool region-dispatch latency against a spawn-per-region baseline,
//! reduction throughput, and the `host_*` telemetry counters the
//! measured code recorded along the way. `host_parallelism` is
//! recorded so single-core results are read as such.

use std::fmt::Write as _;
use std::time::Instant;

use hsim_bench::{paper_modes, run_figure_jobs, FigureData};
use hsim_core::calib::{self, TILE_CANDIDATES};
use hsim_core::figures::{self, FigureSpec};
use hsim_hydro::{eos, flux, fused, HydroState};
use hsim_raja::{CpuModel, Executor, Fidelity, Target, WorkPool};
use hsim_telemetry::{Collector, Counter};
use hsim_time::RankClock;

/// The results-file schema this binary writes and the only one the
/// gate accepts. Bump when the JSON layout changes and regenerate
/// `ci/perf-baseline.json`.
const SCHEMA_VERSION: u32 = 3;

/// Gate floor on the *best* cache-blocked tile's fused:legacy
/// throughput ratio. Fusing primitive recovery, wavespeeds, fluxes and
/// updates into one tile-local traversal removes whole-array passes,
/// so the win is machine-independent; 1.3× is the tentpole's target.
const BEST_KERNEL_RATIO_FLOOR: f64 = 1.3;

/// Gate floor on every individual cache-blocked tile: fused must at
/// least match the legacy per-pass kernels it replaces.
const KERNEL_RATIO_FLOOR: f64 = 1.0;

/// Gate floor on the serve cache hit rate. The load driver requests
/// each distinct config many times, so a healthy cache lands far
/// above this; falling below it means the content-hash cache or the
/// single-flight join broke.
const SERVE_HIT_RATE_FLOOR: f64 = 0.5;

/// Ceiling on the serve p50 request latency. The median request is a
/// cache hit (hash + map lookup), so even slow CI hosts sit orders of
/// magnitude under this.
const SERVE_P50_CEILING_MS: f64 = 50.0;

/// Ceiling on the serve p99 request latency: generous enough to cover
/// a full cold run of the load driver's workload on a slow host.
const SERVE_P99_CEILING_MS: f64 = 10_000.0;

/// One sweep's serial-vs-parallel wall-clock comparison.
struct SweepResult {
    id: String,
    tasks: usize,
    serial_s: f64,
    parallel_s: f64,
    skipped: usize,
}

/// One tile shape's fused-vs-legacy kernel throughput comparison.
struct KernelResult {
    tile: String,
    blocked: bool,
    fused_mzps: f64,
}

/// A small custom sweep so `--quick` finishes in seconds anywhere.
fn quick_spec() -> FigureSpec {
    FigureSpec {
        id: "quick",
        caption: "trimmed sweep for the perf harness",
        sweep: figures::SweepAxis::X,
        values: vec![64, 96, 128, 160],
        fixed: (48, 32),
    }
}

fn measure_sweep(spec: &FigureSpec, jobs: usize) -> SweepResult {
    let modes = paper_modes();
    let t0 = Instant::now();
    let serial = run_figure_jobs(spec, &modes, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = run_figure_jobs(spec, &modes, jobs);
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_identical(&serial, &parallel, spec.id);
    SweepResult {
        id: spec.id.to_string(),
        tasks: modes.len() * spec.values.len(),
        serial_s,
        parallel_s,
        skipped: serial.skipped.len(),
    }
}

/// The whole point of deterministic fan-out: `--jobs N` must never
/// change a single byte of any figure artifact.
fn assert_identical(serial: &FigureData, parallel: &FigureData, id: &str) {
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "{id}: parallel sweep changed the CSV output"
    );
    assert_eq!(
        serial.to_markdown(),
        parallel.to_markdown(),
        "{id}: parallel sweep changed the markdown output"
    );
}

/// Timestep for the kernel bench: small enough that repeated sweeps
/// on the hot-spot state stay far from the CFL bound.
const KERNEL_DT: f64 = 1e-5;

/// The kernel bench for one `--quick`/full configuration: legacy
/// per-pass throughput once (it has no tile knob), fused throughput
/// per tile shape.
struct KernelBench {
    grid_n: usize,
    reps: usize,
    legacy_mzps: f64,
    tiles: Vec<KernelResult>,
}

/// A deterministic full-fidelity state with a hot central zone, so the
/// benched sweeps move real (non-zero) fluxes through the cache.
fn kernel_state(n: usize) -> HydroState {
    let grid = hsim_mesh::GlobalGrid::new(n, n, n);
    let sub = hsim_mesh::Subdomain::new([0, 0, 0], [n, n, n], 1);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    st.init_ambient(1.0, 0.4);
    let c = n / 2 + 1; // allocated index of a central owned zone
    st.u.set(hsim_hydro::state::EN, c, c, c, 50.0);
    st
}

/// Time `reps` fused (primitive recovery + first-order sweep)
/// iterations on a fresh state; returns throughput in million zones
/// per wall-clock second plus the final state for the identity check.
fn run_fused_kernels(n: usize, tile: [usize; 2], reps: usize) -> (f64, HydroState) {
    let mut st = kernel_state(n);
    st.tile = tile;
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    // One warm-up rep keeps first-touch and allocator effects out of
    // the timed region; the legacy run mirrors it, so the end states
    // stay comparable bit for bit.
    fused::primitives(&mut st, &mut exec, &mut clock).expect("fused primitives");
    fused::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("fused sweep");
    let t0 = Instant::now();
    for _ in 0..reps {
        fused::primitives(&mut st, &mut exec, &mut clock).expect("fused primitives");
        fused::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("fused sweep");
    }
    let mzps = (n * n * n * reps) as f64 / t0.elapsed().as_secs_f64() / 1e6;
    (mzps, st)
}

/// Same workload through the legacy per-pass kernels (one whole-array
/// traversal per logical kernel), the reference the fused path fuses.
fn run_legacy_kernels(n: usize, reps: usize) -> (f64, HydroState) {
    let mut st = kernel_state(n);
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    eos::primitives(&mut st, &mut exec, &mut clock).expect("legacy primitives");
    flux::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("legacy sweep");
    let t0 = Instant::now();
    for _ in 0..reps {
        eos::primitives(&mut st, &mut exec, &mut clock).expect("legacy primitives");
        flux::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("legacy sweep");
    }
    let mzps = (n * n * n * reps) as f64 / t0.elapsed().as_secs_f64() / 1e6;
    (mzps, st)
}

/// The fused path exists to move throughput, never bytes: every tile
/// shape must reproduce the legacy per-pass kernels bit for bit.
fn assert_kernels_identical(fused: &HydroState, legacy: &HydroState, label: &str) {
    let same = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(
        same(fused.u.slab(), legacy.u.slab()),
        "kernel tile {label}: fused conserved state diverged from legacy"
    );
    assert!(
        same(fused.prim.slab(), legacy.prim.slab()),
        "kernel tile {label}: fused primitives diverged from legacy"
    );
}

/// Fused-vs-legacy throughput for every tile candidate plus a
/// whole-plane tile that keeps the fusion but ablates the blocking.
fn bench_kernels(quick: bool) -> KernelBench {
    let (n, reps) = if quick { (40, 2) } else { (56, 3) };
    eprintln!("kernel bench: legacy per-pass, {reps} reps on {n}^3...");
    let (legacy_mzps, legacy_st) = run_legacy_kernels(n, reps);
    let whole = [n + 2, n + 2];
    let mut tiles = Vec::new();
    for tile in TILE_CANDIDATES
        .iter()
        .copied()
        .chain(std::iter::once(whole))
    {
        let blocked = tile != whole;
        let label = if blocked {
            format!("{}x{}", tile[0], tile[1])
        } else {
            "whole".to_string()
        };
        eprintln!("kernel bench: fused tile {label}, {reps} reps on {n}^3...");
        let (fused_mzps, fused_st) = run_fused_kernels(n, tile, reps);
        assert_kernels_identical(&fused_st, &legacy_st, &label);
        tiles.push(KernelResult {
            tile: label,
            blocked,
            fused_mzps,
        });
    }
    KernelBench {
        grid_n: n,
        reps,
        legacy_mzps,
        tiles,
    }
}

/// Wall-clock nanoseconds per no-op parallel region on the persistent
/// pool: the handoff cost the lifetime-erased job slot pays instead
/// of spawning.
fn bench_pool_region_ns(pool: &WorkPool, regions: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..regions {
        pool.for_chunks(0, 64, 64, |_, _| {});
    }
    t0.elapsed().as_nanos() as f64 / regions as f64
}

/// The baseline the pool replaces: spawn scoped threads per region,
/// as `for_chunks` did before workers became persistent.
fn bench_spawn_region_ns(threads: usize, regions: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..regions {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| std::hint::black_box(64));
            }
        });
    }
    t0.elapsed().as_nanos() as f64 / regions as f64
}

/// Reduction throughput in millions of elements per wall-clock second.
fn bench_sum_melems(pool: &WorkPool, elems: usize, reps: usize) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        acc += pool.sum(0, elems, 1024, |i| i as f64 * 1e-9);
    }
    std::hint::black_box(acc);
    (elems * reps) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Extract the first `"key": <number>` after `from` in our own
/// fixed-schema JSON. No general parser: the harness wrote the file.
fn json_num(text: &str, key: &str, from: usize) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The byte offset of sweep `id`'s line in a results file, if present.
fn sweep_pos(text: &str, id: &str) -> Option<usize> {
    text.find(&format!("\"id\": \"{id}\""))
}

/// The `(tile label, byte offset)` of every kernel entry in a results
/// file, in file order. Entries live only in the `kernels` block, so
/// the scan starts there.
fn kernel_entries(text: &str) -> Vec<(String, usize)> {
    let Some(kpos) = text.find("\"kernels\"") else {
        return Vec::new();
    };
    let needle = "\"tile\": \"";
    let mut out = Vec::new();
    let mut at = kpos;
    while let Some(rel) = text[at..].find(needle) {
        let start = at + rel + needle.len();
        let Some(len) = text[start..].find('"') else {
            break;
        };
        out.push((text[start..start + len].to_string(), start));
        at = start + len;
    }
    out
}

/// The line of text containing byte offset `pos`.
fn line_at(text: &str, pos: usize) -> &str {
    let start = text[..pos].rfind('\n').map_or(0, |i| i + 1);
    let end = text[pos..].find('\n').map_or(text.len(), |i| pos + i);
    &text[start..end]
}

/// Schema gate: both files must carry the `schema_version` this
/// binary understands. Anything else — older, newer, or absent — is
/// rejected outright, because the remaining checks would silently
/// mis-parse an unknown layout.
fn schema_violations(fresh: &str, baseline: &str) -> Vec<String> {
    let mut bad = Vec::new();
    for (role, text) in [("fresh", fresh), ("baseline", baseline)] {
        match json_num(text, "schema_version", 0) {
            Some(v) if v == f64::from(SCHEMA_VERSION) => {}
            Some(v) => bad.push(format!(
                "{role} schema_version: expected {SCHEMA_VERSION}, found {v} (unrecognized; regenerate the file with this perf binary)"
            )),
            None => bad.push(format!(
                "{role} schema_version: expected {SCHEMA_VERSION}, found none (unrecognized; regenerate the file with this perf binary)"
            )),
        }
    }
    bad
}

/// Kernel-throughput floors. All floors are fused:legacy *ratios*, so
/// they hold on any hardware: the fused path must not lose to the
/// per-pass kernels it replaced at any cache-blocked tile, and the
/// best blocked tile must clear [`BEST_KERNEL_RATIO_FLOOR`]. The
/// baseline's ratio for the same tile is quoted in every message so a
/// failure reads as a diff.
fn kernel_violations(fresh: &str, baseline: &str, bad: &mut Vec<String>, log: &mut Vec<String>) {
    let entries = kernel_entries(fresh);
    if entries.is_empty() {
        bad.push("missing kernels block in fresh results".to_string());
        return;
    }
    let base_ratio = |label: &str| -> String {
        baseline
            .find(&format!("\"tile\": \"{label}\""))
            .and_then(|pos| json_num(baseline, "ratio", pos))
            .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}"))
    };
    let mut best: Option<(String, f64)> = None;
    for (label, pos) in &entries {
        let line = line_at(fresh, *pos);
        let Some(ratio) = json_num(line, "ratio", 0) else {
            bad.push(format!("missing kernels[{label}] ratio"));
            continue;
        };
        if !line.contains("\"identical_output\": true") {
            bad.push(format!(
                "kernels[{label}] identical_output: expected true, measured false (fused output diverged from legacy)"
            ));
        }
        let blocked = line.contains("\"blocked\": true");
        if !blocked {
            log.push(format!(
                "kernels[{label}] (blocking ablation) fused:legacy ratio {ratio:.3}, not gated"
            ));
            continue;
        }
        if ratio < KERNEL_RATIO_FLOOR {
            bad.push(format!(
                "kernels[{label}] fused:legacy ratio: floor {KERNEL_RATIO_FLOOR:.2}, baseline {}, measured {ratio:.3}",
                base_ratio(label)
            ));
        } else {
            log.push(format!(
                "kernels[{label}] fused:legacy ratio {ratio:.3} >= floor {KERNEL_RATIO_FLOOR:.2} (baseline {})",
                base_ratio(label)
            ));
        }
        let improves = match &best {
            Some((_, b)) => ratio > *b,
            None => true,
        };
        if improves {
            best = Some((label.clone(), ratio));
        }
    }
    if let Some((label, ratio)) = best {
        if ratio < BEST_KERNEL_RATIO_FLOOR {
            bad.push(format!(
                "kernels best blocked tile ({label}) fused:legacy ratio: floor {BEST_KERNEL_RATIO_FLOOR:.2}, baseline {}, measured {ratio:.3}",
                base_ratio(&label)
            ));
        } else {
            log.push(format!(
                "kernels best blocked tile ({label}) ratio {ratio:.3} >= floor {BEST_KERNEL_RATIO_FLOOR:.2}"
            ));
        }
    }
}

/// Serve SLO floors. Hit rate and the typed-rejection probe are
/// machine-independent (the load driver's request mix is fixed); the
/// latency ceilings are deliberately loose so only a pathological
/// regression — a lost cache, a hung queue — trips them. The
/// baseline's value is quoted in every message so a failure reads as
/// a diff.
fn serve_violations(fresh: &str, baseline: &str, bad: &mut Vec<String>, log: &mut Vec<String>) {
    let Some(spos) = fresh.find("\"serve\"") else {
        bad.push("missing serve block in fresh results".to_string());
        return;
    };
    let base = |key: &str| -> String {
        baseline
            .find("\"serve\"")
            .and_then(|p| json_num(baseline, key, p))
            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}"))
    };
    let need = |what: &str, bad: &mut Vec<String>| -> f64 {
        json_num(fresh, what, spos).unwrap_or_else(|| {
            bad.push(format!("missing serve {what}"));
            f64::NAN
        })
    };
    let hit_rate = need("hit_rate", bad);
    let p50 = need("p50_ms", bad);
    let p99 = need("p99_ms", bad);
    let rejected = need("rejected", bad);

    if hit_rate < SERVE_HIT_RATE_FLOOR {
        bad.push(format!(
            "serve hit_rate: floor {SERVE_HIT_RATE_FLOOR:.2}, baseline {}, measured {hit_rate:.3}",
            base("hit_rate")
        ));
    } else {
        log.push(format!(
            "serve hit_rate {hit_rate:.3} >= floor {SERVE_HIT_RATE_FLOOR:.2} (baseline {})",
            base("hit_rate")
        ));
    }
    for (label, ceiling, v) in [
        ("p50_ms", SERVE_P50_CEILING_MS, p50),
        ("p99_ms", SERVE_P99_CEILING_MS, p99),
    ] {
        if v > ceiling {
            bad.push(format!(
                "serve {label}: ceiling {ceiling:.1} ms, baseline {}, measured {v:.1}",
                base(label)
            ));
        } else {
            log.push(format!(
                "serve {label} {v:.1} ms <= ceiling {ceiling:.1} ms (baseline {})",
                base(label)
            ));
        }
    }
    if rejected >= 1.0 {
        log.push(format!("serve overflow probe rejected {rejected} requests"));
    } else {
        // NaN (missing key) lands here too: no evidence of a rejection.
        bad.push(format!(
            "serve rejected: expected >= 1 overflow rejection from the probe, baseline {}, measured {rejected}",
            base("rejected")
        ));
    }
    if !fresh[spos..].contains("\"rejections_typed\": true") {
        bad.push(
            "serve rejections_typed: expected true, measured false \
             (an overflow surfaced as something other than the typed QueueFull)"
                .to_string(),
        );
    } else {
        log.push("serve overflow rejections all carried the typed QueueFull".to_string());
    }
}

/// Which blocks of the results file the gate demands. A full `perf`
/// run carries every block; a `serve-slo` run carries only the serve
/// block, so gating it as `All` would fail on the missing sweeps.
#[derive(Clone, Copy, PartialEq)]
enum GateSection {
    All,
    Serve,
}

/// Apply the gate rules to a fresh results file against a baseline.
/// Returns the violations (empty = pass) and the log lines explaining
/// every check that ran.
fn gate_violations(fresh: &str, baseline: &str) -> (Vec<String>, Vec<String>) {
    gate_violations_in(fresh, baseline, GateSection::All)
}

fn gate_violations_in(
    fresh: &str,
    baseline: &str,
    section: GateSection,
) -> (Vec<String>, Vec<String>) {
    let mut bad = schema_violations(fresh, baseline);
    if !bad.is_empty() {
        // An unrecognized layout makes every other check meaningless.
        return (bad, Vec::new());
    }
    let mut log = Vec::new();
    serve_violations(fresh, baseline, &mut bad, &mut log);
    if section == GateSection::Serve {
        return (bad, log);
    }
    kernel_violations(fresh, baseline, &mut bad, &mut log);
    fn need(bad: &mut Vec<String>, what: &str, v: Option<f64>) -> f64 {
        v.unwrap_or_else(|| {
            bad.push(format!("missing {what}"));
            f64::NAN
        })
    }

    let fresh_persistent = need(
        &mut bad,
        "fresh pool.region_ns_persistent",
        json_num(fresh, "region_ns_persistent", 0),
    );
    let fresh_spawn = need(
        &mut bad,
        "fresh pool.region_ns_scoped_spawn",
        json_num(fresh, "region_ns_scoped_spawn", 0),
    );
    let base_persistent = need(
        &mut bad,
        "baseline pool.region_ns_persistent",
        json_num(baseline, "region_ns_persistent", 0),
    );
    let host_parallelism = need(
        &mut bad,
        "fresh host_parallelism",
        json_num(fresh, "host_parallelism", 0),
    );

    if fresh_persistent > 2.0 * base_persistent {
        bad.push(format!(
            "pool region dispatch regressed: {fresh_persistent:.1} ns > 2x baseline {base_persistent:.1} ns"
        ));
    } else {
        log.push(format!(
            "pool dispatch {fresh_persistent:.1} ns <= 2x baseline {base_persistent:.1} ns"
        ));
    }
    if fresh_persistent >= fresh_spawn {
        bad.push(format!(
            "persistent pool lost to spawn-per-region: {fresh_persistent:.1} ns >= {fresh_spawn:.1} ns"
        ));
    } else {
        log.push(format!(
            "persistent pool beats scoped spawn: {fresh_persistent:.1} ns < {fresh_spawn:.1} ns"
        ));
    }

    // A 1-core runner cannot speed anything up; it can only pay
    // overhead. Require real speedup only where cores exist.
    let floor = if host_parallelism > 1.0 { 0.9 } else { 0.5 };
    for id in ["quick", "fig14"] {
        let Some(pos) = sweep_pos(fresh, id) else {
            log.push(format!("sweep {id} not in fresh results (skipped)"));
            continue;
        };
        let speedup = need(
            &mut bad,
            &format!("sweep {id} speedup"),
            json_num(fresh, "speedup", pos),
        );
        if speedup < floor {
            bad.push(format!(
                "sweep {id} speedup {speedup:.3} < floor {floor} (host_parallelism {host_parallelism})"
            ));
        } else {
            log.push(format!("sweep {id} speedup {speedup:.3} >= floor {floor}"));
        }
        if !fresh[pos..fresh[pos..].find('\n').map_or(fresh.len(), |e| pos + e)]
            .contains("\"identical_output\": true")
        {
            bad.push(format!("sweep {id} parallel output diverged from serial"));
        } else {
            log.push(format!("sweep {id} parallel output identical to serial"));
        }
    }
    (bad, log)
}

fn ci_gate(mut args: Vec<String>) -> ! {
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let fresh_path = take_flag("--fresh").unwrap_or_else(|| "BENCH_figures.json".into());
    let base_path = take_flag("--baseline").unwrap_or_else(|| "ci/perf-baseline.json".into());
    let section = match take_flag("--section").as_deref() {
        None | Some("all") => GateSection::All,
        Some("serve") => GateSection::Serve,
        Some(other) => {
            eprintln!("--section must be \"all\" or \"serve\", got {other:?}");
            std::process::exit(2);
        }
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("ci-gate: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (bad, log) = match section {
        GateSection::All => gate_violations(&read(&fresh_path), &read(&base_path)),
        GateSection::Serve => {
            gate_violations_in(&read(&fresh_path), &read(&base_path), GateSection::Serve)
        }
    };
    for line in &log {
        eprintln!("ci-gate: ok: {line}");
    }
    if bad.is_empty() {
        eprintln!("ci-gate: PASS ({fresh_path} vs {base_path})");
        std::process::exit(0);
    }
    for v in &bad {
        eprintln!("ci-gate: FAIL: {v}");
    }
    std::process::exit(1);
}

/// Render the `serve` results block (no trailing comma/newline, so
/// callers can place it anywhere in their object).
fn serve_json(r: &hsim_bench::ServeLoadReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  \"serve\": {{");
    let _ = writeln!(s, "    \"clients\": {},", r.clients);
    let _ = writeln!(s, "    \"requests\": {},", r.requests);
    let _ = writeln!(s, "    \"distinct_configs\": {},", r.distinct_configs);
    let _ = writeln!(s, "    \"hits\": {},", r.hits);
    let _ = writeln!(s, "    \"misses\": {},", r.misses);
    let _ = writeln!(s, "    \"admitted\": {},", r.admitted);
    let _ = writeln!(s, "    \"rejected\": {},", r.rejected);
    let _ = writeln!(s, "    \"deadline_drops\": {},", r.deadline_drops);
    let _ = writeln!(s, "    \"hit_rate\": {:.3},", r.hit_rate);
    let _ = writeln!(s, "    \"p50_ms\": {:.3},", r.p50_ms);
    let _ = writeln!(s, "    \"p99_ms\": {:.3},", r.p99_ms);
    let _ = writeln!(s, "    \"rejections_typed\": {}", r.rejections_typed);
    let _ = write!(s, "  }}");
    s
}

/// `perf serve-slo [--out PATH]`: run only the serve load driver and
/// write a serve-only results file for `ci-gate --section serve`.
fn serve_slo(mut args: Vec<String>) -> ! {
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let out_path = take_flag("--out").unwrap_or_else(|| "BENCH_serve.json".into());
    if let Some(stray) = args.first() {
        eprintln!("unknown argument: {stray}");
        eprintln!("usage: perf serve-slo [--out PATH]");
        std::process::exit(2);
    }
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "serve load: {} clients x {} requests over {} configs, then overflow probe...",
        hsim_bench::serveload::CLIENTS,
        hsim_bench::serveload::PER_CLIENT,
        hsim_bench::serveload::DISTINCT_CONFIGS,
    );
    let report = hsim_bench::run_load(calib::auto_tile());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    json.push_str(&serve_json(&report));
    json.push('\n');
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    print!("{json}");
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("ci-gate") {
        ci_gate(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("serve-slo") {
        serve_slo(args.split_off(1));
    }
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let out_path = take_flag("--out").unwrap_or_else(|| "BENCH_figures.json".into());
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs: usize = match take_flag("--jobs") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs needs a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None => host_parallelism,
    };
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if let Some(stray) = args.first() {
        eprintln!("unknown argument: {stray}");
        eprintln!("usage: perf [--quick] [--jobs N] [--out PATH]");
        eprintln!("       perf serve-slo [--out PATH]");
        eprintln!("       perf ci-gate [--fresh PATH] [--baseline PATH] [--section all|serve]");
        std::process::exit(2);
    }

    // Collect the host-time counters the measured code records; spans
    // stay off so the collector itself costs nothing measurable.
    hsim_telemetry::install(Collector::new(0).without_spans());

    // Sweep fan-out: quick mode runs a trimmed spec, the full harness
    // adds the paper's Fig. 14 strong-scaling style sweep.
    let mut sweep_specs = vec![quick_spec()];
    if !quick {
        sweep_specs.extend(
            figures::all_figures()
                .into_iter()
                .filter(|s| s.id == "fig14"),
        );
    }
    let mut sweeps = Vec::new();
    for spec in &sweep_specs {
        eprintln!(
            "sweep {}: {} tasks, serial then --jobs {jobs}...",
            spec.id,
            paper_modes().len() * spec.values.len()
        );
        sweeps.push(measure_sweep(spec, jobs));
    }

    // Fused-vs-legacy hydro kernel throughput, per tile shape.
    let kernels = bench_kernels(quick);

    // Pool microbenches on the calling thread (the coordinator role
    // the runner plays), sized down in quick mode.
    let (regions, elems, reps) = if quick {
        (200, 1 << 20, 4)
    } else {
        (2000, 1 << 23, 8)
    };
    let pool = WorkPool::new(jobs.saturating_sub(1));
    eprintln!(
        "pool microbench: {regions} regions, {} threads...",
        pool.parallelism()
    );
    let region_ns_persistent = bench_pool_region_ns(&pool, regions);
    let region_ns_spawn = bench_spawn_region_ns(pool.parallelism(), regions);
    let sum_melems_per_s = bench_sum_melems(&pool, elems, reps);

    // The serve load driver: many clients, few configs, one shared
    // server + a queue-overflow probe. The sweeps above already ran
    // the tile probe, so the server is seeded with the cached tile.
    eprintln!(
        "serve load: {} clients x {} requests over {} configs, then overflow probe...",
        hsim_bench::serveload::CLIENTS,
        hsim_bench::serveload::PER_CLIENT,
        hsim_bench::serveload::DISTINCT_CONFIGS,
    );
    let serve_report = hsim_bench::run_load(calib::auto_tile());

    let metrics = hsim_telemetry::uninstall()
        .expect("collector installed above")
        .metrics;
    let counter = |c| metrics.counter(c);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sweeps\": [");
    for (i, s) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        let speedup = s.serial_s / s.parallel_s.max(1e-12);
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"tasks\": {}, \"skipped\": {}, \"serial_s\": {:.6}, \
             \"parallel_s\": {:.6}, \"speedup\": {:.3}, \"identical_output\": true}}{comma}",
            s.id, s.tasks, s.skipped, s.serial_s, s.parallel_s, speedup
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"kernels\": {{");
    let _ = writeln!(json, "    \"grid_n\": {},", kernels.grid_n);
    let _ = writeln!(json, "    \"reps\": {},", kernels.reps);
    let _ = writeln!(
        json,
        "    \"legacy_mzones_per_s\": {:.3},",
        kernels.legacy_mzps
    );
    let _ = writeln!(json, "    \"tiles\": [");
    for (i, k) in kernels.tiles.iter().enumerate() {
        let comma = if i + 1 < kernels.tiles.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"tile\": \"{}\", \"blocked\": {}, \"fused_mzones_per_s\": {:.3}, \
             \"ratio\": {:.3}, \"identical_output\": true}}{comma}",
            k.tile,
            k.blocked,
            k.fused_mzps,
            k.fused_mzps / kernels.legacy_mzps.max(1e-12)
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pool\": {{");
    let _ = writeln!(json, "    \"workers\": {},", pool.parallelism());
    let _ = writeln!(json, "    \"regions_timed\": {regions},");
    let _ = writeln!(
        json,
        "    \"region_ns_persistent\": {region_ns_persistent:.1},"
    );
    let _ = writeln!(
        json,
        "    \"region_ns_scoped_spawn\": {region_ns_spawn:.1},"
    );
    let _ = writeln!(json, "    \"sum_melems_per_s\": {sum_melems_per_s:.2}");
    let _ = writeln!(json, "  }},");
    json.push_str(&serve_json(&serve_report));
    let _ = writeln!(json, ",");
    let _ = writeln!(json, "  \"telemetry\": {{");
    let _ = writeln!(
        json,
        "    \"host_sweep_points\": {},",
        counter(Counter::HostSweepPoints)
    );
    let _ = writeln!(
        json,
        "    \"host_sweep_nanos\": {},",
        counter(Counter::HostSweepNanos)
    );
    let _ = writeln!(
        json,
        "    \"host_pool_regions\": {},",
        counter(Counter::HostPoolRegions)
    );
    let _ = writeln!(
        json,
        "    \"host_pool_nanos\": {}",
        counter(Counter::HostPoolNanos)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    print!("{json}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `(tile, blocked, ratio, identical_output)` rows for a fixture's
    /// kernels block.
    type KernelRow = (&'static str, bool, f64, bool);

    const HEALTHY_KERNELS: &[KernelRow] = &[
        ("4x4", true, 1.35, true),
        ("8x8", true, 1.62, true),
        ("16x16", true, 1.51, true),
        ("whole", false, 1.08, true),
    ];

    fn kernels_block(rows: &[KernelRow]) -> String {
        let mut out = String::from(
            "  \"kernels\": {\n    \"grid_n\": 56,\n    \"reps\": 3,\n    \
             \"legacy_mzones_per_s\": 10.000,\n    \"tiles\": [\n",
        );
        for (i, (tile, blocked, ratio, identical)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      {{\"tile\": \"{tile}\", \"blocked\": {blocked}, \
                 \"fused_mzones_per_s\": {:.3}, \"ratio\": {ratio:.3}, \
                 \"identical_output\": {identical}}}{comma}",
                ratio * 10.0
            );
        }
        out.push_str("    ]\n  },\n");
        out
    }

    /// A fixture `serve` block (no surrounding commas/newlines).
    fn serve_block(hit_rate: f64, p50: f64, p99: f64, rejected: u64, typed: bool) -> String {
        format!(
            "  \"serve\": {{\n    \"clients\": 4,\n    \"requests\": 48,\n    \
             \"distinct_configs\": 6,\n    \"hits\": 42,\n    \"misses\": 6,\n    \
             \"admitted\": 48,\n    \"rejected\": {rejected},\n    \"deadline_drops\": 0,\n    \
             \"hit_rate\": {hit_rate:.3},\n    \"p50_ms\": {p50:.3},\n    \"p99_ms\": {p99:.3},\n    \
             \"rejections_typed\": {typed}\n  }}"
        )
    }

    fn healthy_serve() -> String {
        serve_block(0.875, 0.4, 120.0, 3, true)
    }

    #[allow(clippy::too_many_arguments)] // fixture builder, named args read fine
    fn results_with(
        schema: &str,
        parallelism: u32,
        speedup: f64,
        identical: bool,
        persistent: f64,
        spawn: f64,
        kernels: &[KernelRow],
        serve: &str,
    ) -> String {
        format!(
            "{{\n{schema}  \"host_parallelism\": {parallelism},\n  \"sweeps\": [\n    \
             {{\"id\": \"quick\", \"tasks\": 12, \"speedup\": {speedup:.3}, \"identical_output\": {identical}}}\n  ],\n\
             {}  \"pool\": {{\n    \"region_ns_persistent\": {persistent:.1},\n    \
             \"region_ns_scoped_spawn\": {spawn:.1}\n  }},\n{serve}\n}}\n",
            kernels_block(kernels)
        )
    }

    fn results(
        parallelism: u32,
        speedup: f64,
        identical: bool,
        persistent: f64,
        spawn: f64,
    ) -> String {
        results_with(
            "  \"schema_version\": 3,\n",
            parallelism,
            speedup,
            identical,
            persistent,
            spawn,
            HEALTHY_KERNELS,
            &healthy_serve(),
        )
    }

    #[test]
    fn gate_passes_a_healthy_run() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = results(4, 2.9, true, 12_000.0, 190_000.0);
        let (bad, log) = gate_violations(&fresh, &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("quick")));
    }

    #[test]
    fn gate_fails_on_pool_regression_and_lost_baseline_race() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // 3x slower dispatch AND slower than spawning threads.
        let fresh = results(4, 3.0, true, 30_000.0, 25_000.0);
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("2x baseline"));
        assert!(bad[1].contains("spawn-per-region"));
    }

    #[test]
    fn gate_enforces_speedup_only_where_cores_exist() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // 0.7x "speedup" is a violation on 4 cores...
        let (bad, _) = gate_violations(&results(4, 0.7, true, 10_000.0, 200_000.0), &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("speedup"));
        // ...but acceptable overhead on a single-core runner.
        let (bad, log) = gate_violations(&results(1, 0.7, true, 10_000.0, 200_000.0), &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("floor 0.5")));
    }

    #[test]
    fn gate_fails_on_diverged_output_and_missing_keys() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let (bad, _) = gate_violations(&results(4, 3.0, false, 10_000.0, 200_000.0), &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("diverged"));
        let schema_only = "{\n  \"schema_version\": 3\n}\n";
        let (bad, _) = gate_violations(schema_only, &base);
        assert!(bad.iter().any(|b| b.contains("missing")), "{bad:?}");
    }

    #[test]
    fn gate_rejects_unrecognized_schema_versions() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // Older, newer, and absent schema versions are all rejected
        // before any metric check runs (the log stays empty).
        for schema in [
            "  \"schema_version\": 2,\n",
            "  \"schema_version\": 4,\n",
            "",
        ] {
            let fresh = results_with(
                schema,
                4,
                2.9,
                true,
                12_000.0,
                190_000.0,
                HEALTHY_KERNELS,
                &healthy_serve(),
            );
            let (bad, log) = gate_violations(&fresh, &base);
            assert_eq!(bad.len(), 1, "{schema:?}: {bad:?}");
            assert!(bad[0].contains("schema_version"), "{bad:?}");
            assert!(bad[0].contains("unrecognized"), "{bad:?}");
            assert!(log.is_empty(), "{log:?}");
        }
        // A stale baseline is rejected the same way.
        let v1_base = results_with(
            "  \"schema_version\": 2,\n",
            4,
            3.1,
            true,
            10_000.0,
            200_000.0,
            HEALTHY_KERNELS,
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&results(4, 2.9, true, 12_000.0, 190_000.0), &v1_base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("baseline schema_version"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_per_tile_kernel_floor_with_diff_style_message() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // One blocked tile slips under 1.0: fused lost to legacy there.
        let fresh = results_with(
            "  \"schema_version\": 3,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[
                ("4x4", true, 0.93, true),
                ("8x8", true, 1.62, true),
                ("16x16", true, 1.51, true),
                ("whole", false, 1.08, true),
            ],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        // Diff-style: the message names the metric, the floor, the
        // baseline's value for the same tile, and what was measured.
        assert!(bad[0].contains("kernels[4x4]"), "{bad:?}");
        assert!(bad[0].contains("floor 1.00"), "{bad:?}");
        assert!(bad[0].contains("baseline 1.350"), "{bad:?}");
        assert!(bad[0].contains("measured 0.930"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_best_tile_floor_and_ignores_the_ablation() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // Every blocked tile beats legacy but none reaches 1.3x; the
        // unblocked whole-plane ablation at 2.0 must not rescue it.
        let fresh = results_with(
            "  \"schema_version\": 3,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[
                ("4x4", true, 1.05, true),
                ("8x8", true, 1.12, true),
                ("16x16", true, 1.08, true),
                ("whole", false, 2.00, true),
            ],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("best blocked tile (8x8)"), "{bad:?}");
        assert!(bad[0].contains("floor 1.30"), "{bad:?}");
        assert!(bad[0].contains("measured 1.120"), "{bad:?}");
    }

    #[test]
    fn gate_fails_when_fused_kernels_diverge_or_go_missing() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = results_with(
            "  \"schema_version\": 3,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[
                ("4x4", true, 1.35, true),
                ("8x8", true, 1.62, false),
                ("16x16", true, 1.51, true),
                ("whole", false, 1.08, true),
            ],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("kernels[8x8] identical_output"), "{bad:?}");
        // No kernels block at all is its own violation.
        let fresh = results_with(
            "  \"schema_version\": 3,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter().any(|b| b.contains("missing kernels block")),
            "{bad:?}"
        );
    }

    #[test]
    fn gate_enforces_serve_hit_rate_floor_with_diff_style_message() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = results_with(
            "  \"schema_version\": 3,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            HEALTHY_KERNELS,
            &serve_block(0.300, 0.4, 120.0, 3, true),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("serve hit_rate"), "{bad:?}");
        assert!(bad[0].contains("floor 0.50"), "{bad:?}");
        assert!(bad[0].contains("baseline 0.875"), "{bad:?}");
        assert!(bad[0].contains("measured 0.300"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_serve_latency_ceilings_and_typed_rejections() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // p50 over its ceiling.
        let fresh = results_with(
            "  \"schema_version\": 3,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            HEALTHY_KERNELS,
            &serve_block(0.875, 80.0, 120.0, 3, true),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("serve p50_ms"), "{bad:?}");
        assert!(bad[0].contains("ceiling 50.0 ms"), "{bad:?}");
        // No overflow rejections, and the ones seen weren't typed:
        // both are independent violations.
        let fresh = results_with(
            "  \"schema_version\": 3,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            HEALTHY_KERNELS,
            &serve_block(0.875, 0.4, 120.0, 0, false),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("serve rejected"), "{bad:?}");
        assert!(bad[1].contains("rejections_typed"), "{bad:?}");
        // A results file with no serve block at all is a violation.
        let fresh = results(4, 2.9, true, 12_000.0, 190_000.0).replace("\"serve\"", "\"svc\"");
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter().any(|b| b.contains("missing serve block")),
            "{bad:?}"
        );
    }

    #[test]
    fn serve_section_gates_a_serve_only_results_file() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // What `perf serve-slo` writes: schema + host_parallelism +
        // serve block, no sweeps/kernels/pool.
        let fresh = format!(
            "{{\n  \"schema_version\": 3,\n  \"host_parallelism\": 4,\n{}\n}}\n",
            healthy_serve()
        );
        let (bad, log) = gate_violations_in(&fresh, &base, GateSection::Serve);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("serve hit_rate")), "{log:?}");
        // The same file gated as `all` fails on the missing blocks.
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(!bad.is_empty());
        // And the serve section still enforces the schema handshake.
        let stale = fresh.replace("\"schema_version\": 3", "\"schema_version\": 2");
        let (bad, log) = gate_violations_in(&stale, &base, GateSection::Serve);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("schema_version"), "{bad:?}");
        assert!(log.is_empty(), "{log:?}");
    }

    #[test]
    fn sweeps_absent_from_a_quick_run_are_skipped_not_failed() {
        // Quick runs carry no fig14 sweep; the gate must not invent one.
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let (bad, log) = gate_violations(&results(4, 2.9, true, 10_000.0, 200_000.0), &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("fig14 not in fresh results")));
    }
}
