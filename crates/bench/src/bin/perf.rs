//! Wall-clock performance harness for the host-side parallel layers.
//!
//! Usage: `cargo run --release -p hsim-bench --bin perf
//!         [--quick] [--jobs N] [--out PATH]`
//!
//! The `ci-gate` subcommand turns the harness into a regression gate:
//! `perf ci-gate [--fresh PATH] [--baseline PATH] [--section all|serve|rebalance]`
//! compares a freshly written results file against the checked-in
//! `ci/perf-baseline.json`
//! and exits nonzero when the persistent pool regresses past 2× the
//! baseline dispatch latency, loses to the spawn-per-region baseline,
//! a sweep's parallel output diverged from serial, or (on hosts that
//! actually have cores to fan out over) a sweep speedup falls below
//! 0.9. Single-core runners can only bound the fan-out *overhead*, so
//! there the speedup floor relaxes to 0.5.
//!
//! Schema v2 adds a `kernels` block: fused cache-blocked hydro sweeps
//! vs the legacy per-pass kernels, in million zones per wall-clock
//! second, for each tile candidate plus a whole-plane "tile" that
//! ablates the cache blocking. The gate enforces machine-independent
//! *ratio* floors (fused must beat legacy at every cache-blocked tile,
//! and the best blocked tile must clear [`BEST_KERNEL_RATIO_FLOOR`]),
//! requires fused output to be bitwise-identical to legacy, and
//! rejects results files whose `schema_version` it does not recognize.
//!
//! Schema v3 adds a `serve` block fed by the synthetic many-client
//! load driver ([`hsim_bench::serveload`]): cache hit rate, request
//! latency quantiles, and the overflow probe's typed-rejection count
//! against a live `hsim-serve` server. The `serve-slo` subcommand
//! (`perf serve-slo [--out PATH]`) runs only that driver and writes a
//! serve-only results file; `ci-gate --section serve` gates it on the
//! SLO floors (hit rate >= [`SERVE_HIT_RATE_FLOOR`], p50/p99 latency
//! ceilings, and at least one typed queue-overflow rejection) without
//! demanding the sweep/kernel/pool blocks a full run carries.
//!
//! Schema v4 measures the **parallel-tile** fused path and predicts
//! its roof. `kernels.parallel` runs the fused sweep on the shared
//! [`WorkPool`] at `--host-threads` workers (default 4) against the
//! serial fused path on the same tile, after verifying byte-identical
//! output at worker counts 1, 2, and 4; the gate floors the
//! parallel:serial ratio by the *effective* parallelism
//! `min(workers, host_cores)`, so an oversubscribed single-core
//! runner bounds overhead instead of demanding impossible speedup
//! (the same rule now governs the sweep speedup floor via
//! `min(jobs, host_cores)`). A `roofline` block records a
//! STREAM-triad bandwidth probe at the same worker count, the
//! catalog's per-kernel flop/byte intensities, and the
//! bandwidth-predicted Mzones/s for the per-pass workload
//! ([`hsim_bench::roofline`]); the gate rejects runs whose best fused
//! throughput falls under [`ROOFLINE_FRACTION_FLOOR`] of that roof.
//! Fractions *above* 1.0 are expected — they are cache-resident
//! fusion beating streamed traffic. Serve latency quantiles are now
//! microsecond-valued (`p50_us`/`p99_us`, nanosecond-recorded), and
//! `p50_us` must be strictly positive: a zero median means the
//! harness lost sub-millisecond resolution again. `host_parallelism`
//! is renamed `host_cores`.
//!
//! Schema v5 adds a `rebalance` block fed by the online-controller
//! convergence study ([`hsim_bench::rebalance`]): a CPU:GPU
//! speed-ratio sweep where the measured-speed controller starts from
//! a wrong split and must converge onto the analytic optimum weight,
//! a granularity-clamped `ny = 24` row reproducing the paper's
//! `12/ny` bottleneck, and a controller-enabled `rank.loss` double
//! run that must replay byte-identically. The `rebalance` subcommand
//! (`perf rebalance [--out PATH]`) runs only that study and writes a
//! rebalance-only results file; `ci-gate --section rebalance` gates
//! it on the convergence floors (rel err <=
//! [`REBALANCE_REL_ERR_CEILING`], converged by
//! [`REBALANCE_CONVERGED_CYCLE_CEILING`] cycles, splits never below
//! the guard, the clamped row pinned to it) and on the recovery
//! identity. Unlike every other block, the rebalance numbers are
//! *virtual-time* measurements: they are deterministic and identical
//! on every machine, so the gate compares them exactly, not by ratio.
//!
//! Schema v6 adds a `scenarios` block: every first-class scenario
//! (Sedov, Sod, Noh, Taylor–Green) runs at full fidelity in both
//! CpuOnly and Heterogeneous modes on a fixed per-regime grid with
//! the tracer-particle phase on. Each entry records the virtual-time
//! zone throughput, the scenario's analytic-error metric (L1 against
//! the exact Sod/Noh solutions, Taylor–Green kinetic-energy decay
//! error; `-1` for Sedov, which has no pointwise reference), whether
//! a same-seed double run was bit-identical, and whether the particle
//! totals were conserved. The `scenarios` subcommand (`perf scenarios
//! [--out PATH]`) runs only that study; `ci-gate --section scenarios`
//! gates it on per-scenario throughput floors
//! ([`SCENARIO_MZPS_FLOOR_FRAC`] of baseline) and analytic error
//! ceilings ([`SCENARIO_ERROR_CEILING_FRAC`] of baseline). Like the
//! rebalance block these are virtual-time numbers, identical on every
//! machine.
//!
//! Everything else in this repo measures *virtual* time — the cost
//! model's simulated seconds, which are deterministic and identical
//! on every machine. This harness is the one place that measures
//! *host* wall-clock instead: how fast the simulator itself runs when
//! the figure sweeps fan out over a job pool and when parallel
//! regions go through the persistent [`WorkPool`] workers. Virtual
//! clocks are never touched; the serial and parallel sweeps are
//! asserted byte-identical before any number is reported.
//!
//! Results are written as deterministic-schema JSON (default
//! `BENCH_figures.json`): sweep serial/parallel seconds and speedup,
//! pool region-dispatch latency against a spawn-per-region baseline,
//! reduction throughput, and the `host_*` telemetry counters the
//! measured code recorded along the way. `host_cores` is recorded so
//! single-core results are read as such.

use std::fmt::Write as _;
use std::time::Instant;

use hsim_bench::{paper_modes, run_figure_jobs, FigureData};
use hsim_core::calib::{self, TILE_CANDIDATES};
use hsim_core::figures::{self, FigureSpec};
use hsim_core::runner::{self, RunConfig};
use hsim_core::{ExecMode, RunResult, Scenario};
use hsim_hydro::{eos, flux, fused, HydroState};
use hsim_particles::ParticlesConfig;
use hsim_raja::{CpuModel, Executor, Fidelity, Target, WorkPool};
use hsim_telemetry::{Collector, Counter};
use hsim_time::RankClock;

/// The results-file schema this binary writes and the only one the
/// gate accepts. Bump when the JSON layout changes and regenerate
/// `ci/perf-baseline.json`.
const SCHEMA_VERSION: u32 = 6;

/// Gate floor on the *best* cache-blocked tile's fused:legacy
/// throughput ratio. Fusing primitive recovery, wavespeeds, fluxes and
/// updates into one tile-local traversal removes whole-array passes,
/// so the win is machine-independent; 1.3× is the tentpole's target.
const BEST_KERNEL_RATIO_FLOOR: f64 = 1.3;

/// Gate floor on every individual cache-blocked tile: fused must at
/// least match the legacy per-pass kernels it replaces.
const KERNEL_RATIO_FLOOR: f64 = 1.0;

/// Gate floor on the serve cache hit rate. The load driver requests
/// each distinct config many times, so a healthy cache lands far
/// above this; falling below it means the content-hash cache or the
/// single-flight join broke.
const SERVE_HIT_RATE_FLOOR: f64 = 0.5;

/// Ceiling on the serve p50 request latency (µs). The median request
/// is a cache hit (hash + map lookup), so even slow CI hosts sit
/// orders of magnitude under this.
const SERVE_P50_CEILING_US: f64 = 50_000.0;

/// Ceiling on the serve p99 request latency (µs): generous enough to
/// cover a full cold run of the load driver's workload on a slow
/// host.
const SERVE_P99_CEILING_US: f64 = 10_000_000.0;

/// Tile shape for the parallel fused bench: the serial sweet spot,
/// so the parallel:serial ratio isolates the pool scheduling.
const PARALLEL_TILE: [usize; 2] = [8, 8];

/// Worker counts whose fused output must be byte-identical before the
/// parallel throughput is reported.
const PARALLEL_WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Default `--host-threads`: workers for the parallel fused bench and
/// the triad probe.
const DEFAULT_HOST_THREADS: usize = 4;

/// Gate floor on the parallel:serial fused throughput ratio, keyed by
/// the *effective* parallelism `min(workers, host_cores)`: with 4+
/// real cores the parallel-tile path must at least double the serial
/// fused path; with 2–3 it must still win; oversubscribed (1 core
/// running 4 workers) it can only be floored on scheduling overhead.
fn parallel_ratio_floor(effective: f64) -> f64 {
    if effective >= 4.0 {
        2.0
    } else if effective >= 2.0 {
        1.2
    } else {
        0.35
    }
}

/// Gate ceiling on every rebalance sweep point's relative error
/// between the controller's final split and the analytic optimum
/// weight (pushed through the real, plane-quantized decomposition). A
/// converged controller lands on the identical discrete split, so
/// healthy runs read 0.
const REBALANCE_REL_ERR_CEILING: f64 = 0.05;

/// Gate ceiling on the cycle by which every rebalance sweep point
/// must have settled inside the convergence band and stayed there;
/// the sweep runs [`hsim_bench::rebalance::SWEEP_CYCLES`] cycles.
const REBALANCE_CONVERGED_CYCLE_CEILING: f64 = 10.0;

/// Gate floor on `roofline.roof_fraction`: the best fused throughput
/// as a fraction of the bandwidth-predicted per-pass roof. Fused runs
/// routinely *exceed* 1.0 (cache-resident tiles don't stream the
/// naive traffic); under a quarter of the roof means the kernels or
/// the probe broke.
const ROOFLINE_FRACTION_FLOOR: f64 = 0.25;

/// Gate floor on every scenario entry's virtual-time zone throughput
/// as a fraction of the baseline's for the same (scenario, mode).
/// The numbers are deterministic, so the 5% slack only absorbs
/// deliberate cost-model recalibrations, not host noise.
const SCENARIO_MZPS_FLOOR_FRAC: f64 = 0.95;

/// Gate ceiling on every scenario entry's analytic-error metric as a
/// multiple of the baseline's: a scheme or coupling change that makes
/// Sod/Noh L1 or the Taylor–Green kinetic-energy decay error grow
/// more than 5% past the pinned baseline fails the gate.
const SCENARIO_ERROR_CEILING_FRAC: f64 = 1.05;

/// Particle count for every scenario gate entry: enough to exercise
/// cross-rank migration on the gate grids.
const SCENARIO_PARTICLES: u64 = 128;

/// Cycles per scenario gate run. Full fidelity, so this bounds the
/// study's cost; the analytic metrics are already nonzero here.
const SCENARIO_CYCLES: u64 = 4;

/// One sweep's serial-vs-parallel wall-clock comparison.
struct SweepResult {
    id: String,
    tasks: usize,
    serial_s: f64,
    parallel_s: f64,
    skipped: usize,
}

/// One tile shape's fused-vs-legacy kernel throughput comparison.
struct KernelResult {
    tile: String,
    blocked: bool,
    fused_mzps: f64,
}

/// A small custom sweep so `--quick` finishes in seconds anywhere.
fn quick_spec() -> FigureSpec {
    FigureSpec {
        id: "quick",
        caption: "trimmed sweep for the perf harness",
        sweep: figures::SweepAxis::X,
        values: vec![64, 96, 128, 160],
        fixed: (48, 32),
        scenario: hsim_core::Scenario::Sedov,
    }
}

fn measure_sweep(spec: &FigureSpec, jobs: usize) -> SweepResult {
    let modes = paper_modes();
    let t0 = Instant::now();
    let serial = run_figure_jobs(spec, &modes, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = run_figure_jobs(spec, &modes, jobs);
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_identical(&serial, &parallel, spec.id);
    SweepResult {
        id: spec.id.to_string(),
        tasks: modes.len() * spec.values.len(),
        serial_s,
        parallel_s,
        skipped: serial.skipped.len(),
    }
}

/// The whole point of deterministic fan-out: `--jobs N` must never
/// change a single byte of any figure artifact.
fn assert_identical(serial: &FigureData, parallel: &FigureData, id: &str) {
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "{id}: parallel sweep changed the CSV output"
    );
    assert_eq!(
        serial.to_markdown(),
        parallel.to_markdown(),
        "{id}: parallel sweep changed the markdown output"
    );
}

/// Timestep for the kernel bench: small enough that repeated sweeps
/// on the hot-spot state stay far from the CFL bound.
const KERNEL_DT: f64 = 1e-5;

/// The kernel bench for one `--quick`/full configuration: legacy
/// per-pass throughput once (it has no tile knob), fused throughput
/// per tile shape.
struct KernelBench {
    grid_n: usize,
    reps: usize,
    legacy_mzps: f64,
    /// Legacy end state, the bitwise reference for the parallel bench.
    legacy_st: HydroState,
    tiles: Vec<KernelResult>,
}

/// A deterministic full-fidelity state with a hot central zone, so the
/// benched sweeps move real (non-zero) fluxes through the cache.
fn kernel_state(n: usize) -> HydroState {
    let grid = hsim_mesh::GlobalGrid::new(n, n, n);
    let sub = hsim_mesh::Subdomain::new([0, 0, 0], [n, n, n], 1);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    st.init_ambient(1.0, 0.4);
    let c = n / 2 + 1; // allocated index of a central owned zone
    st.u.set(hsim_hydro::state::EN, c, c, c, 50.0);
    st
}

/// Time `reps` fused (primitive recovery + first-order sweep)
/// iterations on a fresh state; returns throughput in million zones
/// per wall-clock second plus the final state for the identity check.
fn run_fused_kernels(n: usize, tile: [usize; 2], reps: usize) -> (f64, HydroState) {
    let mut st = kernel_state(n);
    st.tile = tile;
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    // One warm-up rep keeps first-touch and allocator effects out of
    // the timed region; the legacy run mirrors it, so the end states
    // stay comparable bit for bit.
    fused::primitives(&mut st, &mut exec, &mut clock).expect("fused primitives");
    fused::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("fused sweep");
    let t0 = Instant::now();
    for _ in 0..reps {
        fused::primitives(&mut st, &mut exec, &mut clock).expect("fused primitives");
        fused::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("fused sweep");
    }
    let mzps = (n * n * n * reps) as f64 / t0.elapsed().as_secs_f64() / 1e6;
    (mzps, st)
}

/// The fused workload on the parallel-tile path: tiles of the fused
/// sweep scheduled across the process-wide shared [`WorkPool`] at
/// `threads` host threads (1 = the pool degenerates to the caller).
fn run_fused_kernels_par(
    n: usize,
    tile: [usize; 2],
    reps: usize,
    threads: usize,
) -> (f64, HydroState) {
    let mut st = kernel_state(n);
    st.tile = tile;
    let target = Target::CpuParallel {
        pool: WorkPool::shared(threads.saturating_sub(1)),
    };
    let mut exec = Executor::new(target, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    fused::primitives(&mut st, &mut exec, &mut clock).expect("fused primitives");
    fused::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("fused sweep");
    let t0 = Instant::now();
    for _ in 0..reps {
        fused::primitives(&mut st, &mut exec, &mut clock).expect("fused primitives");
        fused::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("fused sweep");
    }
    let mzps = (n * n * n * reps) as f64 / t0.elapsed().as_secs_f64() / 1e6;
    (mzps, st)
}

/// The parallel-tile fused bench: serial-vs-parallel fused throughput
/// on [`PARALLEL_TILE`], after proving every gated worker count
/// reproduces the legacy output bit for bit.
struct ParallelBench {
    workers: usize,
    serial_mzps: f64,
    parallel_mzps: f64,
}

fn bench_parallel_kernels(
    n: usize,
    reps: usize,
    host_threads: usize,
    legacy_st: &HydroState,
    serial_mzps: f64,
) -> ParallelBench {
    // Worker-count invariance first: every gated count must reproduce
    // the legacy bytes (same warm-up + reps as the legacy run, so the
    // end states are comparable) before any throughput is believed.
    let mut parallel_mzps = None;
    for threads in PARALLEL_WORKER_COUNTS {
        eprintln!("kernel bench: parallel fused x{threads}, {reps} reps on {n}^3...");
        let (mzps, st) = run_fused_kernels_par(n, PARALLEL_TILE, reps, threads);
        assert_kernels_identical(&st, legacy_st, &format!("parallel x{threads}"));
        if threads == host_threads {
            parallel_mzps = Some(mzps);
        }
    }
    let parallel_mzps = parallel_mzps.unwrap_or_else(|| {
        eprintln!("kernel bench: parallel fused x{host_threads}, {reps} reps on {n}^3...");
        let (mzps, st) = run_fused_kernels_par(n, PARALLEL_TILE, reps, host_threads);
        assert_kernels_identical(&st, legacy_st, &format!("parallel x{host_threads}"));
        mzps
    });
    ParallelBench {
        workers: host_threads,
        serial_mzps,
        parallel_mzps,
    }
}

/// Same workload through the legacy per-pass kernels (one whole-array
/// traversal per logical kernel), the reference the fused path fuses.
fn run_legacy_kernels(n: usize, reps: usize) -> (f64, HydroState) {
    let mut st = kernel_state(n);
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    eos::primitives(&mut st, &mut exec, &mut clock).expect("legacy primitives");
    flux::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("legacy sweep");
    let t0 = Instant::now();
    for _ in 0..reps {
        eos::primitives(&mut st, &mut exec, &mut clock).expect("legacy primitives");
        flux::sweep(&mut st, &mut exec, &mut clock, KERNEL_DT).expect("legacy sweep");
    }
    let mzps = (n * n * n * reps) as f64 / t0.elapsed().as_secs_f64() / 1e6;
    (mzps, st)
}

/// The fused path exists to move throughput, never bytes: every tile
/// shape must reproduce the legacy per-pass kernels bit for bit.
fn assert_kernels_identical(fused: &HydroState, legacy: &HydroState, label: &str) {
    let same = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(
        same(fused.u.slab(), legacy.u.slab()),
        "kernel tile {label}: fused conserved state diverged from legacy"
    );
    assert!(
        same(fused.prim.slab(), legacy.prim.slab()),
        "kernel tile {label}: fused primitives diverged from legacy"
    );
}

/// Fused-vs-legacy throughput for every tile candidate plus a
/// whole-plane tile that keeps the fusion but ablates the blocking.
fn bench_kernels(quick: bool) -> KernelBench {
    let (n, reps) = if quick { (40, 2) } else { (56, 3) };
    eprintln!("kernel bench: legacy per-pass, {reps} reps on {n}^3...");
    let (legacy_mzps, legacy_st) = run_legacy_kernels(n, reps);
    let whole = [n + 2, n + 2];
    let mut tiles = Vec::new();
    for tile in TILE_CANDIDATES
        .iter()
        .copied()
        .chain(std::iter::once(whole))
    {
        let blocked = tile != whole;
        let label = if blocked {
            format!("{}x{}", tile[0], tile[1])
        } else {
            "whole".to_string()
        };
        eprintln!("kernel bench: fused tile {label}, {reps} reps on {n}^3...");
        let (fused_mzps, fused_st) = run_fused_kernels(n, tile, reps);
        assert_kernels_identical(&fused_st, &legacy_st, &label);
        tiles.push(KernelResult {
            tile: label,
            blocked,
            fused_mzps,
        });
    }
    KernelBench {
        grid_n: n,
        reps,
        legacy_mzps,
        legacy_st,
        tiles,
    }
}

/// Wall-clock nanoseconds per no-op parallel region on the persistent
/// pool: the handoff cost the lifetime-erased job slot pays instead
/// of spawning.
fn bench_pool_region_ns(pool: &WorkPool, regions: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..regions {
        pool.for_chunks(0, 64, 64, |_, _| {});
    }
    t0.elapsed().as_nanos() as f64 / regions as f64
}

/// The baseline the pool replaces: spawn scoped threads per region,
/// as `for_chunks` did before workers became persistent.
fn bench_spawn_region_ns(threads: usize, regions: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..regions {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| std::hint::black_box(64));
            }
        });
    }
    t0.elapsed().as_nanos() as f64 / regions as f64
}

/// Reduction throughput in millions of elements per wall-clock second.
fn bench_sum_melems(pool: &WorkPool, elems: usize, reps: usize) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        acc += pool.sum(0, elems, 1024, |i| i as f64 * 1e-9);
    }
    std::hint::black_box(acc);
    (elems * reps) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Extract the first `"key": <number>` after `from` in our own
/// fixed-schema JSON. No general parser: the harness wrote the file.
fn json_num(text: &str, key: &str, from: usize) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The byte offset of sweep `id`'s line in a results file, if present.
fn sweep_pos(text: &str, id: &str) -> Option<usize> {
    text.find(&format!("\"id\": \"{id}\""))
}

/// The `(tile label, byte offset)` of every kernel entry in a results
/// file, in file order. Entries live only in the `kernels` block, so
/// the scan starts there.
fn kernel_entries(text: &str) -> Vec<(String, usize)> {
    let Some(kpos) = text.find("\"kernels\"") else {
        return Vec::new();
    };
    let needle = "\"tile\": \"";
    let mut out = Vec::new();
    let mut at = kpos;
    while let Some(rel) = text[at..].find(needle) {
        let start = at + rel + needle.len();
        let Some(len) = text[start..].find('"') else {
            break;
        };
        out.push((text[start..start + len].to_string(), start));
        at = start + len;
    }
    out
}

/// The line of text containing byte offset `pos`.
fn line_at(text: &str, pos: usize) -> &str {
    let start = text[..pos].rfind('\n').map_or(0, |i| i + 1);
    let end = text[pos..].find('\n').map_or(text.len(), |i| pos + i);
    &text[start..end]
}

/// Schema gate: both files must carry the `schema_version` this
/// binary understands. Anything else — older, newer, or absent — is
/// rejected outright, because the remaining checks would silently
/// mis-parse an unknown layout.
fn schema_violations(fresh: &str, baseline: &str) -> Vec<String> {
    let mut bad = Vec::new();
    for (role, text) in [("fresh", fresh), ("baseline", baseline)] {
        match json_num(text, "schema_version", 0) {
            Some(v) if v == f64::from(SCHEMA_VERSION) => {}
            Some(v) => bad.push(format!(
                "{role} schema_version: expected {SCHEMA_VERSION}, found {v} (unrecognized; regenerate the file with this perf binary)"
            )),
            None => bad.push(format!(
                "{role} schema_version: expected {SCHEMA_VERSION}, found none (unrecognized; regenerate the file with this perf binary)"
            )),
        }
    }
    bad
}

/// Kernel-throughput floors. All floors are fused:legacy *ratios*, so
/// they hold on any hardware: the fused path must not lose to the
/// per-pass kernels it replaced at any cache-blocked tile, and the
/// best blocked tile must clear [`BEST_KERNEL_RATIO_FLOOR`]. The
/// baseline's ratio for the same tile is quoted in every message so a
/// failure reads as a diff.
fn kernel_violations(fresh: &str, baseline: &str, bad: &mut Vec<String>, log: &mut Vec<String>) {
    let entries = kernel_entries(fresh);
    if entries.is_empty() {
        bad.push("missing kernels block in fresh results".to_string());
        return;
    }
    let base_ratio = |label: &str| -> String {
        baseline
            .find(&format!("\"tile\": \"{label}\""))
            .and_then(|pos| json_num(baseline, "ratio", pos))
            .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}"))
    };
    let mut best: Option<(String, f64)> = None;
    for (label, pos) in &entries {
        let line = line_at(fresh, *pos);
        let Some(ratio) = json_num(line, "ratio", 0) else {
            bad.push(format!("missing kernels[{label}] ratio"));
            continue;
        };
        if !line.contains("\"identical_output\": true") {
            bad.push(format!(
                "kernels[{label}] identical_output: expected true, measured false (fused output diverged from legacy)"
            ));
        }
        let blocked = line.contains("\"blocked\": true");
        if !blocked {
            log.push(format!(
                "kernels[{label}] (blocking ablation) fused:legacy ratio {ratio:.3}, not gated"
            ));
            continue;
        }
        if ratio < KERNEL_RATIO_FLOOR {
            bad.push(format!(
                "kernels[{label}] fused:legacy ratio: floor {KERNEL_RATIO_FLOOR:.2}, baseline {}, measured {ratio:.3}",
                base_ratio(label)
            ));
        } else {
            log.push(format!(
                "kernels[{label}] fused:legacy ratio {ratio:.3} >= floor {KERNEL_RATIO_FLOOR:.2} (baseline {})",
                base_ratio(label)
            ));
        }
        let improves = match &best {
            Some((_, b)) => ratio > *b,
            None => true,
        };
        if improves {
            best = Some((label.clone(), ratio));
        }
    }
    if let Some((label, ratio)) = best {
        if ratio < BEST_KERNEL_RATIO_FLOOR {
            bad.push(format!(
                "kernels best blocked tile ({label}) fused:legacy ratio: floor {BEST_KERNEL_RATIO_FLOOR:.2}, baseline {}, measured {ratio:.3}",
                base_ratio(&label)
            ));
        } else {
            log.push(format!(
                "kernels best blocked tile ({label}) ratio {ratio:.3} >= floor {BEST_KERNEL_RATIO_FLOOR:.2}"
            ));
        }
    }
}

/// Parallel-tile fused floors. The ratio floor scales with the
/// *effective* parallelism `min(workers, host_cores)` — a runner with
/// fewer cores than workers is oversubscribed and can only be held to
/// a scheduling-overhead bound — and the worker-count identity flag
/// is mandatory regardless.
fn parallel_kernel_violations(
    fresh: &str,
    baseline: &str,
    host_cores: f64,
    bad: &mut Vec<String>,
    log: &mut Vec<String>,
) {
    let Some(ppos) = fresh.find("\"parallel\"") else {
        bad.push("missing kernels.parallel block in fresh results".to_string());
        return;
    };
    let end = fresh[ppos..].find('}').map_or(fresh.len(), |e| ppos + e);
    let block = &fresh[ppos..end];
    let base_ratio = baseline
        .find("\"parallel\"")
        .and_then(|p| {
            let bend = baseline[p..].find('}').map_or(baseline.len(), |e| p + e);
            json_num(&baseline[p..bend], "ratio", 0)
        })
        .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}"));
    let need = |what: &str, bad: &mut Vec<String>| -> f64 {
        json_num(block, what, 0).unwrap_or_else(|| {
            bad.push(format!("missing kernels.parallel {what}"));
            f64::NAN
        })
    };
    let workers = need("workers", bad);
    let ratio = need("ratio", bad);
    let effective = workers.min(host_cores);
    let floor = parallel_ratio_floor(effective);
    if ratio < floor {
        bad.push(format!(
            "kernels.parallel fused ratio at {workers} workers: floor {floor:.2} \
             (effective cores {effective}), baseline {base_ratio}, measured {ratio:.3}"
        ));
    } else {
        log.push(format!(
            "kernels.parallel fused ratio {ratio:.3} >= floor {floor:.2} at {workers} workers \
             (effective cores {effective}, baseline {base_ratio})"
        ));
    }
    if block.contains("\"identical_output\": true") {
        log.push("kernels.parallel output identical across worker counts".to_string());
    } else {
        bad.push(
            "kernels.parallel identical_output: expected true, measured false \
             (parallel-tile output diverged across worker counts)"
                .to_string(),
        );
    }
}

/// Roofline floor: the best fused throughput must clear
/// [`ROOFLINE_FRACTION_FLOOR`] of the bandwidth-predicted per-pass
/// roof. Fractions above 1.0 are healthy (cache-resident fusion).
fn roofline_violations(fresh: &str, baseline: &str, bad: &mut Vec<String>, log: &mut Vec<String>) {
    let Some(rpos) = fresh.find("\"roofline\"") else {
        bad.push("missing roofline block in fresh results".to_string());
        return;
    };
    let base_frac = baseline
        .find("\"roofline\"")
        .and_then(|p| json_num(baseline, "roof_fraction", p))
        .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}"));
    let Some(frac) = json_num(fresh, "roof_fraction", rpos) else {
        bad.push("missing roofline roof_fraction".to_string());
        return;
    };
    if frac < ROOFLINE_FRACTION_FLOOR {
        bad.push(format!(
            "roofline roof_fraction: floor {ROOFLINE_FRACTION_FLOOR:.2}, \
             baseline {base_frac}, measured {frac:.3}"
        ));
    } else {
        log.push(format!(
            "roofline roof_fraction {frac:.3} >= floor {ROOFLINE_FRACTION_FLOOR:.2} \
             (baseline {base_frac})"
        ));
    }
}

/// Serve SLO floors. Hit rate and the typed-rejection probe are
/// machine-independent (the load driver's request mix is fixed); the
/// latency ceilings are deliberately loose so only a pathological
/// regression — a lost cache, a hung queue — trips them. The
/// baseline's value is quoted in every message so a failure reads as
/// a diff.
fn serve_violations(fresh: &str, baseline: &str, bad: &mut Vec<String>, log: &mut Vec<String>) {
    let Some(spos) = fresh.find("\"serve\"") else {
        bad.push("missing serve block in fresh results".to_string());
        return;
    };
    let base = |key: &str| -> String {
        baseline
            .find("\"serve\"")
            .and_then(|p| json_num(baseline, key, p))
            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}"))
    };
    let need = |what: &str, bad: &mut Vec<String>| -> f64 {
        json_num(fresh, what, spos).unwrap_or_else(|| {
            bad.push(format!("missing serve {what}"));
            f64::NAN
        })
    };
    let hit_rate = need("hit_rate", bad);
    let p50 = need("p50_us", bad);
    let p99 = need("p99_us", bad);
    let rejected = need("rejected", bad);

    if hit_rate < SERVE_HIT_RATE_FLOOR {
        bad.push(format!(
            "serve hit_rate: floor {SERVE_HIT_RATE_FLOOR:.2}, baseline {}, measured {hit_rate:.3}",
            base("hit_rate")
        ));
    } else {
        log.push(format!(
            "serve hit_rate {hit_rate:.3} >= floor {SERVE_HIT_RATE_FLOOR:.2} (baseline {})",
            base("hit_rate")
        ));
    }
    for (label, ceiling, v) in [
        ("p50_us", SERVE_P50_CEILING_US, p50),
        ("p99_us", SERVE_P99_CEILING_US, p99),
    ] {
        if v > ceiling {
            bad.push(format!(
                "serve {label}: ceiling {ceiling:.1} us, baseline {}, measured {v:.1}",
                base(label)
            ));
        } else {
            log.push(format!(
                "serve {label} {v:.1} us <= ceiling {ceiling:.1} us (baseline {})",
                base(label)
            ));
        }
    }
    // The precision gate: quantiles are nanosecond-recorded, so the
    // load driver's sub-millisecond cache hits must resolve to a
    // strictly positive median. A hard 0 means truncation came back.
    if p50 > 0.0 {
        log.push(format!(
            "serve p50_us {p50:.3} resolves sub-millisecond hits"
        ));
    } else if p50 == 0.0 {
        bad.push(format!(
            "serve p50_us: expected > 0 (nanosecond-resolution quantiles), baseline {}, measured {p50}",
            base("p50_us")
        ));
    }
    if rejected >= 1.0 {
        log.push(format!("serve overflow probe rejected {rejected} requests"));
    } else {
        // NaN (missing key) lands here too: no evidence of a rejection.
        bad.push(format!(
            "serve rejected: expected >= 1 overflow rejection from the probe, baseline {}, measured {rejected}",
            base("rejected")
        ));
    }
    if !fresh[spos..].contains("\"rejections_typed\": true") {
        bad.push(
            "serve rejections_typed: expected true, measured false \
             (an overflow surfaced as something other than the typed QueueFull)"
                .to_string(),
        );
    } else {
        log.push("serve overflow rejections all carried the typed QueueFull".to_string());
    }
}

/// Rebalance-controller floors. The sweep numbers are virtual-time
/// measurements — deterministic on every machine — so the checks are
/// exact: every speed ratio must converge onto the quantized analytic
/// optimum within the rel-err ceiling and by the cycle ceiling, no
/// split may sit below the `12/ny` guard, the clamped row must pin to
/// the guard, and the controller-enabled `rank.loss` double run must
/// have replayed byte-identically with exactly a freeze recorded.
fn rebalance_violations(fresh: &str, baseline: &str, bad: &mut Vec<String>, log: &mut Vec<String>) {
    let Some(rpos) = fresh.find("\"rebalance\"") else {
        bad.push("missing rebalance block in fresh results".to_string());
        return;
    };
    let end = fresh[rpos..]
        .find("\"recovery\"")
        .map_or(fresh.len(), |e| rpos + e);
    let base_err = |ratio: f64| -> String {
        baseline
            .find("\"rebalance\"")
            .and_then(|p| {
                baseline[p..]
                    .find(&format!("\"ratio\": {ratio:.4}"))
                    .map(|r| p + r)
            })
            .and_then(|pos| json_num(baseline, "rel_err", pos))
            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}"))
    };
    let needle = "{\"ratio\":";
    let mut at = rpos;
    let mut points = 0;
    while let Some(rel) = fresh[at..end].find(needle) {
        let pos = at + rel;
        let line = line_at(fresh, pos);
        at = pos + needle.len();
        points += 1;
        let need = |what: &str, bad: &mut Vec<String>| -> f64 {
            json_num(line, what, 0).unwrap_or_else(|| {
                bad.push(format!("missing rebalance point {what}"));
                f64::NAN
            })
        };
        let ratio = need("ratio", bad);
        let guard = need("guard", bad);
        let final_f = need("final", bad);
        let rel_err = need("rel_err", bad);
        let converged = need("converged_cycle", bad);
        let tag = format!("rebalance[ratio {ratio}]");
        if rel_err > REBALANCE_REL_ERR_CEILING {
            bad.push(format!(
                "{tag} rel_err vs analytic optimum: ceiling {REBALANCE_REL_ERR_CEILING:.2}, \
                 baseline {}, measured {rel_err:.3}",
                base_err(ratio)
            ));
        } else {
            log.push(format!(
                "{tag} rel_err {rel_err:.3} <= ceiling {REBALANCE_REL_ERR_CEILING:.2} \
                 (baseline {})",
                base_err(ratio)
            ));
        }
        if converged > REBALANCE_CONVERGED_CYCLE_CEILING {
            bad.push(format!(
                "{tag} converged_cycle: ceiling {REBALANCE_CONVERGED_CYCLE_CEILING:.0}, \
                 measured {converged:.0} (9999 = never settled)"
            ));
        } else {
            log.push(format!(
                "{tag} converged by cycle {converged:.0} <= ceiling \
                 {REBALANCE_CONVERGED_CYCLE_CEILING:.0}"
            ));
        }
        if final_f < guard - 1e-9 {
            bad.push(format!(
                "{tag} final split {final_f:.6} fell below the 12/ny guard {guard:.6}"
            ));
        }
        if line.contains("\"clamped\": true") {
            if (final_f - guard).abs() > 1e-9 {
                bad.push(format!(
                    "{tag} clamped point must pin to the guard: guard {guard:.6}, \
                     final {final_f:.6}"
                ));
            } else {
                log.push(format!("{tag} clamped to the guard {guard:.6} as required"));
            }
        }
    }
    if points == 0 {
        bad.push("rebalance block carries no sweep points".to_string());
    }
    let Some(rec) = fresh[rpos..].find("\"recovery\"").map(|e| rpos + e) else {
        bad.push("missing rebalance.recovery block in fresh results".to_string());
        return;
    };
    let line = line_at(fresh, rec);
    if line.contains("\"identical\": true") {
        log.push("rebalance recovery double run replayed byte-identically".to_string());
    } else {
        bad.push(
            "rebalance recovery identical: expected true, measured false \
             (same-seed controlled recovery diverged)"
                .to_string(),
        );
    }
    for (key, floor) in [("frozen", 1.0), ("rank_losses", 1.0)] {
        let v = json_num(line, key, 0).unwrap_or(f64::NAN);
        if v >= floor {
            log.push(format!("rebalance recovery {key} {v:.0} >= {floor:.0}"));
        } else {
            bad.push(format!(
                "rebalance recovery {key}: expected >= {floor:.0}, measured {v}"
            ));
        }
    }
}

/// Scenario regression floors and ceilings. Every (scenario, mode)
/// pair the study runs must be present, hold
/// [`SCENARIO_MZPS_FLOOR_FRAC`] of the baseline's virtual-time
/// throughput, keep its analytic error under
/// [`SCENARIO_ERROR_CEILING_FRAC`] of the baseline's, replay a
/// same-seed double run bit-identically, and conserve its particle
/// totals. The baseline's value is quoted in every message so a
/// failure reads as a diff.
fn scenario_violations(fresh: &str, baseline: &str, bad: &mut Vec<String>, log: &mut Vec<String>) {
    let Some(spos) = fresh.find("\"scenarios\"") else {
        bad.push("missing scenarios block in fresh results".to_string());
        return;
    };
    let Some(bpos) = baseline.find("\"scenarios\"") else {
        bad.push("missing scenarios block in baseline".to_string());
        return;
    };
    for s in Scenario::ALL {
        for mode in ["cpu", "hetero"] {
            let needle = format!("{{\"name\": \"{}\", \"mode\": \"{mode}\"", s.name());
            let tag = format!("scenarios[{} {mode}]", s.name());
            let Some(rel) = fresh[spos..].find(&needle) else {
                bad.push(format!("{tag}: missing from fresh results"));
                continue;
            };
            let line = line_at(fresh, spos + rel);
            let base_line = baseline[bpos..]
                .find(&needle)
                .map(|r| line_at(baseline, bpos + r));
            let need = |what: &str, bad: &mut Vec<String>| -> f64 {
                json_num(line, what, 0).unwrap_or_else(|| {
                    bad.push(format!("{tag}: missing {what}"));
                    f64::NAN
                })
            };
            let mzps = need("mzps", bad);
            let err = need("error", bad);
            match base_line.and_then(|l| json_num(l, "mzps", 0)) {
                Some(base_mzps) => {
                    let floor = SCENARIO_MZPS_FLOOR_FRAC * base_mzps;
                    if mzps < floor {
                        bad.push(format!(
                            "{tag} mzps: floor {floor:.3} \
                             ({SCENARIO_MZPS_FLOOR_FRAC} x baseline {base_mzps:.3}), \
                             measured {mzps:.3}"
                        ));
                    } else {
                        log.push(format!(
                            "{tag} mzps {mzps:.3} >= floor {floor:.3} (baseline {base_mzps:.3})"
                        ));
                    }
                }
                None => bad.push(format!("{tag}: missing from baseline")),
            }
            // Negative error is the "no analytic reference" sentinel
            // (Sedov); both files must agree on which kind it is.
            let base_err = base_line.and_then(|l| json_num(l, "error", 0));
            if err >= 0.0 {
                match base_err {
                    Some(b) if b >= 0.0 => {
                        let ceiling = SCENARIO_ERROR_CEILING_FRAC * b;
                        if err > ceiling {
                            bad.push(format!(
                                "{tag} analytic error: ceiling {ceiling:.6} \
                                 ({SCENARIO_ERROR_CEILING_FRAC} x baseline {b:.6}), \
                                 measured {err:.6}"
                            ));
                        } else {
                            log.push(format!(
                                "{tag} analytic error {err:.6} <= ceiling {ceiling:.6} \
                                 (baseline {b:.6})"
                            ));
                        }
                    }
                    _ => bad.push(format!(
                        "{tag}: fresh carries an analytic error but the baseline has none"
                    )),
                }
            } else if matches!(base_err, Some(b) if b >= 0.0) {
                bad.push(format!(
                    "{tag}: baseline carries an analytic error but fresh lost its metric"
                ));
            } else {
                log.push(format!("{tag}: no analytic reference (error skipped)"));
            }
            if line.contains("\"identical\": true") {
                log.push(format!("{tag} same-seed double run bit-identical"));
            } else {
                bad.push(format!(
                    "{tag} identical: expected true, measured false \
                     (same-seed double run diverged)"
                ));
            }
            if line.contains("\"particles_conserved\": true") {
                log.push(format!("{tag} particle totals conserved"));
            } else {
                bad.push(format!(
                    "{tag} particles_conserved: expected true, measured false \
                     (tracer count/momentum/checksum changed)"
                ));
            }
        }
    }
}

/// Which blocks of the results file the gate demands. A full `perf`
/// run carries every block; a `serve-slo` run carries only the serve
/// block, a `rebalance` run only the rebalance block, and a
/// `scenarios` run only the scenarios block, so gating any of them as
/// `All` would fail on the missing sweeps.
#[derive(Clone, Copy, PartialEq)]
enum GateSection {
    All,
    Serve,
    Rebalance,
    Scenarios,
}

/// Apply the full gate (every section) to a fresh results file
/// against a baseline: the shape the tests exercise, and what
/// `ci-gate` runs for `--section all`.
#[cfg(test)]
fn gate_violations(fresh: &str, baseline: &str) -> (Vec<String>, Vec<String>) {
    gate_violations_in(fresh, baseline, GateSection::All)
}

fn gate_violations_in(
    fresh: &str,
    baseline: &str,
    section: GateSection,
) -> (Vec<String>, Vec<String>) {
    let mut bad = schema_violations(fresh, baseline);
    if !bad.is_empty() {
        // An unrecognized layout makes every other check meaningless.
        return (bad, Vec::new());
    }
    let mut log = Vec::new();
    if section == GateSection::Rebalance {
        rebalance_violations(fresh, baseline, &mut bad, &mut log);
        return (bad, log);
    }
    if section == GateSection::Scenarios {
        scenario_violations(fresh, baseline, &mut bad, &mut log);
        return (bad, log);
    }
    serve_violations(fresh, baseline, &mut bad, &mut log);
    if section == GateSection::Serve {
        return (bad, log);
    }
    rebalance_violations(fresh, baseline, &mut bad, &mut log);
    scenario_violations(fresh, baseline, &mut bad, &mut log);
    kernel_violations(fresh, baseline, &mut bad, &mut log);
    fn need(bad: &mut Vec<String>, what: &str, v: Option<f64>) -> f64 {
        v.unwrap_or_else(|| {
            bad.push(format!("missing {what}"));
            f64::NAN
        })
    }

    let fresh_persistent = need(
        &mut bad,
        "fresh pool.region_ns_persistent",
        json_num(fresh, "region_ns_persistent", 0),
    );
    let fresh_spawn = need(
        &mut bad,
        "fresh pool.region_ns_scoped_spawn",
        json_num(fresh, "region_ns_scoped_spawn", 0),
    );
    let base_persistent = need(
        &mut bad,
        "baseline pool.region_ns_persistent",
        json_num(baseline, "region_ns_persistent", 0),
    );
    let host_cores = need(
        &mut bad,
        "fresh host_cores",
        json_num(fresh, "host_cores", 0),
    );

    parallel_kernel_violations(fresh, baseline, host_cores, &mut bad, &mut log);
    roofline_violations(fresh, baseline, &mut bad, &mut log);

    if fresh_persistent > 2.0 * base_persistent {
        bad.push(format!(
            "pool region dispatch regressed: {fresh_persistent:.1} ns > 2x baseline {base_persistent:.1} ns"
        ));
    } else {
        log.push(format!(
            "pool dispatch {fresh_persistent:.1} ns <= 2x baseline {base_persistent:.1} ns"
        ));
    }
    if fresh_persistent >= fresh_spawn {
        bad.push(format!(
            "persistent pool lost to spawn-per-region: {fresh_persistent:.1} ns >= {fresh_spawn:.1} ns"
        ));
    } else {
        log.push(format!(
            "persistent pool beats scoped spawn: {fresh_persistent:.1} ns < {fresh_spawn:.1} ns"
        ));
    }

    // A 1-core runner cannot speed anything up; it can only pay
    // overhead. Require real speedup only where the *effective*
    // parallelism — min(jobs, host cores) — exceeds one: `--jobs 4`
    // on a single core is oversubscription, not parallelism, and can
    // only be floored on fan-out overhead.
    let jobs = json_num(fresh, "jobs", 0).unwrap_or(host_cores);
    let effective_jobs = jobs.min(host_cores);
    let floor = if effective_jobs > 1.0 { 0.9 } else { 0.5 };
    for id in ["quick", "fig14"] {
        let Some(pos) = sweep_pos(fresh, id) else {
            log.push(format!("sweep {id} not in fresh results (skipped)"));
            continue;
        };
        let speedup = need(
            &mut bad,
            &format!("sweep {id} speedup"),
            json_num(fresh, "speedup", pos),
        );
        if speedup < floor {
            bad.push(format!(
                "sweep {id} speedup {speedup:.3} < floor {floor} \
                 (jobs {jobs}, host_cores {host_cores})"
            ));
        } else {
            log.push(format!(
                "sweep {id} speedup {speedup:.3} >= floor {floor} \
                 (effective jobs {effective_jobs})"
            ));
        }
        if !fresh[pos..fresh[pos..].find('\n').map_or(fresh.len(), |e| pos + e)]
            .contains("\"identical_output\": true")
        {
            bad.push(format!("sweep {id} parallel output diverged from serial"));
        } else {
            log.push(format!("sweep {id} parallel output identical to serial"));
        }
    }
    (bad, log)
}

fn ci_gate(mut args: Vec<String>) -> ! {
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let fresh_path = take_flag("--fresh").unwrap_or_else(|| "BENCH_figures.json".into());
    let base_path = take_flag("--baseline").unwrap_or_else(|| "ci/perf-baseline.json".into());
    let section = match take_flag("--section").as_deref() {
        None | Some("all") => GateSection::All,
        Some("serve") => GateSection::Serve,
        Some("rebalance") => GateSection::Rebalance,
        Some("scenarios") => GateSection::Scenarios,
        Some(other) => {
            eprintln!(
                "--section must be \"all\", \"serve\", \"rebalance\", or \"scenarios\", \
                 got {other:?}"
            );
            std::process::exit(2);
        }
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("ci-gate: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (bad, log) = gate_violations_in(&read(&fresh_path), &read(&base_path), section);
    for line in &log {
        eprintln!("ci-gate: ok: {line}");
    }
    if bad.is_empty() {
        eprintln!("ci-gate: PASS ({fresh_path} vs {base_path})");
        std::process::exit(0);
    }
    for v in &bad {
        eprintln!("ci-gate: FAIL: {v}");
    }
    std::process::exit(1);
}

/// Render the `serve` results block (no trailing comma/newline, so
/// callers can place it anywhere in their object).
fn serve_json(r: &hsim_bench::ServeLoadReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  \"serve\": {{");
    let _ = writeln!(s, "    \"clients\": {},", r.clients);
    let _ = writeln!(s, "    \"requests\": {},", r.requests);
    let _ = writeln!(s, "    \"distinct_configs\": {},", r.distinct_configs);
    let _ = writeln!(s, "    \"hits\": {},", r.hits);
    let _ = writeln!(s, "    \"misses\": {},", r.misses);
    let _ = writeln!(s, "    \"admitted\": {},", r.admitted);
    let _ = writeln!(s, "    \"rejected\": {},", r.rejected);
    let _ = writeln!(s, "    \"deadline_drops\": {},", r.deadline_drops);
    let _ = writeln!(s, "    \"hit_rate\": {:.3},", r.hit_rate);
    let _ = writeln!(s, "    \"p50_us\": {:.3},", r.p50_us);
    let _ = writeln!(s, "    \"p99_us\": {:.3},", r.p99_us);
    let _ = writeln!(s, "    \"rejections_typed\": {}", r.rejections_typed);
    let _ = write!(s, "  }}");
    s
}

/// `perf serve-slo [--out PATH]`: run only the serve load driver and
/// write a serve-only results file for `ci-gate --section serve`.
fn serve_slo(mut args: Vec<String>) -> ! {
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let out_path = take_flag("--out").unwrap_or_else(|| "BENCH_serve.json".into());
    if let Some(stray) = args.first() {
        eprintln!("unknown argument: {stray}");
        eprintln!("usage: perf serve-slo [--out PATH]");
        std::process::exit(2);
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "serve load: {} clients x {} requests over {} configs, then overflow probe...",
        hsim_bench::serveload::CLIENTS,
        hsim_bench::serveload::PER_CLIENT,
        hsim_bench::serveload::DISTINCT_CONFIGS,
    );
    let report = hsim_bench::run_load(calib::auto_tile());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str(&serve_json(&report));
    json.push('\n');
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    print!("{json}");
    std::process::exit(0);
}

/// `perf rebalance [--out PATH]`: run only the online-controller
/// convergence study and write a rebalance-only results file for
/// `ci-gate --section rebalance`. The study runs in virtual time, so
/// the file is byte-reproducible on any machine.
fn rebalance_only(mut args: Vec<String>) -> ! {
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let out_path = take_flag("--out").unwrap_or_else(|| "BENCH_rebalance.json".into());
    if let Some(stray) = args.first() {
        eprintln!("unknown argument: {stray}");
        eprintln!("usage: perf rebalance [--out PATH]");
        std::process::exit(2);
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = hsim_bench::run_rebalance_report().unwrap_or_else(|e| {
        eprintln!("rebalance study failed: {e}");
        std::process::exit(1);
    });
    eprintln!("{}", report.to_markdown());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str(&report.to_json());
    json.push('\n');
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    print!("{json}");
    std::process::exit(0);
}

/// One (scenario, mode) row of the scenario regression study.
struct ScenarioPoint {
    name: &'static str,
    mode: &'static str,
    zones: u64,
    virtual_s: f64,
    mzps: f64,
    metric: &'static str,
    /// Analytic-error metric; `None` for Sedov (no pointwise
    /// reference), serialized as the `-1` sentinel.
    error: Option<f64>,
    identical: bool,
    particles_conserved: bool,
    migrated: u64,
}

/// The scenario gate's fixed grid, one per kernel-size regime: Sod is
/// the thin small-kernel tube, Sedov the mid-size reference blast,
/// Noh the near-cubic implosion, Taylor–Green the large-kernel
/// smooth vortex.
fn scenario_grid(s: Scenario) -> (usize, usize, usize) {
    match s {
        Scenario::Sedov => (40, 36, 32),
        Scenario::Sod => (128, 8, 8),
        Scenario::Noh => (48, 44, 40),
        Scenario::TaylorGreen => (36, 56, 64),
    }
}

/// Run every scenario in both modes at full fidelity with the tracer
/// phase on, double-running each config to prove same-seed identity.
/// All numbers are virtual-time, so the rows are byte-reproducible on
/// any machine.
fn run_scenario_study() -> Vec<ScenarioPoint> {
    let fingerprint = |r: &RunResult| -> Vec<u64> {
        let sc = r.scenario.as_ref().expect("scenario problems report");
        let p = r.particles.as_ref().expect("particles were configured");
        vec![
            r.mass.expect("full fidelity reports mass").to_bits(),
            sc.t_end.to_bits(),
            sc.error.map_or(0, f64::to_bits),
            r.runtime.as_nanos(),
            p.count,
            p.momentum[0].to_bits(),
            p.momentum[1].to_bits(),
            p.momentum[2].to_bits(),
            p.checksum,
        ]
    };
    let mut out = Vec::new();
    for s in Scenario::ALL {
        for (mode_name, mode) in [("cpu", ExecMode::CpuOnly), ("hetero", ExecMode::hetero())] {
            let (nx, ny, nz) = scenario_grid(s);
            let mut cfg = RunConfig::sweep((nx, ny, nz), mode);
            cfg.problem = s.problem();
            cfg.fidelity = Fidelity::Full;
            cfg.cycles = SCENARIO_CYCLES;
            cfg.particles = Some(ParticlesConfig {
                count: SCENARIO_PARTICLES,
                ..ParticlesConfig::default()
            });
            let a = runner::run(&cfg).expect("scenario study run");
            let b = runner::run(&cfg).expect("scenario study rerun");
            let sc = a.scenario.as_ref().expect("scenario problems report");
            let p = a.particles.as_ref().expect("particles were configured");
            let zones = (nx * ny * nz) as u64;
            let virtual_s = a.runtime.as_secs_f64();
            out.push(ScenarioPoint {
                name: s.name(),
                mode: mode_name,
                zones,
                virtual_s,
                mzps: (zones * a.cycles) as f64 / virtual_s.max(1e-12) / 1e6,
                metric: sc.metric,
                error: sc.error,
                identical: fingerprint(&a) == fingerprint(&b),
                particles_conserved: p.count == SCENARIO_PARTICLES
                    && p.momentum.iter().all(|m| m.is_finite()),
                migrated: p.migrated,
            });
        }
    }
    out
}

/// Render the `scenarios` results block (no trailing comma/newline,
/// so callers can place it anywhere in their object).
fn scenarios_json(points: &[ScenarioPoint]) -> String {
    let mut out = String::from("  \"scenarios\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let error = p
            .error
            .map_or_else(|| "-1".to_string(), |e| format!("{e:.6}"));
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"zones\": {}, \"cycles\": {}, \
             \"particles\": {SCENARIO_PARTICLES}, \"virtual_s\": {:.6}, \"mzps\": {:.3}, \
             \"metric\": \"{}\", \"error\": {error}, \"identical\": {}, \
             \"particles_conserved\": {}, \"migrated\": {}}}{comma}",
            p.name,
            p.mode,
            p.zones,
            SCENARIO_CYCLES,
            p.virtual_s,
            p.mzps,
            p.metric,
            p.identical,
            p.particles_conserved,
            p.migrated
        );
    }
    out.push_str("  ]");
    out
}

/// `perf scenarios [--out PATH]`: run only the scenario regression
/// study and write a scenarios-only results file for
/// `ci-gate --section scenarios`. The study runs in virtual time, so
/// the file is byte-reproducible on any machine.
fn scenarios_only(mut args: Vec<String>) -> ! {
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let out_path = take_flag("--out").unwrap_or_else(|| "BENCH_scenarios.json".into());
    if let Some(stray) = args.first() {
        eprintln!("unknown argument: {stray}");
        eprintln!("usage: perf scenarios [--out PATH]");
        std::process::exit(2);
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "scenario study: {} scenarios x 2 modes, full fidelity, \
         {SCENARIO_PARTICLES} particles, double runs...",
        Scenario::ALL.len()
    );
    let points = run_scenario_study();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str(&scenarios_json(&points));
    json.push('\n');
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    print!("{json}");
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("ci-gate") {
        ci_gate(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("serve-slo") {
        serve_slo(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("rebalance") {
        rebalance_only(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("scenarios") {
        scenarios_only(args.split_off(1));
    }
    let mut take_flag = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let out_path = take_flag("--out").unwrap_or_else(|| "BENCH_figures.json".into());
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs: usize = match take_flag("--jobs") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs needs a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None => host_cores,
    };
    let host_threads: usize = match take_flag("--host-threads") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--host-threads needs a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None => DEFAULT_HOST_THREADS,
    };
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if let Some(stray) = args.first() {
        eprintln!("unknown argument: {stray}");
        eprintln!("usage: perf [--quick] [--jobs N] [--host-threads N] [--out PATH]");
        eprintln!("       perf serve-slo [--out PATH]");
        eprintln!("       perf rebalance [--out PATH]");
        eprintln!("       perf scenarios [--out PATH]");
        eprintln!(
            "       perf ci-gate [--fresh PATH] [--baseline PATH] \
             [--section all|serve|rebalance|scenarios]"
        );
        std::process::exit(2);
    }

    // The online-rebalance convergence study. Virtual-time, so its
    // numbers are machine-independent. It runs before the host-counter
    // collector is installed: the study's runner installs and drains
    // its own main-thread collector, which would clobber ours.
    let rebalance_report = hsim_bench::run_rebalance_report().unwrap_or_else(|e| {
        eprintln!("rebalance study failed: {e}");
        std::process::exit(1);
    });

    // The scenario regression study: every first-class scenario in
    // both modes, virtual-time like the rebalance study, and likewise
    // run before the host collector for the same reason.
    eprintln!(
        "scenario study: {} scenarios x 2 modes, full fidelity, double runs...",
        Scenario::ALL.len()
    );
    let scenario_points = run_scenario_study();

    // Collect the host-time counters the measured code records; spans
    // stay off so the collector itself costs nothing measurable.
    hsim_telemetry::install(Collector::new(0).without_spans());

    // Sweep fan-out: quick mode runs a trimmed spec, the full harness
    // adds the paper's Fig. 14 strong-scaling style sweep.
    let mut sweep_specs = vec![quick_spec()];
    if !quick {
        sweep_specs.extend(
            figures::all_figures()
                .into_iter()
                .filter(|s| s.id == "fig14"),
        );
    }
    let mut sweeps = Vec::new();
    for spec in &sweep_specs {
        eprintln!(
            "sweep {}: {} tasks, serial then --jobs {jobs}...",
            spec.id,
            paper_modes().len() * spec.values.len()
        );
        sweeps.push(measure_sweep(spec, jobs));
    }

    // Fused-vs-legacy hydro kernel throughput, per tile shape.
    let kernels = bench_kernels(quick);

    // Parallel-tile fused path: serial-vs-parallel fused throughput
    // at --host-threads workers on the serial sweet-spot tile, with
    // worker-count identity proven first against the legacy state.
    let par_label = format!("{}x{}", PARALLEL_TILE[0], PARALLEL_TILE[1]);
    let serial_at_par_tile = kernels
        .tiles
        .iter()
        .find(|k| k.tile == par_label)
        .map(|k| k.fused_mzps)
        .expect("parallel tile is a serial candidate");
    let parallel = bench_parallel_kernels(
        kernels.grid_n,
        kernels.reps,
        host_threads,
        &kernels.legacy_st,
        serial_at_par_tile,
    );

    // Roofline: triad bandwidth at the same worker count, and the
    // bandwidth-predicted Mzones/s roof for the per-pass workload.
    let (triad_len, triad_reps) = if quick { (1 << 20, 3) } else { (1 << 22, 5) };
    eprintln!("roofline: triad probe, {triad_reps} reps x {triad_len} elems x{host_threads}...");
    let triad = hsim_bench::roofline::measure_triad(host_threads, triad_len, triad_reps);
    let predicted_mzps = hsim_bench::roofline::predicted_mzones_per_s(triad.gbps);
    let best_mzps = kernels
        .tiles
        .iter()
        .map(|k| k.fused_mzps)
        .chain(std::iter::once(parallel.parallel_mzps))
        .fold(0.0_f64, f64::max);
    let roof_fraction = best_mzps / predicted_mzps.max(1e-12);

    // Pool microbenches on the calling thread (the coordinator role
    // the runner plays), sized down in quick mode.
    let (regions, elems, reps) = if quick {
        (200, 1 << 20, 4)
    } else {
        (2000, 1 << 23, 8)
    };
    let pool = WorkPool::new(jobs.saturating_sub(1));
    eprintln!(
        "pool microbench: {regions} regions, {} threads...",
        pool.parallelism()
    );
    let region_ns_persistent = bench_pool_region_ns(&pool, regions);
    let region_ns_spawn = bench_spawn_region_ns(pool.parallelism(), regions);
    let sum_melems_per_s = bench_sum_melems(&pool, elems, reps);

    // The serve load driver: many clients, few configs, one shared
    // server + a queue-overflow probe. The sweeps above already ran
    // the tile probe, so the server is seeded with the cached tile.
    eprintln!(
        "serve load: {} clients x {} requests over {} configs, then overflow probe...",
        hsim_bench::serveload::CLIENTS,
        hsim_bench::serveload::PER_CLIENT,
        hsim_bench::serveload::DISTINCT_CONFIGS,
    );
    let serve_report = hsim_bench::run_load(calib::auto_tile());

    let metrics = hsim_telemetry::uninstall()
        .expect("collector installed above")
        .metrics;
    let counter = |c| metrics.counter(c);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sweeps\": [");
    for (i, s) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        let speedup = s.serial_s / s.parallel_s.max(1e-12);
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"tasks\": {}, \"skipped\": {}, \"serial_s\": {:.6}, \
             \"parallel_s\": {:.6}, \"speedup\": {:.3}, \"identical_output\": true}}{comma}",
            s.id, s.tasks, s.skipped, s.serial_s, s.parallel_s, speedup
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"kernels\": {{");
    let _ = writeln!(json, "    \"grid_n\": {},", kernels.grid_n);
    let _ = writeln!(json, "    \"reps\": {},", kernels.reps);
    let _ = writeln!(
        json,
        "    \"legacy_mzones_per_s\": {:.3},",
        kernels.legacy_mzps
    );
    let _ = writeln!(json, "    \"tiles\": [");
    for (i, k) in kernels.tiles.iter().enumerate() {
        let comma = if i + 1 < kernels.tiles.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"tile\": \"{}\", \"blocked\": {}, \"fused_mzones_per_s\": {:.3}, \
             \"ratio\": {:.3}, \"identical_output\": true}}{comma}",
            k.tile,
            k.blocked,
            k.fused_mzps,
            k.fused_mzps / kernels.legacy_mzps.max(1e-12)
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"parallel\": {{");
    let _ = writeln!(json, "      \"workers\": {},", parallel.workers);
    let _ = writeln!(json, "      \"tile_shape\": \"{par_label}\",");
    let _ = writeln!(
        json,
        "      \"serial_mzones_per_s\": {:.3},",
        parallel.serial_mzps
    );
    let _ = writeln!(
        json,
        "      \"parallel_mzones_per_s\": {:.3},",
        parallel.parallel_mzps
    );
    let _ = writeln!(
        json,
        "      \"ratio\": {:.3},",
        parallel.parallel_mzps / parallel.serial_mzps.max(1e-12)
    );
    let _ = writeln!(json, "      \"identical_output\": true,");
    let _ = writeln!(
        json,
        "      \"worker_counts\": [{}]",
        PARALLEL_WORKER_COUNTS.map(|w| w.to_string()).join(", ")
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"roofline\": {{");
    let _ = writeln!(json, "    \"triad_gbps\": {:.3},", triad.gbps);
    let _ = writeln!(json, "    \"triad_len\": {},", triad.len);
    let _ = writeln!(json, "    \"triad_reps\": {},", triad.reps);
    let _ = writeln!(json, "    \"triad_workers\": {},", triad.workers);
    let _ = writeln!(
        json,
        "    \"bytes_per_zone\": {:.1},",
        hsim_bench::roofline::first_order_bytes_per_zone()
    );
    let _ = writeln!(
        json,
        "    \"flops_per_zone\": {:.1},",
        hsim_bench::roofline::first_order_flops_per_zone()
    );
    let _ = writeln!(
        json,
        "    \"arithmetic_intensity\": {:.4},",
        hsim_bench::roofline::first_order_intensity()
    );
    let _ = writeln!(json, "    \"predicted_mzones_per_s\": {predicted_mzps:.3},");
    let _ = writeln!(json, "    \"best_mzones_per_s\": {best_mzps:.3},");
    let _ = writeln!(json, "    \"roof_fraction\": {roof_fraction:.3},");
    let _ = writeln!(json, "    \"kernel_intensities\": [");
    let intensities = hsim_bench::roofline::kernel_intensities();
    for (i, (name, flops, bytes, ai)) in intensities.iter().enumerate() {
        let comma = if i + 1 < intensities.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"name\": \"{name}\", \"flops_per_elem\": {flops:.1}, \
             \"bytes_per_elem\": {bytes:.1}, \"intensity\": {ai:.4}}}{comma}"
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pool\": {{");
    let _ = writeln!(json, "    \"workers\": {},", pool.parallelism());
    let _ = writeln!(json, "    \"regions_timed\": {regions},");
    let _ = writeln!(
        json,
        "    \"region_ns_persistent\": {region_ns_persistent:.1},"
    );
    let _ = writeln!(
        json,
        "    \"region_ns_scoped_spawn\": {region_ns_spawn:.1},"
    );
    let _ = writeln!(json, "    \"sum_melems_per_s\": {sum_melems_per_s:.2}");
    let _ = writeln!(json, "  }},");
    json.push_str(&serve_json(&serve_report));
    let _ = writeln!(json, ",");
    json.push_str(&rebalance_report.to_json());
    let _ = writeln!(json, ",");
    json.push_str(&scenarios_json(&scenario_points));
    let _ = writeln!(json, ",");
    let _ = writeln!(json, "  \"telemetry\": {{");
    let _ = writeln!(
        json,
        "    \"host_sweep_points\": {},",
        counter(Counter::HostSweepPoints)
    );
    let _ = writeln!(
        json,
        "    \"host_sweep_nanos\": {},",
        counter(Counter::HostSweepNanos)
    );
    let _ = writeln!(
        json,
        "    \"host_pool_regions\": {},",
        counter(Counter::HostPoolRegions)
    );
    let _ = writeln!(
        json,
        "    \"host_pool_nanos\": {}",
        counter(Counter::HostPoolNanos)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    print!("{json}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `(tile, blocked, ratio, identical_output)` rows for a fixture's
    /// kernels block.
    type KernelRow = (&'static str, bool, f64, bool);

    const HEALTHY_KERNELS: &[KernelRow] = &[
        ("4x4", true, 1.35, true),
        ("8x8", true, 1.62, true),
        ("16x16", true, 1.51, true),
        ("whole", false, 1.08, true),
    ];

    /// A `kernels.parallel` sub-block (indented for the kernels
    /// object; trailing newline, no trailing comma).
    fn parallel_block(workers: u32, ratio: f64, identical: bool) -> String {
        format!(
            "    \"parallel\": {{\n      \"workers\": {workers},\n      \
             \"tile_shape\": \"8x8\",\n      \"serial_mzones_per_s\": 16.200,\n      \
             \"parallel_mzones_per_s\": {:.3},\n      \"ratio\": {ratio:.3},\n      \
             \"identical_output\": {identical},\n      \"worker_counts\": [1, 2, 4]\n    }}\n",
            ratio * 16.2
        )
    }

    fn healthy_parallel() -> String {
        parallel_block(4, 2.6, true)
    }

    fn kernels_block(rows: &[KernelRow], parallel: &str) -> String {
        let mut out = String::from(
            "  \"kernels\": {\n    \"grid_n\": 56,\n    \"reps\": 3,\n    \
             \"legacy_mzones_per_s\": 10.000,\n    \"tiles\": [\n",
        );
        for (i, (tile, blocked, ratio, identical)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      {{\"tile\": \"{tile}\", \"blocked\": {blocked}, \
                 \"fused_mzones_per_s\": {:.3}, \"ratio\": {ratio:.3}, \
                 \"identical_output\": {identical}}}{comma}",
                ratio * 10.0
            );
        }
        out.push_str("    ],\n");
        out.push_str(parallel);
        out.push_str("  },\n");
        out
    }

    /// A `roofline` block (trailing newline, no trailing comma).
    fn roofline_block(roof_fraction: f64) -> String {
        format!(
            "  \"roofline\": {{\n    \"triad_gbps\": 12.500,\n    \"triad_workers\": 4,\n    \
             \"bytes_per_zone\": 1816.0,\n    \"flops_per_zone\": 333.0,\n    \
             \"predicted_mzones_per_s\": 6.883,\n    \"best_mzones_per_s\": {:.3},\n    \
             \"roof_fraction\": {roof_fraction:.3}\n  }},\n",
            roof_fraction * 6.883
        )
    }

    /// A fixture `serve` block (no surrounding commas/newlines).
    /// Latency arguments are microseconds.
    fn serve_block(hit_rate: f64, p50: f64, p99: f64, rejected: u64, typed: bool) -> String {
        format!(
            "  \"serve\": {{\n    \"clients\": 4,\n    \"requests\": 48,\n    \
             \"distinct_configs\": 6,\n    \"hits\": 42,\n    \"misses\": 6,\n    \
             \"admitted\": 48,\n    \"rejected\": {rejected},\n    \"deadline_drops\": 0,\n    \
             \"hit_rate\": {hit_rate:.3},\n    \"p50_us\": {p50:.3},\n    \"p99_us\": {p99:.3},\n    \
             \"rejections_typed\": {typed}\n  }}"
        )
    }

    fn healthy_serve() -> String {
        serve_block(0.875, 412.5, 120_000.0, 3, true)
    }

    /// One rebalance sweep point:
    /// `(ratio, guard, final, rel_err, converged_cycle, clamped)`.
    type RebalanceRow = (f64, f64, f64, f64, u64, bool);

    const HEALTHY_REBALANCE: &[RebalanceRow] = &[
        (0.2500, 0.0125, 0.016667, 0.0, 4, false),
        (4.0000, 0.0125, 0.104167, 0.0, 6, false),
        (1.0000, 0.2500, 0.250000, 0.0, 2, true),
    ];

    /// A `recovery` line for the rebalance block (trailing newline).
    fn recovery_line(identical: bool, frozen: u64, losses: u64) -> String {
        format!(
            "    \"recovery\": {{\"identical\": {identical}, \"frozen\": {frozen}, \
             \"rank_losses\": {losses}, \"ranks_after\": 15, \
             \"post_loss_fraction\": 0.020833}}\n"
        )
    }

    /// A fixture `rebalance` block (no surrounding commas/newlines),
    /// shaped exactly like `RebalanceReport::to_json`.
    fn rebalance_block(rows: &[RebalanceRow], recovery: &str) -> String {
        let mut out = String::from(
            "  \"rebalance\": {\n    \"figure\": \"fig-rebalance\",\n    \"every\": 2,\n    \
             \"hysteresis\": 0.0200,\n    \"cycles\": 12,\n    \"start_fraction\": 0.3000,\n    \
             \"points\": [\n",
        );
        for (i, (ratio, guard, final_f, rel_err, conv, clamped)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      {{\"ratio\": {ratio:.4}, \"start\": 0.3000, \"guard\": {guard:.6}, \
                 \"optimum\": {final_f:.6}, \"optimum_realized\": {final_f:.6}, \
                 \"final\": {final_f:.6}, \"rel_err\": {rel_err:.6}, \
                 \"converged_cycle\": {conv}, \"resplits\": 3, \"holds\": 2, \
                 \"clamped\": {clamped}}}{comma}"
            );
        }
        out.push_str("    ],\n");
        out.push_str(recovery);
        out.push_str("  }");
        out
    }

    fn healthy_rebalance() -> String {
        rebalance_block(HEALTHY_REBALANCE, &recovery_line(true, 1, 1))
    }

    /// One scenario gate row:
    /// `(name, mode, mzps, error, identical, conserved)`. A negative
    /// error is the "no analytic reference" sentinel.
    type ScenarioRow = (&'static str, &'static str, f64, f64, bool, bool);

    const HEALTHY_SCENARIOS: &[ScenarioRow] = &[
        ("sedov", "cpu", 1.2, -1.0, true, true),
        ("sedov", "hetero", 1.6, -1.0, true, true),
        ("sod", "cpu", 0.8, 0.031, true, true),
        ("sod", "hetero", 0.7, 0.031, true, true),
        ("noh", "cpu", 1.3, 0.12, true, true),
        ("noh", "hetero", 1.8, 0.12, true, true),
        ("taylor-green", "cpu", 1.4, 0.002, true, true),
        ("taylor-green", "hetero", 2.1, 0.002, true, true),
    ];

    /// A fixture `scenarios` block shaped exactly like
    /// `scenarios_json` (no surrounding commas/newlines).
    fn scenarios_fixture(rows: &[ScenarioRow]) -> String {
        let mut out = String::from("  \"scenarios\": [\n");
        for (i, (name, mode, mzps, error, identical, conserved)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{name}\", \"mode\": \"{mode}\", \"zones\": 46080, \
                 \"cycles\": 4, \"particles\": 128, \"virtual_s\": 0.184320, \
                 \"mzps\": {mzps:.3}, \"metric\": \"m\", \"error\": {error}, \
                 \"identical\": {identical}, \"particles_conserved\": {conserved}, \
                 \"migrated\": 3}}{comma}"
            );
        }
        out.push_str("  ]");
        out
    }

    fn healthy_scenarios() -> String {
        scenarios_fixture(HEALTHY_SCENARIOS)
    }

    /// What `perf scenarios` writes: schema + host_cores + scenarios
    /// block, nothing else.
    fn scenarios_doc(block: &str) -> String {
        format!("{{\n  \"schema_version\": 6,\n  \"host_cores\": 4,\n{block}\n}}\n")
    }

    /// The fully custom fixture: every block is a caller-supplied
    /// string, so any single block can be made sick.
    #[allow(clippy::too_many_arguments)] // fixture builder, named args read fine
    fn results_doc(
        schema: &str,
        cores: u32,
        jobs: u32,
        speedup: f64,
        identical: bool,
        persistent: f64,
        spawn: f64,
        kernels: &str,
        roofline: &str,
        serve: &str,
        rebalance: &str,
    ) -> String {
        let scenarios = healthy_scenarios();
        format!(
            "{{\n{schema}  \"host_cores\": {cores},\n  \"jobs\": {jobs},\n  \"sweeps\": [\n    \
             {{\"id\": \"quick\", \"tasks\": 12, \"speedup\": {speedup:.3}, \"identical_output\": {identical}}}\n  ],\n\
             {kernels}{roofline}  \"pool\": {{\n    \"region_ns_persistent\": {persistent:.1},\n    \
             \"region_ns_scoped_spawn\": {spawn:.1}\n  }},\n{serve},\n{rebalance},\n{scenarios}\n}}\n"
        )
    }

    #[allow(clippy::too_many_arguments)] // fixture builder, named args read fine
    fn results_with(
        schema: &str,
        cores: u32,
        speedup: f64,
        identical: bool,
        persistent: f64,
        spawn: f64,
        kernels: &[KernelRow],
        serve: &str,
    ) -> String {
        results_doc(
            schema,
            cores,
            cores,
            speedup,
            identical,
            persistent,
            spawn,
            &kernels_block(kernels, &healthy_parallel()),
            &roofline_block(0.62),
            serve,
            &healthy_rebalance(),
        )
    }

    fn results(cores: u32, speedup: f64, identical: bool, persistent: f64, spawn: f64) -> String {
        results_with(
            "  \"schema_version\": 6,\n",
            cores,
            speedup,
            identical,
            persistent,
            spawn,
            HEALTHY_KERNELS,
            &healthy_serve(),
        )
    }

    #[test]
    fn gate_passes_a_healthy_run() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = results(4, 2.9, true, 12_000.0, 190_000.0);
        let (bad, log) = gate_violations(&fresh, &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("quick")));
    }

    #[test]
    fn gate_fails_on_pool_regression_and_lost_baseline_race() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // 3x slower dispatch AND slower than spawning threads.
        let fresh = results(4, 3.0, true, 30_000.0, 25_000.0);
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("2x baseline"));
        assert!(bad[1].contains("spawn-per-region"));
    }

    #[test]
    fn gate_enforces_speedup_only_where_cores_exist() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // 0.7x "speedup" is a violation on 4 cores...
        let (bad, _) = gate_violations(&results(4, 0.7, true, 10_000.0, 200_000.0), &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("speedup"));
        // ...but acceptable overhead on a single-core runner.
        let (bad, log) = gate_violations(&results(1, 0.7, true, 10_000.0, 200_000.0), &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("floor 0.5")));
    }

    #[test]
    fn gate_fails_on_diverged_output_and_missing_keys() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let (bad, _) = gate_violations(&results(4, 3.0, false, 10_000.0, 200_000.0), &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("diverged"));
        let schema_only = "{\n  \"schema_version\": 6\n}\n";
        let (bad, _) = gate_violations(schema_only, &base);
        assert!(bad.iter().any(|b| b.contains("missing")), "{bad:?}");
    }

    #[test]
    fn gate_rejects_unrecognized_schema_versions() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // Older, newer, and absent schema versions are all rejected
        // before any metric check runs (the log stays empty).
        for schema in [
            "  \"schema_version\": 5,\n",
            "  \"schema_version\": 7,\n",
            "",
        ] {
            let fresh = results_with(
                schema,
                4,
                2.9,
                true,
                12_000.0,
                190_000.0,
                HEALTHY_KERNELS,
                &healthy_serve(),
            );
            let (bad, log) = gate_violations(&fresh, &base);
            assert_eq!(bad.len(), 1, "{schema:?}: {bad:?}");
            assert!(bad[0].contains("schema_version"), "{bad:?}");
            assert!(bad[0].contains("unrecognized"), "{bad:?}");
            assert!(log.is_empty(), "{log:?}");
        }
        // A stale baseline is rejected the same way.
        let v1_base = results_with(
            "  \"schema_version\": 5,\n",
            4,
            3.1,
            true,
            10_000.0,
            200_000.0,
            HEALTHY_KERNELS,
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&results(4, 2.9, true, 12_000.0, 190_000.0), &v1_base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("baseline schema_version"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_per_tile_kernel_floor_with_diff_style_message() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // One blocked tile slips under 1.0: fused lost to legacy there.
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[
                ("4x4", true, 0.93, true),
                ("8x8", true, 1.62, true),
                ("16x16", true, 1.51, true),
                ("whole", false, 1.08, true),
            ],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        // Diff-style: the message names the metric, the floor, the
        // baseline's value for the same tile, and what was measured.
        assert!(bad[0].contains("kernels[4x4]"), "{bad:?}");
        assert!(bad[0].contains("floor 1.00"), "{bad:?}");
        assert!(bad[0].contains("baseline 1.350"), "{bad:?}");
        assert!(bad[0].contains("measured 0.930"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_best_tile_floor_and_ignores_the_ablation() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // Every blocked tile beats legacy but none reaches 1.3x; the
        // unblocked whole-plane ablation at 2.0 must not rescue it.
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[
                ("4x4", true, 1.05, true),
                ("8x8", true, 1.12, true),
                ("16x16", true, 1.08, true),
                ("whole", false, 2.00, true),
            ],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("best blocked tile (8x8)"), "{bad:?}");
        assert!(bad[0].contains("floor 1.30"), "{bad:?}");
        assert!(bad[0].contains("measured 1.120"), "{bad:?}");
    }

    #[test]
    fn gate_fails_when_fused_kernels_diverge_or_go_missing() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[
                ("4x4", true, 1.35, true),
                ("8x8", true, 1.62, false),
                ("16x16", true, 1.51, true),
                ("whole", false, 1.08, true),
            ],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("kernels[8x8] identical_output"), "{bad:?}");
        // No kernels block at all is its own violation.
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &[],
            &healthy_serve(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter().any(|b| b.contains("missing kernels block")),
            "{bad:?}"
        );
    }

    #[test]
    fn gate_enforces_serve_hit_rate_floor_with_diff_style_message() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            HEALTHY_KERNELS,
            &serve_block(0.300, 412.5, 120_000.0, 3, true),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("serve hit_rate"), "{bad:?}");
        assert!(bad[0].contains("floor 0.50"), "{bad:?}");
        assert!(bad[0].contains("baseline 0.875"), "{bad:?}");
        assert!(bad[0].contains("measured 0.300"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_serve_latency_ceilings_and_typed_rejections() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // p50 over its ceiling.
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            HEALTHY_KERNELS,
            &serve_block(0.875, 80_000.0, 120_000.0, 3, true),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("serve p50_us"), "{bad:?}");
        assert!(bad[0].contains("ceiling 50000.0 us"), "{bad:?}");
        // No overflow rejections, and the ones seen weren't typed:
        // both are independent violations.
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            HEALTHY_KERNELS,
            &serve_block(0.875, 412.5, 120_000.0, 0, false),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("serve rejected"), "{bad:?}");
        assert!(bad[1].contains("rejections_typed"), "{bad:?}");
        // A results file with no serve block at all is a violation.
        let fresh = results(4, 2.9, true, 12_000.0, 190_000.0).replace("\"serve\"", "\"svc\"");
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter().any(|b| b.contains("missing serve block")),
            "{bad:?}"
        );
    }

    #[test]
    fn serve_section_gates_a_serve_only_results_file() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // What `perf serve-slo` writes: schema + host_cores + serve
        // block, no sweeps/kernels/pool.
        let fresh = format!(
            "{{\n  \"schema_version\": 6,\n  \"host_cores\": 4,\n{}\n}}\n",
            healthy_serve()
        );
        let (bad, log) = gate_violations_in(&fresh, &base, GateSection::Serve);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("serve hit_rate")), "{log:?}");
        // The same file gated as `all` fails on the missing blocks.
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(!bad.is_empty());
        // And the serve section still enforces the schema handshake.
        let stale = fresh.replace("\"schema_version\": 6", "\"schema_version\": 5");
        let (bad, log) = gate_violations_in(&stale, &base, GateSection::Serve);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("schema_version"), "{bad:?}");
        assert!(log.is_empty(), "{log:?}");
    }

    /// A healthy fixture with a custom kernels.parallel block and
    /// host_cores/jobs set independently.
    fn results_with_parallel(cores: u32, jobs: u32, parallel: &str) -> String {
        results_doc(
            "  \"schema_version\": 6,\n",
            cores,
            jobs,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, parallel),
            &roofline_block(0.62),
            &healthy_serve(),
            &healthy_rebalance(),
        )
    }

    #[test]
    fn gate_scales_parallel_fused_floor_by_effective_cores() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // 4 workers on 4 cores must double serial fused: 1.5 fails.
        let fresh = results_with_parallel(4, 4, &parallel_block(4, 1.5, true));
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("kernels.parallel fused ratio"), "{bad:?}");
        assert!(bad[0].contains("floor 2.00"), "{bad:?}");
        assert!(bad[0].contains("measured 1.500"), "{bad:?}");
        // The same ratio on 2 cores clears the 1.2 floor...
        let fresh = results_with_parallel(2, 2, &parallel_block(4, 1.5, true));
        let (bad, log) = gate_violations(&fresh, &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("floor 1.20")), "{log:?}");
        // ...and an oversubscribed single-core runner is only held to
        // the scheduling-overhead bound.
        let fresh = results_with_parallel(1, 1, &parallel_block(4, 0.5, true));
        let (bad, log) = gate_violations(&fresh, &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("floor 0.35")), "{log:?}");
        // Worker-count divergence is fatal at any core count.
        let fresh = results_with_parallel(1, 1, &parallel_block(4, 2.6, false));
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(
            bad[0].contains("kernels.parallel identical_output"),
            "{bad:?}"
        );
        // A results file with no parallel block at all is a violation.
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, ""),
            &roofline_block(0.62),
            &healthy_serve(),
            &healthy_rebalance(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter()
                .any(|b| b.contains("missing kernels.parallel block")),
            "{bad:?}"
        );
    }

    #[test]
    fn gate_enforces_roofline_fraction_floor() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // Under a quarter of the bandwidth-predicted roof: violation.
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, &healthy_parallel()),
            &roofline_block(0.18),
            &healthy_serve(),
            &healthy_rebalance(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("roofline roof_fraction"), "{bad:?}");
        assert!(bad[0].contains("floor 0.25"), "{bad:?}");
        assert!(bad[0].contains("measured 0.180"), "{bad:?}");
        // Fractions above 1.0 are healthy, not suspicious: that is
        // cache-resident fusion beating streamed traffic.
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, &healthy_parallel()),
            &roofline_block(1.85),
            &healthy_serve(),
            &healthy_rebalance(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(bad.is_empty(), "{bad:?}");
        // A missing roofline block is its own violation.
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, &healthy_parallel()),
            "",
            &healthy_serve(),
            &healthy_rebalance(),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter().any(|b| b.contains("missing roofline block")),
            "{bad:?}"
        );
    }

    #[test]
    fn gate_rejects_truncated_serve_latency_precision() {
        // p50_us of exactly 0 means the quantiles lost sub-millisecond
        // resolution — the regression this gate exists to catch.
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = results_with(
            "  \"schema_version\": 6,\n",
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            HEALTHY_KERNELS,
            &serve_block(0.875, 0.0, 120_000.0, 3, true),
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("serve p50_us: expected > 0"), "{bad:?}");
    }

    #[test]
    fn sweep_floor_is_oversubscription_aware() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // --jobs 4 on one core is oversubscription: effective jobs 1,
        // so 0.7 "speedup" is acceptable fan-out overhead...
        let fresh = results_with_parallel(1, 4, &parallel_block(4, 0.5, true));
        let fresh = fresh.replace("\"speedup\": 2.900", "\"speedup\": 0.700");
        let (bad, log) = gate_violations(&fresh, &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("floor 0.5")), "{log:?}");
        // ...but the same number with 4 real cores is a regression.
        let fresh = results_with_parallel(4, 4, &healthy_parallel());
        let fresh = fresh.replace("\"speedup\": 2.900", "\"speedup\": 0.700");
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("speedup"), "{bad:?}");
        assert!(bad[0].contains("jobs 4"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_rebalance_convergence_floors() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // rel_err over the ceiling: the controller settled off-optimum.
        let sick = rebalance_block(
            &[(0.2500, 0.0125, 0.020000, 0.200, 4, false)],
            &recovery_line(true, 1, 1),
        );
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, &healthy_parallel()),
            &roofline_block(0.62),
            &healthy_serve(),
            &sick,
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("rebalance[ratio 0.25] rel_err"), "{bad:?}");
        assert!(bad[0].contains("ceiling 0.05"), "{bad:?}");
        assert!(bad[0].contains("baseline 0.000"), "{bad:?}");
        assert!(bad[0].contains("measured 0.200"), "{bad:?}");
        // Never converged (9999 sentinel) and a split below the guard
        // are independent violations on one point.
        let sick = rebalance_block(
            &[(1.0000, 0.0125, 0.010000, 0.0, 9999, false)],
            &recovery_line(true, 1, 1),
        );
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, &healthy_parallel()),
            &roofline_block(0.62),
            &healthy_serve(),
            &sick,
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("converged_cycle"), "{bad:?}");
        assert!(bad[0].contains("never settled"), "{bad:?}");
        assert!(bad[1].contains("below the 12/ny guard"), "{bad:?}");
        // A clamped point that drifted off the guard is a violation.
        let sick = rebalance_block(
            &[(1.0000, 0.2500, 0.291667, 0.0, 2, true)],
            &recovery_line(true, 1, 1),
        );
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, &healthy_parallel()),
            &roofline_block(0.62),
            &healthy_serve(),
            &sick,
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("clamped point must pin"), "{bad:?}");
        // No rebalance block at all is its own violation.
        let fresh =
            results(4, 2.9, true, 12_000.0, 190_000.0).replace("\"rebalance\"", "\"rebal\"");
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter().any(|b| b.contains("missing rebalance block")),
            "{bad:?}"
        );
    }

    #[test]
    fn gate_fails_on_rebalance_recovery_divergence() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // A diverged double run and a missing freeze are independent.
        let sick = rebalance_block(HEALTHY_REBALANCE, &recovery_line(false, 0, 1));
        let fresh = results_doc(
            "  \"schema_version\": 6,\n",
            4,
            4,
            2.9,
            true,
            12_000.0,
            190_000.0,
            &kernels_block(HEALTHY_KERNELS, &healthy_parallel()),
            &roofline_block(0.62),
            &healthy_serve(),
            &sick,
        );
        let (bad, _) = gate_violations(&fresh, &base);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("recovery identical"), "{bad:?}");
        assert!(bad[0].contains("diverged"), "{bad:?}");
        assert!(bad[1].contains("recovery frozen"), "{bad:?}");
    }

    #[test]
    fn rebalance_section_gates_a_rebalance_only_results_file() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // What `perf rebalance` writes: schema + host_cores +
        // rebalance block, nothing else.
        let fresh = format!(
            "{{\n  \"schema_version\": 6,\n  \"host_cores\": 4,\n{}\n}}\n",
            healthy_rebalance()
        );
        let (bad, log) = gate_violations_in(&fresh, &base, GateSection::Rebalance);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("rel_err")), "{log:?}");
        assert!(
            log.iter().any(|l| l.contains("byte-identically")),
            "{log:?}"
        );
        // The same file gated as `all` fails on the missing blocks.
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(!bad.is_empty());
        // And the rebalance section still enforces the schema handshake.
        let stale = fresh.replace("\"schema_version\": 6", "\"schema_version\": 5");
        let (bad, log) = gate_violations_in(&stale, &base, GateSection::Rebalance);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("unrecognized"), "{bad:?}");
        assert!(log.is_empty(), "{log:?}");
    }

    #[test]
    fn scenarios_section_gates_a_scenarios_only_results_file() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let fresh = scenarios_doc(&healthy_scenarios());
        let (bad, log) = gate_violations_in(&fresh, &base, GateSection::Scenarios);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("mzps")), "{log:?}");
        assert!(log.iter().any(|l| l.contains("bit-identical")), "{log:?}");
        assert!(
            log.iter().any(|l| l.contains("no analytic reference")),
            "{log:?}"
        );
        // The same file gated as `all` fails on the missing blocks.
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(!bad.is_empty());
        // And the scenarios section still enforces the schema handshake.
        let stale = fresh.replace("\"schema_version\": 6", "\"schema_version\": 5");
        let (bad, log) = gate_violations_in(&stale, &base, GateSection::Scenarios);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("unrecognized"), "{bad:?}");
        assert!(log.is_empty(), "{log:?}");
    }

    #[test]
    fn gate_enforces_scenario_throughput_floors_with_diff_style_message() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // sod/cpu throughput collapses (healthy baseline 0.800).
        let mut rows = HEALTHY_SCENARIOS.to_vec();
        rows[2].2 = 0.1;
        let fresh = scenarios_doc(&scenarios_fixture(&rows));
        let (bad, _) = gate_violations_in(&fresh, &base, GateSection::Scenarios);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("scenarios[sod cpu] mzps"), "{bad:?}");
        assert!(bad[0].contains("baseline 0.800"), "{bad:?}");
        assert!(bad[0].contains("measured 0.100"), "{bad:?}");
    }

    #[test]
    fn gate_enforces_scenario_error_ceilings_and_metric_presence() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // Noh/hetero analytic error grows past 1.05x the baseline.
        let mut rows = HEALTHY_SCENARIOS.to_vec();
        rows[5].3 = 0.2;
        let fresh = scenarios_doc(&scenarios_fixture(&rows));
        let (bad, _) = gate_violations_in(&fresh, &base, GateSection::Scenarios);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(
            bad[0].contains("scenarios[noh hetero] analytic error"),
            "{bad:?}"
        );
        assert!(bad[0].contains("baseline 0.120000"), "{bad:?}");
        assert!(bad[0].contains("measured 0.200000"), "{bad:?}");
        // A scenario that *loses* its metric (baseline has one, fresh
        // reports the sentinel) is a violation, not a skip.
        let mut rows = HEALTHY_SCENARIOS.to_vec();
        rows[3].3 = -1.0;
        let fresh = scenarios_doc(&scenarios_fixture(&rows));
        let (bad, _) = gate_violations_in(&fresh, &base, GateSection::Scenarios);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("lost its metric"), "{bad:?}");
    }

    #[test]
    fn gate_fails_on_scenario_divergence_lost_particles_or_missing_rows() {
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        // A diverged double run and lost particle totals on separate
        // rows are independent violations.
        let mut rows = HEALTHY_SCENARIOS.to_vec();
        rows[0].4 = false;
        rows[7].5 = false;
        let fresh = scenarios_doc(&scenarios_fixture(&rows));
        let (bad, _) = gate_violations_in(&fresh, &base, GateSection::Scenarios);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].contains("scenarios[sedov cpu] identical"), "{bad:?}");
        assert!(bad[0].contains("diverged"), "{bad:?}");
        assert!(
            bad[1].contains("scenarios[taylor-green hetero] particles_conserved"),
            "{bad:?}"
        );
        // A missing (scenario, mode) row is a violation: the study
        // must cover the full matrix.
        let mut rows = HEALTHY_SCENARIOS.to_vec();
        rows.remove(4);
        let fresh = scenarios_doc(&scenarios_fixture(&rows));
        let (bad, _) = gate_violations_in(&fresh, &base, GateSection::Scenarios);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(
            bad[0].contains("scenarios[noh cpu]: missing from fresh results"),
            "{bad:?}"
        );
        // No scenarios block at all is its own violation, in the
        // section gate and in `all`.
        let fresh = results(4, 2.9, true, 12_000.0, 190_000.0).replace("\"scenarios\"", "\"scen\"");
        let (bad, _) = gate_violations(&fresh, &base);
        assert!(
            bad.iter().any(|b| b.contains("missing scenarios block")),
            "{bad:?}"
        );
    }

    #[test]
    fn sweeps_absent_from_a_quick_run_are_skipped_not_failed() {
        // Quick runs carry no fig14 sweep; the gate must not invent one.
        let base = results(4, 3.1, true, 10_000.0, 200_000.0);
        let (bad, log) = gate_violations(&results(4, 2.9, true, 10_000.0, 200_000.0), &base);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(log.iter().any(|l| l.contains("fig14 not in fresh results")));
    }
}
