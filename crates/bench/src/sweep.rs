//! Figure sweep execution: run every mode over a figure's points.

use hsim_core::figures::FigureSpec;
use hsim_core::{run_balanced, ExecMode, RunConfig};

/// One mode's series over a sweep.
#[derive(Debug, Clone)]
pub struct Series {
    pub mode: ExecMode,
    pub label: String,
    /// `(zones, swept_dim, runtime_s, cpu_fraction)` per point.
    pub points: Vec<(u64, usize, f64, f64)>,
}

/// All series of one figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    pub id: &'static str,
    pub caption: &'static str,
    pub series: Vec<Series>,
}

/// The three modes every evaluation figure compares.
pub fn paper_modes() -> Vec<ExecMode> {
    vec![ExecMode::Default, ExecMode::mps4(), ExecMode::hetero()]
}

/// Run one figure's sweep for `modes` (cost-only fidelity, RZHasGPU).
/// Heterogeneous points run through the load balancer, exactly as the
/// paper adjusted the split per problem size.
pub fn run_figure(spec: &FigureSpec, modes: &[ExecMode]) -> FigureData {
    let mut series = Vec::with_capacity(modes.len());
    for mode in modes {
        let mut points = Vec::with_capacity(spec.values.len());
        for (p, &v) in spec.points().iter().zip(&spec.values) {
            let cfg = RunConfig::sweep(p.grid(), *mode);
            let (result, _lb) = match run_balanced(&cfg) {
                Ok(r) => r,
                Err(e) => {
                    // Infeasible points (e.g. a carve axis too small
                    // for the CPU ranks) are skipped, like runs that
                    // would not fit the machine.
                    eprintln!("{}: {mode:?} at {:?}: {e}", spec.id, p.grid());
                    continue;
                }
            };
            points.push((
                result.zones,
                v,
                result.runtime.as_secs_f64(),
                result.cpu_fraction,
            ));
        }
        series.push(Series {
            mode: *mode,
            label: mode.label(),
            points,
        });
    }
    FigureData {
        id: spec.id,
        caption: spec.caption,
        series,
    }
}

impl FigureData {
    /// A markdown table of the figure's series with Default-relative
    /// ratios (the EXPERIMENTS.md presentation).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.caption);
        out.push_str("| zones | dim | Default | MPS | Hetero | Het/Def | MPS/Def | CPU share |\n");
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        let find = |key: &str| self.series.iter().find(|s| s.mode.key() == key);
        let (d, m, h) = (find("default"), find("mps4"), find("hetero"));
        let zones: Vec<(u64, usize)> = d
            .map(|s| s.points.iter().map(|&(z, v, _, _)| (z, v)).collect())
            .unwrap_or_default();
        for (z, v) in zones {
            let at = |s: Option<&Series>| {
                s.and_then(|s| s.points.iter().find(|p| p.0 == z))
                    .map(|p| (p.2, p.3))
            };
            let dd = at(d);
            let mm = at(m);
            let hh = at(h);
            let ratio = |x: Option<(f64, f64)>| match (x, dd) {
                (Some((t, _)), Some((td, _))) if td > 0.0 => format!("{:.3}", t / td),
                _ => "—".to_string(),
            };
            let cell = |x: Option<(f64, f64)>| {
                x.map(|(t, _)| format!("{t:.4}"))
                    .unwrap_or_else(|| "—".into())
            };
            let share = hh
                .map(|(_, f)| format!("{:.2}%", f * 100.0))
                .unwrap_or_else(|| "—".into());
            out.push_str(&format!(
                "| {z} | {v} | {} | {} | {} | {} | {} | {share} |\n",
                cell(dd),
                cell(mm),
                cell(hh),
                ratio(hh),
                ratio(mm)
            ));
        }
        out
    }

    /// CSV rows: `figure,mode,zones,swept,runtime_s,cpu_fraction`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,mode,zones,swept_dim,runtime_s,cpu_fraction\n");
        for s in &self.series {
            for &(zones, v, t, f) in &s.points {
                out.push_str(&format!(
                    "{},{},{zones},{v},{t:.6},{f:.4}\n",
                    self.id,
                    s.mode.key()
                ));
            }
        }
        out
    }

    /// Chart-ready series `(label, [(zones, runtime_s)])`.
    pub fn chart_series(&self) -> Vec<(String, Vec<(f64, f64)>)> {
        self.series
            .iter()
            .map(|s| {
                (
                    s.label.clone(),
                    s.points.iter().map(|&(z, _, t, _)| (z as f64, t)).collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_core::figures;
    use hsim_core::figures::FigureSpec;

    #[test]
    fn small_sweep_produces_all_series() {
        // A trimmed fig13-style sweep to keep the test fast.
        let spec = FigureSpec {
            id: "test",
            caption: "test sweep",
            sweep: figures::SweepAxis::X,
            values: vec![64, 128],
            fixed: (48, 32),
        };
        let data = run_figure(&spec, &paper_modes());
        assert_eq!(data.series.len(), 3);
        for s in &data.series {
            assert_eq!(s.points.len(), 2, "{}", s.label);
        }
        let csv = data.to_csv();
        assert!(csv.lines().count() >= 7);
        assert_eq!(data.chart_series().len(), 3);
        let md = data.to_markdown();
        assert!(md.contains("| zones |"));
        // One row per sweep point plus header lines.
        assert_eq!(md.lines().count(), 4 + 2); // title, blank, header, separator + 2 rows
        assert!(md.contains("%"), "CPU share column present");
    }
}
