//! Figure sweep execution: run every mode over a figure's points.
//!
//! Sweeps fan out over a small host-side job pool: every
//! `(mode, point)` pair is an independent simulation, so
//! [`run_figure_jobs`] claims pairs from an atomic cursor and runs
//! them on `jobs` OS threads. Results land in per-task slots and are
//! assembled in the fixed mode-major, point-minor order, so the CSV,
//! markdown, and chart output are byte-identical for any job count
//! (the simulations themselves are deterministic virtual-time runs —
//! wall-clock parallelism cannot leak into them).
//!
//! Points the runner rejects (e.g. a carve axis too small for the CPU
//! ranks) are recorded as [`SkippedPoint`]s on the [`FigureData`]
//! instead of being printed to stderr, so figure footers can report
//! them and tests can assert on them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hsim_core::figures::FigureSpec;
use hsim_core::{run_balanced, ExecMode, RunConfig};

/// One mode's series over a sweep.
#[derive(Debug, Clone)]
pub struct Series {
    pub mode: ExecMode,
    pub label: String,
    /// `(zones, swept_dim, runtime_s, cpu_fraction)` per point.
    pub points: Vec<(u64, usize, f64, f64)>,
}

/// A sweep point the runner refused, kept for footers and tests.
#[derive(Debug, Clone)]
pub struct SkippedPoint {
    pub mode: String,
    pub grid: (usize, usize, usize),
    pub swept_dim: usize,
    pub reason: String,
}

/// All series of one figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    pub id: &'static str,
    pub caption: &'static str,
    pub series: Vec<Series>,
    /// Infeasible points, in the same deterministic sweep order.
    pub skipped: Vec<SkippedPoint>,
}

/// The three modes every evaluation figure compares.
pub fn paper_modes() -> Vec<ExecMode> {
    vec![ExecMode::Default, ExecMode::mps4(), ExecMode::hetero()]
}

/// What one `(mode, point)` task produced.
enum Outcome {
    Point((u64, usize, f64, f64)),
    Skip(String),
}

/// Run one figure's sweep for `modes` (cost-only fidelity, RZHasGPU).
/// Heterogeneous points run through the load balancer, exactly as the
/// paper adjusted the split per problem size. Serial (`jobs = 1`)
/// compatibility wrapper around [`run_figure_jobs`].
pub fn run_figure(spec: &FigureSpec, modes: &[ExecMode]) -> FigureData {
    run_figure_jobs(spec, modes, 1)
}

/// Run one figure's sweep with up to `jobs` simulations in flight.
///
/// `jobs` is clamped to at least 1; the calling thread always acts as
/// one of the workers, so `jobs = 1` spawns nothing and degenerates to
/// the serial loop. Output is byte-identical for every `jobs` value.
pub fn run_figure_jobs(spec: &FigureSpec, modes: &[ExecMode], jobs: usize) -> FigureData {
    let pts: Vec<((usize, usize, usize), usize)> = spec
        .points()
        .iter()
        .zip(&spec.values)
        .map(|(p, &v)| (p.grid(), v))
        .collect();
    let n_tasks = modes.len() * pts.len();
    let slots: Vec<Mutex<Option<Outcome>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let host_t0 = hsim_telemetry::is_enabled().then(std::time::Instant::now);

    // Longest-processing-time claim order: hand out the most
    // expensive simulations first so a big point claimed late cannot
    // serialize the tail of the sweep (sweeps run small → large, so
    // flat order used to put the largest grids last and capped fig14
    // speedup well below the job count). Cost ∝ zones, with a
    // heterogeneous surcharge for the balancer's repeated runs.
    // Only the *claim* order changes: slots and assembly stay in the
    // fixed mode-major order, so output is still byte-identical.
    let mut order: Vec<usize> = (0..n_tasks).collect();
    order.sort_by_key(|&t| {
        let (grid, _) = pts[t % pts.len()];
        let weight = match modes[t / pts.len()] {
            ExecMode::Heterogeneous { .. } => 4,
            _ => 1,
        };
        std::cmp::Reverse((grid.0 * grid.1 * grid.2) as u64 * weight)
    });
    let order = &order;

    // Each worker claims tasks in LPT order until the cursor runs
    // dry. Slots are written exactly once.
    let worker = || loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= n_tasks {
            break;
        }
        let t = order[c];
        let mode = modes[t / pts.len()];
        let (grid, v) = pts[t % pts.len()];
        let mut cfg = RunConfig::sweep(grid, mode);
        cfg.problem = spec.scenario.problem();
        let outcome = match run_balanced(&cfg) {
            Ok((result, _lb)) => Outcome::Point((
                result.zones,
                v,
                result.runtime.as_secs_f64(),
                result.cpu_fraction,
            )),
            Err(e) => Outcome::Skip(e.to_string()),
        };
        *slots[t].lock().unwrap() = Some(outcome);
    };
    let extra = jobs.max(1).min(n_tasks.max(1)) - 1;
    if extra == 0 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..extra {
                s.spawn(worker);
            }
            worker();
        });
    }

    if let Some(t0) = host_t0 {
        hsim_telemetry::count(hsim_telemetry::Counter::HostSweepPoints, n_tasks as u64);
        hsim_telemetry::count(
            hsim_telemetry::Counter::HostSweepNanos,
            t0.elapsed().as_nanos() as u64,
        );
    }

    // Deterministic assembly: fixed mode-major, point-minor order,
    // independent of which worker ran which task.
    let mut series = Vec::with_capacity(modes.len());
    let mut skipped = Vec::new();
    for (mi, mode) in modes.iter().enumerate() {
        let mut points = Vec::with_capacity(pts.len());
        for (pi, &(grid, v)) in pts.iter().enumerate() {
            let outcome = slots[mi * pts.len() + pi]
                .lock()
                .unwrap()
                .take()
                .expect("every sweep task runs exactly once");
            match outcome {
                Outcome::Point(p) => points.push(p),
                Outcome::Skip(reason) => skipped.push(SkippedPoint {
                    mode: mode.label(),
                    grid,
                    swept_dim: v,
                    reason,
                }),
            }
        }
        series.push(Series {
            mode: *mode,
            label: mode.label(),
            points,
        });
    }
    FigureData {
        id: spec.id,
        caption: spec.caption,
        series,
        skipped,
    }
}

impl FigureData {
    /// A markdown table of the figure's series with Default-relative
    /// ratios (the EXPERIMENTS.md presentation). Skipped points, if
    /// any, are listed in a footer below the table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.caption);
        out.push_str("| zones | dim | Default | MPS | Hetero | Het/Def | MPS/Def | CPU share |\n");
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        let find = |key: &str| self.series.iter().find(|s| s.mode.key() == key);
        let (d, m, h) = (find("default"), find("mps4"), find("hetero"));
        let zones: Vec<(u64, usize)> = d
            .map(|s| s.points.iter().map(|&(z, v, _, _)| (z, v)).collect())
            .unwrap_or_default();
        for (z, v) in zones {
            let at = |s: Option<&Series>| {
                s.and_then(|s| s.points.iter().find(|p| p.0 == z))
                    .map(|p| (p.2, p.3))
            };
            let dd = at(d);
            let mm = at(m);
            let hh = at(h);
            let ratio = |x: Option<(f64, f64)>| match (x, dd) {
                (Some((t, _)), Some((td, _))) if td > 0.0 => format!("{:.3}", t / td),
                _ => "—".to_string(),
            };
            let cell = |x: Option<(f64, f64)>| {
                x.map(|(t, _)| format!("{t:.4}"))
                    .unwrap_or_else(|| "—".into())
            };
            let share = hh
                .map(|(_, f)| format!("{:.2}%", f * 100.0))
                .unwrap_or_else(|| "—".into());
            out.push_str(&format!(
                "| {z} | {v} | {} | {} | {} | {} | {} | {share} |\n",
                cell(dd),
                cell(mm),
                cell(hh),
                ratio(hh),
                ratio(mm)
            ));
        }
        out.push_str(&self.skip_footer());
        out
    }

    /// Footer lines describing skipped points, empty when none were.
    pub fn skip_footer(&self) -> String {
        if self.skipped.is_empty() {
            return String::new();
        }
        let mut out = format!("\n_{} infeasible point(s) skipped:_\n", self.skipped.len());
        for s in &self.skipped {
            out.push_str(&format!(
                "- {} at {}×{}×{} (dim {}): {}\n",
                s.mode, s.grid.0, s.grid.1, s.grid.2, s.swept_dim, s.reason
            ));
        }
        out
    }

    /// CSV rows: `figure,mode,zones,swept,runtime_s,cpu_fraction`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,mode,zones,swept_dim,runtime_s,cpu_fraction\n");
        for s in &self.series {
            for &(zones, v, t, f) in &s.points {
                out.push_str(&format!(
                    "{},{},{zones},{v},{t:.6},{f:.4}\n",
                    self.id,
                    s.mode.key()
                ));
            }
        }
        out
    }

    /// Chart-ready series `(label, [(zones, runtime_s)])`.
    pub fn chart_series(&self) -> Vec<(String, Vec<(f64, f64)>)> {
        self.series
            .iter()
            .map(|s| {
                (
                    s.label.clone(),
                    s.points.iter().map(|&(z, _, t, _)| (z as f64, t)).collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_core::figures;
    use hsim_core::figures::FigureSpec;

    #[test]
    fn small_sweep_produces_all_series() {
        // A trimmed fig13-style sweep to keep the test fast.
        let spec = FigureSpec {
            id: "test",
            caption: "test sweep",
            sweep: figures::SweepAxis::X,
            values: vec![64, 128],
            fixed: (48, 32),
            scenario: hsim_core::Scenario::Sedov,
        };
        let data = run_figure(&spec, &paper_modes());
        assert_eq!(data.series.len(), 3);
        for s in &data.series {
            assert_eq!(s.points.len(), 2, "{}", s.label);
        }
        assert!(data.skipped.is_empty());
        let csv = data.to_csv();
        assert!(csv.lines().count() >= 7);
        assert_eq!(data.chart_series().len(), 3);
        let md = data.to_markdown();
        assert!(md.contains("| zones |"));
        // One row per sweep point plus header lines; no skip footer.
        assert_eq!(md.lines().count(), 4 + 2); // title, blank, header, separator + 2 rows
        assert!(md.contains("%"), "CPU share column present");
    }

    #[test]
    fn lpt_claim_order_keeps_output_byte_identical() {
        let spec = FigureSpec {
            id: "test",
            caption: "test sweep",
            sweep: figures::SweepAxis::X,
            values: vec![64, 96, 128],
            fixed: (48, 32),
            scenario: hsim_core::Scenario::Sedov,
        };
        let serial = run_figure_jobs(&spec, &paper_modes(), 1);
        let parallel = run_figure_jobs(&spec, &paper_modes(), 4);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
    }
}
