//! Benchmark-harness support: figure sweep execution and terminal
//! plotting shared by the `figures` binary and the Criterion benches.

#![forbid(unsafe_code)]

pub mod plot;
pub mod rebalance;
pub mod roofline;
pub mod serveload;
pub mod sweep;

pub use plot::ascii_chart;
pub use rebalance::{run_rebalance_report, RebalanceReport};
pub use serveload::{run_load, ServeLoadReport};
pub use sweep::{paper_modes, run_figure, run_figure_jobs, FigureData, Series, SkippedPoint};
