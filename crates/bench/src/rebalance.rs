//! The online-rebalance convergence study: the data source for the
//! `fig-rebalance` figure and the perf harness's `rebalance` results
//! block (gated by `perf ci-gate --section rebalance`).
//!
//! Three parts, all in deterministic virtual time:
//!
//! 1. **Speed-ratio sweep** — for each multiplier in
//!    [`figures::rebalance_speed_ratios`] the node's per-core CPU
//!    speed is scaled, the controller starts from a deliberately
//!    wrong split ([`START_FRACTION`]), and its landing split must be
//!    the fixed point of the measured-rate update: an *uncontrolled*
//!    probe pinned at the landing split re-derives the analytic
//!    optimum weight, which — pushed through the real decomposition,
//!    where plane rounding quantizes the request — must map back onto
//!    the identical discrete split (relative error 0).
//! 2. **Granularity clamp** — a `ny = 24` point where the `12/ny`
//!    guard (paper Figs 13–14) sits far above the GPU-hungry optimum:
//!    the final split must equal the guard exactly.
//! 3. **Recovery identity** — a full-fidelity double run with an
//!    injected `rank.loss` under the live controller: both runs must
//!    produce byte-identical metrics and balance histories, and the
//!    controller must freeze at the foldback split.

use hsim_core::balance::{RebalanceConfig, Rebalancer};
use hsim_core::calib;
use hsim_core::faults::FaultPlan;
use hsim_core::figures;
use hsim_core::runner::{
    build_decomposition, hetero_min_fraction, run, run_with_fraction, RunConfig,
};
use hsim_core::ExecMode;
use hsim_raja::Fidelity;
use hsim_telemetry::Counter;

use std::fmt::Write as _;

/// The deliberately oversized CPU share every controlled run starts
/// from; the converged share on the stock node is a few percent, so
/// this forces several re-splits.
pub const START_FRACTION: f64 = 0.30;

/// Cycles per controlled run in the sweep; with
/// [`calib::REBALANCE_DEFAULT_EVERY`] boundaries this gives the
/// controller five observation windows.
pub const SWEEP_CYCLES: u64 = 12;

/// Relative tolerance used for the converged-boundary scan: the first
/// boundary whose realized split stays within this band of the
/// quantized optimum for the rest of the run.
pub const CONVERGENCE_TOL: f64 = 0.05;

/// Sentinel emitted for `converged_cycle` when a run never settled
/// inside [`CONVERGENCE_TOL`]; any sane gate ceiling rejects it.
pub const NEVER_CONVERGED: u64 = 9999;

/// The sweep grid: fig18's largest-`y` family, where the guard sits
/// far below the optimum and the controller has room to move.
const SWEEP_GRID: (usize, usize, usize) = (320, 480, 160);

/// The clamp grid: `ny = 24` makes the per-GPU-block y extent 12, so
/// the guard is 3/12 = 0.25 — the Figs 13–14 bottleneck realized.
const CLAMP_GRID: (usize, usize, usize) = (64, 24, 16);

/// One speed ratio's convergence outcome.
#[derive(Debug, Clone)]
pub struct ConvergencePoint {
    /// Per-core CPU speed multiplier applied to the stock node.
    pub ratio: f64,
    /// The wrong split the controller started from.
    pub start: f64,
    /// The `12/ny`-style granularity guard for this grid.
    pub guard: f64,
    /// Analytic optimum weight from the fixed-point probe's measured
    /// rates at the landing split.
    pub optimum: f64,
    /// The optimum pushed through the actual decomposition (plane
    /// rounding quantizes the request); the convergence target.
    pub optimum_realized: f64,
    /// The controller's final realized split.
    pub final_fraction: f64,
    /// `|final - optimum_realized| / optimum_realized`.
    pub rel_err: f64,
    /// First cycle whose split stays within [`CONVERGENCE_TOL`] of the
    /// target for the rest of the run ([`NEVER_CONVERGED`] if none).
    pub converged_cycle: u64,
    /// Re-splits the controller actually took.
    pub resplits: u64,
    /// Boundaries where hysteresis held the split.
    pub holds: u64,
    /// Whether the optimum itself hit the granularity guard.
    pub clamped: bool,
    /// Realized split at every segment boundary (entry 0 = initial).
    pub history: Vec<f64>,
}

/// Outcome of the controller-enabled rank-loss double run.
#[derive(Debug, Clone)]
pub struct RecoveryCheck {
    /// Both same-seed runs produced byte-identical metrics JSON and
    /// balance histories.
    pub identical: bool,
    /// `balance_frozen` counter after the run (must be 1).
    pub frozen: u64,
    /// `fault_rank_losses` counter after the run (must be 1).
    pub rank_losses: u64,
    /// Surviving ranks after the foldback.
    pub ranks_after: usize,
    /// The frozen post-loss split (may sit below the guard: the
    /// foldback hands the lost slab to a GPU block).
    pub post_loss_fraction: f64,
}

/// The full study: sweep points (the last one is the clamped `ny=24`
/// row) plus the recovery identity check.
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    pub every: u64,
    pub hysteresis: f64,
    pub cycles: u64,
    pub points: Vec<ConvergencePoint>,
    pub recovery: RecoveryCheck,
}

fn controlled_cfg(grid: (usize, usize, usize), ratio: f64, cycles: u64) -> RunConfig {
    let mut cfg = RunConfig::sweep(grid, ExecMode::hetero());
    cfg.cycles = cycles;
    // Scale the whole per-core speed, not just the clock: the CPU
    // cost model rooflines compute against per-core bandwidth (hydro
    // kernels sit on the memory side) and adds a cycle-priced
    // dispatch penalty, so a "ratio-times-faster CPU" multiplies
    // clock and bandwidth and divides the per-iteration penalty.
    cfg.node.cpu.ghz *= ratio;
    cfg.node.cpu.bw_gbs_per_core *= ratio;
    cfg.node.cpu.dispatch_ns /= ratio;
    cfg.rebalance = Some(RebalanceConfig {
        every: calib::REBALANCE_DEFAULT_EVERY,
        hysteresis: calib::REBALANCE_DEFAULT_HYSTERESIS,
    });
    cfg.telemetry = true;
    cfg
}

/// First boundary index whose split stays within `tol` of `target`
/// through the end of the history.
fn converged_index(history: &[f64], target: f64, tol: f64) -> Option<usize> {
    let within = |f: f64| ((f - target) / target.max(1e-12)).abs() <= tol;
    let mut settled = None;
    for (i, &f) in history.iter().enumerate() {
        if within(f) {
            if settled.is_none() {
                settled = Some(i);
            }
        } else {
            settled = None;
        }
    }
    settled
}

/// Run one speed ratio: the controlled run walks [`START_FRACTION`]
/// to its landing split, then an uncontrolled probe pinned at that
/// split must certify it as the fixed point of the measured-rate
/// update — the analytic optimum implied by rates measured *at* the
/// landing point maps back onto the same discrete split. (Probing at
/// any other fraction would bias the target: the rates are mildly
/// fraction-dependent through host sharing and plane rounding, which
/// is the reason the controller iterates instead of solving once.)
pub fn run_convergence_point(
    grid: (usize, usize, usize),
    ratio: f64,
    cycles: u64,
    start: f64,
) -> Result<ConvergencePoint, String> {
    let cfg = controlled_cfg(grid, ratio, cycles);
    let every = cfg.rebalance.as_ref().map_or(1, |r| r.every);
    let r = run_with_fraction(&cfg, start)?;
    let final_fraction = r.cpu_fraction;

    // Fixed-point probe: rerun one controller window at the landing
    // split with the controller off, and recover the analytic optimum
    // from the timings the controller would have observed there.
    let mut probe_cfg = controlled_cfg(grid, ratio, calib::REBALANCE_DEFAULT_EVERY);
    probe_cfg.rebalance = None;
    probe_cfg.telemetry = false;
    let probe = run_with_fraction(&probe_cfg, final_fraction)?;
    let f_real = probe.cpu_fraction;
    let t_cpu = probe.slowest_cpu_compute().as_secs_f64();
    let t_gpu = probe.slowest_device_busy().as_secs_f64();
    if !(t_cpu > 0.0 && t_gpu > 0.0) {
        return Err(format!(
            "probe at ratio {ratio} produced degenerate timings ({t_cpu}s CPU, {t_gpu}s GPU)"
        ));
    }
    let (r_cpu, r_gpu) = (f_real / t_cpu, (1.0 - f_real) / t_gpu);
    let guard = hetero_min_fraction(&probe_cfg);
    let optimum = Rebalancer::analytic_optimum(r_cpu, r_gpu, 1.0, guard);
    let optimum_realized = build_decomposition(&probe_cfg, optimum)?.cpu_zone_fraction();
    let rel_err = ((final_fraction - optimum_realized) / optimum_realized.max(1e-12)).abs();
    let converged_cycle = converged_index(&r.balance_history, optimum_realized, CONVERGENCE_TOL)
        .map_or(NEVER_CONVERGED, |i| (i as u64 * every).min(cycles));
    let summary = r
        .telemetry
        .as_ref()
        .ok_or("controlled run dropped its telemetry summary")?;
    Ok(ConvergencePoint {
        ratio,
        start,
        guard,
        optimum,
        optimum_realized,
        final_fraction,
        rel_err,
        converged_cycle,
        resplits: summary.metrics.counter(Counter::BalanceResplits),
        holds: summary.metrics.counter(Counter::BalanceHolds),
        clamped: optimum <= guard + 1e-12,
        history: r.balance_history,
    })
}

/// The controller-enabled rank-loss double run: same seed, same plan,
/// twice in this process. The tile is pinned because the wall-clock
/// auto-tune probe is one-shot per process — its kernel launches
/// would land only in the first run's telemetry and break the
/// byte-compare for a reason that has nothing to do with the
/// controller.
pub fn run_recovery_check() -> Result<RecoveryCheck, String> {
    let mut cfg = RunConfig::sweep((32, 48, 32), ExecMode::hetero());
    cfg.cycles = 6;
    cfg.rebalance = Some(RebalanceConfig {
        every: calib::REBALANCE_DEFAULT_EVERY,
        hysteresis: calib::REBALANCE_DEFAULT_HYSTERESIS,
    });
    cfg.fidelity = Fidelity::Full;
    cfg.telemetry = true;
    cfg.tile = Some([8, 8]);
    cfg.faults = Some(FaultPlan::parse("rank.loss@rank4.cycle3")?);
    let a = run(&cfg)?;
    let b = run(&cfg)?;
    let sa = a
        .telemetry
        .as_ref()
        .ok_or("recovery run a dropped its telemetry summary")?;
    let sb = b
        .telemetry
        .as_ref()
        .ok_or("recovery run b dropped its telemetry summary")?;
    let identical =
        a.balance_history == b.balance_history && sa.to_metrics_json() == sb.to_metrics_json();
    Ok(RecoveryCheck {
        identical,
        frozen: sa.metrics.counter(Counter::BalanceFrozen),
        rank_losses: sa.metrics.counter(Counter::FaultRankLosses),
        ranks_after: a.ranks.len(),
        post_loss_fraction: a.cpu_fraction,
    })
}

/// Run the whole study: every speed ratio, the clamped row, and the
/// recovery check.
pub fn run_rebalance_report() -> Result<RebalanceReport, String> {
    let mut points = Vec::new();
    for ratio in figures::rebalance_speed_ratios() {
        eprintln!("rebalance sweep: CPU clock x{ratio}, {SWEEP_CYCLES} cycles...");
        points.push(run_convergence_point(
            SWEEP_GRID,
            ratio,
            SWEEP_CYCLES,
            START_FRACTION,
        )?);
    }
    // The clamped tail: the guard realizes 0.25 here, far above the
    // optimum, so the controller must pin to it and stay.
    eprintln!(
        "rebalance sweep: granularity clamp at ny = {}...",
        CLAMP_GRID.1
    );
    points.push(run_convergence_point(CLAMP_GRID, 1.0, 8, 0.45)?);
    eprintln!("rebalance recovery: controller-enabled rank.loss double run...");
    let recovery = run_recovery_check()?;
    Ok(RebalanceReport {
        every: calib::REBALANCE_DEFAULT_EVERY,
        hysteresis: calib::REBALANCE_DEFAULT_HYSTERESIS,
        cycles: SWEEP_CYCLES,
        points,
        recovery,
    })
}

impl RebalanceReport {
    /// Render the `rebalance` results block (no trailing
    /// comma/newline, one JSON line per point so the gate's line-based
    /// scanner reads each row whole).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "  \"rebalance\": {{");
        let _ = writeln!(s, "    \"figure\": \"{}\",", figures::REBALANCE_FIGURE_ID);
        let _ = writeln!(s, "    \"every\": {},", self.every);
        let _ = writeln!(s, "    \"hysteresis\": {:.4},", self.hysteresis);
        let _ = writeln!(s, "    \"cycles\": {},", self.cycles);
        let _ = writeln!(s, "    \"start_fraction\": {START_FRACTION:.4},");
        let _ = writeln!(s, "    \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{\"ratio\": {:.4}, \"start\": {:.4}, \"guard\": {:.6}, \
                 \"optimum\": {:.6}, \"optimum_realized\": {:.6}, \"final\": {:.6}, \
                 \"rel_err\": {:.6}, \"converged_cycle\": {}, \"resplits\": {}, \
                 \"holds\": {}, \"clamped\": {}}}{comma}",
                p.ratio,
                p.start,
                p.guard,
                p.optimum,
                p.optimum_realized,
                p.final_fraction,
                p.rel_err,
                p.converged_cycle,
                p.resplits,
                p.holds,
                p.clamped
            );
        }
        let _ = writeln!(s, "    ],");
        let _ = writeln!(
            s,
            "    \"recovery\": {{\"identical\": {}, \"frozen\": {}, \"rank_losses\": {}, \
             \"ranks_after\": {}, \"post_loss_fraction\": {:.6}}}",
            self.recovery.identical,
            self.recovery.frozen,
            self.recovery.rank_losses,
            self.recovery.ranks_after,
            self.recovery.post_loss_fraction
        );
        let _ = write!(s, "  }}");
        s
    }

    /// Human-readable table plus a convergence-trajectory chart.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "## {}: online rebalance convergence\n",
            figures::REBALANCE_FIGURE_ID
        );
        let _ = writeln!(
            s,
            "| ratio | guard | optimum | final | rel err | converged @ | resplits | clamped |"
        );
        let _ = writeln!(
            s,
            "|------:|------:|--------:|------:|--------:|------------:|---------:|:--------|"
        );
        for p in &self.points {
            let conv = if p.converged_cycle == NEVER_CONVERGED {
                "never".to_string()
            } else {
                format!("cycle {}", p.converged_cycle)
            };
            let _ = writeln!(
                s,
                "| {:.2}x | {:.4} | {:.4} | {:.4} | {:.1}% | {conv} | {} | {} |",
                p.ratio,
                p.guard,
                p.optimum_realized,
                p.final_fraction,
                p.rel_err * 100.0,
                p.resplits,
                if p.clamped { "yes" } else { "no" }
            );
        }
        let _ = writeln!(
            s,
            "\nrecovery: identical={} frozen={} rank_losses={} ranks_after={}\n",
            self.recovery.identical,
            self.recovery.frozen,
            self.recovery.rank_losses,
            self.recovery.ranks_after
        );
        let series: Vec<(String, Vec<(f64, f64)>)> = self
            .points
            .iter()
            .filter(|p| !p.clamped)
            .map(|p| {
                let pts = p
                    .history
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| (i as f64 * self.every as f64, f))
                    .collect();
                (format!("cpu x{:.2}", p.ratio), pts)
            })
            .collect();
        s.push_str(&crate::plot::ascii_chart(&series, 60, 14));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_point_pins_to_the_guard() {
        let p = run_convergence_point(CLAMP_GRID, 1.0, 8, 0.45).unwrap();
        assert!((p.guard - 0.25).abs() < 1e-12, "{}", p.guard);
        assert!(
            p.clamped,
            "optimum {} should hit guard {}",
            p.optimum, p.guard
        );
        assert!(
            (p.final_fraction - p.guard).abs() < 1e-12,
            "clamped run must end on the guard: {}",
            p.final_fraction
        );
        assert_eq!(p.rel_err, 0.0, "guard and target quantize identically");
        assert_ne!(p.converged_cycle, NEVER_CONVERGED);
    }

    #[test]
    fn converged_index_requires_staying_inside_the_band() {
        // Dips back out of the band reset the scan.
        let h = [0.30, 0.10, 0.05, 0.30, 0.051, 0.049, 0.05];
        assert_eq!(converged_index(&h, 0.05, 0.05), Some(4));
        assert_eq!(converged_index(&h, 0.5, 0.05), None);
    }

    #[test]
    fn report_json_is_line_oriented_for_the_gate() {
        let report = RebalanceReport {
            every: 2,
            hysteresis: 0.02,
            cycles: 12,
            points: vec![ConvergencePoint {
                ratio: 1.0,
                start: 0.30,
                guard: 0.0125,
                optimum: 0.031,
                optimum_realized: 0.03125,
                final_fraction: 0.03125,
                rel_err: 0.0,
                converged_cycle: 6,
                resplits: 3,
                holds: 2,
                clamped: false,
                history: vec![0.30, 0.03125],
            }],
            recovery: RecoveryCheck {
                identical: true,
                frozen: 1,
                rank_losses: 1,
                ranks_after: 15,
                post_loss_fraction: 0.02,
            },
        };
        let json = report.to_json();
        let point_line = json
            .lines()
            .find(|l| l.contains("\"ratio\":"))
            .expect("one line per point");
        for key in ["rel_err", "converged_cycle", "clamped", "guard", "final"] {
            assert!(point_line.contains(key), "{key} missing from {point_line}");
        }
        let recovery_line = json
            .lines()
            .find(|l| l.contains("\"recovery\":"))
            .expect("recovery on one line");
        assert!(recovery_line.contains("\"identical\": true"));
        assert!(recovery_line.contains("\"frozen\": 1"));
    }
}
