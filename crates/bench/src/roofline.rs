//! STREAM-style bandwidth probe and roofline model for the fused
//! hydro kernels.
//!
//! The perf harness reports throughput in million zones per second;
//! this module supplies the *predicted* roof to hold that against. A
//! triad probe (`a[i] = b[i] + s·c[i]`, the bandwidth-bound STREAM
//! kernel) measures what the host actually streams at the same worker
//! count the parallel fused bench uses. The per-zone byte and flop
//! counts come from the hand-counted kernel catalog
//! ([`hsim_hydro::kernels`]) for the **legacy per-pass** first-order
//! workload — deliberately so: the fused path exists to beat that
//! naive traffic by keeping tiles cache-resident, so a fused
//! `roof_fraction` *above* 1.0 is the signature of fusion working,
//! and the CI floor on the fraction stays machine-independent.

use std::time::Instant;

use hsim_hydro::kernels;
use hsim_hydro::state::NCONS;

/// What the triad probe measured.
#[derive(Debug, Clone, Copy)]
pub struct TriadProbe {
    /// Sustained bandwidth in GB/s (3 × 8 bytes per element per rep).
    pub gbps: f64,
    /// Elements per array.
    pub len: usize,
    /// Timed repetitions.
    pub reps: usize,
    /// Threads the probe fanned out over.
    pub workers: usize,
}

/// Run the triad probe: `reps` passes of `a[i] = b[i] + s·c[i]` over
/// three `len`-element arrays, split across `workers` threads.
///
/// Scoped threads (not the [`hsim_raja`] pool) keep the probe safe
/// code — each thread owns one disjoint chunk of every array — and
/// the spawn cost is noise against a multi-millisecond streaming
/// pass. Arrays are touched once before timing so page faults and
/// first-touch placement stay out of the measurement.
pub fn measure_triad(workers: usize, len: usize, reps: usize) -> TriadProbe {
    let workers = workers.max(1);
    let s = 3.0_f64;
    let mut a = vec![0.0_f64; len];
    let b = vec![1.5_f64; len];
    let c = vec![2.5_f64; len];
    let chunk = len.div_ceil(workers).max(1);
    let triad_pass = |a: &mut Vec<f64>| {
        std::thread::scope(|scope| {
            for ((ac, bc), cc) in a
                .chunks_mut(chunk)
                .zip(b.chunks(chunk))
                .zip(c.chunks(chunk))
            {
                scope.spawn(move || {
                    let n = ac.len();
                    let (bc, cc) = (&bc[..n], &cc[..n]);
                    for i in 0..n {
                        ac[i] = bc[i] + s * cc[i];
                    }
                });
            }
        });
    };
    triad_pass(&mut a); // warm-up: faults, first touch, thread start
    let t0 = Instant::now();
    for _ in 0..reps {
        triad_pass(&mut a);
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-12);
    std::hint::black_box(&a);
    let bytes = (3 * 8 * len * reps) as f64;
    TriadProbe {
        gbps: bytes / secs / 1e9,
        len,
        reps,
        workers,
    }
}

/// Bytes one zone moves through the legacy per-pass first-order
/// workload the kernel bench times (primitive recovery + one
/// three-axis first-order sweep), straight from the kernel catalog:
/// three primitive passes, then per axis one wavespeed pass and a
/// flux + update pass per conserved variable.
pub fn first_order_bytes_per_zone() -> f64 {
    let ncons = NCONS as f64;
    kernels::VELOCITY.bytes_per_elem
        + kernels::PRESSURE.bytes_per_elem
        + kernels::SOUND_SPEED.bytes_per_elem
        + 3.0
            * (kernels::WAVESPEED.bytes_per_elem
                + ncons * (kernels::FLUX.bytes_per_elem + kernels::UPDATE.bytes_per_elem))
}

/// Flops one zone spends in the same workload.
pub fn first_order_flops_per_zone() -> f64 {
    let ncons = NCONS as f64;
    kernels::VELOCITY.flops_per_elem
        + kernels::PRESSURE.flops_per_elem
        + kernels::SOUND_SPEED.flops_per_elem
        + 3.0
            * (kernels::WAVESPEED.flops_per_elem
                + ncons * (kernels::FLUX.flops_per_elem + kernels::UPDATE.flops_per_elem))
}

/// Arithmetic intensity (flop/byte) of the per-pass workload. Far
/// below 1, so the workload is bandwidth-bound and the triad roof is
/// the binding one.
pub fn first_order_intensity() -> f64 {
    first_order_flops_per_zone() / first_order_bytes_per_zone()
}

/// Bandwidth-predicted throughput roof in million zones per second if
/// every byte of the per-pass workload had to stream from memory at
/// the triad rate. The fused path's measured throughput divided by
/// this is the `roof_fraction` the CI gate floors.
pub fn predicted_mzones_per_s(triad_gbps: f64) -> f64 {
    triad_gbps * 1e9 / first_order_bytes_per_zone() / 1e6
}

/// `(name, flops/elem, bytes/elem, flop/byte)` for every catalog
/// kernel — the per-kernel arithmetic-intensity table the results
/// file and EXPERIMENTS.md carry.
pub fn kernel_intensities() -> Vec<(&'static str, f64, f64, f64)> {
    kernels::CATALOG
        .iter()
        .map(|d| {
            (
                d.name,
                d.flops_per_elem,
                d.bytes_per_elem,
                d.flops_per_elem / d.bytes_per_elem,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_probe_reports_positive_bandwidth_at_any_worker_count() {
        for workers in [1, 2, 3] {
            let probe = measure_triad(workers, 1 << 16, 2);
            assert!(
                probe.gbps.is_finite() && probe.gbps > 0.0,
                "workers {workers}: {probe:?}"
            );
            assert_eq!(probe.workers, workers);
        }
        // Zero workers clamps to one rather than dividing by zero.
        assert_eq!(measure_triad(0, 1 << 10, 1).workers, 1);
    }

    #[test]
    fn per_zone_traffic_matches_the_hand_count() {
        // 56+56+24 primitives + 3 axes × (40 wavespeed + 5 × (64 flux
        // + 40 update)) bytes; 24 + 3 × (8 + 5 × 19) flops.
        assert_eq!(first_order_bytes_per_zone(), 1816.0);
        assert_eq!(first_order_flops_per_zone(), 333.0);
        let ai = first_order_intensity();
        assert!(ai > 0.1 && ai < 0.3, "intensity {ai}");
    }

    #[test]
    fn predicted_roof_scales_linearly_with_bandwidth() {
        let lo = predicted_mzones_per_s(10.0);
        let hi = predicted_mzones_per_s(20.0);
        assert!((hi / lo - 2.0).abs() < 1e-12);
        // 10 GB/s over 1816 B/zone ≈ 5.5 Mzones/s.
        assert!((lo - 10.0 * 1e9 / 1816.0 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn intensity_table_covers_the_whole_catalog() {
        let table = kernel_intensities();
        assert_eq!(table.len(), kernels::CATALOG.len());
        for (name, flops, bytes, ai) in table {
            assert!(bytes > 0.0, "{name}");
            assert!((ai - flops / bytes).abs() < 1e-15, "{name}");
        }
    }
}
