//! Synthetic many-client load driver for the serve subsystem.
//!
//! Two deterministic phases feed the `serve` section of the perf
//! harness's results file:
//!
//! 1. **Hit-rate / latency phase** — a small fleet of client threads
//!    hammers one [`Server`] with requests drawn round-robin from a
//!    fixed set of distinct configs. Every config is requested many
//!    times, so by construction most requests are content-hash cache
//!    hits (or single-flight joins) and the hit rate lands well above
//!    the gate floor. Latency quantiles come from the server's own
//!    per-request clock.
//! 2. **Overflow probe** — a zero-worker server with a tiny queue is
//!    filled to capacity and then pushed past it. Every overflow must
//!    surface as the *typed* [`ServeError::QueueFull`] (never a panic,
//!    never a hang); the probe records whether that held.
//!
//! The counts are fixed (not flags) so the report is comparable across
//! runs and machines: only the latency columns are wall-clock.

use std::time::Duration;

use hsim_core::runner::RunConfig;
use hsim_core::ExecMode;
use hsim_serve::{Request, ServeError, Server, ServerConfig};

/// Client threads in the hit-rate phase.
pub const CLIENTS: usize = 4;
/// Requests each client issues.
pub const PER_CLIENT: usize = 12;
/// Distinct configs the clients draw from (`CLIENTS * PER_CLIENT`
/// requests collapse onto this many executions).
pub const DISTINCT_CONFIGS: usize = 6;
/// Queue bound in the overflow probe.
pub const PROBE_CAPACITY: usize = 4;
/// Submissions past the bound; each must be a typed rejection.
pub const PROBE_OVERFLOW: usize = 3;

/// What the load driver observed; serialized into the `serve` block
/// of the perf results file and gated by `perf ci-gate`.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    pub clients: usize,
    pub requests: usize,
    pub distinct_configs: usize,
    pub hits: u64,
    pub misses: u64,
    pub admitted: u64,
    /// Typed `QueueFull` rejections from the overflow probe.
    pub rejected: u64,
    pub deadline_drops: u64,
    pub hit_rate: f64,
    /// Latency quantiles in microseconds — the server records
    /// nanoseconds per request, so sub-millisecond cache hits report
    /// nonzero quantiles instead of truncating to 0.
    pub p50_us: f64,
    pub p99_us: f64,
    /// `true` iff every probe rejection was the typed `QueueFull`
    /// carrying the configured capacity.
    pub rejections_typed: bool,
}

/// The i-th distinct workload: same small grid, distinct cycle count,
/// so each has its own content hash but all run in milliseconds.
fn load_cfg(i: usize) -> RunConfig {
    let mut cfg = RunConfig::sweep((24, 16, 8), ExecMode::hetero());
    cfg.cycles = 1 + (i % DISTINCT_CONFIGS) as u64;
    cfg
}

/// Run both phases and assemble the report. `tile` seeds the server's
/// calibration so the driver never pays (or races on) the probe.
pub fn run_load(tile: [usize; 2]) -> ServeLoadReport {
    // Phase 1: many clients, few configs, one shared server.
    let server = Server::new(ServerConfig {
        workers: 2,
        tile: Some(tile),
        ..ServerConfig::default()
    });
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let server = &server;
            s.spawn(move || {
                for r in 0..PER_CLIENT {
                    // Offset by client id so the very first wave
                    // already exercises single-flight joining.
                    let resp = server
                        .submit(Request::direct(load_cfg(c + r)))
                        .expect("load request serves");
                    assert!(!resp.outcome.bytes.is_empty());
                }
            });
        }
    });
    let stats = server.stats();
    drop(server);

    // Phase 2: overflow probe against a zero-worker server.
    let probe = Server::new(ServerConfig {
        workers: 0,
        queue_capacity: PROBE_CAPACITY,
        default_deadline: None,
        tile: Some(tile),
    });
    let mut rejections_typed = true;
    let mut rejected = 0u64;
    for i in 0..PROBE_CAPACITY + PROBE_OVERFLOW {
        let mut req = Request::direct(load_cfg(100 + i));
        req.cfg.cycles = 100 + i as u64; // distinct from phase 1 and each other
        req.deadline = Some(Duration::ZERO);
        match probe.submit(req) {
            // Queued, then immediately expired: typed, no hang.
            Err(ServeError::DeadlineExpired { .. }) if i < PROBE_CAPACITY => {}
            // Past the bound: must be the typed QueueFull.
            Err(ServeError::QueueFull { capacity }) if i >= PROBE_CAPACITY => {
                rejected += 1;
                rejections_typed &= capacity == PROBE_CAPACITY;
            }
            other => {
                rejections_typed = false;
                drop(other);
            }
        }
    }
    rejections_typed &= rejected == PROBE_OVERFLOW as u64 && probe.stats().rejected == rejected;
    drop(probe); // full queue, zero workers: drop must not hang

    ServeLoadReport {
        clients: CLIENTS,
        requests: CLIENTS * PER_CLIENT,
        distinct_configs: DISTINCT_CONFIGS,
        hits: stats.hits,
        misses: stats.misses,
        admitted: stats.admitted,
        rejected,
        deadline_drops: stats.deadline_drops,
        hit_rate: stats.hit_rate(),
        p50_us: stats.p50_us,
        p99_us: stats.p99_us,
        rejections_typed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_driver_hits_hot_and_rejects_typed() {
        let report = run_load([8, 8]);
        assert_eq!(report.requests, CLIENTS * PER_CLIENT);
        // Every config executes exactly once; the rest are hits/joins.
        assert_eq!(report.misses, DISTINCT_CONFIGS as u64, "{report:?}");
        assert_eq!(
            report.hits,
            (CLIENTS * PER_CLIENT - DISTINCT_CONFIGS) as u64,
            "{report:?}"
        );
        assert!(report.hit_rate > 0.5, "{report:?}");
        assert_eq!(report.rejected, PROBE_OVERFLOW as u64, "{report:?}");
        assert!(report.rejections_typed, "{report:?}");
        assert!(report.p50_us <= report.p99_us, "{report:?}");
        // The precision fix this field exists for: dozens of requests
        // hit the cache in well under a millisecond each, and the
        // nanosecond clock must still resolve them.
        assert!(report.p50_us > 0.0, "{report:?}");
    }
}
