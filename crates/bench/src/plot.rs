//! Minimal terminal line charts for the figure reproductions.

/// Render series of `(x, y)` points as an ASCII chart. Each series is
/// drawn with its own glyph; points are nearest-cell plotted, and a
/// legend plus axis ranges are appended.
pub fn ascii_chart(series: &[(String, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(8);
    let glyphs = ['o', 'x', '+', '*', '#', '@'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y1 = y1.max(y);
        y0 = y0.min(y);
    }
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(x, y) in pts {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = g;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y1:>10.3} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..height - 1] {
        out.push_str("           │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{y0:>10.3} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str(&format!(
        "           └{}\n            {:<.3e}{:>w$.3e}\n",
        "─".repeat(width),
        x0,
        x1,
        w = width - 9
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "            {} {}\n",
            glyphs[si % glyphs.len()],
            label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let series = vec![
            ("Default".to_string(), vec![(0.0, 1.0), (1.0, 2.0)]),
            ("MPS".to_string(), vec![(0.0, 2.0), (1.0, 1.0)]),
        ];
        let s = ascii_chart(&series, 40, 10);
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("Default"));
        assert!(s.contains("MPS"));
    }

    #[test]
    fn empty_series_is_graceful() {
        assert_eq!(ascii_chart(&[], 40, 10), "(no data)\n");
    }

    #[test]
    fn single_point_does_not_panic() {
        let series = vec![("one".to_string(), vec![(2.0, 3.0)])];
        let s = ascii_chart(&series, 40, 10);
        assert!(s.contains('o'));
    }
}
