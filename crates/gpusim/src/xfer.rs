//! Host↔device transfer cost model.
//!
//! ARES on the paper's testbed communicates through the host only
//! (§5.3): halo faces computed on the GPU are staged to host memory,
//! sent via MPI, and staged back. These helpers price that staging.
//! GPU-direct (the paper's future-work item) removes the staging legs —
//! see [`halo_leg_time`]'s `gpu_direct` flag.

use crate::spec::DeviceSpec;
use hsim_time::SimDuration;

/// Time for one host→device DMA of `bytes`.
pub fn h2d_time(spec: &DeviceSpec, bytes: u64) -> SimDuration {
    spec.xfer_time(bytes)
}

/// Time for one device→host DMA of `bytes`.
pub fn d2h_time(spec: &DeviceSpec, bytes: u64) -> SimDuration {
    spec.xfer_time(bytes)
}

/// Time for a chunked, pipelined transfer: `bytes` moved in `chunk`-
/// sized pieces, each paying the DMA latency but with copies of
/// adjacent chunks overlapped (double buffering hides all but the
/// first latency when bandwidth-bound).
pub fn pipelined_time(spec: &DeviceSpec, bytes: u64, chunk: u64) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    let chunk = chunk.max(1).min(bytes);
    let n_chunks = bytes.div_ceil(chunk);
    let bw = SimDuration::from_secs_f64(bytes as f64 / (spec.pcie_bandwidth_gbs * 1e9));
    // One exposed latency up front; subsequent chunk setups overlap the
    // previous chunk's copy unless the chunks are tiny.
    let per_chunk_exposed = if spec.xfer_time(chunk) > spec.pcie_latency * 2 {
        SimDuration::ZERO
    } else {
        spec.pcie_latency
    };
    spec.pcie_latency + bw + per_chunk_exposed * n_chunks.saturating_sub(1)
}

/// Peer-to-peer DMA between two devices on the same interconnect:
/// one latency plus the payload at the link bandwidth. Cheaper than
/// staging through the host (which pays two legs) but not free.
pub fn p2p_time(spec: &DeviceSpec, bytes: u64) -> SimDuration {
    spec.xfer_time(bytes)
}

/// Cost of one leg of a halo exchange for a GPU-resident field:
/// staging the face through the host, or nothing with GPU-direct
/// (the peer leg is then priced separately by [`p2p_time`]).
pub fn halo_leg_time(spec: &DeviceSpec, bytes: u64, gpu_direct: bool) -> SimDuration {
    if gpu_direct {
        SimDuration::ZERO
    } else {
        spec.xfer_time(bytes)
    }
}

/// Cost of redoing a corrupted halo transfer: the payload is detected
/// bad after arrival, so recovery re-stages the same leg and pays one
/// extra protocol round-trip (two link latencies) for the
/// negative-acknowledge/resend handshake.
pub fn retry_leg_time(spec: &DeviceSpec, bytes: u64, gpu_direct: bool) -> SimDuration {
    halo_leg_time(spec, bytes, gpu_direct) + spec.pcie_latency + spec.pcie_latency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k80() -> DeviceSpec {
        DeviceSpec::tesla_k80()
    }

    #[test]
    fn h2d_and_d2h_are_symmetric_in_this_model() {
        let s = k80();
        assert_eq!(h2d_time(&s, 1 << 20), d2h_time(&s, 1 << 20));
    }

    #[test]
    fn pipelined_beats_naive_chunking_for_large_chunks() {
        let s = k80();
        let bytes = 256u64 << 20;
        let chunk = 4u64 << 20;
        let n = bytes / chunk;
        let naive: SimDuration = (0..n).map(|_| s.xfer_time(chunk)).sum();
        let pipe = pipelined_time(&s, bytes, chunk);
        assert!(pipe < naive, "pipelined {pipe} vs naive {naive}");
    }

    #[test]
    fn pipelined_zero_bytes_is_free() {
        assert_eq!(pipelined_time(&k80(), 0, 1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn tiny_chunks_expose_latency() {
        let s = k80();
        let small_chunks = pipelined_time(&s, 1 << 20, 1 << 10);
        let big_chunks = pipelined_time(&s, 1 << 20, 1 << 20);
        assert!(small_chunks > big_chunks);
    }

    #[test]
    fn gpu_direct_removes_staging() {
        let s = k80();
        assert_eq!(halo_leg_time(&s, 1 << 20, true), SimDuration::ZERO);
        assert!(halo_leg_time(&s, 1 << 20, false) > SimDuration::ZERO);
    }

    #[test]
    fn retry_costs_more_than_the_original_leg() {
        let s = k80();
        let bytes = 1 << 20;
        assert!(retry_leg_time(&s, bytes, false) > halo_leg_time(&s, bytes, false));
        // GPU-direct still pays the handshake round-trip.
        assert!(retry_leg_time(&s, bytes, true) > SimDuration::ZERO);
    }

    #[test]
    fn p2p_beats_two_leg_host_staging() {
        let s = k80();
        let bytes = 4 << 20;
        let staged = halo_leg_time(&s, bytes, false) + halo_leg_time(&s, bytes, false);
        assert!(p2p_time(&s, bytes) < staged);
        assert!(p2p_time(&s, bytes) > SimDuration::ZERO);
    }
}
