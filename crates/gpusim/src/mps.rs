//! The Multi-Process Service (MPS).
//!
//! Because only a single context can be active on a device at a time,
//! multiple MPI processes cannot operate concurrently on one GPU. MPS
//! is "a software layer between the application and the driver \[that\]
//! routes all CUDA calls through a single context, allowing for the
//! multiple processes to execute concurrently. ... The caveat is that
//! the kernel launch overhead is higher." (paper §2.)
//!
//! The simulated server owns the device's one context and gives each
//! client its own stream; client launches pay the elevated overhead but
//! land on the shared timeline where they may overlap.

use crate::device::{Device, LaunchTicket};
use crate::error::GpuError;
use crate::kernel::{KernelDesc, KernelShape};
use crate::stream::Stream;
use hsim_time::SimTime;

/// A client connection to the MPS server (one per MPI rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpsClient {
    /// The client process (MPI rank or pid).
    pub pid: usize,
    /// The client's dedicated stream within the shared context.
    pub stream: Stream,
}

/// The MPS control daemon for one device.
#[derive(Debug)]
pub struct MpsServer {
    device_id: usize,
    ctx: crate::context::ContextId,
    clients: Vec<usize>,
    max_clients: usize,
}

impl MpsServer {
    /// Pre-Volta MPS limits a device to 16 clients.
    pub const DEFAULT_MAX_CLIENTS: usize = 16;

    /// Start the server: acquires the device's single context.
    pub fn start(device: &mut Device, max_clients: usize) -> Result<Self, GpuError> {
        let ctx = device.create_mps_context()?;
        Ok(MpsServer {
            device_id: device.id(),
            ctx: ctx.id,
            clients: Vec::new(),
            max_clients: max_clients.max(1),
        })
    }

    /// Connect a client process; allocates its stream.
    pub fn connect(&mut self, device: &mut Device, pid: usize) -> Result<MpsClient, GpuError> {
        if device.id() != self.device_id {
            return Err(GpuError::MpsRejected {
                reason: "client connected to wrong device",
            });
        }
        if self.clients.len() >= self.max_clients {
            return Err(GpuError::MpsRejected {
                reason: "client limit reached",
            });
        }
        if self.clients.contains(&pid) {
            return Err(GpuError::MpsRejected {
                reason: "pid already connected",
            });
        }
        let stream = device.create_stream(self.ctx)?;
        self.clients.push(pid);
        Ok(MpsClient { pid, stream })
    }

    /// Launch a kernel on behalf of a client. Pays the MPS-elevated
    /// launch overhead.
    pub fn launch(
        &self,
        device: &mut Device,
        client: &MpsClient,
        desc: &KernelDesc,
        shape: KernelShape,
        at: SimTime,
    ) -> Result<LaunchTicket, GpuError> {
        if !self.clients.contains(&client.pid) {
            return Err(GpuError::MpsRejected {
                reason: "unknown client",
            });
        }
        device.submit(self.ctx, client.stream.id, desc, shape, at, true)
    }

    /// Number of connected clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Stop the server, releasing the device context.
    pub fn shutdown(self, device: &mut Device) -> Result<(), GpuError> {
        device.destroy_context(self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;
    use hsim_time::SimDuration;

    fn device() -> Device {
        Device::new(0, DeviceSpec::tesla_k80())
    }

    #[test]
    fn server_takes_the_device_context() {
        let mut d = device();
        let _mps = MpsServer::start(&mut d, 4).unwrap();
        // No direct context possible while MPS owns the device.
        assert!(d.create_context(9).is_err());
    }

    #[test]
    fn clients_connect_up_to_limit() {
        let mut d = device();
        let mut mps = MpsServer::start(&mut d, 2).unwrap();
        mps.connect(&mut d, 0).unwrap();
        mps.connect(&mut d, 1).unwrap();
        assert_eq!(mps.client_count(), 2);
        assert!(matches!(
            mps.connect(&mut d, 2),
            Err(GpuError::MpsRejected { .. })
        ));
    }

    #[test]
    fn duplicate_pid_rejected() {
        let mut d = device();
        let mut mps = MpsServer::start(&mut d, 4).unwrap();
        mps.connect(&mut d, 5).unwrap();
        assert!(mps.connect(&mut d, 5).is_err());
    }

    #[test]
    fn mps_launch_pays_elevated_overhead() {
        let mut d = device();
        let mut mps = MpsServer::start(&mut d, 4).unwrap();
        let c = mps.connect(&mut d, 0).unwrap();
        let k = KernelDesc::new("k", 10.0, 8.0);
        let ticket = mps
            .launch(
                &mut d,
                &c,
                &k,
                KernelShape::new(1_000_000, 64),
                SimTime::ZERO,
            )
            .unwrap();
        let spec = DeviceSpec::tesla_k80();
        let base = spec.launch_overhead;
        assert!(ticket.overhead > base);
        let expect = base.mul_f64(spec.mps_launch_factor);
        assert_eq!(ticket.overhead, expect);
    }

    #[test]
    fn small_kernels_from_many_clients_overlap() {
        // The core MPS effect: four clients launching small-x kernels
        // finish sooner than one rank doing all the work serially.
        let spec = DeviceSpec::tesla_k80();
        let k = KernelDesc::new("k", 60.0, 16.0);
        let zones_total: u64 = 8_000_000;
        let inner = 40; // small innermost dimension: low occupancy

        // Serial reference: one exclusive rank, all zones, one stream.
        let mut d1 = Device::new(0, spec.clone());
        let ctx = d1.create_context(0).unwrap();
        let s = d1.create_stream(ctx.id).unwrap();
        d1.submit(
            ctx.id,
            s.id,
            &k,
            KernelShape::new(zones_total, inner),
            SimTime::ZERO,
            false,
        )
        .unwrap();
        let serial_end = d1.run_pending()[0].end;

        // MPS: four clients each with a quarter of the zones.
        let mut d2 = Device::new(1, spec);
        let mut mps = MpsServer::start(&mut d2, 4).unwrap();
        let clients: Vec<MpsClient> = (0..4).map(|p| mps.connect(&mut d2, p).unwrap()).collect();
        for c in &clients {
            mps.launch(
                &mut d2,
                c,
                &k,
                KernelShape::new(zones_total / 4, inner),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mps_end = d2
            .run_pending()
            .iter()
            .map(|o| o.end)
            .fold(SimTime::ZERO, SimTime::merge);

        assert!(
            mps_end < serial_end,
            "MPS {mps_end} should beat serial {serial_end} for small-x kernels"
        );
    }

    #[test]
    fn large_kernels_gain_nothing_from_mps() {
        // With a large innermost dimension the solo kernel nearly fills
        // the device; MPS splitting adds launch overhead and slightly
        // lower per-kernel occupancy, so it must NOT win.
        let spec = DeviceSpec::tesla_k80();
        let k = KernelDesc::new("k", 60.0, 16.0);
        let zones_total: u64 = 32_000_000;
        let inner = 600;

        let mut d1 = Device::new(0, spec.clone());
        let ctx = d1.create_context(0).unwrap();
        let s = d1.create_stream(ctx.id).unwrap();
        d1.submit(
            ctx.id,
            s.id,
            &k,
            KernelShape::new(zones_total, inner),
            SimTime::ZERO,
            false,
        )
        .unwrap();
        let serial_end = d1.run_pending()[0].end;

        let mut d2 = Device::new(1, spec);
        let mut mps = MpsServer::start(&mut d2, 4).unwrap();
        for p in 0..4 {
            let c = mps.connect(&mut d2, p).unwrap();
            mps.launch(
                &mut d2,
                &c,
                &k,
                KernelShape::new(zones_total / 4, inner),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mps_end = d2
            .run_pending()
            .iter()
            .map(|o| o.end)
            .fold(SimTime::ZERO, SimTime::merge);

        // Allow a small tolerance: they should be within a few percent,
        // with MPS not meaningfully ahead.
        let ratio = (mps_end - SimTime::ZERO).ratio(serial_end - SimTime::ZERO);
        assert!(
            ratio > 0.97,
            "MPS should not win for large kernels: {ratio}"
        );
    }

    #[test]
    fn shutdown_releases_device() {
        let mut d = device();
        let mps = MpsServer::start(&mut d, 4).unwrap();
        mps.shutdown(&mut d).unwrap();
        assert!(d.create_context(1).is_ok());
    }

    #[test]
    fn launch_from_unknown_client_rejected() {
        let mut d = device();
        let mut mps = MpsServer::start(&mut d, 4).unwrap();
        let c = mps.connect(&mut d, 0).unwrap();
        let stranger = MpsClient {
            pid: 99,
            stream: c.stream,
        };
        assert!(mps
            .launch(
                &mut d,
                &stranger,
                &KernelDesc::new("k", 1.0, 1.0),
                KernelShape::new(1, 1),
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn pool_and_heap_available_through_device() {
        let mut d = device();
        let a = d.heap_mut().alloc(1 << 20).unwrap();
        assert!(d.heap().used() >= 1 << 20);
        d.heap_mut().free(a).unwrap();
        let r = d.um_mut().alloc(1 << 20);
        let cost = d.um_mut().touch_device(r).unwrap();
        assert!(cost > SimDuration::ZERO);
    }
}
