//! The device facade: contexts, streams, memory, and a launch queue
//! feeding the rate-sharing timeline.
//!
//! A `Device` is used bulk-synchronously by the runner: ranks submit
//! kernel launches during a phase (each submit returns the host-side
//! launch overhead to charge), then `run_pending` simulates the
//! device's execution of the whole batch and reports per-job outcomes.

use crate::context::{Context, ContextId, ContextOwner, ContextTable};
use crate::error::GpuError;
use crate::kernel::{occupancy, KernelDesc, KernelShape};
use crate::memory::{DeviceHeap, UnifiedMemory};
use crate::spec::DeviceSpec;
use crate::stream::{Stream, StreamId, StreamTable};
use crate::timeline::{Job, JobOutcome, RateSharingTimeline};
use hsim_time::{SimDuration, SimTime};

/// Receipt for one kernel submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchTicket {
    /// Identifier echoed in the corresponding [`JobOutcome`].
    pub job: u64,
    /// Host-side launch overhead the submitting rank must charge.
    pub overhead: SimDuration,
}

/// One simulated GPU.
#[derive(Debug)]
pub struct Device {
    id: usize,
    spec: DeviceSpec,
    contexts: ContextTable,
    streams: StreamTable,
    heap: DeviceHeap,
    um: UnifiedMemory,
    pending: Vec<Job>,
    next_job: u64,
    total_launches: u64,
    busy: SimDuration,
}

impl Device {
    pub fn new(id: usize, spec: DeviceSpec) -> Self {
        let heap = DeviceHeap::new(spec.mem_capacity);
        let um = UnifiedMemory::new(&spec);
        Device {
            id,
            spec,
            contexts: ContextTable::new(),
            streams: StreamTable::new(),
            heap,
            um,
            pending: Vec::new(),
            next_job: 0,
            total_launches: 0,
            busy: SimDuration::ZERO,
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Create an exclusive context for `process` (the Default mode's
    /// one-rank-per-GPU arrangement).
    pub fn create_context(&mut self, process: usize) -> Result<Context, GpuError> {
        self.contexts.create_exclusive(self.id, process)
    }

    /// Create the MPS server's shared context (used by [`crate::mps`]).
    pub fn create_mps_context(&mut self) -> Result<Context, GpuError> {
        self.contexts.create_mps(self.id)
    }

    pub fn destroy_context(&mut self, id: ContextId) -> Result<(), GpuError> {
        self.contexts.destroy(id)?;
        self.streams.destroy_for_context(id);
        Ok(())
    }

    pub fn active_context(&self) -> Option<Context> {
        self.contexts.active()
    }

    pub fn create_stream(&mut self, ctx: ContextId) -> Result<Stream, GpuError> {
        self.contexts.check(ctx)?;
        Ok(self.streams.create(ctx))
    }

    /// Submit one kernel launch at simulated instant `at`.
    ///
    /// `via_mps` applies the MPS launch-overhead factor; it is set by
    /// the MPS server's launch path and must agree with the context
    /// owner.
    pub fn submit(
        &mut self,
        ctx: ContextId,
        stream: StreamId,
        desc: &KernelDesc,
        shape: KernelShape,
        at: SimTime,
        via_mps: bool,
    ) -> Result<LaunchTicket, GpuError> {
        let context = self.contexts.check(ctx)?;
        self.streams.check(stream, ctx)?;
        if via_mps != matches!(context.owner, ContextOwner::MpsServer) {
            return Err(GpuError::InvalidContext);
        }
        let overhead = if via_mps {
            self.spec
                .launch_overhead
                .mul_f64(self.spec.mps_launch_factor)
        } else {
            self.spec.launch_overhead
        };
        let job = self.next_job;
        self.next_job += 1;
        self.total_launches += 1;
        self.pending.push(Job {
            id: job,
            stream: stream.0,
            // The kernel cannot start before the host finishes the
            // submit path.
            arrival: at + overhead,
            work: desc.roofline_time(&self.spec, shape.elems).as_secs_f64(),
            max_rate: occupancy(&self.spec, shape),
        });
        Ok(LaunchTicket { job, overhead })
    }

    /// Number of launches queued but not yet executed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The queued launches themselves (profilers read `work` and
    /// `max_rate` before [`Device::run_pending`] clears the queue).
    pub fn pending_jobs(&self) -> &[Job] {
        &self.pending
    }

    /// Execute every pending launch on the rate-sharing timeline.
    /// Returns per-job outcomes (in submission order) and clears the
    /// queue. The device's cumulative busy time is updated.
    pub fn run_pending(&mut self) -> Vec<JobOutcome> {
        let tl = RateSharingTimeline::with_contention(1.0, self.spec.sharing_penalty);
        let outcomes = tl.simulate(&self.pending);
        for o in &outcomes {
            self.busy += o.end - o.start;
        }
        self.pending.clear();
        outcomes
    }

    /// Lifetime launch count (reporting).
    pub fn total_launches(&self) -> u64 {
        self.total_launches
    }

    /// Cumulative per-job busy time (overlapped jobs double-count;
    /// this is an activity metric, not a utilization bound).
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    pub fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    pub fn heap_mut(&mut self) -> &mut DeviceHeap {
        &mut self.heap
    }

    pub fn um(&self) -> &UnifiedMemory {
        &self.um
    }

    pub fn um_mut(&mut self) -> &mut UnifiedMemory {
        &mut self.um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new(0, DeviceSpec::tesla_k80())
    }

    #[test]
    fn submit_requires_valid_context_and_stream() {
        let mut d = device();
        let ctx = d.create_context(7).unwrap();
        let s = d.create_stream(ctx.id).unwrap();
        let k = KernelDesc::new("k", 10.0, 8.0);
        let shape = KernelShape::new(1_000_000, 320);
        assert!(d
            .submit(ctx.id, s.id, &k, shape, SimTime::ZERO, false)
            .is_ok());
        assert_eq!(
            d.submit(ContextId(99), s.id, &k, shape, SimTime::ZERO, false)
                .unwrap_err(),
            GpuError::InvalidContext
        );
        assert_eq!(
            d.submit(ctx.id, StreamId(99), &k, shape, SimTime::ZERO, false)
                .unwrap_err(),
            GpuError::InvalidStream
        );
    }

    #[test]
    fn mps_flag_must_match_context_owner() {
        let mut d = device();
        let ctx = d.create_context(7).unwrap();
        let s = d.create_stream(ctx.id).unwrap();
        let k = KernelDesc::new("k", 10.0, 8.0);
        let shape = KernelShape::new(1_000, 32);
        assert!(d
            .submit(ctx.id, s.id, &k, shape, SimTime::ZERO, true)
            .is_err());
    }

    #[test]
    fn run_pending_executes_in_stream_order() {
        let mut d = device();
        let ctx = d.create_context(0).unwrap();
        let s = d.create_stream(ctx.id).unwrap();
        let k = KernelDesc::new("k", 50.0, 8.0);
        let shape = KernelShape::new(5_000_000, 320);
        let t1 = d
            .submit(ctx.id, s.id, &k, shape, SimTime::ZERO, false)
            .unwrap();
        let t2 = d
            .submit(ctx.id, s.id, &k, shape, SimTime::ZERO, false)
            .unwrap();
        let out = d.run_pending();
        assert_eq!(out.len(), 2);
        let o1 = out.iter().find(|o| o.id == t1.job).unwrap();
        let o2 = out.iter().find(|o| o.id == t2.job).unwrap();
        assert!(o2.start >= o1.end, "same-stream kernels serialize");
        assert_eq!(d.pending_len(), 0);
        assert!(d.busy() > SimDuration::ZERO);
    }

    #[test]
    fn launch_overhead_delays_arrival() {
        let mut d = device();
        let ctx = d.create_context(0).unwrap();
        let s = d.create_stream(ctx.id).unwrap();
        let k = KernelDesc::new("k", 50.0, 8.0);
        let shape = KernelShape::new(1_000_000, 320);
        let ticket = d
            .submit(ctx.id, s.id, &k, shape, SimTime::from_nanos(1000), false)
            .unwrap();
        assert_eq!(ticket.overhead, DeviceSpec::tesla_k80().launch_overhead);
        let out = d.run_pending();
        assert!(out[0].start >= SimTime::from_nanos(1000) + ticket.overhead);
    }

    #[test]
    fn destroying_context_removes_streams() {
        let mut d = device();
        let ctx = d.create_context(0).unwrap();
        let s = d.create_stream(ctx.id).unwrap();
        d.destroy_context(ctx.id).unwrap();
        let ctx2 = d.create_context(1).unwrap();
        assert_eq!(
            d.submit(
                ctx2.id,
                s.id,
                &KernelDesc::new("k", 1.0, 1.0),
                KernelShape::new(1, 1),
                SimTime::ZERO,
                false
            )
            .unwrap_err(),
            GpuError::InvalidStream
        );
    }

    #[test]
    fn launch_counter_accumulates() {
        let mut d = device();
        let ctx = d.create_context(0).unwrap();
        let s = d.create_stream(ctx.id).unwrap();
        let k = KernelDesc::new("k", 1.0, 1.0);
        for _ in 0..5 {
            d.submit(
                ctx.id,
                s.id,
                &k,
                KernelShape::new(100, 10),
                SimTime::ZERO,
                false,
            )
            .unwrap();
        }
        d.run_pending();
        assert_eq!(d.total_launches(), 5);
    }
}
