//! Kernel descriptors and the occupancy model.
//!
//! A simulated kernel is described by how much work it does per element
//! and by its *shape* — how the iteration space maps onto the device.
//! The paper's discussion of Figures 13–17 hinges on one effect: when
//! the **innermost loop dimension** (the x-extent of the domain) is
//! small, a single rank's kernels cannot fill the GPU, and overlapping
//! kernels from several MPS clients recovers the lost throughput. The
//! [`occupancy`] function is the quantitative form of that observation.

use crate::spec::DeviceSpec;
use hsim_time::SimDuration;

/// The iteration-space shape of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelShape {
    /// Total number of elements (zones or nodes) traversed.
    pub elems: u64,
    /// Extent of the innermost (unit-stride) dimension.
    pub inner_extent: u32,
}

impl KernelShape {
    pub fn new(elems: u64, inner_extent: u32) -> Self {
        KernelShape {
            elems,
            inner_extent,
        }
    }
}

/// Static description of a kernel's per-element work.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel name (for registries and traces).
    pub name: &'static str,
    /// FP64 operations per element.
    pub flops_per_elem: f64,
    /// Bytes moved to/from device memory per element.
    pub bytes_per_elem: f64,
}

impl KernelDesc {
    pub fn new(name: &'static str, flops_per_elem: f64, bytes_per_elem: f64) -> Self {
        KernelDesc {
            name,
            flops_per_elem,
            bytes_per_elem,
        }
    }

    /// Roofline time at *full* device efficiency: the greater of the
    /// compute time and the memory time for `shape.elems` elements.
    pub fn roofline_time(&self, spec: &DeviceSpec, elems: u64) -> SimDuration {
        let n = elems as f64;
        let t_compute = n * self.flops_per_elem / (spec.fp64_gflops * 1e9);
        let t_memory = n * self.bytes_per_elem / (spec.mem_bandwidth_gbs * 1e9);
        SimDuration::from_secs_f64(t_compute.max(t_memory))
    }

    /// Achieved kernel duration for one launch of `shape` on `spec`,
    /// i.e. roofline time divided by occupancy. This is the duration a
    /// kernel takes when it runs *alone*; the rate-sharing timeline uses
    /// `occupancy` directly so that co-resident kernels can reclaim the
    /// idle fraction.
    pub fn solo_duration(&self, spec: &DeviceSpec, shape: KernelShape) -> SimDuration {
        let eff = occupancy(spec, shape);
        self.roofline_time(spec, shape.elems).mul_f64(1.0 / eff)
    }
}

/// Fraction of peak device throughput one kernel launch can achieve,
/// in `(0, 1]`.
///
/// Two multiplicative terms:
///
/// * **inner-dimension efficiency** `x / (x + h)` where `h` is the
///   spec's half-extent: short unit-stride runs underfill warps and
///   kill coalescing. For the K80 preset `h = 14`, so x = 40 ⇒ 0.74,
///   x = 320 ⇒ 0.96 — matching the paper's observation that x ≲ 100
///   problems leave room for MPS overlap while x ≳ 300 problems do not.
/// * **size ramp** `n / (n + s)` with `s = saturation_elems`: kernels
///   with few total elements cannot occupy all SMs regardless of shape.
///
/// The floor of 0.02 keeps degenerate launches (1-element kernels) from
/// producing absurd durations.
pub fn occupancy(spec: &DeviceSpec, shape: KernelShape) -> f64 {
    let x = shape.inner_extent.max(1) as f64;
    let inner_eff = x / (x + spec.inner_half_extent);
    let n = shape.elems.max(1) as f64;
    let size_eff = n / (n + spec.saturation_elems);
    (inner_eff * size_eff).max(0.02)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k80() -> DeviceSpec {
        DeviceSpec::tesla_k80()
    }

    #[test]
    fn occupancy_increases_with_inner_extent() {
        let spec = k80();
        let big_n = 10_000_000;
        let e40 = occupancy(&spec, KernelShape::new(big_n, 40));
        let e320 = occupancy(&spec, KernelShape::new(big_n, 320));
        let e600 = occupancy(&spec, KernelShape::new(big_n, 600));
        assert!(e40 < e320 && e320 < e600);
        assert!(e600 <= 1.0);
        // Large-x kernels should be near peak: MPS has nothing to reclaim.
        assert!(e320 > 0.9, "x=320 efficiency {e320}");
        // Small-x kernels leave >20% idle: room for overlap.
        assert!(e40 < 0.8, "x=40 efficiency {e40}");
    }

    #[test]
    fn occupancy_increases_with_total_elems() {
        let spec = k80();
        let small = occupancy(&spec, KernelShape::new(50_000, 320));
        let large = occupancy(&spec, KernelShape::new(50_000_000, 320));
        assert!(small < large);
    }

    #[test]
    fn occupancy_has_a_floor() {
        let spec = k80();
        let e = occupancy(&spec, KernelShape::new(1, 1));
        assert!(e >= 0.02);
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        let spec = k80();
        // Memory-bound kernel: 1 flop, 24 bytes per element.
        let mem = KernelDesc::new("memb", 1.0, 24.0);
        // Compute-bound kernel: 100 flops, 1 byte.
        let cmp = KernelDesc::new("cmpb", 100.0, 1.0);
        let n = 1_000_000;
        let t_mem = mem.roofline_time(&spec, n);
        let t_cmp = cmp.roofline_time(&spec, n);
        let expect_mem = 1e6 * 24.0 / (240.0 * 1e9);
        let expect_cmp = 1e6 * 100.0 / (700.0 * 1e9);
        // Durations quantize to whole nanoseconds: allow 1 ns slack.
        assert!((t_mem.as_secs_f64() - expect_mem).abs() < 1.5e-9);
        assert!((t_cmp.as_secs_f64() - expect_cmp).abs() < 1.5e-9);
    }

    #[test]
    fn solo_duration_exceeds_roofline_by_inverse_occupancy() {
        let spec = k80();
        let k = KernelDesc::new("k", 30.0, 16.0);
        let shape = KernelShape::new(2_000_000, 64);
        let solo = k.solo_duration(&spec, shape);
        let roof = k.roofline_time(&spec, shape.elems);
        let eff = occupancy(&spec, shape);
        assert!(solo >= roof);
        let ratio = solo.ratio(roof);
        assert!((ratio - 1.0 / eff).abs() < 0.01, "ratio {ratio}, eff {eff}");
    }

    #[test]
    fn duration_scales_linearly_with_elems_at_saturation() {
        let spec = k80();
        let k = KernelDesc::new("k", 30.0, 16.0);
        // Far past the size ramp, doubling elems ≈ doubles time.
        let t1 = k.solo_duration(&spec, KernelShape::new(20_000_000, 320));
        let t2 = k.solo_duration(&spec, KernelShape::new(40_000_000, 320));
        let r = t2.ratio(t1);
        assert!((r - 2.0).abs() < 0.02, "ratio {r}");
    }
}
