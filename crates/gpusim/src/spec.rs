//! Device capability sheets.
//!
//! A [`DeviceSpec`] is the static description of one GPU: its compute
//! rate, memory system, and driver overheads. The figure sweeps only
//! depend on *ratios* of these terms (GPU:CPU speed, launch overhead vs
//! kernel duration, capacity per rank), so the presets use public
//! datasheet numbers for the paper's hardware.

use hsim_time::SimDuration;

/// Static description of one simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Peak FP64 throughput in GFLOP/s.
    pub fp64_gflops: f64,
    /// Device (global) memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device global memory capacity in bytes.
    pub mem_capacity: u64,
    /// Base kernel launch overhead (driver + hardware submit path).
    pub launch_overhead: SimDuration,
    /// Multiplier on launch overhead when launches are routed through
    /// the MPS server (paper §2: "the kernel launch overhead is
    /// higher").
    pub mps_launch_factor: f64,
    /// Host↔device interconnect bandwidth (PCIe for the K80) in GB/s.
    pub pcie_bandwidth_gbs: f64,
    /// Latency of one host↔device DMA setup.
    pub pcie_latency: SimDuration,
    /// Unified-memory page size in bytes.
    pub um_page_size: u64,
    /// Cost to migrate one UM page across the interconnect (fault +
    /// transfer amortized).
    pub um_page_migration: SimDuration,
    /// Elements needed to saturate the device (occupancy size ramp):
    /// roughly threads-in-flight. See [`crate::kernel::occupancy`].
    pub saturation_elems: f64,
    /// Innermost-dimension half-efficiency point: an inner extent equal
    /// to this achieves 50% of peak per-element rate. Models warp/
    /// vector utilization of the innermost loop.
    pub inner_half_extent: f64,
    /// Per-co-resident-kernel capacity derate: concurrent kernels from
    /// different clients contend for L2/DRAM, so the device's
    /// aggregate rate with `n` residents is `1 − penalty·(n−1)`
    /// (floored). This is why MPS loses when single kernels already
    /// fill the device (paper Figure 16).
    pub sharing_penalty: f64,
}

impl DeviceSpec {
    /// One logical GPU of a Tesla K80 board as scheduled on RZHasGPU
    /// (the paper exposes four GPUs per node). Datasheet: 13 SMs/GK210,
    /// ~1.45 TFLOP/s FP64 per board (≈0.7 per logical GPU with boost),
    /// 240 GB/s and 12 GB per logical GPU.
    pub fn tesla_k80() -> Self {
        DeviceSpec {
            name: "Tesla K80 (1/2 board)",
            sm_count: 13,
            fp64_gflops: 700.0,
            mem_bandwidth_gbs: 240.0,
            mem_capacity: 12 * (1 << 30),
            launch_overhead: SimDuration::from_micros(8),
            mps_launch_factor: 2.5,
            pcie_bandwidth_gbs: 12.0,
            pcie_latency: SimDuration::from_micros(10),
            um_page_size: 64 * 1024,
            um_page_migration: SimDuration::from_micros(5),
            saturation_elems: 3.0e4,
            inner_half_extent: 20.0,
            sharing_penalty: 0.02,
        }
    }

    /// Volta V100 as on the Sierra early-access systems (§2: SIERRA
    /// nodes pair two POWER9 CPUs with four Voltas; NVLink instead of
    /// PCIe).
    pub fn volta_v100() -> Self {
        DeviceSpec {
            name: "Tesla V100 (Sierra EA)",
            sm_count: 80,
            fp64_gflops: 7000.0,
            mem_bandwidth_gbs: 900.0,
            mem_capacity: 16 * (1 << 30),
            launch_overhead: SimDuration::from_micros(5),
            mps_launch_factor: 1.5,
            pcie_bandwidth_gbs: 60.0, // NVLink2 per direction
            pcie_latency: SimDuration::from_micros(3),
            um_page_size: 64 * 1024,
            um_page_migration: SimDuration::from_micros(2),
            saturation_elems: 1.6e5,
            inner_half_extent: 24.0,
            sharing_penalty: 0.01,
        }
    }

    /// Seconds to move `bytes` across the host↔device interconnect
    /// (one DMA: latency + bytes/bandwidth).
    pub fn xfer_time(&self, bytes: u64) -> SimDuration {
        let secs = bytes as f64 / (self.pcie_bandwidth_gbs * 1e9);
        self.pcie_latency + SimDuration::from_secs_f64(secs)
    }

    /// Number of UM pages covering `bytes`.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.um_page_size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k80_preset_matches_datasheet_ratios() {
        let k80 = DeviceSpec::tesla_k80();
        assert_eq!(k80.mem_capacity, 12 * 1024 * 1024 * 1024);
        assert!(k80.fp64_gflops > 500.0 && k80.fp64_gflops < 1500.0);
        assert!(k80.mps_launch_factor > 1.0, "MPS must cost more per launch");
    }

    #[test]
    fn volta_is_strictly_faster_than_k80() {
        let k80 = DeviceSpec::tesla_k80();
        let v100 = DeviceSpec::volta_v100();
        assert!(v100.fp64_gflops > k80.fp64_gflops);
        assert!(v100.mem_bandwidth_gbs > k80.mem_bandwidth_gbs);
        assert!(v100.launch_overhead < k80.launch_overhead);
    }

    #[test]
    fn xfer_time_is_latency_plus_bandwidth() {
        let k80 = DeviceSpec::tesla_k80();
        let t0 = k80.xfer_time(0);
        assert_eq!(t0, k80.pcie_latency);
        // 12 GB at 12 GB/s ≈ 1 s (plus tiny latency).
        let t = k80.xfer_time(12 * (1 << 30));
        assert!((t.as_secs_f64() - 1.073).abs() < 0.01, "{t}");
    }

    #[test]
    fn pages_for_rounds_up() {
        let k80 = DeviceSpec::tesla_k80();
        assert_eq!(k80.pages_for(0), 0);
        assert_eq!(k80.pages_for(1), 1);
        assert_eq!(k80.pages_for(64 * 1024), 1);
        assert_eq!(k80.pages_for(64 * 1024 + 1), 2);
    }
}
