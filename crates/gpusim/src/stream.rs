//! In-order execution streams.
//!
//! A stream is a FIFO lane within a context: kernels submitted to the
//! same stream execute in submission order; kernels in different
//! streams may overlap (subject to the device's rate-sharing capacity).
//! The RAJA CUDA backend of the paper launches each `forall` onto a
//! stream (its Figure 6 shows the `stream` launch parameter).

use crate::context::ContextId;
use crate::error::GpuError;

/// Opaque stream handle. Stream ids are globally unique per device so
/// they can be used directly as timeline stream keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u64);

/// A created stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream {
    pub id: StreamId,
    pub context: ContextId,
}

/// Stream registry for one device.
#[derive(Debug, Default)]
pub struct StreamTable {
    streams: Vec<Stream>,
    next_id: u64,
}

impl StreamTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a stream in `context`.
    pub fn create(&mut self, context: ContextId) -> Stream {
        let s = Stream {
            id: StreamId(self.next_id),
            context,
        };
        self.next_id += 1;
        self.streams.push(s);
        s
    }

    /// Look up a stream and verify it belongs to `context`.
    pub fn check(&self, id: StreamId, context: ContextId) -> Result<Stream, GpuError> {
        self.streams
            .iter()
            .find(|s| s.id == id && s.context == context)
            .copied()
            .ok_or(GpuError::InvalidStream)
    }

    /// Destroy all streams belonging to `context` (context teardown).
    pub fn destroy_for_context(&mut self, context: ContextId) {
        self.streams.retain(|s| s.context != context);
    }

    pub fn len(&self) -> usize {
        self.streams.len()
    }

    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_get_unique_ids() {
        let mut t = StreamTable::new();
        let ctx = ContextId(0);
        let a = t.create(ctx);
        let b = t.create(ctx);
        assert_ne!(a.id, b.id);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn check_enforces_context_ownership() {
        let mut t = StreamTable::new();
        let a = t.create(ContextId(0));
        assert!(t.check(a.id, ContextId(0)).is_ok());
        assert_eq!(
            t.check(a.id, ContextId(1)).unwrap_err(),
            GpuError::InvalidStream
        );
        assert_eq!(
            t.check(StreamId(99), ContextId(0)).unwrap_err(),
            GpuError::InvalidStream
        );
    }

    #[test]
    fn context_teardown_removes_its_streams() {
        let mut t = StreamTable::new();
        let _a = t.create(ContextId(0));
        let b = t.create(ContextId(1));
        t.destroy_for_context(ContextId(0));
        assert_eq!(t.len(), 1);
        assert!(t.check(b.id, ContextId(1)).is_ok());
    }
}
