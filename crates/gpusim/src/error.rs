//! Error type for the GPU simulator.

use std::fmt;

/// Everything that can go wrong in the simulated driver stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Device memory allocation failed: requested bytes vs bytes free.
    OutOfMemory { requested: u64, free: u64 },
    /// A second process tried to create a direct (non-MPS) context on a
    /// device that already has one — only a single context can be
    /// active on a device at a time (paper §2).
    ContextBusy { device: usize },
    /// A handle referred to a context that no longer exists.
    InvalidContext,
    /// A handle referred to a stream that does not exist.
    InvalidStream,
    /// Freeing a pointer the allocator does not know about.
    InvalidFree { offset: u64 },
    /// A pool operation violated the pool's LIFO discipline.
    PoolDiscipline,
    /// The MPS server rejected a client (e.g. over its client limit).
    MpsRejected { reason: &'static str },
    /// A kernel launch failed and the retry budget was exhausted.
    LaunchFailed { reason: &'static str },
    /// Touching device-resident memory from a host-only process — the
    /// performance hazard the paper had to engineer around (§5.2).
    HostTouchedDeviceMemory,
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "out of device memory: requested {requested} B, {free} B free"
                )
            }
            GpuError::ContextBusy { device } => {
                write!(f, "device {device} already has an active context (use MPS)")
            }
            GpuError::InvalidContext => write!(f, "invalid context handle"),
            GpuError::InvalidStream => write!(f, "invalid stream handle"),
            GpuError::InvalidFree { offset } => write!(f, "invalid free at offset {offset}"),
            GpuError::PoolDiscipline => write!(f, "pool free violates LIFO discipline"),
            GpuError::MpsRejected { reason } => write!(f, "MPS rejected client: {reason}"),
            GpuError::LaunchFailed { reason } => write!(f, "kernel launch failed: {reason}"),
            GpuError::HostTouchedDeviceMemory => {
                write!(f, "host-only process touched device-resident memory")
            }
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GpuError::OutOfMemory {
            requested: 1024,
            free: 512,
        };
        let s = e.to_string();
        assert!(s.contains("1024") && s.contains("512"));
        assert!(GpuError::ContextBusy { device: 2 }
            .to_string()
            .contains("MPS"));
        assert!(GpuError::LaunchFailed {
            reason: "injected fault"
        }
        .to_string()
        .contains("injected fault"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GpuError::InvalidContext, GpuError::InvalidContext);
        assert_ne!(
            GpuError::InvalidFree { offset: 1 },
            GpuError::InvalidFree { offset: 2 }
        );
    }
}
