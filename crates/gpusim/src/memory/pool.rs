//! cnmem-style stack pool for temporary data.
//!
//! ARES routes temporaries through a cnmem memory pool (paper Figure 8)
//! because per-kernel `cudaMalloc`/`cudaFree` would serialize on the
//! driver. A pool grabs one slab up front and then hands out
//! allocations with stack (LIFO) discipline, which is exactly the
//! lifetime pattern of per-kernel scratch arrays. `reset` reclaims
//! everything at a cycle boundary.

use crate::error::GpuError;

/// Handle to one pool allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolAllocation {
    pub offset: u64,
    pub size: u64,
    /// Position in the LIFO stack, used to validate free order.
    seq: usize,
}

/// A bump allocator with LIFO free discipline over a fixed slab.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    slab: u64,
    top: u64,
    high_water: u64,
    live: Vec<PoolAllocation>,
    alignment: u64,
    /// Count of times a request did not fit (reporting).
    failures: u64,
}

impl MemoryPool {
    pub fn new(slab_bytes: u64) -> Self {
        MemoryPool {
            slab: slab_bytes,
            top: 0,
            high_water: 0,
            live: Vec::new(),
            alignment: 256,
            failures: 0,
        }
    }

    fn align(&self, size: u64) -> u64 {
        size.div_ceil(self.alignment).max(1) * self.alignment
    }

    /// Allocate `size` bytes from the top of the stack.
    pub fn alloc(&mut self, size: u64) -> Result<PoolAllocation, GpuError> {
        let size = self.align(size);
        if self.top + size > self.slab {
            self.failures += 1;
            return Err(GpuError::OutOfMemory {
                requested: size,
                free: self.slab - self.top,
            });
        }
        let a = PoolAllocation {
            offset: self.top,
            size,
            seq: self.live.len(),
        };
        self.top += size;
        self.high_water = self.high_water.max(self.top);
        self.live.push(a);
        Ok(a)
    }

    /// Free the most recent live allocation. Freeing out of order is a
    /// discipline error (cnmem would leak or corrupt; we fail fast).
    pub fn free(&mut self, a: PoolAllocation) -> Result<(), GpuError> {
        match self.live.last() {
            Some(top) if *top == a => {
                self.live.pop();
                self.top = a.offset;
                Ok(())
            }
            _ => Err(GpuError::PoolDiscipline),
        }
    }

    /// Drop every live allocation (cycle boundary).
    pub fn reset(&mut self) {
        self.live.clear();
        self.top = 0;
    }

    pub fn in_use(&self) -> u64 {
        self.top
    }

    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    pub fn slab_size(&self) -> u64 {
        self.slab
    }

    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    pub fn failures(&self) -> u64 {
        self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_alloc_free_roundtrip() {
        let mut p = MemoryPool::new(4096);
        let a = p.alloc(256).unwrap();
        let b = p.alloc(256).unwrap();
        assert_eq!(p.in_use(), 512);
        p.free(b).unwrap();
        p.free(a).unwrap();
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.high_water(), 512);
    }

    #[test]
    fn out_of_order_free_is_rejected() {
        let mut p = MemoryPool::new(4096);
        let a = p.alloc(256).unwrap();
        let _b = p.alloc(256).unwrap();
        assert_eq!(p.free(a).unwrap_err(), GpuError::PoolDiscipline);
    }

    #[test]
    fn exhaustion_counts_failures() {
        let mut p = MemoryPool::new(1024);
        let _a = p.alloc(1024).unwrap();
        assert!(p.alloc(1).is_err());
        assert_eq!(p.failures(), 1);
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut p = MemoryPool::new(4096);
        let _a = p.alloc(1024).unwrap();
        let _b = p.alloc(1024).unwrap();
        p.reset();
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.live_count(), 0);
        // Full slab available again.
        assert!(p.alloc(4096).is_ok());
    }

    #[test]
    fn offsets_stack_upward() {
        let mut p = MemoryPool::new(4096);
        let a = p.alloc(100).unwrap(); // rounds to 256
        let b = p.alloc(100).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 256);
    }

    #[test]
    fn freeing_into_empty_pool_fails() {
        let mut p = MemoryPool::new(4096);
        let a = p.alloc(64).unwrap();
        p.free(a).unwrap();
        assert_eq!(p.free(a).unwrap_err(), GpuError::PoolDiscipline);
    }
}
