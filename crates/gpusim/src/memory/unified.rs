//! Unified memory (cudaMallocManaged) with page-residency tracking.
//!
//! ARES allocates mesh data in unified memory when a rank drives a GPU
//! (paper Figure 8) so the same pointers work on both processors. UM
//! performance is governed by *page migration*: touching a page from
//! the side where it is not resident faults it across the interconnect.
//! The paper reports that touching GPU memory from CPU-only processes
//! "degraded the performance of the application" (§5.2) — the
//! [`UnifiedMemory::touch_host`] charge is that degradation, made
//! explicit.

use crate::error::GpuError;
use crate::spec::DeviceSpec;
use hsim_time::SimDuration;

/// Where a UM page currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    Host,
    Device,
}

/// Handle to one managed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnifiedRegionId(pub usize);

#[derive(Debug)]
struct Region {
    bytes: u64,
    pages: Vec<Residency>,
    live: bool,
}

/// Page-granular unified memory manager for one device.
#[derive(Debug)]
pub struct UnifiedMemory {
    page_size: u64,
    migration_cost: SimDuration,
    device_capacity: u64,
    device_resident_pages: u64,
    regions: Vec<Region>,
}

impl UnifiedMemory {
    pub fn new(spec: &DeviceSpec) -> Self {
        UnifiedMemory {
            page_size: spec.um_page_size,
            migration_cost: spec.um_page_migration,
            device_capacity: spec.mem_capacity,
            device_resident_pages: 0,
            regions: Vec::new(),
        }
    }

    /// Allocate a managed region. Pages start host-resident (CUDA's
    /// first-touch-on-host behaviour for managed memory).
    pub fn alloc(&mut self, bytes: u64) -> UnifiedRegionId {
        let pages = bytes.div_ceil(self.page_size.max(1)) as usize;
        self.regions.push(Region {
            bytes,
            pages: vec![Residency::Host; pages],
            live: true,
        });
        UnifiedRegionId(self.regions.len() - 1)
    }

    /// Release a region; device-resident pages are returned to the
    /// device's free pool.
    pub fn free(&mut self, id: UnifiedRegionId) -> Result<(), GpuError> {
        let region = self
            .regions
            .get_mut(id.0)
            .filter(|r| r.live)
            .ok_or(GpuError::InvalidContext)?;
        let dev_pages = region
            .pages
            .iter()
            .filter(|&&p| p == Residency::Device)
            .count() as u64;
        self.device_resident_pages = self.device_resident_pages.saturating_sub(dev_pages);
        region.live = false;
        region.pages.clear();
        Ok(())
    }

    /// Touch the whole region from the device: migrate host-resident
    /// pages in. Returns the total migration charge.
    pub fn touch_device(&mut self, id: UnifiedRegionId) -> Result<SimDuration, GpuError> {
        let capacity_pages = self.device_capacity / self.page_size.max(1);
        let region = self
            .regions
            .get_mut(id.0)
            .filter(|r| r.live)
            .ok_or(GpuError::InvalidContext)?;
        let mut migrated = 0u64;
        for p in region.pages.iter_mut() {
            if *p == Residency::Host {
                *p = Residency::Device;
                migrated += 1;
            }
        }
        self.device_resident_pages += migrated;
        let mut cost = self.migration_cost * migrated;
        // Oversubscription: pages beyond device capacity thrash — the
        // driver evicts and refaults. Charge each excess page one extra
        // round trip per touch.
        if self.device_resident_pages > capacity_pages {
            let excess = self.device_resident_pages - capacity_pages;
            cost += self.migration_cost * (2 * excess);
        }
        Ok(cost)
    }

    /// Touch the whole region from the host: migrate device-resident
    /// pages out. Returns the migration charge.
    pub fn touch_host(&mut self, id: UnifiedRegionId) -> Result<SimDuration, GpuError> {
        let region = self
            .regions
            .get_mut(id.0)
            .filter(|r| r.live)
            .ok_or(GpuError::InvalidContext)?;
        let mut migrated = 0u64;
        for p in region.pages.iter_mut() {
            if *p == Residency::Device {
                *p = Residency::Host;
                migrated += 1;
            }
        }
        self.device_resident_pages = self.device_resident_pages.saturating_sub(migrated);
        Ok(self.migration_cost * migrated)
    }

    /// Touch a sub-range `[offset, offset + len)` of the region from
    /// the host (e.g. halo faces staged for MPI). Only the covered
    /// pages migrate.
    pub fn touch_host_range(
        &mut self,
        id: UnifiedRegionId,
        offset: u64,
        len: u64,
    ) -> Result<SimDuration, GpuError> {
        let page_size = self.page_size.max(1);
        let region = self
            .regions
            .get_mut(id.0)
            .filter(|r| r.live)
            .ok_or(GpuError::InvalidContext)?;
        if len == 0 || offset >= region.bytes {
            return Ok(SimDuration::ZERO);
        }
        let end = (offset + len).min(region.bytes);
        let p0 = (offset / page_size) as usize;
        let p1 = end.div_ceil(page_size) as usize;
        let mut migrated = 0u64;
        let p1 = p1.min(region.pages.len());
        for p in region.pages[p0..p1].iter_mut() {
            if *p == Residency::Device {
                *p = Residency::Host;
                migrated += 1;
            }
        }
        self.device_resident_pages = self.device_resident_pages.saturating_sub(migrated);
        Ok(self.migration_cost * migrated)
    }

    /// Bytes currently resident on the device.
    pub fn device_resident_bytes(&self) -> u64 {
        self.device_resident_pages * self.page_size
    }

    /// Number of live regions.
    pub fn live_regions(&self) -> usize {
        self.regions.iter().filter(|r| r.live).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um() -> UnifiedMemory {
        UnifiedMemory::new(&DeviceSpec::tesla_k80())
    }

    #[test]
    fn pages_start_host_resident() {
        let mut m = um();
        let r = m.alloc(1 << 20);
        assert_eq!(m.device_resident_bytes(), 0);
        assert_eq!(m.live_regions(), 1);
        // First device touch migrates everything.
        let cost = m.touch_device(r).unwrap();
        assert!(cost > SimDuration::ZERO);
        assert_eq!(m.device_resident_bytes(), 1 << 20);
    }

    #[test]
    fn second_device_touch_is_free() {
        let mut m = um();
        let r = m.alloc(1 << 20);
        m.touch_device(r).unwrap();
        let cost = m.touch_device(r).unwrap();
        assert_eq!(cost, SimDuration::ZERO, "already resident");
    }

    #[test]
    fn host_touch_migrates_back_and_charges() {
        let mut m = um();
        let r = m.alloc(1 << 20);
        m.touch_device(r).unwrap();
        let cost = m.touch_host(r).unwrap();
        assert!(cost > SimDuration::ZERO);
        assert_eq!(m.device_resident_bytes(), 0);
        // Ping-pong: device touch costs again.
        assert!(m.touch_device(r).unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn range_touch_migrates_only_covered_pages() {
        let mut m = um();
        let page = DeviceSpec::tesla_k80().um_page_size;
        let r = m.alloc(page * 10);
        m.touch_device(r).unwrap();
        // Touch two pages' worth from the host.
        let cost = m.touch_host_range(r, 0, page * 2).unwrap();
        assert_eq!(cost, DeviceSpec::tesla_k80().um_page_migration * 2);
        assert_eq!(m.device_resident_bytes(), page * 8);
    }

    #[test]
    fn range_touch_past_end_is_clamped() {
        let mut m = um();
        let page = DeviceSpec::tesla_k80().um_page_size;
        let r = m.alloc(page);
        m.touch_device(r).unwrap();
        let cost = m.touch_host_range(r, 0, page * 100).unwrap();
        assert_eq!(cost, DeviceSpec::tesla_k80().um_page_migration);
        assert_eq!(
            m.touch_host_range(r, page * 5, 1).unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn oversubscription_charges_thrash_penalty() {
        let spec = DeviceSpec::tesla_k80();
        let mut m = UnifiedMemory::new(&spec);
        // Two regions that together exceed 12 GB.
        let a = m.alloc(8 * (1 << 30));
        let b = m.alloc(8 * (1 << 30));
        let cost_a = m.touch_device(a).unwrap();
        let cost_b = m.touch_device(b).unwrap();
        let pages_each = spec.pages_for(8 * (1 << 30));
        // First region fits: plain migration.
        assert_eq!(cost_a, spec.um_page_migration * pages_each);
        // Second region oversubscribes by 4 GB: strictly more than
        // plain migration.
        assert!(cost_b > spec.um_page_migration * pages_each);
    }

    #[test]
    fn free_returns_device_pages() {
        let mut m = um();
        let r = m.alloc(1 << 20);
        m.touch_device(r).unwrap();
        m.free(r).unwrap();
        assert_eq!(m.device_resident_bytes(), 0);
        assert_eq!(m.live_regions(), 0);
        assert!(m.touch_device(r).is_err(), "freed region rejects touches");
        assert!(m.free(r).is_err(), "double free rejected");
    }
}
