//! The device memory subsystem: the three data classes of the paper's
//! Figure 8.
//!
//! | data class     | CPU-only process | GPU-driving process        |
//! |----------------|------------------|----------------------------|
//! | control code   | host malloc      | host malloc                |
//! | mesh data      | host malloc      | unified memory ([`unified`]) |
//! | temporary data | host malloc      | device pool ([`pool`], cnmem-style) |
//!
//! [`device_alloc`] is the underlying capacity-checked device heap that
//! both unified-memory backing and pools draw from.

pub mod device_alloc;
pub mod pool;
pub mod unified;

pub use device_alloc::{DeviceAllocation, DeviceHeap};
pub use pool::{MemoryPool, PoolAllocation};
pub use unified::{Residency, UnifiedMemory, UnifiedRegionId};
