//! First-fit device heap with capacity accounting.
//!
//! Models `cudaMalloc`/`cudaFree`: allocations must fit in the device's
//! global memory; exhaustion is an error the application sees (ARES
//! sizes its domains against exactly this limit — the Default mode in
//! the paper runs out of room per rank before the others do).

use crate::error::GpuError;

/// A live device allocation (offset within the device heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceAllocation {
    pub offset: u64,
    pub size: u64,
}

/// A first-fit free-list allocator over a fixed capacity.
#[derive(Debug, Clone)]
pub struct DeviceHeap {
    capacity: u64,
    /// Sorted, coalesced list of free extents (offset, size).
    free: Vec<(u64, u64)>,
    used: u64,
    /// Peak bytes in use, for reporting.
    high_water: u64,
    alignment: u64,
}

impl DeviceHeap {
    /// A heap of `capacity` bytes with 256-byte allocation granularity
    /// (CUDA's allocation alignment).
    pub fn new(capacity: u64) -> Self {
        DeviceHeap {
            capacity,
            free: if capacity > 0 {
                vec![(0, capacity)]
            } else {
                Vec::new()
            },
            used: 0,
            high_water: 0,
            alignment: 256,
        }
    }

    fn align(&self, size: u64) -> u64 {
        let a = self.alignment;
        size.div_ceil(a).max(1) * a
    }

    /// Allocate `size` bytes (first fit).
    pub fn alloc(&mut self, size: u64) -> Result<DeviceAllocation, GpuError> {
        let size = self.align(size);
        for i in 0..self.free.len() {
            let (off, len) = self.free[i];
            if len >= size {
                if len == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + size, len - size);
                }
                self.used += size;
                self.high_water = self.high_water.max(self.used);
                return Ok(DeviceAllocation { offset: off, size });
            }
        }
        Err(GpuError::OutOfMemory {
            requested: size,
            free: self.free_bytes(),
        })
    }

    /// Free a previous allocation, coalescing neighbors.
    pub fn free(&mut self, a: DeviceAllocation) -> Result<(), GpuError> {
        // Reject frees that overlap an existing free extent (double
        // free) or fall outside the heap.
        if a.offset + a.size > self.capacity {
            return Err(GpuError::InvalidFree { offset: a.offset });
        }
        let pos = self.free.partition_point(|&(off, _)| off < a.offset);
        if pos < self.free.len() {
            let (off, _) = self.free[pos];
            if a.offset + a.size > off {
                return Err(GpuError::InvalidFree { offset: a.offset });
            }
        }
        if pos > 0 {
            let (off, len) = self.free[pos - 1];
            if off + len > a.offset {
                return Err(GpuError::InvalidFree { offset: a.offset });
            }
        }
        self.free.insert(pos, (a.offset, a.size));
        self.used = self.used.saturating_sub(a.size);
        // Coalesce with right neighbor, then left.
        if pos + 1 < self.free.len() {
            let (off, len) = self.free[pos];
            let (noff, nlen) = self.free[pos + 1];
            if off + len == noff {
                self.free[pos] = (off, len + nlen);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (poff, plen) = self.free[pos - 1];
            let (off, len) = self.free[pos];
            if poff + plen == off {
                self.free[pos - 1] = (poff, plen + len);
                self.free.remove(pos);
            }
        }
        Ok(())
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Largest single allocatable block (fragmentation indicator).
    pub fn largest_free_block(&self) -> u64 {
        self.free.iter().map(|&(_, len)| len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut h = DeviceHeap::new(1 << 20);
        let a = h.alloc(1000).unwrap();
        assert_eq!(a.size, 1024, "rounded to 256-byte granularity");
        assert_eq!(h.used(), 1024);
        h.free(a).unwrap();
        assert_eq!(h.used(), 0);
        assert_eq!(h.largest_free_block(), 1 << 20);
    }

    #[test]
    fn exhaustion_is_reported_with_free_bytes() {
        let mut h = DeviceHeap::new(4096);
        let _a = h.alloc(4096).unwrap();
        match h.alloc(1) {
            Err(GpuError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, 256);
                assert_eq!(free, 0);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn coalescing_restores_contiguity() {
        let mut h = DeviceHeap::new(4096);
        let a = h.alloc(1024).unwrap();
        let b = h.alloc(1024).unwrap();
        let c = h.alloc(1024).unwrap();
        h.free(b).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        assert_eq!(h.largest_free_block(), 4096);
        // Can now satisfy a full-capacity request again.
        assert!(h.alloc(4096).is_ok());
    }

    #[test]
    fn fragmentation_limits_largest_block() {
        let mut h = DeviceHeap::new(4096);
        let a = h.alloc(1024).unwrap();
        let b = h.alloc(1024).unwrap();
        let _c = h.alloc(1024).unwrap();
        let _d = h.alloc(1024).unwrap();
        h.free(a).unwrap();
        h.free(b).unwrap();
        // a and b coalesce to 2048 even with c, d still live.
        assert_eq!(h.largest_free_block(), 2048);
    }

    #[test]
    fn double_free_detected() {
        let mut h = DeviceHeap::new(4096);
        let a = h.alloc(512).unwrap();
        h.free(a).unwrap();
        assert!(matches!(h.free(a), Err(GpuError::InvalidFree { .. })));
    }

    #[test]
    fn out_of_range_free_detected() {
        let mut h = DeviceHeap::new(4096);
        assert!(matches!(
            h.free(DeviceAllocation {
                offset: 4096,
                size: 256
            }),
            Err(GpuError::InvalidFree { .. })
        ));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut h = DeviceHeap::new(1 << 20);
        let a = h.alloc(4096).unwrap();
        let b = h.alloc(4096).unwrap();
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.high_water(), 8192);
        assert_eq!(h.used(), 0);
    }

    #[test]
    fn first_fit_reuses_earliest_hole() {
        let mut h = DeviceHeap::new(4096);
        let a = h.alloc(1024).unwrap();
        let _b = h.alloc(1024).unwrap();
        h.free(a).unwrap();
        let c = h.alloc(512).unwrap();
        assert_eq!(c.offset, 0, "first fit should reuse the first hole");
    }

    #[test]
    fn zero_capacity_heap_rejects_everything() {
        let mut h = DeviceHeap::new(0);
        assert!(h.alloc(1).is_err());
    }
}
