//! Device contexts.
//!
//! CUDA allows only a single context to be *active* on a device at a
//! time; contexts from different processes cannot run concurrently.
//! This is the constraint that motivates MPS (paper §2): without it,
//! binding more than one MPI rank to a GPU serializes at the context
//! level. The simulator enforces the same rule: direct context creation
//! fails while another owner holds the device, while the MPS server
//! owns one shared context and multiplexes clients onto it.

use crate::error::GpuError;

/// Opaque context handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextId(pub u64);

/// Who owns the active context of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextOwner {
    /// A single process (identified by its MPI rank / pid) owns the
    /// device exclusively.
    Process(usize),
    /// The MPS server owns the device; many clients share it.
    MpsServer,
}

/// A created context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Context {
    pub id: ContextId,
    pub device: usize,
    pub owner: ContextOwner,
}

/// Tracks context ownership for one device.
#[derive(Debug, Default)]
pub struct ContextTable {
    active: Option<Context>,
    next_id: u64,
}

impl ContextTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a direct (exclusive) context for `process` on `device`.
    ///
    /// Fails with [`GpuError::ContextBusy`] if any context is already
    /// active — including re-entrant creation by the same process,
    /// which mirrors the driver's one-primary-context rule closely
    /// enough for scheduling purposes.
    pub fn create_exclusive(&mut self, device: usize, process: usize) -> Result<Context, GpuError> {
        if self.active.is_some() {
            return Err(GpuError::ContextBusy { device });
        }
        let ctx = Context {
            id: ContextId(self.next_id),
            device,
            owner: ContextOwner::Process(process),
        };
        self.next_id += 1;
        self.active = Some(ctx);
        Ok(ctx)
    }

    /// Create the MPS server's shared context.
    pub fn create_mps(&mut self, device: usize) -> Result<Context, GpuError> {
        if self.active.is_some() {
            return Err(GpuError::ContextBusy { device });
        }
        let ctx = Context {
            id: ContextId(self.next_id),
            device,
            owner: ContextOwner::MpsServer,
        };
        self.next_id += 1;
        self.active = Some(ctx);
        Ok(ctx)
    }

    /// Destroy the active context, releasing the device.
    pub fn destroy(&mut self, id: ContextId) -> Result<(), GpuError> {
        match self.active {
            Some(ctx) if ctx.id == id => {
                self.active = None;
                Ok(())
            }
            _ => Err(GpuError::InvalidContext),
        }
    }

    /// The currently active context, if any.
    pub fn active(&self) -> Option<Context> {
        self.active
    }

    /// Validate that `id` is the active context.
    pub fn check(&self, id: ContextId) -> Result<Context, GpuError> {
        match self.active {
            Some(ctx) if ctx.id == id => Ok(ctx),
            _ => Err(GpuError::InvalidContext),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_context_blocks_second_process() {
        let mut t = ContextTable::new();
        let c0 = t.create_exclusive(0, 100).unwrap();
        assert_eq!(c0.owner, ContextOwner::Process(100));
        let err = t.create_exclusive(0, 101).unwrap_err();
        assert_eq!(err, GpuError::ContextBusy { device: 0 });
    }

    #[test]
    fn destroy_releases_the_device() {
        let mut t = ContextTable::new();
        let c0 = t.create_exclusive(0, 100).unwrap();
        t.destroy(c0.id).unwrap();
        assert!(t.active().is_none());
        let c1 = t.create_exclusive(0, 101).unwrap();
        assert_ne!(c1.id, c0.id, "context ids are not recycled");
    }

    #[test]
    fn mps_context_also_exclusive_at_device_level() {
        let mut t = ContextTable::new();
        let _mps = t.create_mps(1).unwrap();
        assert!(t.create_exclusive(1, 5).is_err());
        assert!(t.create_mps(1).is_err());
    }

    #[test]
    fn check_validates_handles() {
        let mut t = ContextTable::new();
        let c = t.create_exclusive(0, 1).unwrap();
        assert!(t.check(c.id).is_ok());
        assert_eq!(
            t.check(ContextId(999)).unwrap_err(),
            GpuError::InvalidContext
        );
        t.destroy(c.id).unwrap();
        assert_eq!(t.check(c.id).unwrap_err(), GpuError::InvalidContext);
    }

    #[test]
    fn destroying_wrong_id_fails() {
        let mut t = ContextTable::new();
        let _c = t.create_exclusive(0, 1).unwrap();
        assert_eq!(
            t.destroy(ContextId(42)).unwrap_err(),
            GpuError::InvalidContext
        );
        assert!(t.active().is_some());
    }
}
