//! The rate-sharing device timeline.
//!
//! A GPU executes concurrent kernels by interleaving their blocks over
//! its SMs. We model the device as a single resource of capacity 1.0
//! "device-rates": each resident kernel is a *malleable job* with
//!
//! * `work` — its roofline execution time in device-seconds (the time
//!   it would take at full efficiency),
//! * `max_rate` — its occupancy (see [`crate::kernel::occupancy`]): the
//!   largest fraction of the device it can use by itself.
//!
//! At any instant the device divides its capacity over the active jobs
//! by **water-filling**: every job gets `min(max_rate, λ)` where λ is
//! the common share that exhausts capacity (or every job gets its cap
//! when the device is underfilled). Consequences, which are exactly the
//! paper's observations about MPS:
//!
//! * one resident kernel with occupancy `e` runs at rate `e` — a small
//!   kernel wastes `1 − e` of the device;
//! * `R` co-resident kernels with occupancy `e` run concurrently at
//!   total rate `min(1, R·e)` — overlap reclaims idle capacity when
//!   `e < 1`, and does nothing (except add launch overhead) when a
//!   single kernel already fills the device.
//!
//! Jobs in the same **stream** serialize (CUDA in-order streams); jobs
//! in different streams may overlap.

use hsim_time::SimTime;

/// One kernel submission to the timeline.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-chosen identifier, echoed in the outcome.
    pub id: u64,
    /// Stream the job belongs to; same-stream jobs execute in
    /// submission order.
    pub stream: u64,
    /// Earliest simulated instant the job may start (its launch time).
    pub arrival: SimTime,
    /// Roofline execution time at full device rate, in seconds.
    pub work: f64,
    /// Occupancy cap in `(0, 1]`.
    pub max_rate: f64,
}

/// Completion record for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    pub id: u64,
    pub start: SimTime,
    pub end: SimTime,
}

/// An event-driven rate-sharing simulator for one device.
#[derive(Debug, Clone)]
pub struct RateSharingTimeline {
    /// Device capacity in "device-rates"; 1.0 for a whole GPU.
    capacity: f64,
    /// Per-extra-resident capacity derate (cache/DRAM contention
    /// between co-resident kernels); 0 = ideal sharing.
    contention: f64,
}

#[derive(Debug)]
struct Active {
    idx: usize,
    remaining: f64,
    max_rate: f64,
    rate: f64,
}

impl RateSharingTimeline {
    pub fn new() -> Self {
        RateSharingTimeline {
            capacity: 1.0,
            contention: 0.0,
        }
    }

    /// A timeline with non-unit capacity (used in tests and for
    /// modelling partitioned devices).
    pub fn with_capacity(capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        RateSharingTimeline {
            capacity,
            contention: 0.0,
        }
    }

    /// A timeline whose aggregate rate with `n` concurrent jobs is
    /// `capacity · (1 − contention·(n−1))`, floored at 80%.
    pub fn with_contention(capacity: f64, contention: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        RateSharingTimeline {
            capacity,
            contention: contention.clamp(0.0, 0.2),
        }
    }

    /// Simulate a batch of jobs to completion. Returns one outcome per
    /// job, in the input order.
    ///
    /// Same-stream jobs are serialized in their *input order* (their
    /// `arrival` values still apply as lower bounds). `work == 0` jobs
    /// complete instantaneously at their effective start time.
    pub fn simulate(&self, jobs: &[Job]) -> Vec<JobOutcome> {
        let n = jobs.len();
        let mut outcomes: Vec<JobOutcome> = jobs
            .iter()
            .map(|j| JobOutcome {
                id: j.id,
                start: j.arrival,
                end: j.arrival,
            })
            .collect();
        if n == 0 {
            return outcomes;
        }

        // Group job indices per stream, preserving input order.
        let mut streams: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, j) in jobs.iter().enumerate() {
            match streams.iter_mut().find(|(s, _)| *s == j.stream) {
                Some((_, v)) => v.push(i),
                None => streams.push((j.stream, vec![i])),
            }
        }
        // Per-stream cursor: next job position not yet dispatched.
        let mut cursor: Vec<usize> = vec![0; streams.len()];
        // Earliest allowed start of the stream head (predecessor end).
        let mut stream_free: Vec<f64> = vec![0.0; streams.len()];

        let mut active: Vec<Active> = Vec::new();
        let mut done = 0usize;
        let mut now = 0.0f64;

        while done < n {
            // Dispatch every stream head that is ready at `now`.
            for (s, (_, order)) in streams.iter().enumerate() {
                while cursor[s] < order.len() {
                    let idx = order[cursor[s]];
                    let j = &jobs[idx];
                    let ready = j.arrival.as_nanos() as f64 * 1e-9;
                    let ready = ready.max(stream_free[s]);
                    if ready > now + 1e-15 {
                        break;
                    }
                    // Zero-work jobs complete immediately and unblock
                    // their successor in the same pass.
                    if j.work <= 0.0 {
                        outcomes[idx].start = SimTime::from_nanos((ready * 1e9).round() as u64);
                        outcomes[idx].end = outcomes[idx].start;
                        stream_free[s] = ready;
                        cursor[s] += 1;
                        done += 1;
                        continue;
                    }
                    active.push(Active {
                        idx,
                        remaining: j.work,
                        max_rate: j.max_rate.clamp(1e-9, self.capacity),
                        rate: 0.0,
                    });
                    outcomes[idx].start = SimTime::from_nanos((ready * 1e9).round() as u64);
                    cursor[s] += 1;
                    // In-order stream: do not dispatch the successor
                    // until this job completes.
                    stream_free[s] = f64::INFINITY;
                    break;
                }
            }

            // The dispatch pass may have retired zero-work jobs.
            if done >= n {
                break;
            }

            // Next horizon: the earliest pending arrival we might need
            // to stop at.
            let mut next_arrival = f64::INFINITY;
            for (s, (_, order)) in streams.iter().enumerate() {
                if cursor[s] < order.len() && stream_free[s].is_finite() {
                    let j = &jobs[order[cursor[s]]];
                    let ready = (j.arrival.as_nanos() as f64 * 1e-9).max(stream_free[s]);
                    next_arrival = next_arrival.min(ready);
                }
            }

            if active.is_empty() {
                // Idle gap: jump to the next arrival.
                debug_assert!(
                    next_arrival.is_finite(),
                    "deadlock: no active jobs and no pending arrivals"
                );
                now = next_arrival.max(now);
                continue;
            }

            // Water-fill rates over the active set, derated for
            // cross-client contention.
            let eff_capacity = if active.len() > 1 {
                let derate = 1.0 - self.contention * (active.len() - 1) as f64;
                self.capacity * derate.max(0.8)
            } else {
                self.capacity
            };
            water_fill(&mut active, eff_capacity);

            // Earliest completion under current rates.
            let mut next_completion = f64::INFINITY;
            for a in &active {
                let t = now + a.remaining / a.rate;
                next_completion = next_completion.min(t);
            }
            let horizon = next_completion.min(next_arrival.max(now));
            let dt = (horizon - now).max(0.0);

            // Advance all active jobs.
            for a in &mut active {
                a.remaining -= a.rate * dt;
            }
            now = horizon;

            // Retire completed jobs and release their streams.
            let mut i = 0;
            while i < active.len() {
                if active[i].remaining <= 1e-12 {
                    let a = active.swap_remove(i);
                    outcomes[a.idx].end = SimTime::from_nanos((now * 1e9).round() as u64);
                    if let Some(s) = streams.iter().position(|(st, _)| *st == jobs[a.idx].stream) {
                        stream_free[s] = now;
                    }
                    done += 1;
                } else {
                    i += 1;
                }
            }
        }
        outcomes
    }

    /// Convenience: the makespan (latest end) of a batch.
    pub fn makespan(&self, jobs: &[Job]) -> SimTime {
        self.simulate(jobs)
            .iter()
            .map(|o| o.end)
            .fold(SimTime::ZERO, SimTime::merge)
    }
}

impl Default for RateSharingTimeline {
    fn default() -> Self {
        Self::new()
    }
}

/// Assign each active job a rate `min(max_rate, λ)` such that the total
/// equals `min(capacity, Σ max_rate)`.
fn water_fill(active: &mut [Active], capacity: f64) {
    let total_cap: f64 = active.iter().map(|a| a.max_rate).sum();
    if total_cap <= capacity {
        for a in active.iter_mut() {
            a.rate = a.max_rate;
        }
        return;
    }
    // Sort indices by max_rate ascending and fill.
    let mut order: Vec<usize> = (0..active.len()).collect();
    order.sort_by(|&a, &b| active[a].max_rate.total_cmp(&active[b].max_rate));
    let mut remaining = capacity;
    let mut left = active.len();
    // Filling in ascending-cap order: once a job is capped below the
    // fair share, the remainder is redistributed over the larger jobs.
    for &i in &order {
        let fair = remaining / left as f64;
        let r = active[i].max_rate.min(fair);
        active[i].rate = r;
        remaining -= r;
        left -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, stream: u64, arrival_ns: u64, work: f64, rate: f64) -> Job {
        Job {
            id,
            stream,
            arrival: SimTime::from_nanos(arrival_ns),
            work,
            max_rate: rate,
        }
    }

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_full_rate_job_runs_at_capacity() {
        let tl = RateSharingTimeline::new();
        let out = tl.simulate(&[job(1, 0, 0, 2.0, 1.0)]);
        assert!((secs(out[0].end) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_low_occupancy_job_is_slower() {
        let tl = RateSharingTimeline::new();
        let out = tl.simulate(&[job(1, 0, 0, 2.0, 0.5)]);
        assert!((secs(out[0].end) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn co_resident_small_kernels_overlap() {
        // Four kernels of 0.25 device-seconds each, occupancy 0.4:
        // alone they'd serialize to 4 * 0.25/0.4 = 2.5 s; water-filled
        // they run at total rate 1.0 (capped) and finish in 1.0 s.
        let tl = RateSharingTimeline::new();
        let jobs: Vec<Job> = (0..4).map(|i| job(i, i, 0, 0.25, 0.4)).collect();
        let out = tl.simulate(&jobs);
        let makespan = out.iter().map(|o| secs(o.end)).fold(0.0, f64::max);
        assert!((makespan - 1.0).abs() < 1e-6, "makespan {makespan}");
    }

    #[test]
    fn co_resident_large_kernels_gain_nothing() {
        // Occupancy 1.0 kernels cannot overlap usefully: four 0.25 s
        // jobs still take 1.0 s total (fair sharing), the same as
        // serialized execution.
        let tl = RateSharingTimeline::new();
        let jobs: Vec<Job> = (0..4).map(|i| job(i, i, 0, 0.25, 1.0)).collect();
        let makespan = secs(tl.makespan(&jobs));
        assert!((makespan - 1.0).abs() < 1e-6);
    }

    #[test]
    fn same_stream_jobs_serialize() {
        let tl = RateSharingTimeline::new();
        let jobs = vec![job(1, 7, 0, 1.0, 1.0), job(2, 7, 0, 1.0, 1.0)];
        let out = tl.simulate(&jobs);
        assert!((secs(out[0].end) - 1.0).abs() < 1e-9);
        assert!((secs(out[1].start) - 1.0).abs() < 1e-9);
        assert!((secs(out[1].end) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn different_streams_with_low_occupancy_share() {
        // Two streams, each two 0.5-occupancy jobs: the device runs two
        // jobs at rate 0.5 each, so each pair of 1.0-work jobs takes
        // 2.0 s, and both streams finish at 4.0 s.
        let tl = RateSharingTimeline::new();
        let jobs = vec![
            job(1, 0, 0, 1.0, 0.5),
            job(2, 0, 0, 1.0, 0.5),
            job(3, 1, 0, 1.0, 0.5),
            job(4, 1, 0, 1.0, 0.5),
        ];
        let makespan = secs(tl.makespan(&jobs));
        assert!((makespan - 4.0).abs() < 1e-6, "makespan {makespan}");
    }

    #[test]
    fn arrivals_are_respected() {
        let tl = RateSharingTimeline::new();
        let out = tl.simulate(&[job(1, 0, 3_000_000_000, 1.0, 1.0)]);
        assert!((secs(out[0].start) - 3.0).abs() < 1e-9);
        assert!((secs(out[0].end) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_between_arrivals() {
        let tl = RateSharingTimeline::new();
        let jobs = vec![job(1, 0, 0, 0.5, 1.0), job(2, 1, 5_000_000_000, 0.5, 1.0)];
        let out = tl.simulate(&jobs);
        assert!((secs(out[0].end) - 0.5).abs() < 1e-9);
        assert!((secs(out[1].start) - 5.0).abs() < 1e-9);
        assert!((secs(out[1].end) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn zero_work_jobs_complete_instantly_in_order() {
        let tl = RateSharingTimeline::new();
        let jobs = vec![job(1, 0, 0, 0.0, 1.0), job(2, 0, 0, 1.0, 1.0)];
        let out = tl.simulate(&jobs);
        assert_eq!(out[0].start, out[0].end);
        assert!((secs(out[1].end) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_fine() {
        let tl = RateSharingTimeline::new();
        assert!(tl.simulate(&[]).is_empty());
        assert_eq!(tl.makespan(&[]), SimTime::ZERO);
    }

    #[test]
    fn preemption_by_later_arrival_shares_fairly() {
        // Job A (rate 1.0, work 2.0) starts alone; at t=1 job B
        // (rate 1.0, work 0.5) arrives. From t=1 they share 0.5/0.5:
        // B finishes at t=2.0, A has 0.5 left and finishes at 2.5.
        let tl = RateSharingTimeline::new();
        let jobs = vec![job(1, 0, 0, 2.0, 1.0), job(2, 1, 1_000_000_000, 0.5, 1.0)];
        let out = tl.simulate(&jobs);
        assert!(
            (secs(out[1].end) - 2.0).abs() < 1e-6,
            "B end {}",
            secs(out[1].end)
        );
        assert!(
            (secs(out[0].end) - 2.5).abs() < 1e-6,
            "A end {}",
            secs(out[0].end)
        );
    }

    #[test]
    fn heterogeneous_caps_water_fill_correctly() {
        // Caps 0.2 and 0.9 with capacity 1.0: total cap 1.1 > 1, so
        // λ solves min(0.2,λ)+min(0.9,λ)=1 → λ=0.8. Job1 runs at 0.2,
        // job2 at 0.8.
        let tl = RateSharingTimeline::new();
        let jobs = vec![job(1, 0, 0, 0.2, 0.2), job(2, 1, 0, 0.8, 0.9)];
        let out = tl.simulate(&jobs);
        // Both should finish at exactly t = 1.0.
        assert!((secs(out[0].end) - 1.0).abs() < 1e-6);
        assert!((secs(out[1].end) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn work_conservation_under_saturation() {
        // Total work 3.0 device-seconds with all caps ≥ capacity: the
        // makespan can never beat work/capacity.
        let tl = RateSharingTimeline::new();
        let jobs: Vec<Job> = (0..6).map(|i| job(i, i, 0, 0.5, 1.0)).collect();
        let makespan = secs(tl.makespan(&jobs));
        assert!((makespan - 3.0).abs() < 1e-6);
    }

    #[test]
    fn with_capacity_scales_throughput() {
        let tl = RateSharingTimeline::with_capacity(2.0);
        let jobs: Vec<Job> = (0..4).map(|i| job(i, i, 0, 1.0, 1.0)).collect();
        let makespan = secs(tl.makespan(&jobs));
        assert!((makespan - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RateSharingTimeline::with_capacity(0.0);
    }
}
