//! # hsim-gpu
//!
//! A CUDA-like GPU **device simulator**: the substrate standing in for
//! the NVIDIA K80s (and their driver stack) of the paper's RZHasGPU
//! testbed, which this environment does not have.
//!
//! The simulator is *functional where it matters and timed everywhere*:
//!
//! * [`spec::DeviceSpec`] — device capability sheet (SMs, FP64 rate,
//!   memory bandwidth/capacity, launch overhead); presets for the Tesla
//!   K80 and Volta V100 match the paper's testbed and target machine.
//! * [`kernel`] — kernel descriptors and the **occupancy model**: a
//!   kernel's achievable fraction of device throughput as a function of
//!   its innermost-dimension extent and total element count. This single
//!   curve drives the paper's Figures 13–17 (when MPS overlap pays off).
//! * [`timeline`] — a rate-sharing device timeline: concurrent kernels
//!   are malleable jobs whose rates water-fill the device's capacity,
//!   each capped by its occupancy. One resident context ⇒ kernels
//!   serialize; MPS ⇒ kernels from co-resident clients overlap exactly
//!   when single kernels underfill the device.
//! * [`context`] / [`stream`] — CUDA's "one active context per device"
//!   rule (the reason MPS exists, paper §2) and in-order streams.
//! * [`mps`] — the Multi-Process Service: clients funnel through one
//!   shared context, paying a higher launch overhead (paper §2) in
//!   exchange for overlap.
//! * [`memory`] — the three data classes of the paper's Figure 8:
//!   device allocations (first-fit, capacity-checked), **unified
//!   memory** (page residency + migration charges), and a cnmem-style
//!   **pool** for temporaries.
//! * [`xfer`] — PCIe staging-cost model for host↔device copies.

#![forbid(unsafe_code)]

pub mod context;
pub mod device;
pub mod error;
pub mod kernel;
pub mod memory;
pub mod mps;
pub mod spec;
pub mod stream;
pub mod timeline;
pub mod xfer;

pub use context::{Context, ContextId};
pub use device::Device;
pub use error::GpuError;
pub use kernel::{occupancy, KernelDesc, KernelShape};
pub use spec::DeviceSpec;
pub use stream::{Stream, StreamId};
pub use timeline::{Job, JobOutcome, RateSharingTimeline};
