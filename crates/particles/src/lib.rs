//! # hsim-particles
//!
//! A Lagrangian tracer/drag particle phase riding on the hydro field —
//! the second physics package of the multi-physics pairing in the
//! paper's §2 (ARES couples hydrodynamics to particle-based transport
//! packages). Particles are advected through the gas velocity field
//! with a linear drag relaxation, owned by whichever rank's subdomain
//! contains them, and shipped between ranks through the
//! [`Coupler::migrate_particles`] collective so migration is priced on
//! the same simulated-MPI timeline as halo exchange.
//!
//! **Determinism.** Initialization is a pure function of the particle
//! id and the seed (SplitMix64), so the *global* particle set is
//! identical for every decomposition; each rank keeps the particles
//! its subdomain contains. Advection under [`Fidelity::Full`] samples
//! the containing zone's velocity — owned by the advecting rank by
//! construction — so trajectories are bitwise identical across rank
//! counts, host-thread counts, and tilings. Under
//! [`Fidelity::CostOnly`] the hydro field does not exist; particles
//! instead take a synthetic drift that is a pure function of
//! `(id, cycle, seed)` — still decomposition-independent, and still
//! crossing rank boundaries so chaos/rebalance runs exercise the
//! migration collective. The two fidelities advect *differently* (one
//! follows gas, one a hash), which is fine: cost-only runs exist to
//! measure time, and the migration volume is what the time model
//! consumes.
//!
//! **Cost.** Each advection sweep is charged through the portability
//! layer as one `particle_advect` kernel over the rank's live
//! particles, exactly like a hydro kernel; migration is an
//! `alltoallv` on the simulated communicator, so wire time, eager
//! overheads, and the collectives counter all see it.

#![forbid(unsafe_code)]

use hsim_gpu::KernelDesc;
use hsim_hydro::cycle::{CoupleError, Coupler, CycleError};
use hsim_hydro::state::{HydroState, MX, MY, MZ, RHO};
use hsim_mesh::{Decomposition, GlobalGrid, Subdomain};
use hsim_raja::{Executor, Fidelity};
use hsim_time::RankClock;

/// Gather + interpolate + drag update + position integrate, per
/// particle. Flops/bytes are modeled, like every entry in the hydro
/// kernel catalog.
pub const ADVECT: KernelDesc = KernelDesc {
    name: "particle_advect",
    flops_per_elem: 28.0,
    bytes_per_elem: 88.0,
};

/// Doubles on the wire per migrated particle: id (bit-cast), 3
/// positions, 3 velocities.
pub const WIRE_DOUBLES: usize = 7;

/// Wire bytes per migrated particle.
pub const WIRE_BYTES: u64 = (WIRE_DOUBLES * 8) as u64;

/// The particle phase configuration carried on `RunConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticlesConfig {
    /// Global particle count (shared across all ranks).
    pub count: u64,
    /// Drag relaxation rate: velocity relaxes toward the gas velocity
    /// as `v += (v_gas − v)·min(1, drag·dt)` each cycle.
    pub drag: f64,
    /// Seed for the deterministic initial placement.
    pub seed: u64,
}

impl Default for ParticlesConfig {
    fn default() -> Self {
        ParticlesConfig {
            count: 512,
            drag: 4.0,
            seed: 2018,
        }
    }
}

/// One tracer particle. `id` is globally unique and stable for the
/// whole run; every cross-rank merge re-sorts by it, so particle order
/// is deterministic no matter which rank computed what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    pub id: u64,
    pub pos: [f64; 3],
    pub vel: [f64; 3],
}

/// SplitMix64: the standard 64-bit finalizer-based PRNG step. Pure,
/// allocation-free, and identical on every platform.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform double in `[0, 1)` from one SplitMix64 draw.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The full global particle set: a pure function of the config and the
/// grid's physical box, independent of any decomposition.
pub fn init_global(cfg: &ParticlesConfig, grid: &GlobalGrid) -> Vec<Particle> {
    let mut parts = Vec::with_capacity(cfg.count as usize);
    for id in 0..cfg.count {
        let mut s = cfg.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Burn one draw so consecutive ids decorrelate fully.
        let _ = splitmix64(&mut s);
        let pos = [
            unit_f64(&mut s) * grid.lx,
            unit_f64(&mut s) * grid.ly,
            unit_f64(&mut s) * grid.lz,
        ];
        parts.push(Particle {
            id,
            pos,
            vel: [0.0; 3],
        });
    }
    parts
}

/// The zone containing `pos`, clamped to the grid.
pub fn zone_of(grid: &GlobalGrid, pos: [f64; 3]) -> [usize; 3] {
    let (i, j, k) = grid.zone_at(pos[0], pos[1], pos[2]);
    [i, j, k]
}

/// Does `sub` own the zone?
pub fn sub_contains(sub: &Subdomain, zone: [usize; 3]) -> bool {
    (0..3).all(|a| zone[a] >= sub.lo[a] && zone[a] < sub.hi[a])
}

/// The rank owning the zone containing `pos`, by linear scan of the
/// decomposition (rank counts are small; determinism beats cleverness
/// here). Subdomains tile the grid, so this only returns `None` on a
/// malformed decomposition.
pub fn owner_of(decomp: &Decomposition, pos: [f64; 3]) -> Option<usize> {
    let zone = zone_of(&decomp.grid, pos);
    decomp
        .domains
        .iter()
        .position(|sub| sub_contains(sub, zone))
}

/// The per-rank particle phase.
#[derive(Debug, Clone)]
pub struct PhaseState {
    pub cfg: ParticlesConfig,
    /// Particles owned by this rank, sorted by id.
    pub parts: Vec<Particle>,
    /// Particles this rank has shipped to a peer so far.
    pub migrated: u64,
}

impl PhaseState {
    /// This rank's slice of the global set: deterministic filter of
    /// [`init_global`] by subdomain ownership.
    pub fn init_owned(cfg: ParticlesConfig, grid: &GlobalGrid, sub: &Subdomain) -> PhaseState {
        let parts = init_global(&cfg, grid)
            .into_iter()
            .filter(|p| sub_contains(sub, zone_of(grid, p.pos)))
            .collect();
        PhaseState {
            cfg,
            parts,
            migrated: 0,
        }
    }

    /// Restore from a globally-merged snapshot (checkpoint restart or
    /// re-split): keep what the new subdomain owns.
    pub fn from_global(
        cfg: ParticlesConfig,
        global: &[Particle],
        grid: &GlobalGrid,
        sub: &Subdomain,
    ) -> PhaseState {
        let parts = global
            .iter()
            .filter(|p| sub_contains(sub, zone_of(grid, p.pos)))
            .copied()
            .collect();
        PhaseState {
            cfg,
            parts,
            migrated: 0,
        }
    }

    /// Sum of particle velocities — the drag-phase momentum surrogate
    /// conservation tests pin across re-splits and foldbacks.
    pub fn momentum(&self) -> [f64; 3] {
        momentum(&self.parts)
    }
}

/// Sum of particle velocities over any slice (id order first for a
/// decomposition-independent summation order).
pub fn momentum(parts: &[Particle]) -> [f64; 3] {
    let mut sorted: Vec<&Particle> = parts.iter().collect();
    sorted.sort_unstable_by_key(|p| p.id);
    let mut m = [0.0; 3];
    for p in sorted {
        for (mv, v) in m.iter_mut().zip(p.vel) {
            *mv += v;
        }
    }
    m
}

/// Order-independent FNV-1a digest of a particle set: callers pass any
/// rank-local or merged slice; the sum over sorted ids is identical
/// however ownership is split.
pub fn checksum(parts: &[Particle]) -> u64 {
    let mut sorted: Vec<&Particle> = parts.iter().collect();
    sorted.sort_unstable_by_key(|p| p.id);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in sorted {
        eat(p.id);
        for a in 0..3 {
            eat(p.pos[a].to_bits());
        }
        for a in 0..3 {
            eat(p.vel[a].to_bits());
        }
    }
    h
}

/// Flatten particles into `WIRE_DOUBLES` f64s each for the migration
/// collective. Ids travel bit-cast so the payload is one homogeneous
/// f64 buffer (what the simulated communicator ships).
pub fn encode(parts: &[Particle]) -> Vec<f64> {
    let mut out = Vec::with_capacity(parts.len() * WIRE_DOUBLES);
    for p in parts {
        out.push(f64::from_bits(p.id));
        out.extend_from_slice(&p.pos);
        out.extend_from_slice(&p.vel);
    }
    out
}

/// Inverse of [`encode`]. Ignores a trailing partial record (cannot
/// happen on the simulated wire, which never corrupts payload counts).
pub fn decode(wire: &[f64]) -> Vec<Particle> {
    wire.chunks_exact(WIRE_DOUBLES)
        .map(|c| Particle {
            id: c[0].to_bits(),
            pos: [c[1], c[2], c[3]],
            vel: [c[4], c[5], c[6]],
        })
        .collect()
}

/// Reflect `pos`/`vel` back into `[0, len)` on one axis (rigid walls,
/// matching the hydro boundary conditions).
fn reflect(pos: &mut f64, vel: &mut f64, len: f64) {
    if *pos < 0.0 {
        *pos = -*pos;
        *vel = -*vel;
    }
    if *pos > len {
        *pos = 2.0 * len - *pos;
        *vel = -*vel;
    }
    // Degenerate dt·v overshoot beyond one box length cannot occur
    // (CFL bounds v·dt ≪ L), but clamp so ownership lookup stays sane.
    *pos = pos.clamp(0.0, len * (1.0 - 1e-12));
}

/// Advance every particle one cycle. Kernel cost is charged through
/// the portability layer; the physics body runs only under
/// [`Fidelity::Full`], like every hydro kernel.
///
/// Full fidelity: sample the containing zone's gas velocity `m/ρ`,
/// relax toward it with the drag rate, integrate position, reflect at
/// walls. Cost-only: a synthetic drift, pure in `(id, cycle, seed)`,
/// bounded by 0.45 zone widths per cycle — enough to cross slab
/// boundaries, small enough to stay physical.
pub fn advect(
    phase: &mut PhaseState,
    state: &HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    dt: f64,
    cycle: u64,
) -> Result<(), CycleError> {
    let n = phase.parts.len();
    if n > 0 {
        exec.forall_par(clock, &ADVECT, n, n.min(u32::MAX as usize) as u32, |_| {})?;
    }
    let grid = state.grid;
    let sub = state.sub;
    let (dx, dy, dz) = grid.spacing();
    if exec.fidelity == Fidelity::Full {
        let drag = phase.cfg.drag;
        for p in &mut phase.parts {
            let zone = zone_of(&grid, p.pos);
            let (li, lj, lk) = (
                zone[0] - sub.lo[0],
                zone[1] - sub.lo[1],
                zone[2] - sub.lo[2],
            );
            let rho = state.u.get(RHO, li, lj, lk).max(1e-300);
            let gas = [
                state.u.get(MX, li, lj, lk) / rho,
                state.u.get(MY, li, lj, lk) / rho,
                state.u.get(MZ, li, lj, lk) / rho,
            ];
            let alpha = (drag * dt).min(1.0);
            for ((v, x), g) in p.vel.iter_mut().zip(&mut p.pos).zip(gas) {
                *v += (g - *v) * alpha;
                *x += *v * dt;
            }
            reflect(&mut p.pos[0], &mut p.vel[0], grid.lx);
            reflect(&mut p.pos[1], &mut p.vel[1], grid.ly);
            reflect(&mut p.pos[2], &mut p.vel[2], grid.lz);
        }
    } else {
        let seed = phase.cfg.seed;
        for p in &mut phase.parts {
            let mut s = seed
                ^ p.id.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ cycle.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            let _ = splitmix64(&mut s);
            let step = [
                (unit_f64(&mut s) * 2.0 - 1.0) * 0.45 * dx,
                (unit_f64(&mut s) * 2.0 - 1.0) * 0.45 * dy,
                (unit_f64(&mut s) * 2.0 - 1.0) * 0.45 * dz,
            ];
            for ((x, v), s) in p.pos.iter_mut().zip(&mut p.vel).zip(step) {
                *x += s;
                *v = s;
            }
            reflect(&mut p.pos[0], &mut p.vel[0], grid.lx);
            reflect(&mut p.pos[1], &mut p.vel[1], grid.ly);
            reflect(&mut p.pos[2], &mut p.vel[2], grid.lz);
        }
    }
    Ok(())
}

/// Ship every particle that left this rank's subdomain to its new
/// owner through the coupler's migration collective, and absorb
/// arrivals. Collective: **all ranks must call this every cycle**,
/// outbound or not, exactly like a halo exchange. Returns the number
/// of particles this rank sent.
pub fn migrate<C: Coupler + ?Sized>(
    phase: &mut PhaseState,
    decomp: &Decomposition,
    rank: usize,
    coupler: &mut C,
    clock: &mut RankClock,
) -> Result<u64, CoupleError> {
    let nranks = decomp.domains.len();
    let sub = &decomp.domains[rank];
    let grid = &decomp.grid;
    let mut keep = Vec::with_capacity(phase.parts.len());
    let mut leaving: Vec<Vec<Particle>> = vec![Vec::new(); nranks];
    for p in phase.parts.drain(..) {
        let zone = zone_of(grid, p.pos);
        if sub_contains(sub, zone) {
            keep.push(p);
        } else {
            match decomp.domains.iter().position(|d| sub_contains(d, zone)) {
                Some(dst) => leaving[dst].push(p),
                // Malformed decomposition: hold the particle rather
                // than lose it (conservation over placement).
                None => keep.push(p),
            }
        }
    }
    let sent: u64 = leaving
        .iter()
        .enumerate()
        .map(|(dst, v)| if dst == rank { 0 } else { v.len() as u64 })
        .sum();
    let outbound: Vec<Vec<f64>> = leaving.iter().map(|v| encode(v)).collect();
    let inbound = coupler.migrate_particles(outbound, clock)?;
    for wire in &inbound {
        keep.extend(decode(wire));
    }
    keep.sort_unstable_by_key(|p| p.id);
    phase.parts = keep;
    phase.migrated += sent;
    if sent > 0 {
        hsim_telemetry::count(hsim_telemetry::Counter::ParticlesMigrated, sent);
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_hydro::SoloCoupler;
    use hsim_mesh::decomp::block_decomp;
    use hsim_raja::{CpuModel, Target};

    fn grid(n: usize) -> GlobalGrid {
        GlobalGrid::new(n, n, n)
    }

    #[test]
    fn init_is_a_pure_function_of_config() {
        let g = grid(32);
        let cfg = ParticlesConfig::default();
        let a = init_global(&cfg, &g);
        let b = init_global(&cfg, &g);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.count as usize);
        for p in &a {
            assert!(p.pos[0] >= 0.0 && p.pos[0] < g.lx);
            assert!(p.pos[1] >= 0.0 && p.pos[1] < g.ly);
            assert!(p.pos[2] >= 0.0 && p.pos[2] < g.lz);
        }
        let other = init_global(&ParticlesConfig { seed: 7, ..cfg }, &g);
        assert_ne!(a, other, "seed must move the placement");
    }

    #[test]
    fn ownership_partition_is_exact() {
        let g = grid(32);
        let cfg = ParticlesConfig::default();
        let decomp = block_decomp(g, 4, 1);
        let total: usize = decomp
            .domains
            .iter()
            .map(|sub| PhaseState::init_owned(cfg, &g, sub).parts.len())
            .sum();
        assert_eq!(total, cfg.count as usize, "ranks must partition the set");
    }

    #[test]
    fn wire_roundtrip_is_lossless() {
        let g = grid(16);
        let parts = init_global(&ParticlesConfig::default(), &g);
        assert_eq!(decode(&encode(&parts)), parts);
    }

    #[test]
    fn checksum_is_split_invariant() {
        let g = grid(16);
        let parts = init_global(&ParticlesConfig::default(), &g);
        let whole = checksum(&parts);
        let (a, b) = parts.split_at(parts.len() / 3);
        let mut shuffled: Vec<Particle> = b.to_vec();
        shuffled.extend_from_slice(a);
        assert_eq!(checksum(&shuffled), whole);
    }

    #[test]
    fn cost_only_advection_is_decomposition_independent() {
        let g = grid(32);
        let cfg = ParticlesConfig::default();
        let sub_all = Subdomain::new([0, 0, 0], [32, 32, 32], 1);
        let st = HydroState::new(g, sub_all, Fidelity::CostOnly);
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);

        // Solo: the whole set on one rank.
        let mut solo_phase = PhaseState::init_owned(cfg, &g, &sub_all);
        let mut solo = SoloCoupler;
        for cycle in 0..6 {
            advect(&mut solo_phase, &st, &mut exec, &mut clock, 1e-3, cycle).unwrap();
            let solo_decomp = block_decomp(g, 1, 1);
            migrate(&mut solo_phase, &solo_decomp, 0, &mut solo, &mut clock).unwrap();
        }

        // Split: 4 slabs advected independently, migration emulated by
        // hand-merging the global set each cycle (what alltoallv does).
        let decomp = block_decomp(g, 4, 1);
        let mut phases: Vec<PhaseState> = decomp
            .domains
            .iter()
            .map(|sub| PhaseState::init_owned(cfg, &g, sub))
            .collect();
        for cycle in 0..6 {
            let mut merged: Vec<Particle> = Vec::new();
            for (r, phase) in phases.iter_mut().enumerate() {
                let st_r = HydroState::new(g, decomp.domains[r], Fidelity::CostOnly);
                advect(phase, &st_r, &mut exec, &mut clock, 1e-3, cycle).unwrap();
                merged.extend_from_slice(&phase.parts);
            }
            for (r, phase) in phases.iter_mut().enumerate() {
                *phase = PhaseState::from_global(cfg, &merged, &g, &decomp.domains[r]);
            }
        }
        let mut split_all: Vec<Particle> = phases.iter().flat_map(|p| p.parts.clone()).collect();
        split_all.sort_unstable_by_key(|p| p.id);
        assert_eq!(split_all, solo_phase.parts);
    }

    #[test]
    fn full_fidelity_drag_relaxes_toward_the_gas() {
        let g = GlobalGrid::new(16, 16, 16);
        let sub = Subdomain::new([0, 0, 0], [16, 16, 16], 1);
        let mut st = HydroState::new(g, sub, Fidelity::Full);
        // Uniform gas moving in +x at speed 2.
        let rho = 1.0;
        let e = st.ext();
        for k in 0..e[2] {
            for j in 0..e[1] {
                for i in 0..e[0] {
                    st.u.set(RHO, i, j, k, rho);
                    st.u.set(MX, i, j, k, rho * 2.0);
                    st.u.set(MY, i, j, k, 0.0);
                    st.u.set(MZ, i, j, k, 0.0);
                }
            }
        }
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut phase = PhaseState {
            cfg: ParticlesConfig::default(),
            parts: vec![Particle {
                id: 0,
                pos: [0.1, 0.5, 0.5],
                vel: [0.0; 3],
            }],
            migrated: 0,
        };
        // dt·drag = 0.04 per cycle; 50 cycles entrains to
        // 2·(1 − 0.96⁵⁰) ≈ 1.74 while traveling well short of the wall.
        for cycle in 0..50 {
            advect(&mut phase, &st, &mut exec, &mut clock, 0.01, cycle).unwrap();
        }
        let p = phase.parts[0];
        assert!(p.vel[0] > 1.7 && p.vel[0] < 2.0, "entrainment: {:?}", p.vel);
        assert!(p.vel[1].abs() < 1e-12 && p.vel[2].abs() < 1e-12);
        assert!(p.pos[0] > 0.1 && p.pos[0] < g.lx, "drift: {:?}", p.pos);
    }

    #[test]
    fn advection_charges_kernel_time() {
        let g = grid(16);
        let sub = Subdomain::new([0, 0, 0], [16, 16, 16], 1);
        let st = HydroState::new(g, sub, Fidelity::CostOnly);
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        let mut phase = PhaseState::init_owned(ParticlesConfig::default(), &g, &sub);
        let t0 = clock.now();
        advect(&mut phase, &st, &mut exec, &mut clock, 1e-3, 0).unwrap();
        assert!(clock.now() > t0, "advection must charge virtual time");
    }

    #[test]
    fn migrate_conserves_under_solo() {
        let g = grid(16);
        let decomp = block_decomp(g, 1, 1);
        let mut phase = PhaseState::init_owned(ParticlesConfig::default(), &g, &decomp.domains[0]);
        let before = checksum(&phase.parts);
        let mut solo = SoloCoupler;
        let mut clock = RankClock::new(0);
        let sent = migrate(&mut phase, &decomp, 0, &mut solo, &mut clock).unwrap();
        assert_eq!(sent, 0);
        assert_eq!(checksum(&phase.parts), before);
    }
}
