//! Property test: the fused cache-blocked kernels are bitwise
//! interchangeable with the legacy per-pass kernels they replaced.
//!
//! The in-module unit tests in `fused.rs` pin a handful of known
//! shapes; this test drives the same equivalence across random grid
//! extents and random (often ragged) tile shapes, comparing every
//! output slab bit for bit **three ways**: the legacy serial path,
//! the fused serial path, and the fused parallel-tile path at worker
//! counts 1, 2, and 4. The legacy path always runs serially, so the
//! comparison proves the fused path's tiling, scratch layout, and
//! pool scheduling are all invisible in the output — the repo's
//! worker-count-invariance guarantee. (Virtual-time charge parity is
//! pinned by the unit tests in `fused.rs`, which run both paths on
//! the same target; here the targets differ by design.)

use hsim_hydro::noh::{self, NohConfig};
use hsim_hydro::sedov::{self, SedovConfig};
use hsim_hydro::sod::{self, SodConfig};
use hsim_hydro::state::{EN, GAMMA, MX, MY, MZ, RHO};
use hsim_hydro::taylor_green::{self, TaylorGreenConfig};
use hsim_hydro::{eos, flux, fused, muscl, HydroState};
use hsim_mesh::{GlobalGrid, Subdomain};
use hsim_raja::{CpuModel, Executor, Fidelity, Target};
use hsim_time::RankClock;
use proptest::prelude::*;

const DT: f64 = 1e-3;

/// A full-fidelity state whose conserved fields (ghosts included) are
/// random but physical: positive density and pressure, modest
/// velocities. Filling the ghosts directly stands in for a halo
/// exchange, so no boundary pass is needed before sweeping.
fn random_state(n: [usize; 3], ghost: usize, rng: &mut TestRng) -> HydroState {
    let grid = GlobalGrid::new(n[0], n[1], n[2]);
    let sub = Subdomain::new([0, 0, 0], n, ghost);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    let d = st.u.dims();
    // Allocated coordinates, so the loop covers the ghost shells too.
    for k in 0..d[2] {
        for j in 0..d[1] {
            for i in 0..d[0] {
                let rho = 0.5 + 1.5 * rng.next_f64();
                let vx = 0.4 * rng.next_f64() - 0.2;
                let vy = 0.4 * rng.next_f64() - 0.2;
                let vz = 0.4 * rng.next_f64() - 0.2;
                let p = 0.2 + rng.next_f64();
                let ke = 0.5 * rho * (vx * vx + vy * vy + vz * vz);
                let at = st.u.idx(i, j, k);
                st.u.var_mut(RHO)[at] = rho;
                st.u.var_mut(MX)[at] = rho * vx;
                st.u.var_mut(MY)[at] = rho * vy;
                st.u.var_mut(MZ)[at] = rho * vz;
                st.u.var_mut(EN)[at] = p / (GAMMA - 1.0) + ke;
            }
        }
    }
    let u = st.u.clone();
    st.u0.copy_from(&u);
    st
}

/// A second state carrying exactly the same bytes as `src`.
fn twin(src: &HydroState, n: [usize; 3], ghost: usize) -> HydroState {
    let grid = GlobalGrid::new(n[0], n[1], n[2]);
    let sub = Subdomain::new([0, 0, 0], n, ghost);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    st.u.copy_from(&src.u);
    st.u0.copy_from(&src.u0);
    st.prim.copy_from(&src.prim);
    st
}

fn prop_slabs_identical(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: slab sizes differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: slab element {i} differs: {x} vs {y}"
        );
    }
}

fn assert_states_identical(legacy: &HydroState, fused: &HydroState, what: &str) {
    prop_slabs_identical(legacy.prim.slab(), fused.prim.slab(), what);
    prop_slabs_identical(legacy.u0.slab(), fused.u0.slab(), what);
    prop_slabs_identical(legacy.u.slab(), fused.u.slab(), what);
}

/// Worker counts the parallel-tile path must be invariant over.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Run the fused primitives + sweep on `st` under `target`.
fn run_fused(st: &mut HydroState, target: Target, muscl_order: bool) {
    let mut exec = Executor::new(target, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    fused::primitives(st, &mut exec, &mut clock).unwrap();
    if muscl_order {
        fused::sweep_muscl(st, &mut exec, &mut clock, DT).unwrap();
    } else {
        fused::sweep(st, &mut exec, &mut clock, DT).unwrap();
    }
}

/// A full-fidelity state initialized by one of the four first-class
/// scenarios (index into [`SCENARIO_NAMES`]). Unlike [`random_state`]
/// these are the *real* problem states the figure sweeps and CI gates
/// run, covering their distinct structures (point deposit, axial
/// discontinuity, inflow implosion, smooth vortex).
const SCENARIO_NAMES: [&str; 4] = ["sedov", "sod", "noh", "taylor-green"];

fn scenario_state(which: usize, n: [usize; 3], ghost: usize) -> HydroState {
    let grid = GlobalGrid::new(n[0], n[1], n[2]);
    let sub = Subdomain::new([0, 0, 0], n, ghost);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    match which {
        0 => sedov::init(&mut st, &SedovConfig::default()),
        1 => sod::init(&mut st, &SodConfig::default()),
        2 => noh::init(&mut st, &NohConfig::default()),
        _ => taylor_green::init(&mut st, &TaylorGreenConfig::default()),
    }
    st
}

proptest! {
    /// Every scenario's real initial state runs bitwise-identically
    /// through the legacy, fused-serial, and fused-parallel paths at
    /// every worker count and any (ragged) tile shape — the `--jobs`
    /// / `--host-threads` / tile invariance the CI matrix relies on.
    #[test]
    fn fused_sweep_is_bitwise_equivalent_on_every_scenario(
        which in 0usize..4,
        n in (4usize..9, 4usize..9, 4usize..9),
        tile in (1usize..13, 1usize..13),
    ) {
        let n = [n.0, n.1, n.2];
        let name = SCENARIO_NAMES[which];
        let mut legacy = scenario_state(which, n, 1);
        let init = twin(&legacy, n, 1);

        let mut e1 = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut c1 = RankClock::new(0);
        eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        flux::sweep(&mut legacy, &mut e1, &mut c1, DT).unwrap();

        let mut serial = twin(&init, n, 1);
        serial.tile = [tile.0, tile.1];
        run_fused(&mut serial, Target::CpuSeq, false);
        assert_states_identical(&legacy, &serial, &format!("{name} fused serial vs legacy"));

        for threads in WORKER_COUNTS {
            let mut par = twin(&init, n, 1);
            par.tile = [tile.0, tile.1];
            run_fused(&mut par, Target::cpu_parallel(threads), false);
            let what = format!("{name} fused parallel x{threads}");
            assert_states_identical(&serial, &par, &format!("{what} vs serial fused"));
            assert_states_identical(&legacy, &par, &format!("{what} vs legacy"));
        }
    }

    #[test]
    fn fused_first_order_sweep_is_bitwise_equivalent(
        n in (4usize..9, 4usize..9, 4usize..9),
        tile in (1usize..13, 1usize..13),
        seed in 0u64..1_000_000,
    ) {
        let n = [n.0, n.1, n.2];
        let mut rng = TestRng::from_name(&format!("first-order-{seed}"));
        let mut legacy = random_state(n, 1, &mut rng);
        let init = twin(&legacy, n, 1);

        let mut e1 = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut c1 = RankClock::new(0);
        eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        flux::sweep(&mut legacy, &mut e1, &mut c1, DT).unwrap();

        // Fused serial must match legacy …
        let mut serial = twin(&init, n, 1);
        serial.tile = [tile.0, tile.1];
        run_fused(&mut serial, Target::CpuSeq, false);
        assert_states_identical(&legacy, &serial, "first-order fused serial vs legacy");

        // … and the parallel-tile path must match both at every
        // worker count.
        for threads in WORKER_COUNTS {
            let mut par = twin(&init, n, 1);
            par.tile = [tile.0, tile.1];
            run_fused(&mut par, Target::cpu_parallel(threads), false);
            let what = format!("first-order fused parallel x{threads}");
            assert_states_identical(&serial, &par, &format!("{what} vs serial fused"));
            assert_states_identical(&legacy, &par, &format!("{what} vs legacy"));
        }
    }

    #[test]
    fn fused_muscl_sweep_is_bitwise_equivalent(
        n in (4usize..8, 4usize..8, 4usize..8),
        tile in (1usize..13, 1usize..13),
        seed in 0u64..1_000_000,
    ) {
        let n = [n.0, n.1, n.2];
        let mut rng = TestRng::from_name(&format!("muscl-{seed}"));
        let mut legacy = random_state(n, 2, &mut rng);
        let init = twin(&legacy, n, 2);

        let mut e1 = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut c1 = RankClock::new(0);
        eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        muscl::sweep_muscl(&mut legacy, &mut e1, &mut c1, DT).unwrap();

        let mut serial = twin(&init, n, 2);
        serial.tile = [tile.0, tile.1];
        run_fused(&mut serial, Target::CpuSeq, true);
        assert_states_identical(&legacy, &serial, "MUSCL fused serial vs legacy");

        for threads in WORKER_COUNTS {
            let mut par = twin(&init, n, 2);
            par.tile = [tile.0, tile.1];
            run_fused(&mut par, Target::cpu_parallel(threads), true);
            let what = format!("MUSCL fused parallel x{threads}");
            assert_states_identical(&serial, &par, &format!("{what} vs serial fused"));
            assert_states_identical(&legacy, &par, &format!("{what} vs legacy"));
        }
    }
}
